// Quickstart: build one continuous query and run it under every
// scheduling architecture the library provides.
//
//   sensor --> filter(value < 750) --> celsius->fahrenheit map --> sink
//
// The same logical graph is executed with:
//   * source-driven DI (no queues, no scheduler at all),
//   * DI behind a single source queue (one thread),
//   * GTS (every operator decoupled, one scheduler thread),
//   * OTS (every operator decoupled, one thread per operator),
//   * HMTS (queues placed by the stall-avoiding Algorithm 1, one thread
//     per partition under the level-3 thread scheduler).
//
// Scheduling never changes results — only cost — so all five runs print
// the same counts.

#include <iostream>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace flexstream;  // NOLINT: example brevity

constexpr int kElements = 200'000;

struct Query {
  QueryGraph graph;
  Source* sensor = nullptr;
  CountingSink* sink = nullptr;

  Query() {
    QueryBuilder qb(&graph);
    sensor = qb.AddSource("sensor");
    // Metadata used by HMTS placement (could also be measured online).
    sensor->SetInterarrivalMicros(10.0);
    Node* filter =
        qb.Select(sensor, "hot", Selection::IntAttrLessThan(750));
    filter->SetSelectivity(0.75);
    filter->SetCostMicros(0.2);
    Node* to_fahrenheit = qb.Map(filter, "to_fahrenheit", [](const Tuple& t) {
      return Tuple::OfDouble(
          static_cast<double>(t.IntAt(0)) * 9.0 / 5.0 + 32.0, t.timestamp());
    });
    to_fahrenheit->SetSelectivity(1.0);
    to_fahrenheit->SetCostMicros(0.3);
    sink = qb.CountSink(to_fahrenheit, "sink");
  }

  void Feed() {
    Rng rng(2024);
    for (int i = 0; i < kElements; ++i) {
      sensor->Push(Tuple::OfInt(rng.UniformInt(0, 999), i));
    }
    sensor->Close(kElements);
  }
};

double RunMode(ExecutionMode mode, int64_t* results, size_t* threads) {
  Query query;
  StreamEngine engine(&query.graph);
  EngineOptions options;
  options.mode = mode;
  options.strategy = StrategyKind::kFifo;
  CHECK_OK(engine.Configure(options));
  CHECK_OK(engine.Start());
  Stopwatch sw;
  query.Feed();
  engine.WaitUntilFinished();
  const double seconds = sw.ElapsedSeconds();
  *results = query.sink->count();
  *threads = engine.WorkerThreadCount();
  return seconds;
}

}  // namespace

int main() {
  std::cout << "flexstream quickstart: one query, five scheduling "
               "architectures, " << kElements << " elements\n\n";
  Table t({"mode", "worker_threads", "results", "runtime_s"});
  for (ExecutionMode mode :
       {ExecutionMode::kSourceDriven, ExecutionMode::kDirect,
        ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    int64_t results = 0;
    size_t threads = 0;
    const double seconds = RunMode(mode, &results, &threads);
    t.AddRow({ExecutionModeToString(mode),
              Table::Int(static_cast<int64_t>(threads)),
              Table::Int(results), Table::Num(seconds, 3)});
  }
  t.Print(std::cout);
  std::cout << "\nResults are identical across modes; only the cost "
               "differs (Section 2.4 of the paper: queues never change "
               "semantics).\n";
  return 0;
}

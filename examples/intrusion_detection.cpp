// Network intrusion detection — the paper's second motivating domain.
//
// Two streams are joined in a sliding window:
//   * connections: (src_host, dst_port, bytes) — high volume,
//   * alerts:      (host, signature)          — low volume, produced by a
//                                               separate detector.
// An alert correlates with every connection from the same host within the
// last 100 (application) milliseconds:
//
//   connections --> port filter --> volume filter --+
//                                                    +--> SHJ --> sink
//   alerts --------------------------> dedup-ish ---+
//
// The symmetric hash join probes a window per side, which makes it the
// expensive stateful operator of this graph; the stall-avoiding placement
// isolates it from the cheap filter chain (Figure 5's pattern), and the
// HMTS executor runs the partitions concurrently.

#include <iostream>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"
#include "workload/rate_source.h"

namespace {

using namespace flexstream;  // NOLINT: example brevity

constexpr int64_t kConnections = 60'000;
constexpr int64_t kAlerts = 2'000;
constexpr int64_t kHosts = 2000;

}  // namespace

int main() {
  QueryGraph graph;
  QueryBuilder qb(&graph);

  Source* connections = qb.AddSource("connections");
  connections->SetInterarrivalMicros(20.0);
  Source* alerts = qb.AddSource("alerts");
  alerts->SetInterarrivalMicros(600.0);

  // Cheap filter chain on the connection stream: suspicious ports and
  // suspicious volumes only.
  Node* port_filter =
      qb.Select(connections, "suspicious_port", [](const Tuple& t) {
        const int64_t port = t.IntAt(1);
        return port == 22 || port == 23 || port == 445 || port > 40'000;
      });
  port_filter->SetSelectivity(0.4);
  port_filter->SetCostMicros(0.2);
  Node* volume_filter =
      qb.Select(port_filter, "big_transfer",
                [](const Tuple& t) { return t.IntAt(2) > 100'000; });
  volume_filter->SetSelectivity(0.5);
  volume_filter->SetCostMicros(0.2);

  // Correlate with alerts from the same host in a 100 ms window. Give the
  // join its (measured-in-practice) higher cost as metadata so placement
  // can see it.
  SymmetricHashJoin* correlate =
      qb.HashJoin(volume_filter, alerts, "correlate",
                  kMicrosPerSecond / 10, /*left_key_attr=*/0,
                  /*right_key_attr=*/0);
  correlate->SetCostMicros(25.0);
  correlate->SetSelectivity(0.2);
  CollectingSink* incidents = qb.CollectSink(correlate, "incidents");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.placement = PlacementKind::kStallAvoiding;
  CHECK_OK(engine.Configure(options));
  std::cout << "partitions:\n"
            << engine.partitioning()->DebugString() << "\n"
            << "worker threads: " << engine.WorkerThreadCount() << "\n\n";
  CHECK_OK(engine.Start());

  RateSource::Options copt;
  copt.phases = {{kConnections, 50'000.0}};
  copt.pacing = RateSource::Pacing::kPoisson;
  copt.seed = 31;
  RateSource connection_driver(
      connections, copt, [](int64_t, AppTime ts, Rng* rng) {
        static constexpr int64_t kPorts[] = {22, 23, 80, 443, 445, 8080,
                                             52'000};
        return Tuple({Value(rng->Zipf(kHosts, 1.01)),
                      Value(kPorts[rng->NextU64(7)]),
                      Value(rng->UniformInt(100, 2'000'000))},
                     ts);
      });
  RateSource::Options aopt;
  aopt.phases = {{kAlerts, 1'600.0}};
  aopt.pacing = RateSource::Pacing::kPoisson;
  aopt.seed = 32;
  RateSource alert_driver(alerts, aopt, [](int64_t, AppTime ts, Rng* rng) {
    return Tuple({Value(rng->Zipf(kHosts, 1.01)),
                  Value("sig-" + std::to_string(rng->UniformInt(1, 40)))},
                 ts);
  });

  Stopwatch sw;
  connection_driver.Start();
  alert_driver.Start();
  connection_driver.Join();
  alert_driver.Join();
  engine.WaitUntilFinished();

  const auto results = incidents->TakeResults();
  std::cout << kConnections << " connections x " << kAlerts
            << " alerts correlated in " << Table::Num(sw.ElapsedSeconds(), 2)
            << " s; " << results.size() << " incidents\n";
  Table sample({"host", "port", "bytes", "signature"});
  for (size_t i = 0; i < results.size() && i < 5; ++i) {
    const Tuple& t = results[i];
    sample.AddRow({Table::Int(t.IntAt(0)), Table::Int(t.IntAt(1)),
                   Table::Int(t.IntAt(2)), t.StringAt(4)});
  }
  std::cout << "\nfirst incidents:\n";
  sample.Print(std::cout);
  return 0;
}

// Traffic monitoring — the kind of application the paper's introduction
// motivates. A stream of (segment_id, speed_kmh) readings feeds two
// continuous queries that *share* a subquery (the plausibility filter),
// exactly the sharing pattern of the paper's Figure 1:
//
//                      +--> avg speed per segment (1 s window) --> sink A
//   cars --> filter --+
//                      +--> congestion alarm (speed < 25) ---------> sink B
//
// The query graph is executed with HMTS: Algorithm 1 places queues from
// the operators' cost/selectivity metadata, and every resulting partition
// runs under the level-3 thread scheduler. The windowed aggregation is
// deliberately made expensive so the placement isolates it — the Figure 5
// scenario — which the example prints.

#include <iostream>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"
#include "workload/rate_source.h"

namespace {

using namespace flexstream;  // NOLINT: example brevity

constexpr int kSegments = 16;
constexpr int64_t kReadings = 50'000;

}  // namespace

int main() {
  QueryGraph graph;
  QueryBuilder qb(&graph);

  Source* cars = qb.AddSource("cars");
  cars->SetInterarrivalMicros(20.0);  // 50k readings/second

  // Shared plausibility filter: drop speeds outside [0, 250] km/h.
  Node* plausible = qb.Select(cars, "plausible", [](const Tuple& t) {
    const int64_t v = t.IntAt(1);
    return v >= 0 && v <= 250;
  });
  plausible->SetSelectivity(0.98);
  plausible->SetCostMicros(0.2);

  // Query 1: per-segment average speed over a 1-second sliding window.
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kAvg;
  agg_options.value_attr = 1;
  agg_options.group_attr = 0;
  agg_options.window_micros = kMicrosPerSecond;
  agg_options.simulated_cost_micros = 60.0;  // "the aggregation is expensive"
  WindowedAggregate* avg_speed =
      qb.Aggregate(plausible, "avg_speed", agg_options);
  avg_speed->SetSelectivity(1.0);
  avg_speed->SetCostMicros(60.0);
  CollectingSink* averages = qb.CollectSink(avg_speed, "averages");

  // Query 2: congestion alarms for crawling traffic.
  Node* congested =
      qb.Select(plausible, "congested",
                [](const Tuple& t) { return t.IntAt(1) < 25; });
  congested->SetSelectivity(0.1);
  congested->SetCostMicros(0.2);
  CountingSink* alarms = qb.CountSink(congested, "alarms");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.placement = PlacementKind::kStallAvoiding;
  options.strategy = StrategyKind::kChain;
  CHECK_OK(engine.Configure(options));

  std::cout << "Stall-avoiding placement decided on "
            << engine.partitioning()->group_count() << " partitions and "
            << engine.queues().size() << " decoupling queues:\n"
            << engine.partitioning()->DebugString() << "\n\n";

  CHECK_OK(engine.Start());

  RateSource::Options ropt;
  ropt.phases = {{kReadings, 50'000.0}};
  ropt.pacing = RateSource::Pacing::kPoisson;
  ropt.seed = 5;
  RateSource driver(cars, ropt, [](int64_t, AppTime ts, Rng* rng) {
    // Mostly free-flowing traffic with occasional crawls and one noisy
    // sensor emitting impossible speeds.
    const int64_t segment = rng->UniformInt(0, kSegments - 1);
    int64_t speed = rng->Bernoulli(0.1) ? rng->UniformInt(0, 24)
                                        : rng->UniformInt(40, 130);
    if (rng->Bernoulli(0.02)) speed = 999;  // broken sensor
    return Tuple({Value(segment), Value(speed)}, ts);
  });
  Stopwatch sw;
  driver.Start();
  driver.Join();
  engine.WaitUntilFinished();

  std::cout << "processed " << kReadings << " readings in "
            << Table::Num(sw.ElapsedSeconds(), 2) << " s\n"
            << "congestion alarms: " << alarms->count() << "\n\n";

  // Print the last reported average per segment.
  std::vector<double> last(kSegments, 0.0);
  std::vector<bool> seen(kSegments, false);
  for (const Tuple& t : averages->Results()) {
    last[static_cast<size_t>(t.IntAt(0))] = t.DoubleAt(1);
    seen[static_cast<size_t>(t.IntAt(0))] = true;
  }
  Table table({"segment", "last_avg_speed_kmh"});
  for (int s = 0; s < kSegments; ++s) {
    if (seen[s]) {
      table.AddRow({Table::Int(s), Table::Num(last[static_cast<size_t>(s)], 1)});
    }
  }
  table.Print(std::cout);
  return 0;
}

// Scheduling playground: plan a deployment before running it.
//
// Shows the offline tooling working together on one query graph:
//   1. rate propagation + Algorithm 1 decide a stall-avoiding partitioning
//      from metadata;
//   2. the Graphviz export renders the graph with partition coloring
//      (pipe it into `dot -Tsvg`);
//   3. the virtual-time simulator predicts completion time, peak queue
//      memory and per-thread utilization for several candidate
//      configurations — GTS, OTS, DI and the placed HMTS — on 1 and 2
//      virtual CPUs, without executing a single element;
//   4. the graph is then actually executed under the chosen configuration
//      and the per-operator statistics report is printed for comparison.

#include <iostream>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/dot_export.h"
#include "placement/static_queue_placement.h"
#include "sim/simulator.h"
#include "stats/capacity.h"
#include "stats/report.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

using namespace flexstream;  // NOLINT: example brevity

int main() {
  // The Figure 5 shape: a cheap unary chain feeding an expensive
  // aggregation-like operator, plus a cheap alarm branch off the middle.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("readings");
  src->SetInterarrivalMicros(100.0);  // 10k elements/s
  src->SetSelectivity(1.0);
  Node* parse = qb.Map(src, "parse", [](const Tuple& t) { return t; });
  parse->SetCostMicros(2.0);
  parse->SetSelectivity(1.0);
  Node* filter = qb.Select(parse, "plausible",
                           Selection::IntAttrLessThan(900));
  filter->SetCostMicros(1.0);
  filter->SetSelectivity(0.9);
  Node* heavy = qb.Select(
      filter, "model_scoring", [](const Tuple&) { return true; },
      /*cost=*/120.0);
  heavy->SetCostMicros(120.0);
  heavy->SetSelectivity(1.0);
  CountingSink* scores = qb.CountSink(heavy, "scores");
  scores->SetCostMicros(0.0);
  Node* alarm = qb.Select(filter, "alarm",
                          Selection::IntAttrLessThan(10));
  alarm->SetCostMicros(0.5);
  alarm->SetSelectivity(0.01);
  CountingSink* alarms = qb.CountSink(alarm, "alarms");
  alarms->SetCostMicros(0.0);

  // 1. Plan.
  CHECK_OK(PropagateRates(&graph));
  Partitioning placed = StaticQueuePlacement(graph);
  std::cout << "Algorithm 1 partitioning:\n"
            << placed.DebugString() << "\n\n";

  // 2. Visualize.
  std::cout << "Graphviz (pipe into `dot -Tsvg`):\n"
            << ToDot(graph, placed) << "\n";

  // 3. Predict. Candidate configurations over the same workload: a burst
  //    of 10,000 then 20,000 paced elements.
  const std::unordered_map<const Node*, std::vector<SimPhase>> schedule = {
      {src, {{10'000, 0.0}, {20'000, 10'000.0}}}};
  // VOs from the placement: one thread per partition, heavy isolated.
  std::vector<SimThread> hmts_threads;
  for (size_t id = 0; id < placed.group_count(); ++id) {
    SimVo vo;
    for (const Node* node : placed.group(id)) {
      if (!node->is_source()) vo.push_back(node);
    }
    if (!vo.empty()) hmts_threads.push_back(SimThread{std::move(vo)});
  }
  Table prediction({"config", "cpus", "completion_s", "peak_queued"});
  auto predict = [&](const char* name, std::vector<SimThread> threads,
                     int cpus) {
    SimOptions opt;
    opt.cpus = cpus;
    opt.strategy = StrategyKind::kChain;
    opt.dequeue_overhead_us = 0.07;
    auto r = Simulate(graph, schedule, threads, opt);
    CHECK(r.ok()) << r.status();
    prediction.AddRow({name, Table::Int(cpus),
                       Table::Num(r->completion_time, 2),
                       Table::Int(r->max_queued)});
  };
  predict("di", MakeDirectConfig(graph), 1);
  predict("gts", MakeGtsConfig(graph), 1);
  predict("ots", MakeOtsConfig(graph), 1);
  predict("ots", MakeOtsConfig(graph), 2);
  predict("hmts (placed)", hmts_threads, 1);
  predict("hmts (placed)", hmts_threads, 2);
  std::cout << "simulated predictions:\n";
  prediction.Print(std::cout);

  // 4. Execute for real under placed HMTS and report statistics.
  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.placement = PlacementKind::kStallAvoiding;
  options.strategy = StrategyKind::kChain;
  CHECK_OK(engine.Configure(options));
  CHECK_OK(engine.Start());
  RateSource::Options ropt;
  ropt.phases = {{10'000, 0.0}, {20'000, 10'000.0}};
  ropt.seed = 12;
  RateSource driver(src, ropt, RateSource::UniformInt(0, 999));
  Stopwatch sw;
  driver.Start();
  driver.Join();
  engine.WaitUntilFinished();
  std::cout << "\nactual HMTS run: " << Table::Num(sw.ElapsedSeconds(), 2)
            << " s, " << scores->count() << " scores, " << alarms->count()
            << " alarms\n\nper-operator statistics:\n"
            << StatsReport(graph);
  return 0;
}

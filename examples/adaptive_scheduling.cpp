// Adaptive scheduling — the runtime flexibility of Section 4.2.2:
// "We can seamlessly switch between these approaches during runtime."
//
// One query graph stays live while the engine is reconfigured three
// times:
//   1. start under GTS (one scheduler thread),
//   2. switch to OTS while elements keep flowing (GTS <-> OTS share the
//      same queue structure, so the switch is instantaneous),
//   3. pause the source briefly and switch to HMTS with stall-avoiding
//      placement (a structural change: queues are drained, removed and
//      re-placed — "interrupting the processing of the graph shortly",
//      Section 5.1.3),
//   4. finally adjust a partition's priority at runtime through the
//      level-3 thread scheduler.

#include <iostream>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace flexstream;  // NOLINT: example brevity

constexpr int kPerStage = 60'000;

}  // namespace

int main() {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("events");
  src->SetInterarrivalMicros(10.0);
  Node* significant =
      qb.Select(src, "significant", Selection::IntAttrLessThan(800));
  significant->SetSelectivity(0.8);
  significant->SetCostMicros(0.3);
  Node* enriched = qb.Map(significant, "enrich", [](const Tuple& t) {
    Tuple copy = t;
    copy.Append(Value(t.IntAt(0) % 7));
    return copy;
  });
  enriched->SetSelectivity(1.0);
  enriched->SetCostMicros(0.4);
  CountingSink* sink = qb.CountSink(enriched, "sink");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.strategy = StrategyKind::kFifo;
  CHECK_OK(engine.Configure(options));
  CHECK_OK(engine.Start());

  Rng rng(17);
  auto push_stage = [&](const char* label) {
    const Stopwatch sw;
    for (int i = 0; i < kPerStage; ++i) {
      src->Push(Tuple::OfInt(rng.UniformInt(0, 999), i));
    }
    std::cout << label << ": pushed " << kPerStage << " elements in "
              << Table::Num(sw.ElapsedSeconds(), 3)
              << " s (mode=" << ExecutionModeToString(engine.options().mode)
              << ", threads=" << engine.WorkerThreadCount()
              << ", queued=" << engine.QueuedElements()
              << ", results so far=" << sink->count() << ")\n";
  };

  push_stage("stage 1, GTS");

  // Live switch: GTS -> OTS keeps the queues, so the source never pauses.
  EngineOptions ots = engine.options();
  ots.mode = ExecutionMode::kOts;
  CHECK_OK(engine.SwitchTo(ots));
  push_stage("stage 2, OTS (switched live)");

  // Structural switch: the source is quiescent between stages, as the
  // contract requires; queues are drained, removed, and re-placed by
  // Algorithm 1.
  EngineOptions hmts = engine.options();
  hmts.mode = ExecutionMode::kHmts;
  hmts.placement = PlacementKind::kStallAvoiding;
  hmts.strategy = StrategyKind::kChain;
  CHECK_OK(engine.SwitchTo(hmts));
  std::cout << "switched to HMTS: "
            << engine.partitioning()->group_count() << " partitions, "
            << engine.queues().size() << " queues\n";
  push_stage("stage 3, HMTS");

  // Runtime priority adjustment on the level-3 scheduler.
  if (engine.hmts() != nullptr && engine.hmts()->partition_count() > 0) {
    engine.hmts()->SetPriority(0, 5.0);
    std::cout << "raised priority of partition '"
              << engine.hmts()->partition(0).name() << "' to 5.0\n";
  }
  push_stage("stage 4, HMTS re-prioritized");

  src->Close(4 * kPerStage);
  engine.WaitUntilFinished();
  std::cout << "\nfinal results: " << sink->count() << " of "
            << 4 * kPerStage << " inputs ("
            << Table::Num(100.0 * static_cast<double>(sink->count()) /
                              (4 * kPerStage),
                          1)
            << "% passed the filter)\n";
  return 0;
}

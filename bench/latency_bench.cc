// Latency benchmark — what the paper's stall argument means for
// end-to-end latency percentiles.
//
// Not a paper figure; it quantifies Section 4.2.1's motivation with the
// latency metric later stream engines standardized on. A cheap branch
// (2,000 elements/s through a 1 µs filter) shares the engine with a heavy
// branch (100 elements/s through a 5 ms operator). Under GTS, every heavy
// element head-of-line-blocks the cheap branch for 5 ms, which shows up
// directly in the cheap branch's tail latency; OTS and HMTS isolate the
// branches (on this 1-vCPU host isolation comes from OS timeslicing of
// the separate threads, so the cheap tail shrinks but does not vanish).

#include <iostream>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

const int64_t kCheapCount = bench::SmokeScaled<int64_t>(3000, 800);
constexpr double kCheapRate = 2000.0;
const int64_t kHeavyCount = bench::SmokeScaled<int64_t>(150, 40);
constexpr double kHeavyRate = 100.0;
constexpr double kHeavyCost = 5000.0;  // 5 ms

struct LatencyRun {
  Histogram cheap;
  Histogram heavy;
};

LatencyRun RunConfig(ExecutionMode mode, StrategyKind strategy,
                     int max_running = 0) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  const TimePoint epoch = Now();

  Source* cheap_src = qb.AddSource("cheap_src");
  cheap_src->SetInterarrivalMicros(1e6 / kCheapRate);
  Node* cheap_op = qb.Select(
      cheap_src, "cheap", [](const Tuple&) { return true; }, /*cost=*/1.0);
  cheap_op->SetCostMicros(1.0);
  cheap_op->SetSelectivity(1.0);
  // Attribute 0 = payload, attribute 1 = emit offset stamp.
  LatencySink* cheap_sink = qb.Latency(cheap_op, "cheap_lat", 1, epoch);

  Source* heavy_src = qb.AddSource("heavy_src");
  heavy_src->SetInterarrivalMicros(1e6 / kHeavyRate);
  Node* heavy_op = qb.Select(
      heavy_src, "heavy", [](const Tuple&) { return true; },
      /*cost=*/kHeavyCost);
  heavy_op->SetCostMicros(kHeavyCost);
  heavy_op->SetSelectivity(1.0);
  LatencySink* heavy_sink = qb.Latency(heavy_op, "heavy_lat", 1, epoch);

  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = mode;
  opt.strategy = strategy;
  opt.partition.batch_size = 1;
  if (max_running > 0) opt.ts.max_running = max_running;
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());

  RateSource::Options cheap_opt;
  cheap_opt.phases = {{kCheapCount, kCheapRate}};
  cheap_opt.pacing = RateSource::Pacing::kPoisson;
  cheap_opt.stamp_emit_offset = true;
  cheap_opt.stamp_epoch = epoch;
  cheap_opt.seed = 100;
  RateSource cheap_driver(cheap_src, cheap_opt,
                          RateSource::UniformInt(0, 999));
  RateSource::Options heavy_opt;
  heavy_opt.phases = {{kHeavyCount, kHeavyRate}};
  heavy_opt.pacing = RateSource::Pacing::kPoisson;
  heavy_opt.stamp_emit_offset = true;
  heavy_opt.stamp_epoch = epoch;
  heavy_opt.seed = 200;
  RateSource heavy_driver(heavy_src, heavy_opt,
                          RateSource::UniformInt(0, 999));
  cheap_driver.Start();
  heavy_driver.Start();
  cheap_driver.Join();
  heavy_driver.Join();
  engine.WaitUntilFinished();

  LatencyRun run;
  run.cheap = cheap_sink->TakeHistogram();
  run.heavy = heavy_sink->TakeHistogram();
  return run;
}

int Main() {
  std::cout << "=== End-to-end latency: cheap branch next to a 5 ms "
               "operator ===\ncheap: " << kCheapCount << " elements at "
            << kCheapRate << "/s; heavy: " << kHeavyCount
            << " elements at " << kHeavyRate
            << "/s; latencies in microseconds\n\n";
  Table t({"config", "cheap_p50", "cheap_p95", "cheap_p99", "cheap_max",
           "heavy_p50", "heavy_p95"});
  const struct {
    const char* name;
    ExecutionMode mode;
    StrategyKind strategy;
    int max_running;
  } configs[] = {
      {"gts-fifo", ExecutionMode::kGts, StrategyKind::kFifo, 0},
      {"gts-chain", ExecutionMode::kGts, StrategyKind::kChain, 0},
      {"ots", ExecutionMode::kOts, StrategyKind::kFifo, 0},
      // One TS slot: partitions take strict turns (the level-3 arbiter's
      // cost on a single CPU)...
      {"hmts-1slot", ExecutionMode::kHmts, StrategyKind::kFifo, 1},
      // ...two slots: both partition threads runnable, the OS interleaves
      // them like OTS (and a multicore would run them in parallel).
      {"hmts-2slot", ExecutionMode::kHmts, StrategyKind::kFifo, 2},
  };
  for (const auto& config : configs) {
    LatencyRun run =
        RunConfig(config.mode, config.strategy, config.max_running);
    t.AddRow({config.name, Table::Num(run.cheap.Percentile(0.5), 0),
              Table::Num(run.cheap.Percentile(0.95), 0),
              Table::Num(run.cheap.Percentile(0.99), 0),
              Table::Num(run.cheap.max(), 0),
              Table::Num(run.heavy.Percentile(0.5), 0),
              Table::Num(run.heavy.Percentile(0.95), 0)});
    std::cout << config.name << " done\n";
  }
  std::cout << "\n";
  t.Print(std::cout);
  std::cout << "\nGTS inherits the heavy operator's 5 ms stalls into the "
               "cheap branch's tail; OTS/HMTS keep the branches in "
               "separate threads.\n";
  return 0;
}

}  // namespace
}  // namespace flexstream

int main() { return flexstream::Main(); }

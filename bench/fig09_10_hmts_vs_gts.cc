// Figures 9 & 10 — "HMTS vs GTS (Memory size)" and "(results)".
//
// Paper setup (Section 6.6): a 3-operator query — projection (2.7 us),
// selection (sel 9e-4, 530 ns), selection (sel 0.3, ~2 s: "complex
// predicate evaluation") — over a bursty source: elements 1..10,000 and
// 30,001..50,000 at ~500k/s (sub-second bursts), the rest at 250/s (80 s
// each). GTS decouples every operator and schedules with FIFO or Chain in
// one thread; HMTS decouples twice (after the source and before the
// expensive selection) and uses two threads.
//
// Scaling (DESIGN.md): counts / expensive cost divided by 100 — bursts of
// 100 elements, slow phases of 200 elements at 250/s (0.8 s each),
// expensive selection 20 ms/element; the first selection's selectivity is
// raised so the expensive operator still receives enough work to backlog
// through the bursts (the paper's own numbers imply ~50 expensive
// elements over the run). Expected shapes: all curves start at the burst
// size (100 here, 10,000 in the paper); HMTS queue memory is at or below
// Chain's, which is below FIFO's early on; HMTS produces results earliest.
// NOTE: the paper's HMTS also *finishes* ~100 s earlier thanks to its
// dual-core host; on this single-vCPU host every work-conserving schedule
// has the same makespan, so completion times nearly coincide — the memory
// and early-result shapes remain (see EXPERIMENTS.md).

#include <iostream>
#include <thread>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "core/hmts.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

constexpr double kProjCost = 2.7;           // us (paper value)
constexpr double kSel1Cost = 0.53;          // us (paper value)
constexpr double kSel2Cost = 20'000.0;      // us (paper: 2 s, scaled /100)
constexpr int64_t kDomain = 10'000'000;
// Paper: 9e-4. Raised to 8e-3 so the expensive selection's total work
// (16,000 x 8e-3 x 20 ms ~ 2.6 s) exceeds the 1.6 s emission time, i.e.
// the same work-vs-emission ratio the paper's run exhibits (its GTS needs
// 100 s beyond the 160 s emission).
constexpr int64_t kSel1Threshold = 80'000;
constexpr double kSampleSeconds = 0.05;

std::vector<Phase> PaperPhases() {
  // Bursts at paper scale (10,000 elements, emitted unpaced ~ "500k/s,
  // significantly less than a second"); slow phases compressed 100x in
  // duration (2,000 elements at 2,500/s = 0.8 s instead of 20,000 at
  // 250/s = 80 s).
  if (bench::SmokeMode()) {
    // Same burst/slow shape at 1/5 scale.
    return {{2'000, 0.0}, {400, 2'500.0}, {400, 0.0}, {400, 2'500.0}};
  }
  return {{10'000, 0.0}, {2'000, 2'500.0}, {2'000, 0.0}, {2'000, 2'500.0}};
}

Selection::Predicate Sel2Predicate() {
  // Selectivity 0.3 on uniform values.
  return [](const Tuple& t) { return t.IntAt(0) % 10 < 3; };
}

struct Series {
  std::vector<size_t> memory;      // queued elements per sample
  std::vector<int64_t> results;    // cumulative results per sample
  double completion_seconds = 0.0;
  int64_t final_results = 0;
};

struct GraphParts {
  QueryGraph graph;
  Source* src = nullptr;
  Projection* proj = nullptr;
  Selection* sel1 = nullptr;
  Selection* sel2 = nullptr;
  CountingSink* sink = nullptr;

  GraphParts() {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    proj = qb.Project(src, "proj", {}, kProjCost);
    sel1 = qb.Select(proj, "sel1",
                     Selection::IntAttrLessThan(kSel1Threshold), kSel1Cost);
    sel2 = qb.Select(sel1, "sel2", Sel2Predicate(), kSel2Cost);
    sink = qb.CountSink(sel2, "sink");
  }
};

template <typename QueuedFn, typename DoneFn>
Series Sample(GraphParts* parts, QueuedFn queued, DoneFn done) {
  Series series;
  RateSource::Options ropt;
  ropt.phases = PaperPhases();
  ropt.seed = 7;
  RateSource driver(parts->src, ropt,
                    RateSource::UniformInt(1, kDomain));
  Stopwatch sw;
  driver.Start();
  while (true) {
    series.memory.push_back(queued());
    series.results.push_back(parts->sink->count());
    if (done()) break;
    std::this_thread::sleep_for(FromSecondsD(kSampleSeconds));
  }
  series.completion_seconds = sw.ElapsedSeconds();
  driver.Join();
  series.final_results = parts->sink->count();
  return series;
}

Series RunGts(StrategyKind strategy) {
  GraphParts parts;
  StreamEngine engine(&parts.graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  opt.strategy = strategy;
  opt.partition.batch_size = 1;  // per-element decisions, as in the paper
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());
  Series s = Sample(
      &parts, [&] { return engine.QueuedElements(); },
      [&] { return parts.sink->closed(); });
  engine.WaitUntilFinished();
  return s;
}

Series RunHmts() {
  // Manual placement exactly as in the paper: decoupled after the source
  // and between the selections; two level-2 partitions under the TS.
  GraphParts parts;
  QueueOp* q0 = parts.graph.Add<QueueOp>("q0");
  QueueOp* q1 = parts.graph.Add<QueueOp>("q1");
  CHECK_OK(parts.graph.InsertBetween(parts.src, q0, parts.proj));
  CHECK_OK(parts.graph.InsertBetween(parts.sel1, q1, parts.sel2));
  Partition::Options popt;
  popt.batch_size = 1;
  std::vector<HmtsExecutor::PartitionSpec> specs(2);
  specs[0].name = "cheap";
  specs[0].queues = {q0};
  specs[0].strategy = StrategyKind::kFifo;
  specs[0].priority = 1.0;  // cheap chain preferred, like Chain's envelope
  specs[1].name = "expensive";
  specs[1].queues = {q1};
  specs[1].strategy = StrategyKind::kFifo;
  specs[1].priority = 0.0;
  // The paper's HMTS setting "used two threads"; both may be runnable at
  // once (on the paper's dual-core they ran in parallel, on one vCPU the
  // OS timeslices them).
  ThreadScheduler::Options ts_options;
  ts_options.max_running = 2;
  HmtsExecutor executor(std::move(specs), ts_options, popt);
  executor.Start();
  Series s = Sample(
      &parts, [&] { return q0->Size() + q1->Size(); },
      [&] { return parts.sink->closed(); });
  executor.RequestStop();
  executor.Join();
  return s;
}

int Main() {
  std::cout << "=== Figures 9 & 10: HMTS vs GTS (FIFO, Chain) ===\n"
            << "bursty 3-operator query, expensive selection 20 ms/element "
               "(paper: 2 s; all counts and costs scaled /100)\n"
            << "sampled every " << kSampleSeconds << " s\n\n";
  Series fifo = RunGts(StrategyKind::kFifo);
  std::cout << "gts-fifo done in " << Table::Num(fifo.completion_seconds, 2)
            << " s\n";
  Series chain = RunGts(StrategyKind::kChain);
  std::cout << "gts-chain done in "
            << Table::Num(chain.completion_seconds, 2) << " s\n";
  Series hmts = RunHmts();
  std::cout << "hmts done in " << Table::Num(hmts.completion_seconds, 2)
            << " s\n\n";

  const size_t rows = std::max({fifo.memory.size(), chain.memory.size(),
                                hmts.memory.size()});
  auto mem_at = [](const Series& s, size_t i) {
    return i < s.memory.size() ? Table::Int(
                                     static_cast<int64_t>(s.memory[i]))
                               : std::string("-");
  };
  auto res_at = [](const Series& s, size_t i) {
    return i < s.results.size() ? Table::Int(s.results[i])
                                : std::string("-");
  };
  Table mem({"t_s", "fifo_mem", "chain_mem", "hmts_mem"});
  Table res({"t_s", "fifo_results", "chain_results", "hmts_results"});
  for (size_t i = 0; i < rows; ++i) {
    const std::string t = Table::Num(static_cast<double>(i) * kSampleSeconds, 2);
    mem.AddRow({t, mem_at(fifo, i), mem_at(chain, i), mem_at(hmts, i)});
    res.AddRow({t, res_at(fifo, i), res_at(chain, i), res_at(hmts, i)});
  }
  std::cout << "-- Figure 9: queued elements over time --\n";
  mem.Print(std::cout);
  std::cout << "\n-- Figure 10: cumulative results over time --\n";
  res.Print(std::cout);

  Table summary({"config", "completion_s", "results", "peak_mem",
                 "first_result_s"});
  auto first_result_time = [](const Series& s) {
    for (size_t i = 0; i < s.results.size(); ++i) {
      if (s.results[i] > 0) {
        return Table::Num(static_cast<double>(i) * kSampleSeconds, 2);
      }
    }
    return std::string("-");
  };
  auto peak = [](const Series& s) {
    size_t p = 0;
    for (size_t m : s.memory) p = std::max(p, m);
    return Table::Int(static_cast<int64_t>(p));
  };
  summary.AddRow({"gts-fifo", Table::Num(fifo.completion_seconds, 2),
                  Table::Int(fifo.final_results), peak(fifo),
                  first_result_time(fifo)});
  summary.AddRow({"gts-chain", Table::Num(chain.completion_seconds, 2),
                  Table::Int(chain.final_results), peak(chain),
                  first_result_time(chain)});
  summary.AddRow({"hmts", Table::Num(hmts.completion_seconds, 2),
                  Table::Int(hmts.final_results), peak(hmts),
                  first_result_time(hmts)});
  std::cout << "\n-- summary --\n";
  summary.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main() { return flexstream::Main(); }

// Figure 8 — "Varying the number of queries" (scalability of OTS vs DI).
//
// Paper setup (Section 6.5): the Figure 7 query replicated q times,
// q from 1 to 200, with 100,000 elements. Expected shape: the DI
// advantage over OTS grows with the number of queries — "the more queries
// are running, the better is DI"; OTS works only while the number of
// operators (and threads) stays moderate.
//
// Scaling: element count reduced to 30,000 so the q=200 configuration
// (1000 operators, 1001 queues/threads under OTS) completes in seconds on
// one vCPU; the per-element work is identical across modes, so the ratio
// trend is preserved.

#include <iostream>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

constexpr int64_t kDomain = 100'000;

struct Fixture {
  QueryGraph graph;
  Source* src = nullptr;
  std::vector<CountingSink*> sinks;

  explicit Fixture(int queries) {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    for (int q = 0; q < queries; ++q) {
      Node* prev = src;
      for (int i = 0; i < 5; ++i) {
        const int64_t threshold =
            kDomain - 200 * static_cast<int64_t>(i + 1);
        prev = qb.Select(prev,
                         "q" + std::to_string(q) + "s" + std::to_string(i),
                         Selection::IntAttrLessThan(threshold));
      }
      sinks.push_back(
          qb.CountSink(prev, "sink" + std::to_string(q)));
    }
  }
};

double RunOnce(ExecutionMode mode, int queries, int64_t m) {
  Fixture fx(queries);
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = mode;
  opt.strategy = StrategyKind::kFifo;
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());
  RateSource::Options ropt;
  ropt.phases = {{m, 0.0}};  // unpaced: measure pure processing throughput
  ropt.seed = 99;
  RateSource driver(fx.src, ropt, RateSource::UniformInt(0, kDomain - 1));
  Stopwatch sw;
  driver.Run();
  engine.WaitUntilFinished();
  return sw.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  const bool quick = bench::SmokeMode() ||
                     (argc > 1 && std::string(argv[1]) == "--quick");
  std::cout << "=== Figure 8: DI vs OTS, varying the number of queries ==="
            << "\n5-selection query replicated q times over one source; "
               "30,000 elements (paper: 100,000)\n\n";
  SetStatsCollectionEnabled(false);
  const int64_t m = quick ? 10'000 : 30'000;
  std::vector<int> query_counts =
      quick ? std::vector<int>{1, 10} : std::vector<int>{1, 5, 10, 25, 50,
                                                         100, 200};
  Table t({"queries", "operators", "di_s", "ots_s", "ots/di"});
  for (int q : query_counts) {
    const double di = RunOnce(ExecutionMode::kDirect, q, m);
    const double ots = RunOnce(ExecutionMode::kOts, q, m);
    t.AddRow({Table::Int(q), Table::Int(q * 5), Table::Num(di, 3),
              Table::Num(ots, 3), Table::Num(ots / di, 2)});
    std::cout << "q=" << q << " done\n";
  }
  std::cout << "\n";
  t.Print(std::cout);
  SetStatsCollectionEnabled(true);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) { return flexstream::Main(argc, argv); }

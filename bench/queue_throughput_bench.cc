// Cross-thread queue throughput: the batched SPSC/MPSC QueueOp paths
// against the seed's mutex-per-tuple queue.
//
// Scenarios (small = single int attribute, string = 32-char payload):
//   legacy_1p / legacy_4p : in-bench replica of the seed QueueOp hot path —
//       per-tuple lock on enqueue AND drain, std::function listener copied
//       under the lock, one notification per tuple.
//   spsc_1p               : QueueOp with SetSingleProducer(true) — lock-free
//       ring enqueue, batched drain, coalesced wakeups.
//   mpsc_4p               : QueueOp MPSC fallback — per-tuple lock enqueue
//       but batched drain and coalesced wakeups.
//
// Both sides get the same NotifyWork-shaped listener (mutex + flag +
// condition variable) so the wakeup cost is represented honestly. Input
// tuples are materialized before the clock starts: tuple construction is
// workload, not transfer, and keeping it off the clock isolates what the
// two paths actually do differently — the legacy path copies each tuple
// into its deque under the lock (the seed's Emit/Receive contract is
// const&), the new path adopts it by move through Receive(Tuple&&).
// Results go to stdout and to BENCH_queue.json (override with
// --out <path>).

#include <atomic>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "tuple/tuple.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/table.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

/// Replica of the seed QueueOp transfer path (see git history of
/// src/queue/queue_op.cc): one mutex acquisition and one listener
/// invocation per enqueued tuple, and one mutex acquisition per drained
/// tuple. Kept in the bench so the comparison target stays fixed while the
/// real QueueOp evolves.
class LegacyQueue {
 public:
  void SetEnqueueListener(std::function<void()> listener) {
    std::lock_guard<std::mutex> lock(mutex_);
    listener_ = std::move(listener);
  }

  void Receive(const Tuple& tuple) {
    std::function<void()> listener;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      listener = listener_;  // seed behavior: copied under the lock
      items_.push_back(
          {tuple, seq_.fetch_add(1, std::memory_order_relaxed)});
    }
    if (listener) listener();
  }

  /// Seed behavior: the EOS enqueue also notified the listener.
  void Close() {
    std::function<void()> listener;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      listener = listener_;
      closed_.store(true, std::memory_order_release);
    }
    if (listener) listener();
  }

  /// Per-tuple lock, exactly like the seed DrainBatch loop; emits into the
  /// same downstream operator machinery as the real QueueOp so the
  /// consumer-side work is identical across scenarios.
  size_t DrainBatch(size_t max_elements, Operator* downstream) {
    size_t drained = 0;
    while (drained < max_elements) {
      Tuple tuple;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty()) break;
        tuple = std::move(items_.front().tuple);
        items_.pop_front();
      }
      ++drained;
      downstream->Receive(tuple, 0);  // seed Emit: const& per hop
    }
    return drained;
  }

  bool Exhausted() {
    if (!closed_.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

 private:
  struct Item {
    Tuple tuple;
    uint64_t seq;
  };

  mutable std::mutex mutex_;
  std::deque<Item> items_;
  std::function<void()> listener_;
  std::atomic<uint64_t> seq_{0};  // seed: global arrival counter per tuple
  std::atomic<bool> closed_{false};
};

/// The Partition::NotifyWork shape: both queue flavors get this exact
/// listener so notification cost is measured, not assumed away.
struct WakeTarget {
  std::mutex mutex;
  std::condition_variable cv;
  bool work = false;
  int64_t wakeups = 0;

  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      work = true;
      ++wakeups;
    }
    cv.notify_one();
  }

  /// The Partition::RunLoop wait: sleep until notified (or the 100 ms
  /// idle-poll failsafe), then clear the flag and go drain.
  void AwaitWork() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::milliseconds(100),
                [this] { return work; });
    work = false;
  }

  bool TryConsumeWork() {
    std::lock_guard<std::mutex> lock(mutex);
    if (!work) return false;
    work = false;
    return true;
  }

  /// Yield a bounded number of times waiting for work before actually
  /// sleeping. Identical for both queue flavors; on a single-core box an
  /// immediate sleep per empty drain causes a wake/preempt storm that
  /// measures the OS scheduler instead of the queue.
  void LingerThenAwait() {
    for (int spin = 0; spin < 64; ++spin) {
      if (TryConsumeWork()) return;
      std::this_thread::yield();
    }
    AwaitWork();
  }
};

Tuple MakeTuple(bool string_payload, int64_t i) {
  if (string_payload) {
    return Tuple({Value(i), Value(std::string("payload-0123456789abcdef-") +
                                  std::to_string(i % 97))},
                 i);
  }
  return Tuple::OfInt(i, i);
}

/// One input vector per producer, built before the stopwatch starts so
/// tuple construction stays off the clock for both queue flavors.
std::vector<std::vector<Tuple>> MakeInputs(int producers, int64_t total,
                                           bool string_payload) {
  const int64_t per_producer = total / producers;
  std::vector<std::vector<Tuple>> inputs(producers);
  for (int p = 0; p < producers; ++p) {
    inputs[p].reserve(per_producer);
    for (int64_t i = 0; i < per_producer; ++i) {
      inputs[p].push_back(MakeTuple(string_payload, p * per_producer + i));
    }
  }
  return inputs;
}

struct RunResult {
  std::string scenario;
  int producers = 1;
  std::string payload;
  int64_t tuples = 0;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
  int64_t wakeups = 0;
  int64_t ring_pushes = 0;
  int64_t locked_pushes = 0;
};

RunResult RunLegacy(int producers, bool string_payload, int64_t total) {
  // Same downstream as RunQueueOp: a real CountingSink fed through the
  // operator Receive path, so only the queue transfer differs.
  QueryGraph graph;
  Source* src = graph.Add<Source>("src");
  CountingSink* sink = graph.Add<CountingSink>("sink");
  CHECK_OK(graph.Connect(src, sink));

  LegacyQueue q;
  WakeTarget wake;
  q.SetEnqueueListener([&wake] { wake.Notify(); });

  const int64_t per_producer = total / producers;
  std::vector<std::vector<Tuple>> inputs =
      MakeInputs(producers, total, string_payload);
  std::atomic<int> open_producers{producers};
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (Tuple& tuple : inputs[p]) {
        q.Receive(tuple);  // seed contract: const&, copied into the deque
      }
      if (open_producers.fetch_sub(1) == 1) q.Close();
    });
  }
  int64_t drained = 0;
  while (!q.Exhausted()) {
    wake.LingerThenAwait();
    while (size_t n = q.DrainBatch(1024, sink)) {
      drained += static_cast<int64_t>(n);
    }
  }
  for (auto& t : threads) t.join();
  const double seconds = sw.ElapsedSeconds();
  CHECK(drained == producers * per_producer);
  CHECK(sink->count() == producers * per_producer);

  RunResult r;
  r.scenario = "legacy_" + std::to_string(producers) + "p";
  r.producers = producers;
  r.payload = string_payload ? "string" : "small";
  r.tuples = producers * per_producer;
  r.seconds = seconds;
  r.tuples_per_sec = static_cast<double>(r.tuples) / seconds;
  r.wakeups = wake.wakeups;
  return r;
}

RunResult RunQueueOp(int producers, bool string_payload, int64_t total) {
  QueryGraph graph;
  // The source exists to give the queue fan_in producers; the bench pushes
  // into the queue directly so only the transfer path is on the clock.
  // Ring sized for the full offered load: on this box the producer can
  // outrun the consumer by an entire scheduler quantum, and a smaller ring
  // would shunt much of the run through the spillover mutex — measuring the
  // spill path, not the fast path. Spillover correctness has its own
  // coverage in queue_spsc_stress_test; the production default of 1024 is
  // tuned for pipelines where operators drain continuously.
  std::vector<Source*> sources;
  QueueOp* q = graph.Add<QueueOp>(
      "q", /*ring_capacity=*/static_cast<size_t>(total));
  CountingSink* sink = graph.Add<CountingSink>("sink");
  for (int p = 0; p < producers; ++p) {
    Source* src = graph.Add<Source>("src" + std::to_string(p));
    CHECK_OK(graph.Connect(src, q));
    sources.push_back(src);
  }
  CHECK_OK(graph.Connect(q, sink));
  q->SetSingleProducer(producers == 1);

  WakeTarget wake;
  q->SetEnqueueListener([&wake] { wake.Notify(); });

  const int64_t per_producer = total / producers;
  std::vector<std::vector<Tuple>> inputs =
      MakeInputs(producers, total, string_payload);
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (Tuple& tuple : inputs[p]) {
        q->Receive(std::move(tuple), 0);  // move-aware enqueue, no copy
      }
      q->Receive(Tuple::EndOfStream(per_producer), 0);
    });
  }
  int64_t drained = 0;
  while (!q->Exhausted()) {
    wake.LingerThenAwait();
    while (size_t n = q->DrainBatch(1024)) {
      drained += static_cast<int64_t>(n);
    }
  }
  for (auto& t : threads) t.join();
  const double seconds = sw.ElapsedSeconds();
  CHECK(drained == producers * per_producer);
  CHECK(sink->count() == producers * per_producer);

  RunResult r;
  r.scenario =
      (producers == 1 ? "spsc_" : "mpsc_") + std::to_string(producers) + "p";
  r.producers = producers;
  r.payload = string_payload ? "string" : "small";
  r.tuples = producers * per_producer;
  r.seconds = seconds;
  r.tuples_per_sec = static_cast<double>(r.tuples) / seconds;
  r.wakeups = wake.wakeups;
  r.ring_pushes = q->ring_pushes();
  r.locked_pushes = q->locked_pushes();
  return r;
}

void WriteJson(const std::vector<RunResult>& results,
               const std::vector<std::pair<std::string, double>>& speedups,
               const std::string& path) {
  std::ofstream out(path);
  CHECK(out.good()) << "cannot write " << path;
  out << "{\n  \"bench\": \"queue_throughput\",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"producers\": "
        << r.producers << ", \"payload\": \"" << r.payload
        << "\", \"tuples\": " << r.tuples << ", \"seconds\": " << r.seconds
        << ", \"tuples_per_sec\": " << static_cast<int64_t>(r.tuples_per_sec)
        << ", \"wakeups\": " << r.wakeups
        << ", \"ring_pushes\": " << r.ring_pushes
        << ", \"locked_pushes\": " << r.locked_pushes << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedups\": {\n";
  for (size_t i = 0; i < speedups.size(); ++i) {
    out << "    \"" << speedups[i].first << "\": "
        << Table::Num(speedups[i].second, 2)
        << (i + 1 < speedups.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::cout << "wrote " << path << "\n";
}

int Main(int argc, char** argv) {
  int64_t small_count = bench::SmokeScaled<int64_t>(2'000'000, 200'000);
  int64_t string_count = bench::SmokeScaled<int64_t>(500'000, 50'000);
  int reps = bench::SmokeScaled(5, 1);
  std::string out_path = "BENCH_queue.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      small_count /= 10;
      string_count /= 10;
      reps = 1;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--quick] [--out <path>]\n";
      return 1;
    }
  }

  // Both paths honor the same global, so this is symmetric: the bench
  // measures the transfer itself, not the per-tuple stats clock reads.
  SetStatsCollectionEnabled(false);

  // Best-of-N per scenario, with the legacy and new runs of a pair
  // interleaved rep by rep: the box this runs on is a shared single-core
  // VM whose background load drifts on a seconds-to-minutes scale, so
  // adjacent runs see comparable noise and the max over repetitions is the
  // least noisy estimator of the achievable rate for both sides.
  std::vector<RunResult> results;
  auto best_pair = [&](auto&& run_legacy, auto&& run_new) {
    RunResult best_legacy = run_legacy();
    RunResult best_new = run_new();
    for (int r = 1; r < reps; ++r) {
      RunResult next_legacy = run_legacy();
      if (next_legacy.tuples_per_sec > best_legacy.tuples_per_sec) {
        best_legacy = next_legacy;
      }
      RunResult next_new = run_new();
      if (next_new.tuples_per_sec > best_new.tuples_per_sec) {
        best_new = next_new;
      }
    }
    results.push_back(best_legacy);
    results.push_back(best_new);
  };

  for (const bool string_payload : {false, true}) {
    const int64_t total = string_payload ? string_count : small_count;
    best_pair([&] { return RunLegacy(1, string_payload, total); },
              [&] { return RunQueueOp(1, string_payload, total); });
    best_pair([&] { return RunLegacy(4, string_payload, total); },
              [&] { return RunQueueOp(4, string_payload, total); });
  }

  Table t({"scenario", "payload", "producers", "tuples", "wall_s",
           "tuples_per_sec", "wakeups", "ring_pushes", "locked_pushes"});
  for (const RunResult& r : results) {
    t.AddRow({r.scenario, r.payload, Table::Int(r.producers),
              Table::Int(r.tuples), Table::Num(r.seconds, 3),
              Table::Int(static_cast<int64_t>(r.tuples_per_sec)),
              Table::Int(r.wakeups), Table::Int(r.ring_pushes),
              Table::Int(r.locked_pushes)});
  }
  t.Print(std::cout);

  auto rate_of = [&](const std::string& scenario,
                     const std::string& payload) {
    for (const RunResult& r : results) {
      if (r.scenario == scenario && r.payload == payload) {
        return r.tuples_per_sec;
      }
    }
    CHECK(false) << "missing scenario " << scenario;
    return 0.0;
  };
  std::vector<std::pair<std::string, double>> speedups = {
      {"spsc_vs_legacy_1p_small",
       rate_of("spsc_1p", "small") / rate_of("legacy_1p", "small")},
      {"spsc_vs_legacy_1p_string",
       rate_of("spsc_1p", "string") / rate_of("legacy_1p", "string")},
      {"mpsc_vs_legacy_4p_small",
       rate_of("mpsc_4p", "small") / rate_of("legacy_4p", "small")},
      {"mpsc_vs_legacy_4p_string",
       rate_of("mpsc_4p", "string") / rate_of("legacy_4p", "string")},
  };
  std::cout << "\n-- speedups (new path / legacy path) --\n";
  for (const auto& [name, value] : speedups) {
    std::cout << "  " << name << ": " << Table::Num(value, 2) << "x\n";
  }

  WriteJson(results, speedups, out_path);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) { return flexstream::Main(argc, argv); }

// Checkpoint/recovery cost (ISSUE 4): what does arming epoch-based
// checkpointing cost a healthy run, and how long does a kill -> rewind ->
// replay -> resume cycle take?
//
// Scenarios (shared pipeline: src -> select -> sliding-window aggregate ->
// counting sink; the aggregate emits one output per input and its window
// keeps state bounded, so per-epoch snapshot cost reflects steady-state
// operator state, not an artificially unbounded accumulation):
//   checkpoint_off : baseline run, checkpoint_epoch_interval = 0.
//   checkpoint_on  : identical run with epoch barriers every 100 and every
//                    1000 elements (snapshots + replay-buffer recording
//                    on) — the overhead/recovery-granularity trade-off.
//   kill_recover   : checkpointing on, the selection operator is killed
//                    mid-run by the chaos injector; the engine recovers
//                    from the last committed epoch and the run completes.
//
// Reported: median wall time over the reps for the two healthy scenarios
// (overhead_pct = on vs off), and for the kill run the engine's measured
// pause->restore->replay->resume latency plus replay accounting. Results
// go to stdout and BENCH_recovery.json (override with --out <path>).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/aggregate.h"
#include "recovery/recovery_manager.h"
#include "testing/chaos.h"
#include "tuple/tuple.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/table.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

const int64_t kFeedPerSource = bench::SmokeScaled<int64_t>(50'000, 10'000);
constexpr uint64_t kEpochInterval = 100;
const int kReps = bench::SmokeScaled(5, 2);
constexpr auto kWait = std::chrono::seconds(120);

struct Pipeline {
  std::unique_ptr<QueryGraph> graph;
  Source* source = nullptr;
  CountingSink* sink = nullptr;
};

Pipeline BuildPipeline() {
  Pipeline p;
  p.graph = std::make_unique<QueryGraph>();
  QueryBuilder qb(p.graph.get());
  p.source = qb.AddSource("src");
  Selection* sel =
      qb.Select(p.source, "sel", [](const Tuple&) { return true; });
  WindowedAggregate::Options agg;
  agg.kind = AggregateKind::kSum;
  agg.value_attr = 0;
  agg.window_micros = 1'000;  // ~1000 elements of state at 1 us spacing
  p.sink = qb.CountSink(qb.Aggregate(sel, "agg", agg), "sink");
  return p;
}

void Feed(const Pipeline& p) {
  for (int64_t i = 0; i < kFeedPerSource; ++i) {
    p.source->Push(Tuple::OfInt(i % 97, i + 1));
  }
  p.source->Close(kFeedPerSource);
}

struct HealthyResult {
  double seconds = 0.0;
  uint64_t epochs_committed = 0;
};

HealthyResult RunHealthy(uint64_t epoch_interval) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = epoch_interval;
  CHECK_OK(engine.Configure(options));

  Stopwatch sw;
  CHECK_OK(engine.Start());
  Feed(p);
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());
  CHECK(p.sink->count() == kFeedPerSource);

  HealthyResult r;
  r.seconds = seconds;
  if (engine.recovery() != nullptr) {
    r.epochs_committed =
        static_cast<uint64_t>(engine.recovery()->coordinator().epochs_committed());
  }
  return r;
}

struct KillResult {
  double seconds = 0.0;
  int64_t recovery_latency_micros = 0;
  int64_t replayed_elements = 0;
  uint64_t committed_epoch_end_of_run = 0;
};

KillResult RunKill() {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = kEpochInterval;
  CHECK_OK(engine.Configure(options));

  ChaosOptions chaos_options;
  chaos_options.kill_operator = "sel";
  chaos_options.kill_after = kFeedPerSource / 2;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(p.graph.get(), engine.queues());

  Stopwatch sw;
  CHECK_OK(engine.Start());
  Feed(p);
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());
  CHECK(chaos.permanent_injections() == 1);
  CHECK(engine.recovery() != nullptr);
  CHECK(engine.recovery()->completed_recoveries() == 1);
  CHECK(p.sink->count() == kFeedPerSource);

  KillResult r;
  r.seconds = seconds;
  r.recovery_latency_micros = engine.recovery()->last_recovery_latency_micros();
  r.replayed_elements = engine.recovery()->replayed_elements();
  r.committed_epoch_end_of_run = engine.recovery()->coordinator().committed_epoch();
  return r;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  std::string out_path = "BENCH_recovery.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  const std::vector<uint64_t> intervals = {kEpochInterval, 10 * kEpochInterval};
  std::vector<double> off_secs;
  std::vector<std::vector<double>> on_secs(intervals.size());
  std::vector<uint64_t> epochs_committed(intervals.size(), 0);
  for (int rep = 0; rep < kReps; ++rep) {
    off_secs.push_back(RunHealthy(0).seconds);
    for (size_t k = 0; k < intervals.size(); ++k) {
      const HealthyResult on = RunHealthy(intervals[k]);
      on_secs[k].push_back(on.seconds);
      epochs_committed[k] = on.epochs_committed;
    }
  }
  const double off_median = Median(off_secs);
  std::vector<double> on_median(intervals.size());
  std::vector<double> overhead_pct(intervals.size());
  for (size_t k = 0; k < intervals.size(); ++k) {
    on_median[k] = Median(on_secs[k]);
    overhead_pct[k] = 100.0 * (on_median[k] - off_median) / off_median;
  }

  const KillResult kill = RunKill();

  Table table({"scenario", "seconds", "tuples_per_sec", "notes"});
  const double tuples = static_cast<double>(kFeedPerSource);
  table.AddRow({"checkpoint_off", Table::Num(off_median, 4),
                Table::Num(tuples / off_median, 0), "epoch interval 0"});
  for (size_t k = 0; k < intervals.size(); ++k) {
    table.AddRow({"checkpoint_on_" + std::to_string(intervals[k]),
                  Table::Num(on_median[k], 4),
                  Table::Num(tuples / on_median[k], 0),
                  "interval " + std::to_string(intervals[k]) + ", " +
                      std::to_string(epochs_committed[k]) +
                      " epochs committed, overhead " +
                      Table::Num(overhead_pct[k], 1) + "%"});
  }
  table.AddRow({"kill_recover", Table::Num(kill.seconds, 4),
                Table::Num(tuples / kill.seconds, 0),
                "recovery " +
                    std::to_string(kill.recovery_latency_micros) + " us, " +
                    std::to_string(kill.replayed_elements) + " replayed"});
  table.Print(std::cout);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"recovery\",\n"
      << "  \"feed_per_source\": " << kFeedPerSource << ",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"checkpoint_off_seconds\": " << off_median << ",\n"
      << "  \"checkpoint_on\": [\n";
  for (size_t k = 0; k < intervals.size(); ++k) {
    out << "    {\"epoch_interval\": " << intervals[k]
        << ", \"seconds\": " << on_median[k]
        << ", \"overhead_pct\": " << overhead_pct[k]
        << ", \"epochs_committed\": " << epochs_committed[k] << "}"
        << (k + 1 < intervals.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"kill_recover\": {\n"
      << "    \"total_seconds\": " << kill.seconds << ",\n"
      << "    \"recovery_latency_micros\": " << kill.recovery_latency_micros
      << ",\n"
      << "    \"replayed_elements\": " << kill.replayed_elements << ",\n"
      << "    \"committed_epoch_end_of_run\": "
      << kill.committed_epoch_end_of_run << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

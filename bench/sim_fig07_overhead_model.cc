// Figure 7's overhead story, predicted by the simulator's overhead model.
//
// Figure 7 is dominated by bookkeeping, not operator work: five sub-100ns
// selections behind queues whose hops cost ~70-100 ns each (measured by
// bench/micro_benchmarks). Feeding those measured per-hop and per-grant
// overheads into the virtual-time simulator reproduces the figure's
// shape analytically: DI pays one queue hop per element, GTS pays six,
// OTS pays six plus a grant (thread hand-off) per batch — and the
// predicted DI advantage matches the wall-clock bench within tens of
// percent. This closes the loop between the micro-benchmarks and the
// macro experiment.

#include <iostream>

#include "api/query_builder.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/table.h"

namespace flexstream {
namespace {

// Measured on the reference host (bench/micro_benchmarks): a queue hop
// costs ~0.07 us; waking a worker thread costs microseconds.
constexpr double kDequeueOverheadUs = 0.07;
constexpr double kGrantOverheadUs = 3.0;
constexpr double kSelectionCostUs = 0.02;  // ~BM_DI chain per-op cost

struct Fig7Graph {
  QueryGraph graph;
  Source* src;
  std::vector<Node*> selections;
  CountingSink* sink;

  Fig7Graph() {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    Node* prev = src;
    for (int i = 0; i < 5; ++i) {
      Node* sel = qb.Select(prev, "sel" + std::to_string(i),
                            [](const Tuple&) { return true; });
      sel->SetCostMicros(kSelectionCostUs);
      sel->SetSelectivity(0.998 - 0.002 * i);
      selections.push_back(sel);
      prev = sel;
    }
    sink = qb.CountSink(prev, "sink");
    sink->SetCostMicros(0.0);
    sink->SetSelectivity(1.0);
  }
};

int Main() {
  std::cout << "=== Figure 7 predicted by the simulator's overhead model "
               "===\nper-hop overhead " << kDequeueOverheadUs
            << " us, per-grant overhead " << kGrantOverheadUs
            << " us (from bench/micro_benchmarks); unpaced emission\n\n";
  Table t({"m", "di_s", "gts_s", "ots_1cpu_s", "ots_2cpu_s", "ots/di"});
  for (int64_t m : {int64_t{100'000}, int64_t{250'000}, int64_t{500'000},
                    int64_t{1'000'000}}) {
    auto run = [&](int config, int cpus) {
      Fig7Graph g;
      SimOptions opt;
      opt.cpus = cpus;
      opt.strategy = StrategyKind::kFifo;
      opt.sample_interval = 1e9;
      opt.dequeue_overhead_us = kDequeueOverheadUs;
      opt.grant_overhead_us = kGrantOverheadUs;
      std::vector<SimThread> threads;
      switch (config) {
        case 0:
          threads = MakeDirectConfig(g.graph);
          break;
        case 1:
          threads = MakeGtsConfig(g.graph);
          break;
        default:
          threads = MakeOtsConfig(g.graph);
          break;
      }
      auto r = Simulate(g.graph, {{g.src, {{m, 0.0}}}}, threads, opt);
      CHECK(r.ok()) << r.status();
      return r->completion_time;
    };
    const double di = run(0, 1);
    const double gts = run(1, 1);
    const double ots1 = run(2, 1);
    const double ots2 = run(2, 2);
    t.AddRow({Table::Int(m), Table::Num(di, 3), Table::Num(gts, 3),
              Table::Num(ots1, 3), Table::Num(ots2, 3),
              Table::Num(ots1 / di, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nShape: DI < GTS < OTS(1 cpu); a second CPU recovers part "
               "of OTS's overhead — the paper's dual-core observation.\n";
  return 0;
}

}  // namespace
}  // namespace flexstream

int main() { return flexstream::Main(); }

// Columnar kernel microbench (DESIGN.md §17): each hot-path kernel —
// selection, map, projection, grouped tumbling aggregate, and the
// three-operator chain — measured row-wise vs columnar on the same graph,
// same pre-materialized input, same kDirect single-thread engine. The
// only variable is EngineOptions::columnar: sources either bundle rows
// into TupleBatches (row) or scatter them into typed, arena-backed
// ColumnarBatches that the typed kernels consume in place (columnar).
//
// Besides throughput, every run reports *allocations per tuple*: a
// counting global operator new measures heap traffic across the feed
// (kDirect runs the whole chain in the pushing thread, so the delta is
// exactly the hot path's). The columnar claim is as much about allocation
// discipline — no per-tuple Value vectors, strings in a per-batch arena,
// batches recycled through the pool — as about cycles.
//
// Payloads: small = {int64, int64}; string = {int64, 26-byte string}
// (past Value's SSO buffer, so the row path pays a real heap string per
// copy and the columnar path pays an arena append).
//
// Results go to stdout and BENCH_columnar.json (override: --out <path>).

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "bench_smoke.h"
#include "graph/query_graph.h"
#include "operators/map_op.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/tumbling_aggregate.h"
#include "tuple/batch_pool.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/table.h"

namespace {
std::atomic<int64_t> g_heap_allocs{0};
int64_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace

// Counting global allocator: allocations-per-tuple is measured as the
// delta across the timed feed region. GCC's -Wmismatched-new-delete
// fires on the malloc/free implementation under LTO even though
// new/delete are replaced as a matched pair.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flexstream {
namespace {

constexpr size_t kBatch = 64;
constexpr AppTime kWindowMicros = 10'000;

enum class Kernel { kSelection, kMap, kProjection, kAggregate, kChain };

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kSelection: return "selection";
    case Kernel::kMap: return "map";
    case Kernel::kProjection: return "projection";
    case Kernel::kAggregate: return "aggregate";
    case Kernel::kChain: return "chain";
  }
  return "?";
}

struct Pipeline {
  QueryGraph graph;
  Source* src = nullptr;
  CountingSink* sink = nullptr;
};

/// src -> kernel(s) -> counting sink. Every operator is built in its
/// typed-column form, so the row runs exercise the synthesized row
/// wrappers — the exact fallback the engine uses — and the columnar runs
/// exercise the vectorized kernels, with identical answers.
void BuildPipeline(Pipeline* p, Kernel kernel, bool string_payload) {
  QueryBuilder qb(&p->graph);
  p->src = qb.AddSource("src");
  p->src->DeclareOutputSchema(
      string_payload ? MakeSchema({Value::Type::kInt64, Value::Type::kString})
                     : MakeSchema({Value::Type::kInt64, Value::Type::kInt64}));
  Node* tail = p->src;
  const auto select = [&](Node* in, const char* name) {
    return qb.Select(in, name,
                     Int64ColumnPredicate{
                         0, [](int64_t v) { return v % 4 != 0; }});
  };
  const auto map = [&](Node* in, const char* name) {
    return qb.Map(in, name,
                  Int64ColumnMap{0, [](int64_t v) { return v * 31 + 7; }});
  };
  switch (kernel) {
    case Kernel::kSelection:
      tail = select(tail, "sel");
      break;
    case Kernel::kMap:
      tail = map(tail, "map");
      break;
    case Kernel::kProjection:
      // Keeps the int key, drops the payload column.
      tail = qb.Project(tail, "proj", {0});
      break;
    case Kernel::kAggregate: {
      TumblingAggregate::Options agg;
      agg.kind = AggregateKind::kSum;
      agg.value_attr = 0;
      agg.group_attr = 1;
      agg.window_micros = kWindowMicros;
      tail = qb.Tumbling(tail, "agg", agg);
      break;
    }
    case Kernel::kChain:
      tail = qb.Project(map(select(tail, "sel"), "map"), "proj", {0});
      break;
  }
  p->sink = qb.CountSink(tail, "out");
}

std::vector<Tuple> MakeInput(bool string_payload, int64_t total) {
  std::vector<Tuple> input;
  input.reserve(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    if (string_payload) {
      input.push_back(Tuple({Value(i % 997),
                             Value(std::string("payload-") +
                                   std::to_string(i % 97) +
                                   "-0123456789abcdef")},
                            i));
    } else {
      input.push_back(Tuple({Value(i % 997), Value(i % 50)}, i));
    }
  }
  return input;
}

struct RunResult {
  std::string scenario;
  std::string kernel;
  std::string payload;
  bool columnar = false;
  int64_t tuples = 0;
  int64_t sink_count = 0;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
  double allocs_per_tuple = 0.0;
  double pool_hit_rate = 0.0;  // columnar runs only
};

RunResult RunOnce(Kernel kernel, bool string_payload, bool columnar,
                  int64_t total) {
  Pipeline p;
  BuildPipeline(&p, kernel, string_payload);
  std::vector<Tuple> input = MakeInput(string_payload, total);

  StreamEngine engine(&p.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kDirect;
  options.emit_batch_size = kBatch;
  options.columnar = columnar;
  CHECK_OK(engine.Configure(options));
  CHECK_OK(engine.Start());

  columnar::ResetPoolStatsForTest();
  const int64_t allocs_before = HeapAllocs();
  Stopwatch sw;
  for (Tuple& tuple : input) p.src->Push(std::move(tuple));
  p.src->Close(total);
  CHECK(engine.WaitUntilFinishedFor(std::chrono::seconds(300)));
  const double seconds = sw.ElapsedSeconds();
  const int64_t allocs = HeapAllocs() - allocs_before;
  const columnar::PoolStats pool = columnar::GetPoolStats();
  CHECK_OK(engine.RunResult());
  engine.Stop();

  RunResult r;
  r.kernel = KernelName(kernel);
  r.payload = string_payload ? "string" : "small";
  r.columnar = columnar;
  r.scenario = r.kernel + "_" + r.payload + (columnar ? "_col" : "_row");
  r.tuples = total;
  r.sink_count = p.sink->count();
  r.seconds = seconds;
  r.tuples_per_sec = static_cast<double>(total) / seconds;
  r.allocs_per_tuple =
      static_cast<double>(allocs) / static_cast<double>(total);
  r.pool_hit_rate = pool.acquires == 0
                        ? 0.0
                        : static_cast<double>(pool.pool_hits) /
                              static_cast<double>(pool.acquires);
  return r;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  int64_t total = bench::SmokeScaled<int64_t>(400'000, 20'000);
  int reps = bench::SmokeScaled(3, 1);
  std::string out_path = "BENCH_columnar.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      total = 20'000;
      reps = 1;
    } else if (arg == "--count" && i + 1 < argc) {
      total = std::stoll(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--count <n>] [--reps <n>] [--out <path>]\n";
      return 1;
    }
  }

  SetStatsCollectionEnabled(false);

  struct Scenario {
    Kernel kernel;
    bool string_payload;
  };
  // The grouped aggregate runs small-only: its value/group columns are
  // ints and a string column would sit unread beside them.
  const std::vector<Scenario> scenarios = {
      {Kernel::kSelection, false}, {Kernel::kSelection, true},
      {Kernel::kMap, false},       {Kernel::kMap, true},
      {Kernel::kProjection, false}, {Kernel::kProjection, true},
      {Kernel::kAggregate, false},
      {Kernel::kChain, false},     {Kernel::kChain, true},
  };

  // Best-of-N, row/columnar interleaved per rep so drifting background
  // load on a shared box hits both variants alike. Allocation counts are
  // deterministic — taken from the first rep and sanity-checked stable.
  std::vector<RunResult> results;
  for (const Scenario& s : scenarios) {
    RunResult best_row, best_col;
    for (int rep = 0; rep < reps; ++rep) {
      RunResult row = RunOnce(s.kernel, s.string_payload, false, total);
      RunResult col = RunOnce(s.kernel, s.string_payload, true, total);
      if (rep == 0 || row.tuples_per_sec > best_row.tuples_per_sec) {
        best_row = row;
      }
      if (rep == 0 || col.tuples_per_sec > best_col.tuples_per_sec) {
        best_col = col;
      }
    }
    // Same input, same operators: the representation must not change the
    // answer.
    CHECK(best_row.sink_count == best_col.sink_count)
        << best_row.scenario << ": row " << best_row.sink_count
        << " vs columnar " << best_col.sink_count;
    results.push_back(best_row);
    results.push_back(best_col);
  }

  Table t({"scenario", "tuples", "wall_s", "tuples_per_sec",
           "allocs_per_tuple", "pool_hit"});
  for (const RunResult& r : results) {
    t.AddRow({r.scenario, Table::Int(r.tuples), Table::Num(r.seconds, 3),
              Table::Int(static_cast<int64_t>(r.tuples_per_sec)),
              Table::Num(r.allocs_per_tuple, 3),
              r.columnar ? Table::Num(r.pool_hit_rate, 2) : "-"});
  }
  t.Print(std::cout);

  std::vector<std::pair<std::string, double>> ratios;
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const RunResult& row = results[i];
    const RunResult& col = results[i + 1];
    ratios.emplace_back(col.kernel + "_" + col.payload,
                        col.tuples_per_sec / row.tuples_per_sec);
  }
  std::cout << "\n-- columnar / row throughput ratios --\n";
  for (const auto& [name, value] : ratios) {
    std::cout << "  " << name << ": " << Table::Num(value, 2) << "x\n";
  }

  std::ofstream out(out_path);
  CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"bench\": \"columnar\",\n  \"batch\": " << kBatch
      << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"kernel\": \""
        << r.kernel << "\", \"payload\": \"" << r.payload
        << "\", \"columnar\": " << (r.columnar ? 1 : 0)
        << ", \"tuples\": " << r.tuples << ", \"sink_count\": "
        << r.sink_count << ", \"seconds\": " << r.seconds
        << ", \"tuples_per_sec\": "
        << static_cast<int64_t>(r.tuples_per_sec)
        << ", \"allocs_per_tuple\": " << Table::Num(r.allocs_per_tuple, 4)
        << ", \"pool_hit_rate\": " << Table::Num(r.pool_hit_rate, 4) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ratios\": {\n";
  for (size_t i = 0; i < ratios.size(); ++i) {
    out << "    \"" << ratios[i].first << "\": "
        << Table::Num(ratios[i].second, 2)
        << (i + 1 < ratios.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Micro-benchmarks of the core primitives whose relative costs drive the
// paper's macro results: DI call chains vs queue hops, the pull-based
// proxy alternative, strategy selection, and the capacity/envelope math.

#include <benchmark/benchmark.h>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "pull/onc_operator.h"
#include "pull/pull_vo.h"
#include "queue/queue_op.h"
#include "sched/chain_strategy.h"
#include "sched/fifo_strategy.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/spsc_ring.h"

namespace flexstream {
namespace {

Selection::Predicate True() {
  return [](const Tuple&) { return true; };
}

// One element through a DI chain of `n` selections (the VO fast path).
void BM_DirectInteroperabilityChain(benchmark::State& state) {
  SetStatsCollectionEnabled(false);
  const int n = static_cast<int>(state.range(0));
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Node* prev = src;
  for (int i = 0; i < n; ++i) {
    Selection* sel = g.Add<Selection>("s" + std::to_string(i), True());
    CHECK_OK(g.Connect(prev, sel));
    prev = sel;
  }
  CountingSink* sink = g.Add<CountingSink>("sink");
  CHECK_OK(g.Connect(prev, sink));
  const Tuple t = Tuple::OfInt(1, 1);
  for (auto _ : state) {
    src->Push(t);
  }
  state.SetItemsProcessed(state.iterations());
  SetStatsCollectionEnabled(true);
}
BENCHMARK(BM_DirectInteroperabilityChain)->Arg(1)->Arg(5)->Arg(20);

// The same chain with statistics collection on (measures the bookkeeping
// overhead the engine pays when profiling for Chain/placement).
void BM_DiChainWithStats(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Node* prev = src;
  for (int i = 0; i < n; ++i) {
    Selection* sel = g.Add<Selection>("s" + std::to_string(i), True());
    CHECK_OK(g.Connect(prev, sel));
    prev = sel;
  }
  CountingSink* sink = g.Add<CountingSink>("sink");
  CHECK_OK(g.Connect(prev, sink));
  const Tuple t = Tuple::OfInt(1, 1);
  for (auto _ : state) {
    src->Push(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiChainWithStats)->Arg(5);

// One element through a queue hop: enqueue + drain + downstream Receive.
void BM_QueueHop(benchmark::State& state) {
  SetStatsCollectionEnabled(false);
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  QueueOp* q = g.Add<QueueOp>("q");
  CountingSink* sink = g.Add<CountingSink>("sink");
  CHECK_OK(g.Connect(src, q));
  CHECK_OK(g.Connect(q, sink));
  const Tuple t = Tuple::OfInt(1, 1);
  for (auto _ : state) {
    src->Push(t);
    q->DrainBatch(1);
  }
  state.SetItemsProcessed(state.iterations());
  SetStatsCollectionEnabled(true);
}
BENCHMARK(BM_QueueHop);

// Pull-based VO: one element through n selections behind proxies.
void BM_PullChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PullVo vo("vo");
  OncBuffer* buffer = vo.Add<OncBuffer>("buf");
  OncOperator* prev = buffer;
  for (int i = 0; i < n; ++i) {
    OncSelect* sel = vo.Add<OncSelect>(
        "s" + std::to_string(i), prev,
        [](const Tuple&) { return true; });
    CHECK_OK(vo.Link(prev, sel));
    prev = sel;
  }
  prev->Open();
  const Tuple t = Tuple::OfInt(1, 1);
  for (auto _ : state) {
    buffer->Push(t);
    benchmark::DoNotOptimize(prev->Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PullChain)->Arg(1)->Arg(5)->Arg(20);

// Strategy selection cost across k queues.
template <typename StrategyT>
void StrategyNextBench(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  QueryGraph g;
  std::vector<QueueOp*> queues;
  for (int i = 0; i < k; ++i) {
    Source* src = g.Add<Source>("src" + std::to_string(i));
    QueueOp* q = g.Add<QueueOp>("q" + std::to_string(i));
    Selection* sel = g.Add<Selection>("s" + std::to_string(i), True());
    sel->SetCostMicros(1.0 + i);
    sel->SetSelectivity(0.5);
    CountingSink* sink = g.Add<CountingSink>("sink" + std::to_string(i));
    CHECK_OK(g.Connect(src, q));
    CHECK_OK(g.Connect(q, sel));
    CHECK_OK(g.Connect(sel, sink));
    src->Push(Tuple::OfInt(1, 1));
    queues.push_back(q);
  }
  StrategyT strategy;
  strategy.Initialize(queues);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Next(queues));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_FifoNext(benchmark::State& state) {
  StrategyNextBench<FifoStrategy>(state);
}
void BM_ChainNext(benchmark::State& state) {
  StrategyNextBench<ChainStrategy>(state);
}
BENCHMARK(BM_FifoNext)->Arg(4)->Arg(64);
BENCHMARK(BM_ChainNext)->Arg(4)->Arg(64);

// SHJ probe+insert cost at a given window population.
void BM_ShjProcess(benchmark::State& state) {
  SetStatsCollectionEnabled(false);
  const int64_t window_population = state.range(0);
  QueryGraph g;
  Source* left = g.Add<Source>("left");
  Source* right = g.Add<Source>("right");
  SymmetricHashJoin* join =
      g.Add<SymmetricHashJoin>("join", kMicrosPerMinute * 1000);
  CountingSink* sink = g.Add<CountingSink>("sink");
  CHECK_OK(g.Connect(left, join, 0));
  CHECK_OK(g.Connect(right, join, 1));
  CHECK_OK(g.Connect(join, sink));
  Rng rng(3);
  for (int64_t i = 0; i < window_population; ++i) {
    right->Push(Tuple::OfInt(rng.UniformInt(0, 9999), i));
  }
  AppTime ts = window_population;
  for (auto _ : state) {
    left->Push(Tuple::OfInt(rng.UniformInt(0, 99'999), ts++));
  }
  state.SetItemsProcessed(state.iterations());
  SetStatsCollectionEnabled(true);
}
BENCHMARK(BM_ShjProcess)->Arg(1000)->Arg(10'000)->Arg(60'000);

// Lower-envelope computation over an n-operator chain.
void BM_LowerEnvelope(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<double> costs;
  std::vector<double> sels;
  for (int i = 0; i < n; ++i) {
    costs.push_back(rng.UniformDouble(0.1, 100.0));
    sels.push_back(rng.UniformDouble(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeLowerEnvelope(costs, sels));
  }
}
BENCHMARK(BM_LowerEnvelope)->Arg(8)->Arg(64);

// Raw SPSC ring throughput (the lock-free primitive).
void BM_SpscRing(benchmark::State& state) {
  SpscRing<int64_t> ring(1024);
  int64_t v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRing);

// Tuple copy cost (what every queue hop pays per element).
void BM_TupleCopy(benchmark::State& state) {
  const Tuple t({Value(int64_t{1}), Value(2.5)}, 42);
  for (auto _ : state) {
    Tuple copy = t;
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleCopy);

}  // namespace
}  // namespace flexstream

BENCHMARK_MAIN();

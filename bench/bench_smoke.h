// Smoke-mode support for the benchmark suite.
//
// `cmake --build build --target check-bench` runs every bench with
// FLEXSTREAM_BENCH_SMOKE=1 in the environment: each bench shrinks its
// workload to a seconds-scale sanity run so the whole suite doubles as a
// build-tree smoke test (do the benches still build, run, and write their
// JSON artifacts?). Timing numbers from a smoke run are meaningless —
// only full runs feed the README/DESIGN tables.

#ifndef FLEXSTREAM_BENCH_BENCH_SMOKE_H_
#define FLEXSTREAM_BENCH_BENCH_SMOKE_H_

#include <cstdlib>

namespace flexstream {
namespace bench {

/// True when FLEXSTREAM_BENCH_SMOKE is set to anything but "" / "0".
inline bool SmokeMode() {
  const char* env = std::getenv("FLEXSTREAM_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && !(env[0] == '0' && env[1] == '\0');
}

/// Picks the full-size or smoke-size value for a workload constant.
template <typename T>
inline T SmokeScaled(T full, T smoke) {
  return SmokeMode() ? smoke : full;
}

}  // namespace bench
}  // namespace flexstream

#endif  // FLEXSTREAM_BENCH_BENCH_SMOKE_H_

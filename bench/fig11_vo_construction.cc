// Figure 11 — "Differences in negative and positive capacities of three
// algorithms for constructing VOs."
//
// Paper setup (Section 6.7): run the stall-avoiding static queue placement
// (Algorithm 1), the simplified Segment strategy, and Chain-based VO
// merging on random DAGs, varying the number of nodes from 10 to 1000;
// report the average negative and average positive capacity of the
// resulting VOs. Expected shape: all three produce few stalling VOs, but
// Algorithm 1's average negative capacity is clearly the least negative.
//
// This is a pure planning study — nothing is executed — so it runs at
// full paper scale.

#include <iostream>

#include "graph/random_dag.h"
#include "placement/chain_vo_builder.h"
#include "placement/evaluator.h"
#include "placement/segment_vo_builder.h"
#include "placement/static_queue_placement.h"
#include "util/table.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

struct Accumulated {
  double neg_sum = 0.0;
  double pos_sum = 0.0;
  double vo_count = 0.0;
  double neg_vo_count = 0.0;
  int samples = 0;

  void Add(const CapacityReport& report) {
    neg_sum += report.avg_negative_capacity;
    pos_sum += report.avg_positive_capacity;
    vo_count += static_cast<double>(report.group_count);
    neg_vo_count += static_cast<double>(report.negative_count);
    ++samples;
  }
  double AvgNeg() const { return samples ? neg_sum / samples : 0.0; }
  double AvgPos() const { return samples ? pos_sum / samples : 0.0; }
  double AvgVos() const { return samples ? vo_count / samples : 0.0; }
  double AvgNegVos() const {
    return samples ? neg_vo_count / samples : 0.0;
  }
};

int Main() {
  std::cout << "=== Figure 11: capacities of VOs built by three "
               "construction algorithms ===\n"
            << "random DAGs, 20 per size; capacities in microseconds "
               "(cap(P) = d(P) - c(P))\n\n";
  const int kSizes[] = {10, 20, 50, 100, 200, 500, 1000};
  const int kTrialsPerSize = bench::SmokeScaled(20, 3);
  Rng rng(20070415);

  Table neg({"nodes", "alg1_avg_neg_cap", "segment_avg_neg_cap",
             "chain_avg_neg_cap"});
  Table pos({"nodes", "alg1_avg_pos_cap", "segment_avg_pos_cap",
             "chain_avg_pos_cap"});
  Table vos({"nodes", "alg1_vos", "segment_vos", "chain_vos",
             "alg1_neg_vos", "segment_neg_vos", "chain_neg_vos"});

  for (int nodes : kSizes) {
    Accumulated alg1;
    Accumulated segment;
    Accumulated chain;
    for (int trial = 0; trial < kTrialsPerSize; ++trial) {
      RandomDagOptions opt;
      opt.node_count = nodes;
      opt.source_count = std::max(1, nodes / 20);
      // Most operators can keep pace alone (cap(v) >= 0); stalling VOs
      // then arise mainly from *merging* operators whose combined load
      // exceeds the input rate — the regime in which the three
      // construction algorithms differ (Section 6.7).
      opt.min_source_rate = 20.0;
      opt.max_source_rate = 500.0;
      opt.min_cost_micros = 1.0;
      opt.max_cost_micros = 1500.0;
      auto graph = GenerateRandomDag(opt, &rng);
      alg1.Add(EvaluateCapacities(StaticQueuePlacement(*graph)));
      segment.Add(EvaluateCapacities(SegmentVoPlacement(*graph)));
      chain.Add(EvaluateCapacities(ChainVoPlacement(*graph)));
    }
    neg.AddRow({Table::Int(nodes), Table::Num(alg1.AvgNeg(), 1),
                Table::Num(segment.AvgNeg(), 1),
                Table::Num(chain.AvgNeg(), 1)});
    pos.AddRow({Table::Int(nodes), Table::Num(alg1.AvgPos(), 1),
                Table::Num(segment.AvgPos(), 1),
                Table::Num(chain.AvgPos(), 1)});
    vos.AddRow({Table::Int(nodes), Table::Num(alg1.AvgVos(), 1),
                Table::Num(segment.AvgVos(), 1),
                Table::Num(chain.AvgVos(), 1),
                Table::Num(alg1.AvgNegVos(), 1),
                Table::Num(segment.AvgNegVos(), 1),
                Table::Num(chain.AvgNegVos(), 1)});
  }
  std::cout << "-- average negative capacity per VO (paper: Algorithm 1 "
               "clearly least negative) --\n";
  neg.Print(std::cout);
  std::cout << "\n-- average positive capacity per VO --\n";
  pos.Print(std::cout);
  std::cout << "\n-- average number of VOs / stalling VOs --\n";
  vos.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main() { return flexstream::Main(); }

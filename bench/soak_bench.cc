// The "Black Friday" soak — a production-shaped endurance run
// (ROADMAP item 5, DESIGN.md §14).
//
// One NEXMark hot-items pipeline (Zipf-keyed bids -> tumbling per-auction
// counts -> collecting sink) is driven through a multi-phase arrival
// schedule: warmup, a 4x flash-sale burst, a lull, a second burst, and a
// cooldown. The engine runs with everything at once that production would
// have on: epoch checkpointing, bounded kBlock queues, and — in the kill
// run — a fault hook that crashes the aggregate in the middle of *each*
// burst (two kills, two recoveries, thresholds set per burst rather than
// ChaosInjector's single kill_after, whose delivery counter would fire the
// second kill immediately after the first recovery).
//
// Asserted, not just reported:
//   * both kills actually happened and both recoveries completed;
//   * the kill run's result multiset is byte-identical to an undisturbed
//     reference run (checkpoint restore + replay + sink truncation = the
//     exactly-once story of DESIGN.md §10, held under burst pressure);
//   * bounded queues dropped nothing (kBlock, so identity is even possible).
//
// Reported: per-phase end-to-end latency percentiles (p50/p95/p99/p999)
// from the kill run — replayed elements are measured against wall-clock
// now, so the recovery outage is *in* the burst phases' tails, which is
// the honest number — plus recovery latency/replay accounting. Results go
// to stdout and BENCH_soak.json (override with --out <path>).
//
// `cmake --build build --target check-soak` runs this smoke-scaled; the
// full schedule (~35 s of wall time) needs a plain `./bench/soak_bench`.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/latency_sink.h"
#include "operators/sink.h"
#include "operators/tumbling_aggregate.h"
#include "recovery/recovery_manager.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/nexmark.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

struct SoakPhase {
  const char* name;
  int64_t count;
  double rate_per_sec;
};

const SoakPhase kPhases[] = {
    {"warmup", bench::SmokeScaled<int64_t>(40'000, 2'000), 10'000.0},
    {"burst1", bench::SmokeScaled<int64_t>(80'000, 4'000), 40'000.0},
    {"lull", bench::SmokeScaled<int64_t>(40'000, 2'000), 10'000.0},
    {"burst2", bench::SmokeScaled<int64_t>(80'000, 4'000), 40'000.0},
    {"cooldown", bench::SmokeScaled<int64_t>(40'000, 2'000), 10'000.0},
};
constexpr size_t kPhaseCount = sizeof(kPhases) / sizeof(kPhases[0]);

const uint64_t kEpochInterval = bench::SmokeScaled<uint64_t>(500, 100);
constexpr size_t kQueueBound = 4'096;
constexpr AppTime kHotWindowMicros = 10'000;
constexpr uint64_t kSeed = 2026;
constexpr auto kWait = std::chrono::minutes(5);

// Bid schema + trailing phase id + trailing emit-offset stamp.
constexpr size_t kPhaseAttr = nexmark::kBidArity;      // 3
constexpr size_t kStampAttr = nexmark::kBidArity + 1;  // 4

int64_t TotalBids() {
  int64_t total = 0;
  for (const SoakPhase& p : kPhases) total += p.count;
  return total;
}

/// Index of the phase containing stream position `index`.
int64_t PhaseOf(int64_t index) {
  int64_t bound = 0;
  for (size_t p = 0; p < kPhaseCount; ++p) {
    bound += kPhases[p].count;
    if (index < bound) return static_cast<int64_t>(p);
  }
  return static_cast<int64_t>(kPhaseCount) - 1;
}

/// NEXMark bids with the phase id appended, so the latency sink can split
/// its histogram per phase.
RateSource::Generator PhasedBidGenerator(nexmark::NexmarkConfig config) {
  return [config](int64_t index, AppTime ts, Rng* rng) {
    Tuple t = nexmark::MakeBid(config, index, ts, rng);
    t.Append(Value(PhaseOf(index)));
    return t;
  };
}

struct SoakRun {
  std::vector<Tuple> results;
  std::map<int64_t, Histogram> phase_latency;
  Histogram total_latency;
  double seconds = 0.0;
  int kills = 0;
  int recoveries = 0;
  int64_t recovery_latency_micros = 0;
  int64_t replayed_elements = 0;
  int64_t dropped = 0;
};

/// One full pass over the schedule. When `kill_deliveries` is non-empty,
/// the aggregate gets a fault hook that fails permanently once per
/// threshold (in aggregate-delivery counts, replays included) — revived by
/// the engine's restore, exactly like ChaosInjector's kill but with an
/// independent threshold per burst.
SoakRun RunSoak(const std::vector<int64_t>& kill_deliveries) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  nexmark::NexmarkConfig cfg;
  const TimePoint epoch = Now();

  Source* bids = qb.AddSource("soak_bids");
  bids->SetInterarrivalMicros(1e6 / kPhases[0].rate_per_sec);
  TumblingAggregate::Options agg;
  agg.kind = AggregateKind::kCount;
  agg.group_attr = nexmark::kBidAuction;
  agg.window_micros = kHotWindowMicros;
  TumblingAggregate* hot = qb.Tumbling(bids, "soak_hot", agg);
  CollectingSink* out = qb.CollectSink(hot, "soak_out");
  LatencySink* lat =
      qb.Latency(bids, "soak_lat", kStampAttr, epoch, kPhaseAttr);

  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  opt.checkpoint_epoch_interval = kEpochInterval;
  opt.queue_max_elements = kQueueBound;
  opt.overload_policy = OverloadPolicy::kBlock;
  CHECK_OK(engine.Configure(opt));

  struct KillState {
    std::vector<int64_t> thresholds;
    int64_t deliveries = 0;
    size_t kills_done = 0;
  };
  auto kill_state = std::make_shared<KillState>();
  kill_state->thresholds = kill_deliveries;
  if (!kill_deliveries.empty()) {
    hot->SetFaultHook([kill_state](const Operator&, const Tuple&, int,
                                   int attempt) -> FaultAction {
      if (attempt > 0) return FaultAction::kProceed;
      const int64_t d = kill_state->deliveries++;
      if (kill_state->kills_done < kill_state->thresholds.size() &&
          d >= kill_state->thresholds[kill_state->kills_done]) {
        ++kill_state->kills_done;
        return FaultAction::kPermanentFailure;
      }
      return FaultAction::kProceed;
    });
  }

  RateSource::Options src_opt;
  for (const SoakPhase& p : kPhases) {
    src_opt.phases.push_back({p.count, p.rate_per_sec});
  }
  src_opt.pacing = RateSource::Pacing::kPoisson;
  src_opt.seed = kSeed;
  src_opt.stamp_emit_offset = true;
  src_opt.stamp_epoch = epoch;
  RateSource driver(bids, src_opt, PhasedBidGenerator(cfg));

  Stopwatch sw;
  CHECK_OK(engine.Start());
  driver.Start();
  driver.Join();
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());

  SoakRun run;
  run.seconds = seconds;
  run.results = out->TakeResults();
  run.total_latency = lat->SnapshotHistogram();
  run.phase_latency = lat->TakePhaseHistograms();
  run.kills = static_cast<int>(kill_state->kills_done);
  if (engine.recovery() != nullptr) {
    run.recoveries = static_cast<int>(engine.recovery()->completed_recoveries());
    run.recovery_latency_micros =
        engine.recovery()->last_recovery_latency_micros();
    run.replayed_elements = engine.recovery()->replayed_elements();
  }
  for (const QueueOp* q : engine.queues()) run.dropped += q->dropped();
  return run;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  std::string out_path = "BENCH_soak.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  const int64_t total = TotalBids();
  std::cout << "=== Black Friday soak: " << total
            << " Zipf-keyed bids through " << kPhaseCount
            << " arrival phases, epoch interval " << kEpochInterval
            << ", queues bounded at " << kQueueBound << " (kBlock) ===\n";

  // Kill the aggregate in the middle of each burst (delivery counts).
  const int64_t kill1 = kPhases[0].count + kPhases[1].count / 2;
  const int64_t kill2 = kPhases[0].count + kPhases[1].count +
                        kPhases[2].count + kPhases[3].count / 2;

  std::cout << "reference run (no faults)...\n";
  const SoakRun reference = RunSoak({});
  CHECK(reference.kills == 0 && reference.recoveries == 0);

  std::cout << "kill run (crash mid-burst1 at delivery " << kill1
            << ", mid-burst2 at " << kill2 << ")...\n";
  const SoakRun killed = RunSoak({kill1, kill2});
  CHECK(killed.kills == 2) << "expected 2 kills, injected " << killed.kills;
  CHECK(killed.recoveries == 2)
      << "expected 2 completed recoveries, got " << killed.recoveries;
  CHECK(killed.dropped == 0 && reference.dropped == 0)
      << "kBlock queues must not drop";

  // Exactly-once under fire: the recovered run's result multiset must be
  // identical to the undisturbed one.
  std::vector<Tuple> ref_sorted = reference.results;
  std::vector<Tuple> kill_sorted = killed.results;
  std::sort(ref_sorted.begin(), ref_sorted.end());
  std::sort(kill_sorted.begin(), kill_sorted.end());
  CHECK(ref_sorted.size() == kill_sorted.size())
      << "result count diverged: reference " << ref_sorted.size()
      << " vs killed " << kill_sorted.size();
  for (size_t i = 0; i < ref_sorted.size(); ++i) {
    CHECK(ref_sorted[i] == kill_sorted[i])
        << "result " << i << " diverged after recovery: "
        << ref_sorted[i].ToString() << " vs " << kill_sorted[i].ToString();
  }
  std::cout << "result identity: " << ref_sorted.size()
            << " aggregate outputs, exact match after 2 recoveries\n\n";

  Table t({"phase", "elements", "rate_per_sec", "lat_count", "p50_us",
           "p95_us", "p99_us", "p999_us", "max_us"});
  for (size_t p = 0; p < kPhaseCount; ++p) {
    const auto it = killed.phase_latency.find(static_cast<int64_t>(p));
    const Histogram h =
        it != killed.phase_latency.end() ? it->second : Histogram();
    t.AddRow({kPhases[p].name, Table::Int(kPhases[p].count),
              Table::Num(kPhases[p].rate_per_sec, 0), Table::Int(h.count()),
              Table::Num(h.Percentile(0.50), 0),
              Table::Num(h.Percentile(0.95), 0),
              Table::Num(h.Percentile(0.99), 0),
              Table::Num(h.Percentile(0.999), 0), Table::Num(h.max(), 0)});
  }
  t.Print(std::cout);
  std::cout << "\nkill run: " << Table::Num(killed.seconds, 2)
            << " s wall (reference " << Table::Num(reference.seconds, 2)
            << " s); last recovery " << killed.recovery_latency_micros
            << " us, " << killed.replayed_elements
            << " elements replayed\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"soak\",\n"
      << "  \"total_bids\": " << total << ",\n"
      << "  \"epoch_interval\": " << kEpochInterval << ",\n"
      << "  \"queue_bound\": " << kQueueBound << ",\n"
      << "  \"kills\": " << killed.kills << ",\n"
      << "  \"recoveries\": " << killed.recoveries << ",\n"
      << "  \"recovery_latency_micros\": " << killed.recovery_latency_micros
      << ",\n"
      << "  \"replayed_elements\": " << killed.replayed_elements << ",\n"
      << "  \"results\": " << ref_sorted.size() << ",\n"
      << "  \"result_identity\": true,\n"
      << "  \"reference_seconds\": " << reference.seconds << ",\n"
      << "  \"kill_seconds\": " << killed.seconds << ",\n"
      << "  \"phases\": [\n";
  for (size_t p = 0; p < kPhaseCount; ++p) {
    const auto it = killed.phase_latency.find(static_cast<int64_t>(p));
    const Histogram h =
        it != killed.phase_latency.end() ? it->second : Histogram();
    out << "    {\"phase\": \"" << kPhases[p].name
        << "\", \"elements\": " << kPhases[p].count
        << ", \"rate_per_sec\": " << kPhases[p].rate_per_sec
        << ", \"lat_count\": " << h.count()
        << ", \"p50_us\": " << h.Percentile(0.50)
        << ", \"p95_us\": " << h.Percentile(0.95)
        << ", \"p99_us\": " << h.Percentile(0.99)
        << ", \"p999_us\": " << h.Percentile(0.999)
        << ", \"max_us\": " << h.max() << "}"
        << (p + 1 < kPhaseCount ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

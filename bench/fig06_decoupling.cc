// Figure 6 — "The necessity of decoupling."
//
// Paper setup (Section 6.3): a binary symmetric hash join (SHJ) and a
// symmetric nested-loops join (SNJ) over two sources of 180,000 elements
// at 1,000 elements/second; values uniform in [0,1e5] (left) and [0,1e4]
// (right); one-minute sliding window. Each join ran directly in the
// threads of its autonomous sources (DI, no queues). Result: neither join
// keeps pace — the achieved input rate collapses, for SNJ after ~17 s and
// for SHJ after ~58 s.
//
// Scaling: the logical schedule (1,000/s, 60 s windows) is kept but
// replayed 1000x faster than real time (time_scale), with 25,000
// elements per source. Because Push() is synchronous under DI, the join's
// processing cost directly throttles the sources; the per-bucket achieved
// rate makes the collapse visible. Expected shape: SNJ's achieved rate
// decays sharply as its window state grows (per-element cost is linear in
// the window population) and falls behind much earlier/deeper than SHJ's
// — a 2026 C++ hash join is orders of magnitude faster than a 2007 Java
// one, so SHJ sustains a far higher rate (see EXPERIMENTS.md).

#include <iostream>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

constexpr int64_t kCount = 25'000;         // paper: 180,000 (see header)
constexpr double kLogicalRate = 1000.0;    // elements per logical second
constexpr double kTimeScale = 1000.0;      // replay speed-up
constexpr AppTime kWindow = kMicrosPerMinute;
constexpr double kBucketSeconds = 0.05;

struct JoinRun {
  std::vector<std::pair<double, double>> left_rate;
  std::vector<std::pair<double, double>> right_rate;
  double wall_seconds = 0.0;
  int64_t results = 0;
};

JoinRun RunJoin(bool hash_join, int64_t count) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("left");
  Source* right = qb.AddSource("right");
  Node* join = nullptr;
  if (hash_join) {
    join = qb.HashJoin(left, right, "shj", kWindow);
  } else {
    join = qb.NlJoin(left, right, "snj",
                     kWindow, SymmetricNlJoin::EqualAttr(0, 0));
  }
  CountingSink* sink = qb.CountSink(join, "sink");

  // DI: "each join operator directly ran in the thread of its autonomous
  // data sources" — the source-driven mode, no queues anywhere.
  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kSourceDriven;
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());

  RateSource::Options ropt;
  ropt.phases = {{count, kLogicalRate}};
  ropt.pacing = RateSource::Pacing::kPoisson;  // bursty traffic (Sec. 6.2)
  ropt.time_scale = kTimeScale;
  ropt.record_rate_timeline = true;
  ropt.bucket_seconds = kBucketSeconds;
  ropt.seed = 11;
  RateSource left_driver(left, ropt,
                         RateSource::UniformInt(0, 100'000));
  ropt.seed = 22;
  RateSource right_driver(right, ropt,
                          RateSource::UniformInt(0, 10'000));
  Stopwatch sw;
  left_driver.Start();
  right_driver.Start();
  left_driver.Join();
  right_driver.Join();
  engine.WaitUntilFinished();

  JoinRun run;
  run.wall_seconds = sw.ElapsedSeconds();
  run.left_rate = left_driver.TakeRateTimeline();
  run.right_rate = right_driver.TakeRateTimeline();
  run.results = sink->count();
  return run;
}

double RateAt(const JoinRun& run, size_t bucket) {
  double total = 0.0;
  if (bucket < run.left_rate.size()) total += run.left_rate[bucket].second;
  if (bucket < run.right_rate.size()) {
    total += run.right_rate[bucket].second;
  }
  return total;
}

int Main(int argc, char** argv) {
  const bool quick = bench::SmokeMode() ||
                     (argc > 1 && std::string(argv[1]) == "--quick");
  const int64_t count = quick ? 20'000 : kCount;
  std::cout << "=== Figure 6: the necessity of decoupling ===\n"
            << "SHJ and SNJ driven directly by their sources (DI, no "
               "queues); target per-source rate "
            << kLogicalRate * kTimeScale << " elements/s wall ("
            << kLogicalRate << "/s logical, replayed " << kTimeScale
            << "x); 60 s (logical) sliding windows; " << count
            << " elements per source\n\n";
  JoinRun shj = RunJoin(/*hash_join=*/true, count);
  std::cout << "shj done in " << Table::Num(shj.wall_seconds, 2) << " s, "
            << shj.results << " results\n";
  JoinRun snj = RunJoin(/*hash_join=*/false, count);
  std::cout << "snj done in " << Table::Num(snj.wall_seconds, 2) << " s, "
            << snj.results << " results\n\n";

  const double target =
      2.0 * kLogicalRate * kTimeScale;  // both sources combined
  const size_t buckets = std::max(
      std::max(shj.left_rate.size(), shj.right_rate.size()),
      std::max(snj.left_rate.size(), snj.right_rate.size()));
  Table t({"t_s", "shj_rate_eps", "snj_rate_eps", "shj_pct_of_target",
           "snj_pct_of_target"});
  const size_t stride = std::max<size_t>(1, buckets / 40);
  for (size_t b = 0; b < buckets; b += stride) {
    const double shj_rate = RateAt(shj, b);
    const double snj_rate = RateAt(snj, b);
    t.AddRow({Table::Num(static_cast<double>(b) * kBucketSeconds, 2),
              Table::Num(shj_rate, 0), Table::Num(snj_rate, 0),
              Table::Num(100.0 * shj_rate / target, 1),
              Table::Num(100.0 * snj_rate / target, 1)});
  }
  std::cout << "-- achieved combined input rate per wall-time bucket --\n";
  t.Print(std::cout);

  Table summary({"join", "wall_s", "results", "first_half_rate_eps",
                 "second_half_rate_eps", "decay_factor"});
  auto halves = [&](const JoinRun& run) {
    std::vector<double> rates;
    const size_t n = std::max(run.left_rate.size(), run.right_rate.size());
    for (size_t b = 0; b < n; ++b) rates.push_back(RateAt(run, b));
    double first = 0.0;
    double second = 0.0;
    const size_t half = rates.size() / 2;
    for (size_t i = 0; i < rates.size(); ++i) {
      (i < half ? first : second) += rates[i];
    }
    first /= std::max<size_t>(half, 1);
    second /= std::max<size_t>(rates.size() - half, 1);
    return std::make_pair(first, second);
  };
  const auto [shj_first, shj_second] = halves(shj);
  const auto [snj_first, snj_second] = halves(snj);
  summary.AddRow({"shj", Table::Num(shj.wall_seconds, 2),
                  Table::Int(shj.results), Table::Num(shj_first, 0),
                  Table::Num(shj_second, 0),
                  Table::Num(shj_first / std::max(shj_second, 1.0), 2)});
  summary.AddRow({"snj", Table::Num(snj.wall_seconds, 2),
                  Table::Int(snj.results), Table::Num(snj_first, 0),
                  Table::Num(snj_second, 0),
                  Table::Num(snj_first / std::max(snj_second, 1.0), 2)});
  std::cout << "\n-- summary (decay_factor > 1: the join falls "
               "progressively behind) --\n";
  summary.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) { return flexstream::Main(argc, argv); }

// Figure 7 — "Runtime for a simple query using GTS, OTS and DI."
//
// Paper setup (Section 6.4): 5 selections with selectivities 0.998,
// 0.996, ..., 0.990 over a source emitting m elements at 500,000
// elements/second, m from 100,000 to 1,000,000. DI uses one queue after
// the source and one thread for the selections; GTS (Chain and FIFO) and
// OTS fully decouple all operators.
//
// Expected shape: DI is fastest (about 40% faster than OTS in the paper)
// and GTS is slowest. Note: the paper's machine was a dual-core; OTS's
// win over GTS there came from real parallelism. On a single-vCPU host
// OTS pays its thread overhead without that benefit, so OTS >= GTS is
// possible — the DI advantage (the paper's main point) is unaffected.
// See EXPERIMENTS.md.

#include <iostream>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

constexpr int64_t kDomain = 100'000;


struct Fixture {
  QueryGraph graph;
  Source* src = nullptr;
  CountingSink* sink = nullptr;

  Fixture() {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    Node* prev = src;
    for (int i = 0; i < 5; ++i) {
      // Selectivities 0.998, 0.996, 0.994, 0.992, 0.990.
      const int64_t threshold =
          kDomain - 200 * static_cast<int64_t>(i + 1);
      prev = qb.Select(prev, "sel" + std::to_string(i),
                       Selection::IntAttrLessThan(threshold));
    }
    sink = qb.CountSink(prev, "sink");
  }
};

double RunOnce(ExecutionMode mode, StrategyKind strategy, int64_t m) {
  Fixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = mode;
  opt.strategy = strategy;
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());
  RateSource::Options ropt;
  // Unpaced: the paper's 500k/s source outpaced its Java engine in every
  // mode, so Figure 7 measures pure processing time; our C++ engine keeps
  // pace with 500k/s in all modes, so we emit at full speed to stay
  // processing-bound (the quantity the figure reports).
  ropt.phases = {{m, 0.0}};
  ropt.seed = 1234;
  RateSource driver(fx.src, ropt, RateSource::UniformInt(0, kDomain - 1));
  Stopwatch sw;
  driver.Start();
  driver.Join();
  engine.WaitUntilFinished();
  return sw.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  const bool quick = bench::SmokeMode() ||
                     (argc > 1 && std::string(argv[1]) == "--quick");
  std::cout << "=== Figure 7: runtime of a 5-selection query under GTS, "
               "OTS and DI ===\n"
            << "source: m elements at 500k/s, values uniform [0,100000); "
               "selectivities 0.998..0.990\n"
            << "(statistics collection disabled so every mode pays "
               "identical bookkeeping)\n\n";
  SetStatsCollectionEnabled(false);
  std::vector<int64_t> ms = quick
                                ? std::vector<int64_t>{100'000}
                                : std::vector<int64_t>{100'000, 250'000,
                                                       500'000, 1'000'000};
  Table t({"m", "di_s", "gts_fifo_s", "gts_chain_s", "ots_s",
           "di_vs_ots_speedup"});
  for (int64_t m : ms) {
    const double di =
        RunOnce(ExecutionMode::kDirect, StrategyKind::kFifo, m);
    const double gts_fifo =
        RunOnce(ExecutionMode::kGts, StrategyKind::kFifo, m);
    const double gts_chain =
        RunOnce(ExecutionMode::kGts, StrategyKind::kChain, m);
    const double ots = RunOnce(ExecutionMode::kOts, StrategyKind::kFifo, m);
    t.AddRow({Table::Int(m), Table::Num(di, 3), Table::Num(gts_fifo, 3),
              Table::Num(gts_chain, 3), Table::Num(ots, 3),
              Table::Num(ots / di, 2)});
    std::cout << "m=" << m << " done\n";
  }
  std::cout << "\n";
  t.Print(std::cout);
  SetStatsCollectionEnabled(true);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) { return flexstream::Main(argc, argv); }

// Closed-loop SLO guardian demo (ROADMAP item 2 tentpole, DESIGN.md §15).
//
// A deliberately under-provisioned pipeline (emit_batch_size 1, HMTS slot
// pool capped at one thread) runs a three-phase "Black Friday" schedule:
// calm, a burst several times the calm rate, and a cooldown. Two passes:
//
//   controller-off  The burst outruns the per-tuple path, the bounded
//                   queues fill, and the end-to-end p99 blows through the
//                   SLO for the whole burst phase.
//   controller-on   An SloController (250 ms control interval) watches
//                   the same pipeline through EngineMetricsProbe and
//                   climbs the degradation ladder: the thread rung is a
//                   no-op on this single-core host, so the batch rung does
//                   the work — raising emit_batch_size amortizes the
//                   per-element queue/wakeup overhead (the pipeline bench
//                   measures ~1.75x capacity from batch 64), the backlog
//                   drains, and p99 comes back under the SLO.
//
// Asserted (full mode; smoke only checks the invariants):
//   * controller-off violates the SLO during the burst;
//   * controller-on actuates in the SAME control interval that first
//     detects the breach (re-provision within one interval, by decision
//     log), recovers to p99 <= SLO by the cooldown phase, and beats the
//     off run's burst p99;
//   * the ladder never reaches rung 4 and the queues drop nothing —
//     elastic capacity, not load shedding, absorbs the burst.
//
// Reported: per-phase p99 on/off, the per-interval p99/backlog series of
// both runs, the controller's decision log, and reaction_intervals (first
// breach to first action). Results go to stdout and BENCH_control.json
// (override with --out <path>).

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "control/engine_hooks.h"
#include "control/slo_controller.h"
#include "graph/query_graph.h"
#include "operators/latency_sink.h"
#include "operators/selection.h"
#include "stats/report.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

struct ControlPhase {
  const char* name;
  int64_t count;
  double rate_per_sec;
};

// Calm fits the per-tuple path comfortably; the burst does not (the chain
// pays five queue-free operator hops plus the source-side queue per
// element, so per-tuple capacity on this host sits well under the burst
// rate) but fits once batching engages.
const ControlPhase kPhases[] = {
    {"calm", bench::SmokeScaled<int64_t>(225'000, 20'000), 150'000.0},
    {"burst", bench::SmokeScaled<int64_t>(3'000'000, 150'000), 1'000'000.0},
    {"cooldown", bench::SmokeScaled<int64_t>(300'000, 30'000), 150'000.0},
};
constexpr size_t kPhaseCount = sizeof(kPhases) / sizeof(kPhases[0]);

constexpr double kSloMicros = 5'000.0;  // p99 end-to-end target: 5 ms
const auto kControlInterval = std::chrono::milliseconds(250);
constexpr size_t kQueueBound = 65'536;
constexpr uint64_t kSeed = 20'260'809;
constexpr auto kWait = std::chrono::minutes(5);
constexpr size_t kStageCount = 4;

constexpr size_t kPhaseAttr = 1;
constexpr size_t kStampAttr = 2;

int64_t PhaseOf(int64_t index) {
  int64_t bound = 0;
  for (size_t p = 0; p < kPhaseCount; ++p) {
    bound += kPhases[p].count;
    if (index < bound) return static_cast<int64_t>(p);
  }
  return static_cast<int64_t>(kPhaseCount) - 1;
}

RateSource::Generator PhasedGenerator() {
  return [](int64_t index, AppTime ts, Rng*) {
    return Tuple({Value(index), Value(PhaseOf(index))}, ts);
  };
}

struct IntervalSample {
  double seconds = 0.0;
  double p99_micros = 0.0;
  int64_t count = 0;
  size_t backlog = 0;
};

struct ControlRun {
  std::map<int64_t, Histogram> phase_latency;
  Histogram total_latency;
  double seconds = 0.0;
  int64_t dropped = 0;
  std::vector<IntervalSample> intervals;
  // Controller-on only.
  std::vector<ControlDecision> decisions;
  int64_t actions = 0;
  int max_rung = 0;
  int64_t shed_while_degraded = 0;
};

SloOptions ControllerOptions() {
  SloOptions slo;
  slo.target_p99_micros = kSloMicros;
  slo.control_interval = kControlInterval;
  slo.ewma_alpha = 0.6;
  slo.deescalate_fraction = 0.5;
  slo.deescalate_intervals = 3;
  slo.min_dwell = std::chrono::seconds(2);
  slo.base_threads = 1;
  slo.max_threads = 2;
  slo.base_batch_size = 1;
  slo.max_batch_size = 64;
  slo.allow_reshard = false;  // no sharded cell in this pipeline
  slo.allow_shedding = true;  // available but must never be needed
  // Persistence gate for the heavy rungs. The breach streak keeps running
  // while the light rungs climb (4 intervals to reach batch 64) and while
  // the EWMA decays after the actuation that actually fixes the latency
  // (~4 more intervals from a deep peak at alpha 0.6), so the patience
  // must exceed climb + decay or a burst the batch rung fully absorbs
  // would still trip shedding on the stale smoothed signal.
  slo.heavy_rung_patience = 10;
  return slo;
}

ControlRun RunSchedule(bool controller_on) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  const TimePoint epoch = Now();

  Source* src = qb.AddSource("ctl_src");
  Node* stage = src;
  for (size_t i = 0; i < kStageCount; ++i) {
    stage = qb.Select(stage, "ctl_stage" + std::to_string(i),
                      [](const Tuple&) { return true; });
  }
  LatencySink* lat = qb.Latency(stage, "ctl_lat", kStampAttr, epoch,
                                kPhaseAttr);

  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kHmts;
  opt.ts.max_running = 1;  // deliberately under-provisioned baseline
  opt.emit_batch_size = 1;
  opt.queue_max_elements = kQueueBound;
  opt.overload_policy = OverloadPolicy::kBlock;
  CHECK_OK(engine.Configure(opt));

  EngineMetricsProbe probe(&engine, &graph);
  EngineActuator actuator(&engine);
  std::unique_ptr<SloController> controller;
  if (controller_on) {
    controller =
        std::make_unique<SloController>(ControllerOptions(), &probe, &actuator);
  }

  RateSource::Options src_opt;
  for (const ControlPhase& p : kPhases) {
    src_opt.phases.push_back({p.count, p.rate_per_sec});
  }
  src_opt.pacing = RateSource::Pacing::kPoisson;
  src_opt.seed = kSeed;
  src_opt.stamp_emit_offset = true;
  src_opt.stamp_epoch = epoch;
  RateSource driver(src, src_opt, PhasedGenerator());

  // The off run gets the same per-interval telemetry from a plain sampler
  // thread over a second probe, so the JSON series are comparable. (The
  // controller's own probe must stay private to it: ticks diff against the
  // previous snapshot, so two readers through one probe would corrupt the
  // windows.)
  EngineMetricsProbe observer(&engine, &graph);
  std::vector<IntervalSample> intervals;
  std::atomic<bool> stop_sampler{false};
  Stopwatch sw;
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(kControlInterval);
      const ControlMetrics m = observer.Sample();
      IntervalSample s;
      s.seconds = sw.ElapsedSeconds();
      s.p99_micros = m.interval_p99_micros;
      s.count = m.interval_count;
      s.backlog = m.backlog;
      intervals.push_back(s);
    }
  });

  CHECK_OK(engine.Start());
  if (controller != nullptr) controller->Start();
  driver.Start();
  driver.Join();
  CHECK(engine.WaitUntilFinishedFor(kWait));
  if (controller != nullptr) controller->Stop();
  stop_sampler.store(true, std::memory_order_relaxed);
  sampler.join();
  const double seconds = sw.ElapsedSeconds();
  engine.Stop();
  CHECK_OK(engine.RunResult());

  ControlRun run;
  run.seconds = seconds;
  run.total_latency = lat->SnapshotHistogram();
  run.phase_latency = lat->TakePhaseHistograms();
  run.dropped = engine.DroppedElements();
  run.intervals = std::move(intervals);
  if (controller != nullptr) {
    run.decisions = controller->decisions();
    run.actions = controller->actions_taken();
    run.shed_while_degraded = controller->shed_while_degraded();
    for (const ControlDecision& d : run.decisions) {
      run.max_rung = std::max(run.max_rung, d.rung_after);
    }
  }
  return run;
}

double PhaseP99(const ControlRun& run, int64_t phase) {
  const auto it = run.phase_latency.find(phase);
  return it == run.phase_latency.end() ? 0.0 : it->second.Percentile(0.99);
}

void EmitIntervalSeries(std::ofstream& out, const ControlRun& run) {
  out << "[";
  for (size_t i = 0; i < run.intervals.size(); ++i) {
    const IntervalSample& s = run.intervals[i];
    out << (i == 0 ? "" : ", ") << "{\"t\": " << Table::Num(s.seconds, 2)
        << ", \"p99_us\": " << Table::Num(s.p99_micros, 0)
        << ", \"count\": " << s.count << ", \"backlog\": " << s.backlog
        << "}";
  }
  out << "]";
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  std::string out_path = "BENCH_control.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  int64_t total = 0;
  for (const ControlPhase& p : kPhases) total += p.count;
  std::cout << "=== SLO guardian: " << total << " elements, burst at "
            << Table::Num(kPhases[1].rate_per_sec, 0)
            << "/s against a batch-1 single-slot baseline, slo p99 "
            << Table::Num(kSloMicros / 1000.0, 0) << " ms ===\n";

  std::cout << "controller-off run...\n";
  const ControlRun off = RunSchedule(false);
  std::cout << "controller-on run...\n";
  const ControlRun on = RunSchedule(true);

  // --- Per-phase report ----------------------------------------------------
  Table t({"phase", "elements", "rate_per_sec", "off_p99_us", "on_p99_us"});
  for (size_t p = 0; p < kPhaseCount; ++p) {
    t.AddRow({kPhases[p].name, Table::Int(kPhases[p].count),
              Table::Num(kPhases[p].rate_per_sec, 0),
              Table::Num(PhaseP99(off, static_cast<int64_t>(p)), 0),
              Table::Num(PhaseP99(on, static_cast<int64_t>(p)), 0)});
  }
  t.Print(std::cout);

  std::cout << "\ncontroller decisions:\n";
  Table decisions = BuildControlTable(on.decisions);
  decisions.Print(std::cout);

  // --- Reaction accounting -------------------------------------------------
  // The ladder design guarantees detection and first actuation share an
  // interval; read it back from the log instead of trusting the design.
  int64_t first_breach = -1;
  int64_t first_action = -1;
  for (const ControlDecision& d : on.decisions) {
    const bool breach = d.trigger.find("> slo") != std::string::npos ||
                        d.trigger.find("stalled") != std::string::npos;
    if (breach && first_breach < 0) first_breach = d.interval;
    if (d.rung_after > d.rung_before && first_action < 0) {
      first_action = d.interval;
    }
  }
  const int64_t reaction_intervals =
      (first_breach >= 0 && first_action >= 0)
          ? first_action - first_breach + 1
          : -1;
  std::cout << "\nfirst breach interval " << first_breach
            << ", first action interval " << first_action
            << " (reaction: " << reaction_intervals
            << " interval(s)); actions " << on.actions << ", max rung "
            << on.max_rung << ", dropped off/on " << off.dropped << "/"
            << on.dropped << "\n";

  // --- Invariants (both modes) --------------------------------------------
  CHECK(on.max_rung < 4) << "elastic capacity should absorb the burst "
                            "without engaging the shedding rung";
  CHECK(on.dropped == 0 && off.dropped == 0)
      << "kBlock queues must not drop (off " << off.dropped << ", on "
      << on.dropped << ")";
  CHECK(on.shed_while_degraded == 0);

  // --- SLO claims (full mode; smoke workloads are too small to breach) ----
  const double off_burst = PhaseP99(off, 1);
  const double on_burst = PhaseP99(on, 1);
  const double on_cooldown = PhaseP99(on, 2);
  if (!bench::SmokeMode()) {
    CHECK(off_burst > kSloMicros)
        << "expected the uncontrolled burst to violate the SLO, got p99 "
        << off_burst << " us";
    CHECK(first_breach >= 0 && first_action >= 0 && reaction_intervals <= 1)
        << "controller must actuate in the interval that detects the "
           "breach (reaction " << reaction_intervals << ")";
    CHECK(on_cooldown <= kSloMicros)
        << "controller-on run must be back under the SLO by the cooldown "
           "phase, got p99 " << on_cooldown << " us";
    CHECK(on_burst < off_burst)
        << "controller-on burst p99 (" << on_burst
        << " us) should beat controller-off (" << off_burst << " us)";
  }

  // --- JSON ----------------------------------------------------------------
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"control\",\n"
      << "  \"slo_p99_us\": " << kSloMicros << ",\n"
      << "  \"control_interval_ms\": " << kControlInterval.count() << ",\n"
      << "  \"total_elements\": " << total << ",\n"
      << "  \"queue_bound\": " << kQueueBound << ",\n"
      << "  \"off_seconds\": " << off.seconds << ",\n"
      << "  \"on_seconds\": " << on.seconds << ",\n"
      << "  \"reaction_intervals\": " << reaction_intervals << ",\n"
      << "  \"actions\": " << on.actions << ",\n"
      << "  \"max_rung\": " << on.max_rung << ",\n"
      << "  \"dropped_off\": " << off.dropped << ",\n"
      << "  \"dropped_on\": " << on.dropped << ",\n"
      << "  \"shed_while_degraded\": " << on.shed_while_degraded << ",\n"
      << "  \"phases\": [\n";
  for (size_t p = 0; p < kPhaseCount; ++p) {
    out << "    {\"phase\": \"" << kPhases[p].name
        << "\", \"elements\": " << kPhases[p].count
        << ", \"rate_per_sec\": " << kPhases[p].rate_per_sec
        << ", \"off_p99_us\": " << PhaseP99(off, static_cast<int64_t>(p))
        << ", \"on_p99_us\": " << PhaseP99(on, static_cast<int64_t>(p))
        << "}" << (p + 1 < kPhaseCount ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"off_intervals\": ";
  EmitIntervalSeries(out, off);
  out << ",\n"
      << "  \"on_intervals\": ";
  EmitIntervalSeries(out, on);
  out << ",\n"
      << "  \"decisions\": [\n";
  for (size_t i = 0; i < on.decisions.size(); ++i) {
    const ControlDecision& d = on.decisions[i];
    out << "    {\"interval\": " << d.interval << ", \"trigger\": \""
        << d.trigger << "\", \"rung\": \"" << d.rung_before << "->"
        << d.rung_after << "\", \"action\": \"" << d.action
        << "\", \"p99_us\": " << Table::Num(d.p99_micros, 0)
        << ", \"backlog\": " << d.backlog << "}"
        << (i + 1 < on.decisions.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Durable checkpoint cost (DESIGN.md §16): what does persisting every
// committed epoch to disk cost a healthy run on top of in-memory
// checkpointing, and how long does a cold restart take to rebuild the
// graph from the newest on-disk epoch?
//
// Scenarios (shared pipeline: src -> select -> sliding-window aggregate ->
// counting sink, as in recovery_bench so the two reports compose):
//   checkpoint_off : baseline run, checkpoint_epoch_interval = 0.
//   in_memory_<I>  : epoch barriers every I elements, snapshots kept in
//                    memory only (no durable dir) — the recovery_bench
//                    overhead, re-measured here as the durable baseline.
//   durable_<I>    : identical run with every committed epoch serialized,
//                    CRC-tagged, fsynced, and atomically renamed into a
//                    snapshot store (intervals 100 and 1000 — the
//                    write-amplification/staleness trade-off).
//   cold_restart   : after a durable run, a fresh engine ColdRestart()s
//                    from the store — load + checksum + decode + rewind —
//                    and the restore latency is reported.
//
// Reported: median wall time over the reps, durable overhead vs the
// in-memory run at the same interval, store write accounting, and the
// cold-restart latency. Results go to stdout and BENCH_durability.json
// (override with --out <path>).

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "recovery/recovery_manager.h"
#include "recovery/snapshot_store.h"
#include "tuple/tuple.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/table.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

const int64_t kFeedPerSource = bench::SmokeScaled<int64_t>(50'000, 10'000);
const int kReps = bench::SmokeScaled(5, 2);
constexpr auto kWait = std::chrono::seconds(120);

struct Pipeline {
  std::unique_ptr<QueryGraph> graph;
  Source* source = nullptr;
  CountingSink* sink = nullptr;
};

Pipeline BuildPipeline() {
  Pipeline p;
  p.graph = std::make_unique<QueryGraph>();
  QueryBuilder qb(p.graph.get());
  p.source = qb.AddSource("src");
  Selection* sel =
      qb.Select(p.source, "sel", [](const Tuple&) { return true; });
  WindowedAggregate::Options agg;
  agg.kind = AggregateKind::kSum;
  agg.value_attr = 0;
  agg.window_micros = 1'000;  // ~1000 elements of state at 1 us spacing
  p.sink = qb.CountSink(qb.Aggregate(sel, "agg", agg), "sink");
  return p;
}

void Feed(const Pipeline& p) {
  for (int64_t i = 0; i < kFeedPerSource; ++i) {
    p.source->Push(Tuple::OfInt(i % 97, i + 1));
  }
  p.source->Close(kFeedPerSource);
}

std::string ScratchDir() {
  return (std::filesystem::temp_directory_path() /
          ("flexstream_durability_bench_" +
           std::to_string(static_cast<long>(::getpid()))))
      .string();
}

struct RunResultStats {
  double seconds = 0.0;
  int64_t epochs_persisted = 0;
  int64_t bytes_written = 0;
  int64_t last_write_micros = 0;
};

/// One healthy run; `durable_dir` empty keeps checkpoints in memory only.
RunResultStats RunHealthy(uint64_t epoch_interval,
                          const std::string& durable_dir) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = epoch_interval;
  options.durable_checkpoint_dir = durable_dir;
  CHECK_OK(engine.Configure(options));

  Stopwatch sw;
  CHECK_OK(engine.Start());
  Feed(p);
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());
  CHECK(p.sink->count() == kFeedPerSource);

  RunResultStats r;
  r.seconds = seconds;
  if (engine.recovery() != nullptr &&
      engine.recovery()->snapshot_store() != nullptr) {
    const SnapshotStoreStats stats =
        engine.recovery()->snapshot_store()->stats();
    r.epochs_persisted = stats.epochs_written;
    r.bytes_written = stats.bytes_written;
    r.last_write_micros = stats.last_write_micros;
  }
  return r;
}

struct ColdRestartResult {
  uint64_t restored_epoch = 0;
  int64_t restore_latency_micros = 0;
};

/// Times a fresh engine's ColdRestart() against a store that a prior
/// durable run filled.
ColdRestartResult RunColdRestart(const std::string& durable_dir) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 100;
  options.durable_checkpoint_dir = durable_dir;
  CHECK_OK(engine.Configure(options));

  Stopwatch sw;
  Result<uint64_t> restored = engine.ColdRestart();
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(restored.status());

  ColdRestartResult r;
  r.restored_epoch = *restored;
  r.restore_latency_micros = static_cast<int64_t>(seconds * 1e6);
  return r;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  std::string out_path = "BENCH_durability.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  const std::string scratch = ScratchDir();
  const std::vector<uint64_t> intervals = {100, 1000};

  std::vector<double> off_secs;
  std::vector<std::vector<double>> memory_secs(intervals.size());
  std::vector<std::vector<double>> durable_secs(intervals.size());
  std::vector<RunResultStats> durable_last(intervals.size());
  for (int rep = 0; rep < kReps; ++rep) {
    off_secs.push_back(RunHealthy(0, "").seconds);
    for (size_t k = 0; k < intervals.size(); ++k) {
      memory_secs[k].push_back(RunHealthy(intervals[k], "").seconds);
      // Fresh directory per run: WriteEpoch refuses epochs at or below
      // the manifest's newest, and GC cost should reflect one run.
      const std::string dir =
          scratch + "_i" + std::to_string(intervals[k]) + "_r" +
          std::to_string(rep);
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      const RunResultStats durable = RunHealthy(intervals[k], dir);
      durable_secs[k].push_back(durable.seconds);
      durable_last[k] = durable;
      if (!(rep == kReps - 1 && intervals[k] == 100)) {
        std::filesystem::remove_all(dir, ec);
      }
    }
  }
  // The interval-100 store from the final rep feeds the cold restart.
  const std::string restart_dir =
      scratch + "_i100_r" + std::to_string(kReps - 1);
  const ColdRestartResult restart = RunColdRestart(restart_dir);
  {
    std::error_code ec;
    std::filesystem::remove_all(restart_dir, ec);
  }

  const double off_median = Median(off_secs);
  Table table({"scenario", "seconds", "tuples_per_sec", "notes"});
  const double tuples = static_cast<double>(kFeedPerSource);
  table.AddRow({"checkpoint_off", Table::Num(off_median, 4),
                Table::Num(tuples / off_median, 0), "epoch interval 0"});
  std::vector<double> memory_median(intervals.size());
  std::vector<double> durable_median(intervals.size());
  std::vector<double> overhead_pct(intervals.size());
  for (size_t k = 0; k < intervals.size(); ++k) {
    memory_median[k] = Median(memory_secs[k]);
    durable_median[k] = Median(durable_secs[k]);
    overhead_pct[k] =
        100.0 * (durable_median[k] - memory_median[k]) / memory_median[k];
    const std::string interval = std::to_string(intervals[k]);
    table.AddRow({"in_memory_" + interval, Table::Num(memory_median[k], 4),
                  Table::Num(tuples / memory_median[k], 0),
                  "interval " + interval + ", no durable store"});
    table.AddRow(
        {"durable_" + interval, Table::Num(durable_median[k], 4),
         Table::Num(tuples / durable_median[k], 0),
         "interval " + interval + ", " +
             std::to_string(durable_last[k].epochs_persisted) +
             " epochs persisted, " +
             std::to_string(durable_last[k].bytes_written) +
             " bytes, overhead " + Table::Num(overhead_pct[k], 1) +
             "% vs in-memory"});
  }
  table.AddRow({"cold_restart",
                Table::Num(restart.restore_latency_micros / 1e6, 4), "-",
                "restored epoch " + std::to_string(restart.restored_epoch) +
                    ", " + std::to_string(restart.restore_latency_micros) +
                    " us"});
  table.Print(std::cout);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"durability\",\n"
      << "  \"feed_per_source\": " << kFeedPerSource << ",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"checkpoint_off_seconds\": " << off_median << ",\n"
      << "  \"intervals\": [\n";
  for (size_t k = 0; k < intervals.size(); ++k) {
    out << "    {\"epoch_interval\": " << intervals[k]
        << ", \"in_memory_seconds\": " << memory_median[k]
        << ", \"durable_seconds\": " << durable_median[k]
        << ", \"durable_overhead_pct\": " << overhead_pct[k]
        << ", \"epochs_persisted\": " << durable_last[k].epochs_persisted
        << ", \"bytes_written\": " << durable_last[k].bytes_written
        << ", \"last_write_micros\": " << durable_last[k].last_write_micros
        << "}" << (k + 1 < intervals.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"cold_restart\": {\n"
      << "    \"restored_epoch\": " << restart.restored_epoch << ",\n"
      << "    \"restore_latency_micros\": " << restart.restore_latency_micros
      << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Ablation — scheduling granularity.
//
// Two knobs of the level-2 partitions trade throughput against
// responsiveness, a design dimension GTS's "time slice" discussion
// (Section 4.1.1) raises but the paper does not quantify:
//
//   * batch_size: elements drained per strategy decision. Large batches
//     amortize queue locking and strategy selection; small batches make
//     preemption and strategy decisions fine-grained.
//   * quantum: how long a partition runs before offering to yield.
//
// This harness measures, for a GTS run of the Figure 7 query, (a) the
// total processing time and (b) the peak queue memory, across batch
// sizes, plus the effect of the quantum on HMTS's ability to keep a cheap
// branch responsive next to an expensive one.

#include <iostream>
#include <thread>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "core/hmts.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

constexpr int64_t kDomain = 100'000;
const int64_t kElements = bench::SmokeScaled<int64_t>(300'000, 30'000);

double RunGtsWithBatch(size_t batch_size, size_t* peak_memory) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Node* prev = src;
  for (int i = 0; i < 5; ++i) {
    prev = qb.Select(prev, "sel" + std::to_string(i),
                     Selection::IntAttrLessThan(kDomain - 200 * (i + 1)));
  }
  CountingSink* sink = qb.CountSink(prev, "sink");
  (void)sink;
  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  opt.partition.batch_size = batch_size;
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());
  RateSource::Options ropt;
  ropt.phases = {{kElements, 0.0}};
  ropt.seed = 7;
  RateSource driver(src, ropt, RateSource::UniformInt(0, kDomain - 1));
  Stopwatch sw;
  driver.Start();
  size_t peak = 0;
  while (!sink->closed()) {
    peak = std::max(peak, engine.QueuedElements());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  driver.Join();
  engine.WaitUntilFinished();
  *peak_memory = peak;
  return sw.ElapsedSeconds();
}

/// Cheap-branch completion next to an expensive branch, as a function of
/// the scheduling quantum: 200k cheap elements (~60 ms of work) vs 40 x
/// 25 ms expensive elements competing for the only execution slot.
/// Expected observation: completion is largely *insensitive* to the
/// quantum, because one 25 ms element exceeds every quantum — a scheduler
/// cannot preempt mid-element. That is precisely Section 4.1.1's argument
/// ("an expensive operator can exceed the given time slice") for
/// isolating expensive operators in their own partitions instead of
/// relying on time slices.
double CheapBranchCompletion(Duration ts_quantum) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* cheap_src = qb.AddSource("cheap_src");
  QueueOp* cheap_q = graph.Add<QueueOp>("cheap_q");
  CHECK_OK(graph.Connect(cheap_src, cheap_q));
  CountingSink* cheap_sink = qb.CountSink(cheap_q, "cheap_sink");
  Source* heavy_src = qb.AddSource("heavy_src");
  QueueOp* heavy_q = graph.Add<QueueOp>("heavy_q");
  CHECK_OK(graph.Connect(heavy_src, heavy_q));
  Node* heavy = qb.Select(
      heavy_q, "heavy", [](const Tuple&) { return true; },
      /*cost=*/25'000.0);
  CountingSink* heavy_sink = qb.CountSink(heavy, "heavy_sink");
  (void)heavy_sink;

  Partition::Options popt;
  popt.batch_size = 1;
  popt.quantum = ts_quantum;  // level-2 and level-3 quanta move together
  ThreadScheduler::Options ts_options;
  ts_options.max_running = 1;  // force the TS to arbitrate
  ts_options.quantum = ts_quantum;
  std::vector<HmtsExecutor::PartitionSpec> specs(2);
  specs[0].name = "cheap";
  specs[0].queues = {cheap_q};
  specs[1].name = "heavy";
  specs[1].queues = {heavy_q};
  HmtsExecutor executor(std::move(specs), ts_options, popt);
  for (int i = 0; i < 40; ++i) heavy_src->Push(Tuple::OfInt(i, i));
  executor.Start();
  Stopwatch sw;
  for (int i = 0; i < 200'000; ++i) cheap_src->Push(Tuple::OfInt(i, i));
  cheap_src->Close(200'000);
  cheap_sink->WaitUntilClosed();
  const double seconds = sw.ElapsedSeconds();
  heavy_src->Close(40);
  executor.RequestStop();
  executor.Join();
  return seconds;
}

int Main() {
  SetStatsCollectionEnabled(false);
  std::cout << "=== Ablation: level-2 batch size (GTS throughput vs "
               "memory) ===\n";
  Table batch({"batch_size", "runtime_s", "peak_queued"});
  for (size_t b : {size_t{1}, size_t{4}, size_t{16}, size_t{64},
                   size_t{256}}) {
    size_t peak = 0;
    const double seconds = RunGtsWithBatch(b, &peak);
    batch.AddRow({Table::Int(static_cast<int64_t>(b)),
                  Table::Num(seconds, 3),
                  Table::Int(static_cast<int64_t>(peak))});
  }
  batch.Print(std::cout);
  SetStatsCollectionEnabled(true);

  std::cout << "\n=== Ablation: level-3 quantum (cheap-branch completion "
               "next to 25 ms elements, max_running=1) ===\n";
  Table quantum({"quantum_ms", "cheap_branch_completion_s"});
  for (int ms : {1, 5, 20, 100}) {
    quantum.AddRow({Table::Int(ms),
                    Table::Num(CheapBranchCompletion(
                                   std::chrono::milliseconds(ms)),
                               3)});
  }
  quantum.Print(std::cout);
  std::cout << "\nbatch size trades throughput for decision granularity; "
               "the quantum barely matters because a 25 ms element "
               "out-lasts any quantum - Section 4.1.1's case for "
               "decoupling expensive operators.\n";
  return 0;
}

}  // namespace
}  // namespace flexstream

int main() { return flexstream::Main(); }

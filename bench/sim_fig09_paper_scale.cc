// Figures 9 & 10 at FULL paper scale, in the virtual-time simulator.
//
// The wall-clock bench (fig09_10_hmts_vs_gts) runs a 100x-scaled variant
// because a 2-second operator and a 260-second horizon are impractical to
// execute repeatedly — and because this repository's reference host has
// one CPU while the paper's had two. The simulator removes both
// constraints: it replays the *published* parameters — 70,000 elements
// (bursts of 10,000/20,000 at "500k/s", slow phases of 20,000 at 250/s),
// projection 2.7 us, selection 530 ns with selectivity 9e-4, expensive
// selection 2 s with selectivity 0.3 — deterministically, with 1 or 2
// virtual CPUs.
//
// What to expect, and why it is interesting:
//  * HMTS on 2 CPUs completes at ~162 s — exactly the paper's number
//    (last element at 160 s + ~2 s processing).
//  * An *ideal work-conserving* GTS also completes near ~162 s: the
//    expensive operator's total work (~63 elements x 2 s = 126 s) fits
//    inside the 160 s emission window, so a scheduler that never idles
//    can absorb it. The paper measured 260 s for FIFO/Chain — evidence
//    that PIPES' GTS *idled* (or paid overhead) for ~100 s that the
//    simulator's idealized scheduler does not, on top of any parameter
//    differences. The memory-profile ordering (Chain <= FIFO peak/average)
//    is reproduced either way, with FIFO holding thousands of queued
//    elements through the bursts.

#include <iostream>

#include "api/query_builder.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/table.h"

namespace flexstream {
namespace {

struct SimGraph {
  QueryGraph graph;
  Source* src;
  Node* proj;
  Node* sel1;
  Node* sel2;
  CountingSink* sink;

  SimGraph() {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    proj = qb.Project(src, "proj", {});
    proj->SetCostMicros(2.7);
    proj->SetSelectivity(1.0);
    sel1 = qb.Select(proj, "sel1", [](const Tuple&) { return true; });
    sel1->SetCostMicros(0.53);
    sel1->SetSelectivity(9e-4);
    sel2 = qb.Select(sel1, "sel2", [](const Tuple&) { return true; });
    sel2->SetCostMicros(2'000'000.0);  // 2 seconds
    sel2->SetSelectivity(0.3);
    sink = qb.CountSink(sel2, "sink");
    sink->SetCostMicros(0.0);
    sink->SetSelectivity(1.0);
  }

  std::vector<SimPhase> PaperSchedule() const {
    // Bursts "at approximately 500,000 elements per second, which took
    // significantly less than a second" -> instantaneous in the model.
    return {{10'000, 0.0},
            {20'000, 250.0},
            {20'000, 0.0},
            {20'000, 250.0}};
  }
};

struct Row {
  std::string name;
  SimResult result;
};

int Main() {
  std::cout
      << "=== Figures 9 & 10 at paper scale (virtual-time simulation) ===\n"
      << "70,000 elements; bursts instantaneous, slow phases 20,000 at "
         "250/s (80 s each); expensive selection 2 s/element, reached by "
         "~63 elements (sel1 = 9e-4)\n\n";
  std::vector<Row> rows;
  {
    SimGraph g;
    SimOptions opt;
    opt.cpus = 1;
    opt.strategy = StrategyKind::kFifo;
    opt.sample_interval = 10.0;
    auto r = Simulate(g.graph, {{g.src, g.PaperSchedule()}},
                      MakeGtsConfig(g.graph), opt);
    CHECK(r.ok()) << r.status();
    rows.push_back({"gts-fifo (1 cpu)", std::move(*r)});
  }
  {
    SimGraph g;
    SimOptions opt;
    opt.cpus = 1;
    opt.strategy = StrategyKind::kChain;
    opt.sample_interval = 10.0;
    auto r = Simulate(g.graph, {{g.src, g.PaperSchedule()}},
                      MakeGtsConfig(g.graph), opt);
    CHECK(r.ok()) << r.status();
    rows.push_back({"gts-chain (1 cpu)", std::move(*r)});
  }
  {
    // The paper's HMTS: decoupled between sel1 and sel2, two threads.
    SimGraph g;
    SimOptions opt;
    opt.cpus = 1;
    opt.strategy = StrategyKind::kFifo;
    opt.sample_interval = 10.0;
    auto r = Simulate(g.graph, {{g.src, g.PaperSchedule()}},
                      {SimThread{SimVo{g.proj, g.sel1}},
                       SimThread{SimVo{g.sel2, g.sink}}},
                      opt);
    CHECK(r.ok()) << r.status();
    rows.push_back({"hmts (1 cpu)", std::move(*r)});
  }
  {
    SimGraph g;
    SimOptions opt;
    opt.cpus = 2;  // the paper's dual-core
    opt.strategy = StrategyKind::kFifo;
    opt.sample_interval = 10.0;
    auto r = Simulate(g.graph, {{g.src, g.PaperSchedule()}},
                      {SimThread{SimVo{g.proj, g.sel1}},
                       SimThread{SimVo{g.sel2, g.sink}}},
                      opt);
    CHECK(r.ok()) << r.status();
    rows.push_back({"hmts (2 cpus)", std::move(*r)});
  }

  Table summary({"config", "completion_s", "results", "peak_queued"});
  for (const Row& row : rows) {
    summary.AddRow({row.name, Table::Num(row.result.completion_time, 1),
                    Table::Int(row.result.results),
                    Table::Int(row.result.max_queued)});
  }
  std::cout << "-- summary (paper: FIFO/Chain ~260 s, HMTS ~162 s; see "
               "header comment) --\n";
  summary.Print(std::cout);

  // Figure 9/10 series, one row per 10 virtual seconds.
  size_t max_rows = 0;
  for (const Row& row : rows) {
    max_rows = std::max(max_rows, row.result.samples.size());
  }
  Table series({"t_s", "fifo_mem", "chain_mem", "hmts1_mem", "hmts2_mem",
                "fifo_res", "chain_res", "hmts1_res", "hmts2_res"});
  auto cell = [&](size_t config, size_t i, bool memory) {
    const auto& samples = rows[config].result.samples;
    if (i >= samples.size()) return std::string("-");
    return Table::Int(memory ? samples[i].queued : samples[i].results);
  };
  for (size_t i = 0; i < max_rows; ++i) {
    series.AddRow({Table::Num(static_cast<double>(i) * 10.0, 0),
                   cell(0, i, true), cell(1, i, true), cell(2, i, true),
                   cell(3, i, true), cell(0, i, false), cell(1, i, false),
                   cell(2, i, false), cell(3, i, false)});
  }
  std::cout << "\n-- Figure 9 (queued elements) and Figure 10 (cumulative "
               "results) over virtual time --\n";
  series.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main() { return flexstream::Main(); }

// NEXMark-style macro benchmark — production-shaped queries with
// tail-latency truth (ROADMAP item 5, DESIGN.md §14).
//
// Runs the four canonical auction queries of src/workload/nexmark.h
// (currency map, filtered selection, hot-items grouped aggregate,
// auction×bid windowed join) against live Poisson-paced sources across
// the scheduling architectures (GTS / OTS / HMTS), the batch execution
// path (emit_batch_size 1 vs 64), and — for the stateful queries — the
// key-partitioned shard axis (1 vs 4 replicas). Every run measures
// end-to-end latency through a LatencySink reading the source's emit
// stamp, and reports p50/p95/p99/p999/max, not means: tail percentiles
// are where head-of-line blocking (GTS) and queue buildup actually show.
//
// A final section replays the filter query on the virtual-time simulator
// (src/sim) at paper scale: the filter node's selectivity is set to the
// *measured* survivor fraction of a pregenerated bid stream, which makes
// the simulator's fractional-credit result count agree exactly with the
// real engine's — checked here, asserted in tests/harness/.
//
// Results go to stdout and BENCH_nexmark.json (override: --out <path>).

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/shard.h"
#include "api/stream_engine.h"
#include "sim/simulator.h"
#include "stats/report.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/table.h"
#include "workload/nexmark.h"
#include "workload/rate_source.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

const int64_t kBids = bench::SmokeScaled<int64_t>(40'000, 2'000);
const double kBidRate = bench::SmokeScaled(20'000.0, 10'000.0);
// Auctions arrive at a tenth of the bid rate; the round-robin id
// assignment covers the whole auction domain within the run.
const int64_t kAuctions = kBids / 10;
const double kAuctionRate = kBidRate / 10.0;
// Join window in application time: bids match auctions opened within the
// preceding 50 ms of stream time.
constexpr AppTime kJoinWindowMicros = 50'000;
constexpr auto kWait = std::chrono::minutes(5);

enum class Query { kCurrency, kFilter, kHotItems, kJoin };

const char* QueryName(Query q) {
  switch (q) {
    case Query::kCurrency: return "currency";
    case Query::kFilter: return "filter";
    case Query::kHotItems: return "hot_items";
    case Query::kJoin: return "join";
  }
  return "?";
}

struct BenchRow {
  std::string query;
  std::string config;
  size_t batch = 1;
  size_t shards = 1;
  bool columnar = false;
  double seconds = 0.0;
  int64_t results = 0;
  Histogram lat;
};

BenchRow RunOne(Query query, const std::string& config_name,
                ExecutionMode mode, StrategyKind strategy, size_t batch,
                size_t shards, bool columnar) {
  QueryGraph graph;
  const TimePoint epoch = Now();
  nexmark::NexmarkConfig cfg;
  nexmark::QueryOptions qopt;
  qopt.epoch = epoch;
  nexmark::QueryHandle h;
  switch (query) {
    case Query::kCurrency:
      h = nexmark::BuildCurrencyQuery(&graph, cfg, qopt);
      break;
    case Query::kFilter:
      h = nexmark::BuildFilterQuery(&graph, cfg, qopt);
      break;
    case Query::kHotItems:
      h = nexmark::BuildHotItemsQuery(&graph, cfg, qopt);
      break;
    case Query::kJoin:
      h = nexmark::BuildAuctionJoinQuery(&graph, cfg, qopt,
                                         kJoinWindowMicros);
      break;
  }
  h.bids->SetInterarrivalMicros(1e6 / kBidRate);
  if (h.auctions != nullptr) {
    h.auctions->SetInterarrivalMicros(1e6 / kAuctionRate);
  }
  if (shards > 1) {
    CHECK(h.shardable != nullptr) << "query has no shardable operator";
    ShardOptions so;
    so.shards = shards;
    // Multi-input operators (the join) cannot use the ordered merge.
    so.ordered = (query != Query::kJoin);
    CHECK_OK(ShardOperator(&graph, h.shardable, so).status());
  }

  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = mode;
  opt.strategy = strategy;
  opt.emit_batch_size = batch;
  opt.columnar = columnar;
  CHECK_OK(engine.Configure(opt));
  CHECK_OK(engine.Start());

  RateSource::Options bid_opt;
  bid_opt.phases = {{kBids, kBidRate}};
  bid_opt.pacing = RateSource::Pacing::kPoisson;
  bid_opt.stamp_emit_offset = true;
  bid_opt.stamp_epoch = epoch;
  bid_opt.seed = 7;
  RateSource bid_driver(h.bids, bid_opt, nexmark::BidGenerator(cfg));
  std::unique_ptr<RateSource> auction_driver;
  if (h.auctions != nullptr) {
    RateSource::Options auc_opt;
    auc_opt.phases = {{kAuctions, kAuctionRate}};
    auc_opt.pacing = RateSource::Pacing::kPoisson;
    auc_opt.seed = 8;  // unstamped: the latency attr rides the bid side
    auction_driver = std::make_unique<RateSource>(
        h.auctions, auc_opt, nexmark::AuctionGenerator(cfg));
  }

  Stopwatch sw;
  if (auction_driver != nullptr) auction_driver->Start();
  bid_driver.Start();
  bid_driver.Join();
  if (auction_driver != nullptr) auction_driver->Join();
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());

  BenchRow row;
  row.query = QueryName(query);
  row.config = config_name;
  row.batch = batch;
  row.shards = shards;
  row.columnar = columnar;
  row.seconds = seconds;
  row.results = h.results->count();
  row.lat = h.latency->SnapshotHistogram();
  CHECK(row.lat.count() > 0) << "latency sink saw no stamped elements";
  return row;
}

struct SimRow {
  std::string config;
  double completion = 0.0;
  int64_t results = 0;
  int64_t expected = 0;
};

/// Paper-scale virtual replay of the filter query: selectivity measured on
/// a pregenerated stream, then the simulator must produce exactly
/// floor(n * s) = survivors results.
std::vector<SimRow> RunSimSection(int64_t* survivors_out, int64_t* n_out) {
  nexmark::NexmarkConfig cfg;
  const int64_t n = bench::SmokeScaled<int64_t>(200'000, 20'000);
  const std::vector<Tuple> bids = nexmark::GenerateBids(cfg, /*seed=*/42, n);
  const double selectivity = nexmark::MeasuredFilterSelectivity(cfg, bids);
  const int64_t survivors =
      static_cast<int64_t>(static_cast<double>(n) * selectivity + 0.5);
  *survivors_out = survivors;
  *n_out = n;

  QueryGraph graph;
  nexmark::QueryHandle h =
      nexmark::BuildFilterQuery(&graph, cfg, nexmark::QueryOptions{});
  for (Node* node : graph.nodes()) {
    if (node == h.bids) continue;
    node->SetCostMicros(node->name() == "q2_filter" ? 2.0 : 0.5);
    node->SetSelectivity(node->name() == "q2_filter" ? selectivity : 1.0);
  }

  std::unordered_map<const Node*, std::vector<SimPhase>> schedules;
  schedules[h.bids] = {{n, 50'000.0}};

  std::vector<SimRow> rows;
  const struct {
    const char* name;
    std::vector<SimThread> threads;
    int cpus;
  } configs[] = {
      {"sim-gts-1cpu", MakeGtsConfig(graph), 1},
      {"sim-ots-1cpu", MakeOtsConfig(graph), 1},
      {"sim-ots-2cpu", MakeOtsConfig(graph), 2},
  };
  for (const auto& config : configs) {
    SimOptions so;
    so.cpus = config.cpus;
    Result<SimResult> r = Simulate(graph, schedules, config.threads, so);
    CHECK_OK(r.status());
    SimRow row;
    row.config = config.name;
    row.completion = r->completion_time;
    row.results = r->results;
    row.expected = survivors;
    CHECK(row.results == survivors)
        << config.name << " produced " << row.results << ", expected "
        << survivors;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  std::string out_path = "BENCH_nexmark.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  std::cout << "=== NEXMark-style macro benchmark ===\n"
            << kBids << " bids at " << kBidRate << "/s (Poisson), "
            << kAuctions << " auctions at " << kAuctionRate
            << "/s; latencies in microseconds\n\n";

  struct Config {
    const char* name;
    ExecutionMode mode;
    StrategyKind strategy;
    size_t batch;
    size_t shards;
    bool needs_shardable;
    bool columnar;
  };
  // ots-b64-col is ots-b64 with the columnar batch layer on top
  // (EngineOptions::columnar, DESIGN.md §17): typed ColumnarBatches from
  // the sources, the vectorized q2 filter kernel and the typed-key join
  // probe, boxed batches through the queues.
  const std::vector<Config> configs = {
      {"gts-b1", ExecutionMode::kGts, StrategyKind::kFifo, 1, 1, false,
       false},
      {"ots-b1", ExecutionMode::kOts, StrategyKind::kFifo, 1, 1, false,
       false},
      {"hmts-b1", ExecutionMode::kHmts, StrategyKind::kFifo, 1, 1, false,
       false},
      {"ots-b64", ExecutionMode::kOts, StrategyKind::kFifo, 64, 1, false,
       false},
      {"ots-b64-col", ExecutionMode::kOts, StrategyKind::kFifo, 64, 1, false,
       true},
      {"ots-b1-s4", ExecutionMode::kOts, StrategyKind::kFifo, 1, 4, true,
       false},
  };
  const Query queries[] = {Query::kCurrency, Query::kFilter,
                           Query::kHotItems, Query::kJoin};

  std::vector<BenchRow> rows;
  for (Query q : queries) {
    const bool shardable = (q == Query::kHotItems || q == Query::kJoin);
    for (const Config& c : configs) {
      if (c.needs_shardable && !shardable) continue;
      rows.push_back(RunOne(q, c.name, c.mode, c.strategy, c.batch, c.shards,
                            c.columnar));
      std::cout << QueryName(q) << "/" << c.name << " done\n";
    }
  }

  int64_t sim_survivors = 0;
  int64_t sim_n = 0;
  const std::vector<SimRow> sim_rows = RunSimSection(&sim_survivors, &sim_n);

  Table t({"query", "config", "seconds", "results", "lat_count", "p50_us",
           "p95_us", "p99_us", "p999_us", "max_us"});
  for (const BenchRow& r : rows) {
    t.AddRow({r.query, r.config, Table::Num(r.seconds, 3),
              Table::Int(r.results), Table::Int(r.lat.count()),
              Table::Num(r.lat.Percentile(0.50), 0),
              Table::Num(r.lat.Percentile(0.95), 0),
              Table::Num(r.lat.Percentile(0.99), 0),
              Table::Num(r.lat.Percentile(0.999), 0),
              Table::Num(r.lat.max(), 0)});
  }
  std::cout << "\n";
  t.Print(std::cout);

  std::cout << "\nsimulator (filter query, " << sim_n
            << " bids, measured selectivity -> exact survivor count "
            << sim_survivors << "):\n";
  Table st({"config", "virtual_seconds", "results", "expected"});
  for (const SimRow& r : sim_rows) {
    st.AddRow({r.config, Table::Num(r.completion, 3), Table::Int(r.results),
               Table::Int(r.expected)});
  }
  st.Print(std::cout);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"nexmark\",\n"
      << "  \"bids\": " << kBids << ",\n"
      << "  \"bid_rate\": " << kBidRate << ",\n"
      << "  \"auctions\": " << kAuctions << ",\n"
      << "  \"join_window_micros\": " << kJoinWindowMicros << ",\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"query\": \"" << r.query << "\", \"config\": \""
        << r.config << "\", \"batch\": " << r.batch
        << ", \"shards\": " << r.shards
        << ", \"columnar\": " << (r.columnar ? 1 : 0)
        << ", \"seconds\": " << r.seconds
        << ", \"results\": " << r.results
        << ", \"lat_count\": " << r.lat.count()
        << ", \"p50_us\": " << r.lat.Percentile(0.50)
        << ", \"p95_us\": " << r.lat.Percentile(0.95)
        << ", \"p99_us\": " << r.lat.Percentile(0.99)
        << ", \"p999_us\": " << r.lat.Percentile(0.999)
        << ", \"max_us\": " << r.lat.max() << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"simulator\": [\n";
  for (size_t i = 0; i < sim_rows.size(); ++i) {
    const SimRow& r = sim_rows[i];
    out << "    {\"config\": \"" << r.config
        << "\", \"virtual_seconds\": " << r.completion
        << ", \"results\": " << r.results << ", \"expected\": " << r.expected
        << "}" << (i + 1 < sim_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

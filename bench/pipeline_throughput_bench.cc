// End-to-end pipeline throughput: the batch execution path (DESIGN.md §11)
// against per-tuple delivery on a realistic operator chain.
//
//   source -> selection (keep half) -> projection (identity)
//          -> map (rewrite attr 0)
//          -> tumbling aggregate (sum, 10 ms windows) -> counting sink
//
// Under kGts every non-sink operator sits behind a decoupling queue, so
// one element crosses four queues; kOts runs the same queues with one
// worker thread each (4 threads). Scenarios cross {gts_1t, ots_4t} x {small, string
// payloads} x {per-tuple, emit_batch_size 1, emit_batch_size 64}:
//
//   per_tuple : default EngineOptions — every hop is one virtual
//               Receive + one queue element + one notify check.
//   batch1    : emit_batch_size = 1. Must be indistinguishable from
//               per_tuple (the engine keeps the per-tuple path), guarding
//               against the batch plumbing taxing the default path.
//   batch64   : sources bundle 64 elements per TupleBatch and queues
//               deliver each drained run as one ReceiveBatch call.
//   batch64_col : EngineOptions::columnar (DESIGN.md §17) — sources
//               scatter 64 elements into typed ColumnarBatches, the
//               selection/map run as typed column kernels, and queues box
//               whole batches; no per-tuple Value vectors on the hot path.
//
// Input tuples are materialized before the clock starts; the stopwatch
// covers feeding through WaitUntilFinished, so it measures transfer +
// operator work, not tuple construction. Results go to stdout and
// BENCH_pipeline.json (override with --out <path>).

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "bench_smoke.h"
#include "graph/query_graph.h"
#include "operators/map_op.h"
#include "operators/projection.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/tumbling_aggregate.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/table.h"

namespace flexstream {
namespace {

struct Pipeline {
  QueryGraph graph;
  Source* src = nullptr;
  CountingSink* sink = nullptr;
};

void BuildPipeline(Pipeline* p, bool string_payload) {
  QueryBuilder qb(&p->graph);
  p->src = qb.AddSource("src");
  // Typed-column forms: identical answers on the row path (synthesized
  // row wrappers), vectorized kernels when the engine runs columnar.
  p->src->DeclareOutputSchema(
      string_payload ? MakeSchema({Value::Type::kInt64, Value::Type::kString})
                     : MakeSchema({Value::Type::kInt64}));
  Node* sel = qb.Select(p->src, "sel",
                        Int64ColumnPredicate{
                            0, [](int64_t v) { return v % 2 == 0; }});
  Node* proj = qb.Project(sel, "proj", {});
  Node* map = qb.Map(proj, "map",
                     Int64ColumnMap{0, [](int64_t v) { return v + 1; }});
  TumblingAggregate::Options agg;
  agg.kind = AggregateKind::kSum;
  agg.value_attr = 0;
  agg.window_micros = 10'000;
  Node* sum = qb.Tumbling(map, "agg", agg);
  p->sink = qb.CountSink(sum, "out");
}

std::vector<Tuple> MakeInput(bool string_payload, int64_t total) {
  std::vector<Tuple> input;
  input.reserve(total);
  for (int64_t i = 0; i < total; ++i) {
    if (string_payload) {
      input.push_back(Tuple({Value(i), Value(std::string("payload-") +
                                            std::to_string(i % 97) +
                                            "-0123456789abcdef")},
                            i));
    } else {
      input.push_back(Tuple::OfInt(i, i));
    }
  }
  return input;
}

struct RunResult {
  std::string scenario;
  std::string mode;
  std::string payload;
  size_t emit_batch_size = 0;  // 0 = per-tuple baseline (default options)
  bool columnar = false;
  size_t threads = 0;
  int64_t tuples = 0;
  int64_t sink_count = 0;
  double seconds = 0.0;
  double tuples_per_sec = 0.0;
};

RunResult RunOnce(ExecutionMode mode, bool string_payload,
                  size_t emit_batch_size, bool columnar, int64_t total) {
  Pipeline p;
  BuildPipeline(&p, string_payload);
  std::vector<Tuple> input = MakeInput(string_payload, total);

  StreamEngine engine(&p.graph);
  EngineOptions options;
  options.mode = mode;
  if (emit_batch_size > 0) options.emit_batch_size = emit_batch_size;
  options.columnar = columnar;
  CHECK_OK(engine.Configure(options));

  Stopwatch sw;
  CHECK_OK(engine.Start());
  for (Tuple& tuple : input) p.src->Push(std::move(tuple));
  p.src->Close(total);
  CHECK(engine.WaitUntilFinishedFor(std::chrono::seconds(300)));
  CHECK_OK(engine.RunResult());
  const double seconds = sw.ElapsedSeconds();
  const size_t threads = engine.WorkerThreadCount();
  engine.Stop();

  RunResult r;
  r.mode = ExecutionModeToString(mode);
  r.payload = string_payload ? "string" : "small";
  r.emit_batch_size = emit_batch_size;
  r.columnar = columnar;
  r.scenario = r.mode + "_" + std::to_string(threads) + "t_" + r.payload +
               (emit_batch_size == 0
                    ? "_per_tuple"
                    : "_batch" + std::to_string(emit_batch_size)) +
               (columnar ? "_col" : "");
  r.threads = threads;
  r.tuples = total;
  r.sink_count = p.sink->count();
  r.seconds = seconds;
  r.tuples_per_sec = static_cast<double>(total) / seconds;
  return r;
}

void WriteJson(const std::vector<RunResult>& results,
               const std::vector<std::pair<std::string, double>>& ratios,
               const std::string& path) {
  std::ofstream out(path);
  CHECK(out.good()) << "cannot write " << path;
  out << "{\n  \"bench\": \"pipeline_throughput\",\n  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"mode\": \""
        << r.mode << "\", \"payload\": \"" << r.payload
        << "\", \"emit_batch_size\": " << r.emit_batch_size
        << ", \"columnar\": " << (r.columnar ? 1 : 0)
        << ", \"threads\": " << r.threads << ", \"tuples\": " << r.tuples
        << ", \"sink_count\": " << r.sink_count
        << ", \"seconds\": " << r.seconds << ", \"tuples_per_sec\": "
        << static_cast<int64_t>(r.tuples_per_sec) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ratios\": {\n";
  for (size_t i = 0; i < ratios.size(); ++i) {
    out << "    \"" << ratios[i].first << "\": "
        << Table::Num(ratios[i].second, 2)
        << (i + 1 < ratios.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::cout << "wrote " << path << "\n";
}

int Main(int argc, char** argv) {
  int64_t small_count = bench::SmokeScaled<int64_t>(1'000'000, 40'000);
  int64_t string_count = bench::SmokeScaled<int64_t>(300'000, 20'000);
  int reps = bench::SmokeScaled(3, 1);
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      small_count = 40'000;
      string_count = 20'000;
      reps = 1;
    } else if (arg == "--count" && i + 1 < argc) {
      small_count = std::stoll(argv[++i]);
      string_count = small_count / 3;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--count <n>] [--reps <n>] [--out <path>]\n";
      return 1;
    }
  }

  // The bench measures the delivery path, not the stats clock.
  SetStatsCollectionEnabled(false);

  // Best-of-N with the three delivery variants of one scenario interleaved
  // rep by rep, so drifting background load on a shared box hits all
  // variants alike.
  std::vector<RunResult> results;
  auto run_scenario = [&](ExecutionMode mode, bool string_payload,
                          int64_t total) {
    struct Variant {
      size_t batch;
      bool columnar;
    };
    const std::vector<Variant> variants = {
        {0, false}, {1, false}, {64, false}, {64, true}};
    std::vector<RunResult> best(variants.size());
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t v = 0; v < variants.size(); ++v) {
        RunResult r = RunOnce(mode, string_payload, variants[v].batch,
                              variants[v].columnar, total);
        if (rep == 0 || r.tuples_per_sec > best[v].tuples_per_sec) {
          if (rep > 0) {
            CHECK(r.sink_count == best[v].sink_count)
                << r.scenario << ": nondeterministic sink count";
          }
          best[v] = r;
        }
      }
    }
    // Identical input through identical windows: every variant must agree
    // on the aggregate count (batching never changes semantics).
    for (size_t v = 1; v < best.size(); ++v) {
      CHECK(best[v].sink_count == best[0].sink_count)
          << best[v].scenario << " vs " << best[0].scenario;
    }
    for (RunResult& r : best) results.push_back(std::move(r));
  };

  for (const bool string_payload : {false, true}) {
    const int64_t total = string_payload ? string_count : small_count;
    run_scenario(ExecutionMode::kGts, string_payload, total);
    run_scenario(ExecutionMode::kOts, string_payload, total);
  }

  Table t({"scenario", "payload", "batch", "col", "threads", "tuples",
           "wall_s", "tuples_per_sec"});
  for (const RunResult& r : results) {
    t.AddRow({r.scenario, r.payload, Table::Int(r.emit_batch_size),
              r.columnar ? "yes" : "no",
              Table::Int(r.threads), Table::Int(r.tuples),
              Table::Num(r.seconds, 3),
              Table::Int(static_cast<int64_t>(r.tuples_per_sec))});
  }
  t.Print(std::cout);

  auto rate_of = [&](const std::string& scenario) {
    for (const RunResult& r : results) {
      if (r.scenario == scenario) return r.tuples_per_sec;
    }
    CHECK(false) << "missing scenario " << scenario;
    return 0.0;
  };
  const std::vector<std::pair<std::string, double>> ratios = {
      {"batch64_vs_per_tuple_small_1t",
       rate_of("gts_1t_small_batch64") / rate_of("gts_1t_small_per_tuple")},
      {"batch1_vs_per_tuple_small_1t",
       rate_of("gts_1t_small_batch1") / rate_of("gts_1t_small_per_tuple")},
      {"batch64_vs_per_tuple_string_1t",
       rate_of("gts_1t_string_batch64") / rate_of("gts_1t_string_per_tuple")},
      {"batch64_vs_per_tuple_small_4t",
       rate_of("ots_4t_small_batch64") / rate_of("ots_4t_small_per_tuple")},
      {"batch64_vs_per_tuple_string_4t",
       rate_of("ots_4t_string_batch64") / rate_of("ots_4t_string_per_tuple")},
      // Columnar vs the row-wise batch path at the same batch size — the
      // representation win alone (DESIGN.md §17 targets: >= 2x small,
      // >= 1.5x string on the 1-thread chain).
      {"columnar64_vs_batch64_small_1t",
       rate_of("gts_1t_small_batch64_col") / rate_of("gts_1t_small_batch64")},
      {"columnar64_vs_batch64_string_1t",
       rate_of("gts_1t_string_batch64_col") /
           rate_of("gts_1t_string_batch64")},
      {"columnar64_vs_batch64_small_4t",
       rate_of("ots_4t_small_batch64_col") / rate_of("ots_4t_small_batch64")},
      {"columnar64_vs_batch64_string_4t",
       rate_of("ots_4t_string_batch64_col") /
           rate_of("ots_4t_string_batch64")},
      {"columnar64_vs_per_tuple_small_1t",
       rate_of("gts_1t_small_batch64_col") /
           rate_of("gts_1t_small_per_tuple")},
  };
  std::cout << "\n-- throughput ratios --\n";
  for (const auto& [name, value] : ratios) {
    std::cout << "  " << name << ": " << Table::Num(value, 2) << "x\n";
  }

  WriteJson(results, ratios, out_path);
  return 0;
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) { return flexstream::Main(argc, argv); }

// Key-partitioned sharding throughput (ISSUE 6, DESIGN.md §13): does
// splitting a stateful operator into N replicas behind a hash Router
// actually buy ~N-fold throughput, and what does the ordered merge cost
// over the arrival-order one?
//
// Scenarios:
//   join_scaling  : Zipf-keyed symmetric-hash-join chain (two sources ->
//                   join -> sink) where the join is I/O-bound — it blocks
//                   kBlockingMicros per element (SetSimulatedBlockingMicros,
//                   modeling remote lookups). Blocking waits overlap across
//                   the replica threads, so sharding scales even on one
//                   core. Measured unsharded and at {2, 4} shards
//                   (unordered merge — multi-input operators cannot use the
//                   ordered one); sink counts must agree across all shard
//                   counts (key-partitioning never changes the match set).
//   merge_overhead: grouped windowed aggregate under the same blocking
//                   cost, sharded {2, 4} with the ordered merge vs the
//                   arrival-order merge — the price of restoring the exact
//                   split-point sequence.
//
// Reported: median wall seconds over the reps, tuples/sec, and the speedup
// vs unsharded. The acceptance bar is speedup_at_4 >= 3 on the join chain.
// Results go to stdout and BENCH_shard.json (override with --out <path>).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/shard.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "tuple/tuple.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"

#include "bench_smoke.h"

namespace flexstream {
namespace {

const int64_t kFeedPerSource = bench::SmokeScaled<int64_t>(1'200, 150);
const double kBlockingMicros = bench::SmokeScaled(200.0, 50.0);
const int kReps = bench::SmokeScaled(3, 1);
constexpr int64_t kKeyDomain = 1'000;
constexpr double kZipfSkew = 0.8;
// The join window spans the whole stream: SHJ expiration is driven by
// execution-order watermarks, so with a narrow window the match *set*
// depends on scheduler skew between the two inputs (one side running
// ahead expires the other's entries before their in-band partners
// arrive). A full-span window makes the match set schedule-independent
// — that is what lets the bench CHECK identical counts across shard
// counts. State stays bounded at 2 * kFeedPerSource tuples.
const AppTime kJoinWindowMicros = static_cast<AppTime>(kFeedPerSource) + 2;
constexpr auto kWait = std::chrono::minutes(5);

/// The Zipf-keyed input stream: (key, payload) at 1 us spacing. The same
/// seed feeds every configuration, so all runs see identical data.
std::vector<Tuple> KeyedStream(uint64_t seed, int64_t count) {
  Rng rng(seed);
  std::vector<Tuple> stream;
  stream.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    const int64_t key = rng.Zipf(kKeyDomain, kZipfSkew);
    stream.push_back(Tuple({Value(key), Value(i)}, i + 1));
  }
  return stream;
}

struct RunResultRow {
  double seconds = 0.0;
  int64_t sink_count = 0;
};

RunResultRow RunJoin(size_t shards) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("left");
  Source* right = qb.AddSource("right");
  SymmetricHashJoin* join = qb.HashJoin(left, right, "join", kJoinWindowMicros);
  join->SetSimulatedBlockingMicros(kBlockingMicros);
  CountingSink* sink = qb.CountSink(join, "sink");
  if (shards > 1) {
    ShardOptions options;
    options.shards = shards;
    options.ordered = false;  // multi-input: arrival-order merge
    CHECK_OK(ShardOperator(&graph, join, options).status());
  }

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  CHECK_OK(engine.Configure(options));

  const std::vector<Tuple> left_stream = KeyedStream(11, kFeedPerSource);
  const std::vector<Tuple> right_stream = KeyedStream(12, kFeedPerSource);
  Stopwatch sw;
  CHECK_OK(engine.Start());
  for (int64_t i = 0; i < kFeedPerSource; ++i) {
    left->Push(left_stream[i]);
    right->Push(right_stream[i]);
  }
  left->Close(kFeedPerSource + 1);
  right->Close(kFeedPerSource + 1);
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());

  RunResultRow r;
  r.seconds = seconds;
  r.sink_count = sink->count();
  return r;
}

RunResultRow RunAggregate(size_t shards, bool ordered) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = 1'000;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
  agg->SetSimulatedBlockingMicros(kBlockingMicros);
  CountingSink* sink = qb.CountSink(agg, "sink");
  if (shards > 1) {
    ShardOptions options;
    options.shards = shards;
    options.ordered = ordered;
    CHECK_OK(ShardOperator(&graph, agg, options).status());
  }

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  CHECK_OK(engine.Configure(options));

  const std::vector<Tuple> stream = KeyedStream(21, kFeedPerSource);
  Stopwatch sw;
  CHECK_OK(engine.Start());
  for (const Tuple& t : stream) src->Push(t);
  src->Close(kFeedPerSource + 1);
  CHECK(engine.WaitUntilFinishedFor(kWait));
  const double seconds = sw.ElapsedSeconds();
  CHECK_OK(engine.RunResult());
  // One output per input, sharded or not.
  CHECK(sink->count() == kFeedPerSource);

  RunResultRow r;
  r.seconds = seconds;
  r.sink_count = sink->count();
  return r;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace flexstream

int main(int argc, char** argv) {
  using namespace flexstream;

  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  const std::vector<size_t> shard_counts = {1, 2, 4};
  const double fed_join = static_cast<double>(2 * kFeedPerSource);
  const double fed_agg = static_cast<double>(kFeedPerSource);

  // Join chain: unsharded vs {2, 4} shards.
  std::vector<double> join_median(shard_counts.size());
  std::vector<int64_t> join_counts(shard_counts.size(), 0);
  for (size_t k = 0; k < shard_counts.size(); ++k) {
    std::vector<double> secs;
    for (int rep = 0; rep < kReps; ++rep) {
      const RunResultRow r = RunJoin(shard_counts[k]);
      secs.push_back(r.seconds);
      join_counts[k] = r.sink_count;
    }
    join_median[k] = Median(secs);
  }
  // Key partitioning must not change the match set.
  for (size_t k = 1; k < shard_counts.size(); ++k) {
    CHECK(join_counts[k] == join_counts[0])
        << "sharded join emitted " << join_counts[k] << " matches, unsharded "
        << join_counts[0];
  }
  const double speedup_at_4 = join_median[0] / join_median.back();

  // Ordered-vs-unordered merge overhead on the aggregate.
  const std::vector<size_t> merge_shards = {2, 4};
  std::vector<double> ordered_median(merge_shards.size());
  std::vector<double> unordered_median(merge_shards.size());
  for (size_t k = 0; k < merge_shards.size(); ++k) {
    std::vector<double> ord_secs;
    std::vector<double> unord_secs;
    for (int rep = 0; rep < kReps; ++rep) {
      ord_secs.push_back(RunAggregate(merge_shards[k], true).seconds);
      unord_secs.push_back(RunAggregate(merge_shards[k], false).seconds);
    }
    ordered_median[k] = Median(ord_secs);
    unordered_median[k] = Median(unord_secs);
  }

  Table table({"scenario", "shards", "seconds", "tuples_per_sec", "speedup"});
  for (size_t k = 0; k < shard_counts.size(); ++k) {
    table.AddRow({"join_zipf", std::to_string(shard_counts[k]),
                  Table::Num(join_median[k], 4),
                  Table::Num(fed_join / join_median[k], 0),
                  Table::Num(join_median[0] / join_median[k], 2)});
  }
  for (size_t k = 0; k < merge_shards.size(); ++k) {
    table.AddRow({"agg_ordered", std::to_string(merge_shards[k]),
                  Table::Num(ordered_median[k], 4),
                  Table::Num(fed_agg / ordered_median[k], 0), "-"});
    table.AddRow({"agg_unordered", std::to_string(merge_shards[k]),
                  Table::Num(unordered_median[k], 4),
                  Table::Num(fed_agg / unordered_median[k], 0), "-"});
  }
  table.Print(std::cout);
  std::cout << "speedup at 4 shards: " << Table::Num(speedup_at_4, 2)
            << " (target >= 3)\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"shard\",\n"
      << "  \"feed_per_source\": " << kFeedPerSource << ",\n"
      << "  \"blocking_micros\": " << kBlockingMicros << ",\n"
      << "  \"zipf_domain\": " << kKeyDomain << ",\n"
      << "  \"zipf_skew\": " << kZipfSkew << ",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"join_scaling\": [\n";
  for (size_t k = 0; k < shard_counts.size(); ++k) {
    out << "    {\"shards\": " << shard_counts[k]
        << ", \"seconds\": " << join_median[k]
        << ", \"tuples_per_sec\": " << fed_join / join_median[k]
        << ", \"speedup\": " << join_median[0] / join_median[k]
        << ", \"matches\": " << join_counts[k] << "}"
        << (k + 1 < shard_counts.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"merge_overhead\": [\n";
  for (size_t k = 0; k < merge_shards.size(); ++k) {
    const double overhead_pct = 100.0 *
        (ordered_median[k] - unordered_median[k]) / unordered_median[k];
    out << "    {\"shards\": " << merge_shards[k]
        << ", \"ordered_seconds\": " << ordered_median[k]
        << ", \"unordered_seconds\": " << unordered_median[k]
        << ", \"ordered_overhead_pct\": " << overhead_pct << "}"
        << (k + 1 < merge_shards.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_at_4\": " << speedup_at_4 << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

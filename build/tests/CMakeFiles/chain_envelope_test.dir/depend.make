# Empty dependencies file for chain_envelope_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/chain_envelope_test.dir/chain_envelope_test.cc.o"
  "CMakeFiles/chain_envelope_test.dir/chain_envelope_test.cc.o.d"
  "chain_envelope_test"
  "chain_envelope_test.pdb"
  "chain_envelope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_envelope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hmts_test.dir/hmts_test.cc.o"
  "CMakeFiles/hmts_test.dir/hmts_test.cc.o.d"
  "hmts_test"
  "hmts_test.pdb"
  "hmts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hmts_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/queue_op_test.dir/queue_op_test.cc.o"
  "CMakeFiles/queue_op_test.dir/queue_op_test.cc.o.d"
  "queue_op_test"
  "queue_op_test.pdb"
  "queue_op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

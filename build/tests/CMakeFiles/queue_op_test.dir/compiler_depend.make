# Empty compiler generated dependencies file for queue_op_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/util_clock_busy_test.dir/util_clock_busy_test.cc.o"
  "CMakeFiles/util_clock_busy_test.dir/util_clock_busy_test.cc.o.d"
  "util_clock_busy_test"
  "util_clock_busy_test.pdb"
  "util_clock_busy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_clock_busy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for util_clock_busy_test.
# This may be replaced when dependencies are built.

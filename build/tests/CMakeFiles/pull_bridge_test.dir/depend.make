# Empty dependencies file for pull_bridge_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pull_bridge_test.dir/pull_bridge_test.cc.o"
  "CMakeFiles/pull_bridge_test.dir/pull_bridge_test.cc.o.d"
  "pull_bridge_test"
  "pull_bridge_test.pdb"
  "pull_bridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pull_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

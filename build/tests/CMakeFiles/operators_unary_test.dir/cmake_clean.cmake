file(REMOVE_RECURSE
  "CMakeFiles/operators_unary_test.dir/operators_unary_test.cc.o"
  "CMakeFiles/operators_unary_test.dir/operators_unary_test.cc.o.d"
  "operators_unary_test"
  "operators_unary_test.pdb"
  "operators_unary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operators_unary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

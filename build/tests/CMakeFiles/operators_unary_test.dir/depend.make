# Empty dependencies file for operators_unary_test.
# This may be replaced when dependencies are built.

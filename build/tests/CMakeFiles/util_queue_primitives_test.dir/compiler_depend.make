# Empty compiler generated dependencies file for util_queue_primitives_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/util_queue_primitives_test.dir/util_queue_primitives_test.cc.o"
  "CMakeFiles/util_queue_primitives_test.dir/util_queue_primitives_test.cc.o.d"
  "util_queue_primitives_test"
  "util_queue_primitives_test.pdb"
  "util_queue_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_queue_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

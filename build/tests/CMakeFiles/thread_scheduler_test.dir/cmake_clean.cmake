file(REMOVE_RECURSE
  "CMakeFiles/thread_scheduler_test.dir/thread_scheduler_test.cc.o"
  "CMakeFiles/thread_scheduler_test.dir/thread_scheduler_test.cc.o.d"
  "thread_scheduler_test"
  "thread_scheduler_test.pdb"
  "thread_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rate_source_test.dir/rate_source_test.cc.o"
  "CMakeFiles/rate_source_test.dir/rate_source_test.cc.o.d"
  "rate_source_test"
  "rate_source_test.pdb"
  "rate_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

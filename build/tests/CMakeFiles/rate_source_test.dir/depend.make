# Empty dependencies file for rate_source_test.
# This may be replaced when dependencies are built.

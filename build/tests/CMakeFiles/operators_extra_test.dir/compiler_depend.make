# Empty compiler generated dependencies file for operators_extra_test.
# This may be replaced when dependencies are built.

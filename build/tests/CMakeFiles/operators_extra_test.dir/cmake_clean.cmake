file(REMOVE_RECURSE
  "CMakeFiles/operators_extra_test.dir/operators_extra_test.cc.o"
  "CMakeFiles/operators_extra_test.dir/operators_extra_test.cc.o.d"
  "operators_extra_test"
  "operators_extra_test.pdb"
  "operators_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operators_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sim_fig07_overhead_model.
# This may be replaced when dependencies are built.

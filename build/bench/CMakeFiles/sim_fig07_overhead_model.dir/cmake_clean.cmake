file(REMOVE_RECURSE
  "CMakeFiles/sim_fig07_overhead_model.dir/sim_fig07_overhead_model.cc.o"
  "CMakeFiles/sim_fig07_overhead_model.dir/sim_fig07_overhead_model.cc.o.d"
  "sim_fig07_overhead_model"
  "sim_fig07_overhead_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fig07_overhead_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

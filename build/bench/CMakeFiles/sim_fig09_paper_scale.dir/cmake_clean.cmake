file(REMOVE_RECURSE
  "CMakeFiles/sim_fig09_paper_scale.dir/sim_fig09_paper_scale.cc.o"
  "CMakeFiles/sim_fig09_paper_scale.dir/sim_fig09_paper_scale.cc.o.d"
  "sim_fig09_paper_scale"
  "sim_fig09_paper_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fig09_paper_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

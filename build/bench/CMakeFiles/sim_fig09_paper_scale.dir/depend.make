# Empty dependencies file for sim_fig09_paper_scale.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_vo_construction.dir/fig11_vo_construction.cc.o"
  "CMakeFiles/fig11_vo_construction.dir/fig11_vo_construction.cc.o.d"
  "fig11_vo_construction"
  "fig11_vo_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vo_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_vo_construction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_gts_ots_di.dir/fig07_gts_ots_di.cc.o"
  "CMakeFiles/fig07_gts_ots_di.dir/fig07_gts_ots_di.cc.o.d"
  "fig07_gts_ots_di"
  "fig07_gts_ots_di.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gts_ots_di.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

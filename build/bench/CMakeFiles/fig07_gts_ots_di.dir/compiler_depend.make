# Empty compiler generated dependencies file for fig07_gts_ots_di.
# This may be replaced when dependencies are built.

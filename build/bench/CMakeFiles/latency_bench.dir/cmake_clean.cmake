file(REMOVE_RECURSE
  "CMakeFiles/latency_bench.dir/latency_bench.cc.o"
  "CMakeFiles/latency_bench.dir/latency_bench.cc.o.d"
  "latency_bench"
  "latency_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

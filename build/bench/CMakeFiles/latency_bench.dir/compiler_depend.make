# Empty compiler generated dependencies file for latency_bench.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_batch_quantum.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_quantum.dir/ablation_batch_quantum.cc.o"
  "CMakeFiles/ablation_batch_quantum.dir/ablation_batch_quantum.cc.o.d"
  "ablation_batch_quantum"
  "ablation_batch_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig09_10_hmts_vs_gts.
# This may be replaced when dependencies are built.

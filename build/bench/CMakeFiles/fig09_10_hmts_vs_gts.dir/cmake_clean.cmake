file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_hmts_vs_gts.dir/fig09_10_hmts_vs_gts.cc.o"
  "CMakeFiles/fig09_10_hmts_vs_gts.dir/fig09_10_hmts_vs_gts.cc.o.d"
  "fig09_10_hmts_vs_gts"
  "fig09_10_hmts_vs_gts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_hmts_vs_gts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

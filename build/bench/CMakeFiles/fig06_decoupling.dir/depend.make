# Empty dependencies file for fig06_decoupling.
# This may be replaced when dependencies are built.

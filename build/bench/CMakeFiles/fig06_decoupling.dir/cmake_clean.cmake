file(REMOVE_RECURSE
  "CMakeFiles/fig06_decoupling.dir/fig06_decoupling.cc.o"
  "CMakeFiles/fig06_decoupling.dir/fig06_decoupling.cc.o.d"
  "fig06_decoupling"
  "fig06_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

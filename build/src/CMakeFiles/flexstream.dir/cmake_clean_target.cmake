file(REMOVE_RECURSE
  "libflexstream.a"
)

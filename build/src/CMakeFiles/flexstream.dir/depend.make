# Empty dependencies file for flexstream.
# This may be replaced when dependencies are built.

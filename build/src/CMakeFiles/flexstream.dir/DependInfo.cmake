
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/query_builder.cc" "src/CMakeFiles/flexstream.dir/api/query_builder.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/api/query_builder.cc.o.d"
  "/root/repo/src/api/stream_engine.cc" "src/CMakeFiles/flexstream.dir/api/stream_engine.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/api/stream_engine.cc.o.d"
  "/root/repo/src/core/adaptive_placement.cc" "src/CMakeFiles/flexstream.dir/core/adaptive_placement.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/core/adaptive_placement.cc.o.d"
  "/root/repo/src/core/backlog_controller.cc" "src/CMakeFiles/flexstream.dir/core/backlog_controller.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/core/backlog_controller.cc.o.d"
  "/root/repo/src/core/hmts.cc" "src/CMakeFiles/flexstream.dir/core/hmts.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/core/hmts.cc.o.d"
  "/root/repo/src/core/thread_scheduler.cc" "src/CMakeFiles/flexstream.dir/core/thread_scheduler.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/core/thread_scheduler.cc.o.d"
  "/root/repo/src/graph/dot_export.cc" "src/CMakeFiles/flexstream.dir/graph/dot_export.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/graph/dot_export.cc.o.d"
  "/root/repo/src/graph/node.cc" "src/CMakeFiles/flexstream.dir/graph/node.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/graph/node.cc.o.d"
  "/root/repo/src/graph/query_graph.cc" "src/CMakeFiles/flexstream.dir/graph/query_graph.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/graph/query_graph.cc.o.d"
  "/root/repo/src/graph/random_dag.cc" "src/CMakeFiles/flexstream.dir/graph/random_dag.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/graph/random_dag.cc.o.d"
  "/root/repo/src/operators/aggregate.cc" "src/CMakeFiles/flexstream.dir/operators/aggregate.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/aggregate.cc.o.d"
  "/root/repo/src/operators/count_window_aggregate.cc" "src/CMakeFiles/flexstream.dir/operators/count_window_aggregate.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/count_window_aggregate.cc.o.d"
  "/root/repo/src/operators/distinct.cc" "src/CMakeFiles/flexstream.dir/operators/distinct.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/distinct.cc.o.d"
  "/root/repo/src/operators/latency_sink.cc" "src/CMakeFiles/flexstream.dir/operators/latency_sink.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/latency_sink.cc.o.d"
  "/root/repo/src/operators/map_op.cc" "src/CMakeFiles/flexstream.dir/operators/map_op.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/map_op.cc.o.d"
  "/root/repo/src/operators/multiway_join.cc" "src/CMakeFiles/flexstream.dir/operators/multiway_join.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/multiway_join.cc.o.d"
  "/root/repo/src/operators/operator.cc" "src/CMakeFiles/flexstream.dir/operators/operator.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/operator.cc.o.d"
  "/root/repo/src/operators/projection.cc" "src/CMakeFiles/flexstream.dir/operators/projection.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/projection.cc.o.d"
  "/root/repo/src/operators/router.cc" "src/CMakeFiles/flexstream.dir/operators/router.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/router.cc.o.d"
  "/root/repo/src/operators/selection.cc" "src/CMakeFiles/flexstream.dir/operators/selection.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/selection.cc.o.d"
  "/root/repo/src/operators/sink.cc" "src/CMakeFiles/flexstream.dir/operators/sink.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/sink.cc.o.d"
  "/root/repo/src/operators/source.cc" "src/CMakeFiles/flexstream.dir/operators/source.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/source.cc.o.d"
  "/root/repo/src/operators/symmetric_hash_join.cc" "src/CMakeFiles/flexstream.dir/operators/symmetric_hash_join.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/symmetric_hash_join.cc.o.d"
  "/root/repo/src/operators/symmetric_nl_join.cc" "src/CMakeFiles/flexstream.dir/operators/symmetric_nl_join.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/symmetric_nl_join.cc.o.d"
  "/root/repo/src/operators/tumbling_aggregate.cc" "src/CMakeFiles/flexstream.dir/operators/tumbling_aggregate.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/tumbling_aggregate.cc.o.d"
  "/root/repo/src/operators/union_op.cc" "src/CMakeFiles/flexstream.dir/operators/union_op.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/union_op.cc.o.d"
  "/root/repo/src/operators/window.cc" "src/CMakeFiles/flexstream.dir/operators/window.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/operators/window.cc.o.d"
  "/root/repo/src/placement/chain_vo_builder.cc" "src/CMakeFiles/flexstream.dir/placement/chain_vo_builder.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/placement/chain_vo_builder.cc.o.d"
  "/root/repo/src/placement/evaluator.cc" "src/CMakeFiles/flexstream.dir/placement/evaluator.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/placement/evaluator.cc.o.d"
  "/root/repo/src/placement/partitioning.cc" "src/CMakeFiles/flexstream.dir/placement/partitioning.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/placement/partitioning.cc.o.d"
  "/root/repo/src/placement/segment_vo_builder.cc" "src/CMakeFiles/flexstream.dir/placement/segment_vo_builder.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/placement/segment_vo_builder.cc.o.d"
  "/root/repo/src/placement/static_queue_placement.cc" "src/CMakeFiles/flexstream.dir/placement/static_queue_placement.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/placement/static_queue_placement.cc.o.d"
  "/root/repo/src/pull/onc_operator.cc" "src/CMakeFiles/flexstream.dir/pull/onc_operator.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/pull/onc_operator.cc.o.d"
  "/root/repo/src/pull/proxy_queue.cc" "src/CMakeFiles/flexstream.dir/pull/proxy_queue.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/pull/proxy_queue.cc.o.d"
  "/root/repo/src/pull/pull_bridge.cc" "src/CMakeFiles/flexstream.dir/pull/pull_bridge.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/pull/pull_bridge.cc.o.d"
  "/root/repo/src/pull/pull_vo.cc" "src/CMakeFiles/flexstream.dir/pull/pull_vo.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/pull/pull_vo.cc.o.d"
  "/root/repo/src/queue/queue_op.cc" "src/CMakeFiles/flexstream.dir/queue/queue_op.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/queue/queue_op.cc.o.d"
  "/root/repo/src/sched/chain_strategy.cc" "src/CMakeFiles/flexstream.dir/sched/chain_strategy.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/chain_strategy.cc.o.d"
  "/root/repo/src/sched/extra_strategies.cc" "src/CMakeFiles/flexstream.dir/sched/extra_strategies.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/extra_strategies.cc.o.d"
  "/root/repo/src/sched/fifo_strategy.cc" "src/CMakeFiles/flexstream.dir/sched/fifo_strategy.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/fifo_strategy.cc.o.d"
  "/root/repo/src/sched/gts.cc" "src/CMakeFiles/flexstream.dir/sched/gts.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/gts.cc.o.d"
  "/root/repo/src/sched/ots.cc" "src/CMakeFiles/flexstream.dir/sched/ots.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/ots.cc.o.d"
  "/root/repo/src/sched/partition.cc" "src/CMakeFiles/flexstream.dir/sched/partition.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/partition.cc.o.d"
  "/root/repo/src/sched/round_robin_strategy.cc" "src/CMakeFiles/flexstream.dir/sched/round_robin_strategy.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/round_robin_strategy.cc.o.d"
  "/root/repo/src/sched/segment_strategy.cc" "src/CMakeFiles/flexstream.dir/sched/segment_strategy.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/segment_strategy.cc.o.d"
  "/root/repo/src/sched/strategy.cc" "src/CMakeFiles/flexstream.dir/sched/strategy.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sched/strategy.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/flexstream.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/capacity.cc" "src/CMakeFiles/flexstream.dir/stats/capacity.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/stats/capacity.cc.o.d"
  "/root/repo/src/stats/ewma.cc" "src/CMakeFiles/flexstream.dir/stats/ewma.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/stats/ewma.cc.o.d"
  "/root/repo/src/stats/op_stats.cc" "src/CMakeFiles/flexstream.dir/stats/op_stats.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/stats/op_stats.cc.o.d"
  "/root/repo/src/stats/report.cc" "src/CMakeFiles/flexstream.dir/stats/report.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/stats/report.cc.o.d"
  "/root/repo/src/tuple/tuple.cc" "src/CMakeFiles/flexstream.dir/tuple/tuple.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/tuple/tuple.cc.o.d"
  "/root/repo/src/tuple/value.cc" "src/CMakeFiles/flexstream.dir/tuple/value.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/tuple/value.cc.o.d"
  "/root/repo/src/util/busy_work.cc" "src/CMakeFiles/flexstream.dir/util/busy_work.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/busy_work.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/flexstream.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/clock.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/flexstream.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/flexstream.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/flexstream.dir/util/random.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/flexstream.dir/util/status.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/flexstream.dir/util/table.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/util/table.cc.o.d"
  "/root/repo/src/workload/phase.cc" "src/CMakeFiles/flexstream.dir/workload/phase.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/workload/phase.cc.o.d"
  "/root/repo/src/workload/rate_source.cc" "src/CMakeFiles/flexstream.dir/workload/rate_source.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/workload/rate_source.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/flexstream.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/flexstream.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for scheduling_playground.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scheduling_playground.dir/scheduling_playground.cpp.o"
  "CMakeFiles/scheduling_playground.dir/scheduling_playground.cpp.o.d"
  "scheduling_playground"
  "scheduling_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Bridging pull-based VOs into push-based query graphs.
//
// Section 3.3: "If the push-based approach relies on queues, the concept
// [virtual operators] can be implemented with proxies analogously to the
// pull-based approach." PullVoOperator is that construction: a push
// operator whose implementation is an entire pull-based VO. Arriving
// elements are fed into per-port OncBuffers (the VO's leaves); the
// operator then pulls the VO's root until it reports pending, emitting
// every produced element downstream. Because the buffers drain within the
// same Process call, the VO adds no queueing delay — it behaves like any
// other virtual operator from the scheduler's point of view.

#ifndef FLEXSTREAM_PULL_PULL_BRIDGE_H_
#define FLEXSTREAM_PULL_PULL_BRIDGE_H_

#include <memory>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "pull/onc_operator.h"
#include "pull/pull_vo.h"

namespace flexstream {

class PullVoOperator : public Operator {
 public:
  /// Takes ownership of a PullVo whose leaves include `inputs` — one
  /// OncBuffer per input port, in port order. The VO must have a unique
  /// root. Elements received on port p are pushed into inputs[p].
  PullVoOperator(std::string name, std::unique_ptr<PullVo> vo,
                 std::vector<OncBuffer*> inputs);

  void Reset() override;

 protected:
  void Process(const Tuple& tuple, int port) override;
  void OnAllInputsClosed(AppTime timestamp) override;

 private:
  /// Pulls the root until pending/end, emitting all data produced.
  void DrainRoot();

  std::unique_ptr<PullVo> vo_;
  std::vector<OncBuffer*> inputs_;
  OncOperator* root_ = nullptr;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_PULL_PULL_BRIDGE_H_

// Pull-based virtual operators (Section 3.2).
//
// A PullVo owns a tree of ONC operators connected through proxies and
// exposes the tree's unique root: "in the final step, we make sure that
// the scheduler only calls the next method for the root of the VO."
// The tree restriction is enforced structurally — each operator is
// registered with exactly one consumer — which is the pull paradigm's
// fundamental limitation compared to push-based VOs (Section 3.4).

#ifndef FLEXSTREAM_PULL_PULL_VO_H_
#define FLEXSTREAM_PULL_PULL_VO_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "pull/onc_operator.h"
#include "util/status.h"

namespace flexstream {

class PullVo {
 public:
  explicit PullVo(std::string name);

  const std::string& name() const { return name_; }

  /// Transfers ownership of an operator into the VO and returns it.
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto op = std::make_unique<T>(std::forward<Args>(args)...);
    T* ptr = op.get();
    ops_.push_back(std::move(op));
    return ptr;
  }

  /// Declares `child` an input of `parent`. Fails if `child` already has a
  /// consumer — pull-based VOs cannot share subqueries (Section 3.4).
  Status Link(OncOperator* child, OncOperator* parent);

  /// The unique operator without a consumer. Fails unless exactly one
  /// exists (the tree's root).
  Result<OncOperator*> Root() const;

  /// Opens all operators, then repeatedly pulls the root. Returns all data
  /// elements produced until end-of-stream. Pending results are counted
  /// (they model wasted scheduler invocations) but not returned.
  std::vector<Tuple> DrainAll();

  /// Pending results observed by the last DrainAll().
  int64_t last_pending_count() const { return last_pending_count_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<OncOperator>> ops_;
  std::unordered_set<const OncOperator*> has_consumer_;
  int64_t last_pending_count_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_PULL_PULL_VO_H_

#include "pull/proxy_queue.h"

#include "util/logging.h"

namespace flexstream {

ProxyQueue::ProxyQueue(std::string name, OncOperator* source)
    : name_(std::move(name)), source_(source) {
  CHECK(source != nullptr);
}

PullResult ProxyQueue::Dequeue() { return source_->Next(); }

}  // namespace flexstream

#include "pull/onc_operator.h"

#include "util/logging.h"

namespace flexstream {

OncOperator::OncOperator(std::string name) : name_(std::move(name)) {}

OncOperator::~OncOperator() = default;

void OncOperator::Open() { opened_ = true; }

void OncOperator::Close() { opened_ = false; }

PullResult OncOperator::MarkEnd() {
  ended_ = true;
  return PullResult::End();
}

OncBuffer::OncBuffer(std::string name) : OncOperator(std::move(name)) {}

void OncBuffer::Push(Tuple tuple) {
  std::lock_guard<std::mutex> lock(mutex_);
  DCHECK(!input_closed_);
  items_.push_back(std::move(tuple));
}

void OncBuffer::CloseInput() {
  std::lock_guard<std::mutex> lock(mutex_);
  input_closed_ = true;
}

PullResult OncBuffer::Next() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!items_.empty()) {
    Tuple t = std::move(items_.front());
    items_.pop_front();
    return PullResult::Data(std::move(t));
  }
  if (input_closed_) return MarkEnd();
  return PullResult::Pending();
}

size_t OncBuffer::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

OncVectorSource::OncVectorSource(std::string name, std::vector<Tuple> tuples)
    : OncOperator(std::move(name)), tuples_(std::move(tuples)) {}

PullResult OncVectorSource::Next() {
  if (cursor_ >= tuples_.size()) return MarkEnd();
  return PullResult::Data(tuples_[cursor_++]);
}

OncSelect::OncSelect(std::string name, OncOperator* input,
                     Predicate predicate)
    : OncOperator(std::move(name)),
      input_(input),
      predicate_(std::move(predicate)) {
  CHECK(input != nullptr);
  CHECK(predicate_ != nullptr);
}

void OncSelect::Open() {
  input_->Open();
  OncOperator::Open();
}

void OncSelect::Close() {
  input_->Close();
  OncOperator::Close();
}

PullResult OncSelect::Next() {
  // One Next() consumes at most one input element: a filtered-out element
  // yields kPending ("no result available right now"), keeping pulls
  // non-blocking and work-bounded.
  PullResult in = input_->Next();
  if (in.is_end()) return MarkEnd();
  if (in.is_pending()) return PullResult::Pending();
  if (predicate_(in.tuple)) return in;
  return PullResult::Pending();
}

bool OncSelect::HasNext() const { return input_->HasNext(); }

OncMap::OncMap(std::string name, OncOperator* input, MapFn fn)
    : OncOperator(std::move(name)), input_(input), fn_(std::move(fn)) {
  CHECK(input != nullptr);
  CHECK(fn_ != nullptr);
}

void OncMap::Open() {
  input_->Open();
  OncOperator::Open();
}

void OncMap::Close() {
  input_->Close();
  OncOperator::Close();
}

PullResult OncMap::Next() {
  PullResult in = input_->Next();
  if (in.is_end()) return MarkEnd();
  if (in.is_pending()) return PullResult::Pending();
  return PullResult::Data(fn_(in.tuple));
}

bool OncMap::HasNext() const { return input_->HasNext(); }

OncUnion::OncUnion(std::string name, std::vector<OncOperator*> inputs)
    : OncOperator(std::move(name)),
      inputs_(std::move(inputs)),
      ended_inputs_(inputs_.size(), false) {
  CHECK(!inputs_.empty());
  for (OncOperator* in : inputs_) CHECK(in != nullptr);
}

void OncUnion::Open() {
  for (OncOperator* in : inputs_) in->Open();
  OncOperator::Open();
}

void OncUnion::Close() {
  for (OncOperator* in : inputs_) in->Close();
  OncOperator::Close();
}

PullResult OncUnion::Next() {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const size_t idx = (cursor_ + i) % inputs_.size();
    if (ended_inputs_[idx]) continue;
    PullResult r = inputs_[idx]->Next();
    if (r.is_data()) {
      cursor_ = (idx + 1) % inputs_.size();
      return r;
    }
    if (r.is_end()) ended_inputs_[idx] = true;
  }
  for (bool e : ended_inputs_) {
    if (!e) return PullResult::Pending();
  }
  return MarkEnd();
}

bool OncUnion::HasNext() const {
  if (!OncOperator::HasNext()) return false;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (!ended_inputs_[i] && inputs_[i]->HasNext()) return true;
  }
  return false;
}

OncProject::OncProject(std::string name, OncOperator* input,
                       std::vector<size_t> attrs)
    : OncOperator(std::move(name)), input_(input), attrs_(std::move(attrs)) {
  CHECK(input != nullptr);
}

void OncProject::Open() {
  input_->Open();
  OncOperator::Open();
}

void OncProject::Close() {
  input_->Close();
  OncOperator::Close();
}

PullResult OncProject::Next() {
  PullResult in = input_->Next();
  if (in.is_end()) return MarkEnd();
  if (in.is_pending()) return PullResult::Pending();
  if (attrs_.empty()) return in;
  std::vector<Value> values;
  values.reserve(attrs_.size());
  for (size_t a : attrs_) values.push_back(in.tuple.at(a));
  return PullResult::Data(Tuple(std::move(values), in.tuple.timestamp()));
}

bool OncProject::HasNext() const { return input_->HasNext(); }

}  // namespace flexstream

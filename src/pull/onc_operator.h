// Pull-based (open-next-close) operators with the DSMS-adapted semantics
// of Section 2.2.
//
// Classic ONC iterators are ambiguous in a streaming setting: "the result
// false [of hasNext] can mean that currently no element is in the
// operator's input queues ... as well as that no element will be delivered
// anymore." Following the paper's resolution, Next() distinguishes the two
// cases explicitly:
//
//   kData     — a data element,
//   kPending  — "currently no element" (the special element that only
//               carries this information),
//   kEnd      — no element will ever be delivered again.
//
// Pull operators form *trees*: each operator reads from its child(ren)
// and is read by exactly one consumer. This structural restriction — and
// the resulting inability to share subqueries inside a pull-based VO — is
// precisely the argument of Section 3.4 for the push-based approach.

#ifndef FLEXSTREAM_PULL_ONC_OPERATOR_H_
#define FLEXSTREAM_PULL_ONC_OPERATOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tuple/tuple.h"

namespace flexstream {

struct PullResult {
  enum class Kind { kData, kPending, kEnd };
  Kind kind = Kind::kPending;
  Tuple tuple;

  static PullResult Data(Tuple t) {
    return {Kind::kData, std::move(t)};
  }
  static PullResult Pending() { return {Kind::kPending, Tuple()}; }
  static PullResult End() { return {Kind::kEnd, Tuple()}; }

  bool is_data() const { return kind == Kind::kData; }
  bool is_pending() const { return kind == Kind::kPending; }
  bool is_end() const { return kind == Kind::kEnd; }
};

class OncOperator {
 public:
  explicit OncOperator(std::string name);
  virtual ~OncOperator();

  OncOperator(const OncOperator&) = delete;
  OncOperator& operator=(const OncOperator&) = delete;

  const std::string& name() const { return name_; }

  /// Prepares the operator (recursively opens children). Idempotent.
  virtual void Open();

  /// Pulls the next result. Never blocks: returns kPending when no
  /// element is currently available.
  virtual PullResult Next() = 0;

  /// hasNext with the repaired semantics: false iff no element will ever
  /// be delivered again (Section 2.2). Default: true until Next() has
  /// returned kEnd.
  virtual bool HasNext() const { return !ended_; }

  /// Releases resources (recursively closes children). Idempotent.
  virtual void Close();

  bool opened() const { return opened_; }

 protected:
  /// Subclasses call this when emitting kEnd so HasNext flips.
  PullResult MarkEnd();

  bool opened_ = false;

 private:
  std::string name_;
  bool ended_ = false;
};

/// Leaf: a thread-safe buffer that external producers feed; the pull tree
/// reads from it. The pull-side analogue of QueueOp.
class OncBuffer : public OncOperator {
 public:
  explicit OncBuffer(std::string name);

  /// Producer side (thread-safe).
  void Push(Tuple tuple);
  void CloseInput();

  PullResult Next() override;

  size_t Size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Tuple> items_;
  bool input_closed_ = false;
};

/// Leaf over a pre-materialized vector (for tests and examples).
class OncVectorSource : public OncOperator {
 public:
  OncVectorSource(std::string name, std::vector<Tuple> tuples);

  PullResult Next() override;

 private:
  std::vector<Tuple> tuples_;
  size_t cursor_ = 0;
};

/// Pull-based selection.
class OncSelect : public OncOperator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  OncSelect(std::string name, OncOperator* input, Predicate predicate);

  void Open() override;
  void Close() override;
  PullResult Next() override;
  bool HasNext() const override;

 private:
  OncOperator* input_;
  Predicate predicate_;
};

/// Pull-based map: one output tuple per input tuple.
class OncMap : public OncOperator {
 public:
  using MapFn = std::function<Tuple(const Tuple&)>;

  OncMap(std::string name, OncOperator* input, MapFn fn);

  void Open() override;
  void Close() override;
  PullResult Next() override;
  bool HasNext() const override;

 private:
  OncOperator* input_;
  MapFn fn_;
};

/// Pull-based bag union over any number of children. One Next() polls the
/// children round-robin and returns the first data element found; it
/// reports pending when every child is currently pending and end once
/// every child has ended.
class OncUnion : public OncOperator {
 public:
  OncUnion(std::string name, std::vector<OncOperator*> inputs);

  void Open() override;
  void Close() override;
  PullResult Next() override;
  bool HasNext() const override;

 private:
  std::vector<OncOperator*> inputs_;
  std::vector<bool> ended_inputs_;
  size_t cursor_ = 0;
};

/// Pull-based projection (attribute subset, empty = identity).
class OncProject : public OncOperator {
 public:
  OncProject(std::string name, OncOperator* input,
             std::vector<size_t> attrs);

  void Open() override;
  void Close() override;
  PullResult Next() override;
  bool HasNext() const override;

 private:
  OncOperator* input_;
  std::vector<size_t> attrs_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_PULL_ONC_OPERATOR_H_

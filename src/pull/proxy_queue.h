// Proxy queues for pull-based virtual operators (Section 3.2).
//
// "For a given set of operators that are to build a VO, we replace ... all
// queues between them with special queues, called proxies. The dequeue
// method of a proxy reads the next element of its source until it either
// reads a data element or it reads a special element, which indicates that
// currently no element is available."
//
// A ProxyQueue therefore looks like a queue to its consumer but holds no
// storage: Dequeue() transparently pulls through to the producing ONC
// operator.

#ifndef FLEXSTREAM_PULL_PROXY_QUEUE_H_
#define FLEXSTREAM_PULL_PROXY_QUEUE_H_

#include <string>

#include "pull/onc_operator.h"

namespace flexstream {

class ProxyQueue {
 public:
  ProxyQueue(std::string name, OncOperator* source);

  const std::string& name() const { return name_; }

  /// Reads from the source until a data element, the "currently
  /// unavailable" signal, or end-of-stream arrives. Because a pull
  /// operator may legitimately report pending many times in a row (e.g. a
  /// selection discarding elements), the proxy loops only while the
  /// source makes *progress*; a pending result is returned to the caller
  /// as-is (it is the special element of Section 2.2).
  PullResult Dequeue();

  /// Always true: a proxy stores nothing.
  bool Empty() const { return true; }

 private:
  std::string name_;
  OncOperator* source_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_PULL_PROXY_QUEUE_H_

#include "pull/pull_bridge.h"

#include "util/logging.h"

namespace flexstream {

PullVoOperator::PullVoOperator(std::string name, std::unique_ptr<PullVo> vo,
                               std::vector<OncBuffer*> inputs)
    : Operator(Kind::kOperator, std::move(name),
               static_cast<int>(inputs.size())),
      vo_(std::move(vo)),
      inputs_(std::move(inputs)) {
  CHECK(vo_ != nullptr);
  CHECK(!inputs_.empty());
  Result<OncOperator*> root = vo_->Root();
  CHECK(root.ok()) << root.status();
  root_ = *root;
  root_->Open();
}

void PullVoOperator::Reset() {
  Operator::Reset();
  // ONC operators are stateless filters/projections in this library; the
  // buffers are drained within each Process call, so nothing persists.
}

void PullVoOperator::Process(const Tuple& tuple, int port) {
  DCHECK_GE(port, 0);
  DCHECK_LT(static_cast<size_t>(port), inputs_.size());
  inputs_[static_cast<size_t>(port)]->Push(tuple);
  DrainRoot();
}

void PullVoOperator::OnAllInputsClosed(AppTime timestamp) {
  // Propagate end-of-stream into the pull side, drain everything the VO
  // can still produce (pending results no longer mean "come back later"
  // once the inputs are closed), then close downstream.
  for (OncBuffer* buffer : inputs_) buffer->CloseInput();
  while (root_->HasNext()) {
    PullResult r = root_->Next();
    if (r.is_data()) {
      EmitMove(std::move(r.tuple));
    } else if (r.is_end()) {
      break;
    }
    // kPending with closed inputs: a discarded element; keep pulling.
  }
  root_->Close();
  EmitEos(timestamp);
}

void PullVoOperator::DrainRoot() {
  while (true) {
    PullResult r = root_->Next();
    if (r.is_data()) {
      EmitMove(std::move(r.tuple));
      continue;
    }
    // kPending: nothing more right now (a filtered element or an empty
    // buffer); kEnd: the VO is exhausted. Either way this drain is done.
    break;
  }
}

}  // namespace flexstream

#include "pull/pull_vo.h"

#include "util/logging.h"

namespace flexstream {

PullVo::PullVo(std::string name) : name_(std::move(name)) {}

Status PullVo::Link(OncOperator* child, OncOperator* parent) {
  CHECK(child != nullptr && parent != nullptr);
  if (has_consumer_.count(child)) {
    return Status::FailedPrecondition(
        "pull operator '" + child->name() +
        "' already has a consumer; pull-based VOs are limited to trees "
        "and cannot share subqueries (Section 3.4)");
  }
  has_consumer_.insert(child);
  return Status::Ok();
}

Result<OncOperator*> PullVo::Root() const {
  OncOperator* root = nullptr;
  for (const auto& op : ops_) {
    if (has_consumer_.count(op.get())) continue;
    if (root != nullptr) {
      return Status::FailedPrecondition(
          "pull VO has multiple roots: '" + root->name() + "' and '" +
          op->name() + "'");
    }
    root = op.get();
  }
  if (root == nullptr) {
    return Status::FailedPrecondition("pull VO has no root");
  }
  return root;
}

std::vector<Tuple> PullVo::DrainAll() {
  Result<OncOperator*> root_or = Root();
  CHECK(root_or.ok()) << root_or.status();
  OncOperator* root = *root_or;
  root->Open();
  std::vector<Tuple> results;
  last_pending_count_ = 0;
  while (root->HasNext()) {
    PullResult r = root->Next();
    if (r.is_data()) {
      results.push_back(std::move(r.tuple));
    } else if (r.is_pending()) {
      ++last_pending_count_;
    } else {
      break;
    }
  }
  root->Close();
  return results;
}

}  // namespace flexstream

// Multi-phase emission schedules.
//
// Section 6.6's workload emits "the elements 1 to 10,000 and 30,001 to
// 50,000 with a high rate of approximately 500,000 elements per second
// ... The remaining elements ... with a rate of 250 elements per second".
// A Phase is one (count, rate) leg of such a schedule.

#ifndef FLEXSTREAM_WORKLOAD_PHASE_H_
#define FLEXSTREAM_WORKLOAD_PHASE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flexstream {

struct Phase {
  /// Elements emitted in this phase.
  int64_t count = 0;
  /// Target emission rate in elements/second; 0 = unpaced (max speed).
  double rate_per_sec = 0.0;
};

/// Total element count across phases.
int64_t TotalCount(const std::vector<Phase>& phases);

/// Expected wall duration of the schedule in seconds (unpaced phases
/// contribute 0).
double ExpectedDurationSeconds(const std::vector<Phase>& phases);

std::string PhasesToString(const std::vector<Phase>& phases);

}  // namespace flexstream

#endif  // FLEXSTREAM_WORKLOAD_PHASE_H_

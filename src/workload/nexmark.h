// NEXMark-style auction/bid workload (the production-shaped macro
// benchmark, ROADMAP item 5).
//
// NEXMark (Tucker et al.) models an online auction: persons register,
// auctions open, and a heavy stream of bids — skewed toward a few hot
// auctions and heavy bidders — flows against them. This file provides
// deterministic, seeded generators for those streams plus four canonical
// continuous queries expressed against the existing operator set:
//
//   currency  (Q1-style)  map every bid's price from dollars to euros;
//   filter    (Q2-style)  select bids on a subset of auctions;
//   hot_items (Q5-style)  per-auction bid counts over a tumbling window
//                         (the grouped aggregate over Zipf keys — the
//                         query operator sharding exists for);
//   join      (Q8-style)  auctions x bids windowed equi-join on auction id.
//
// All attributes are integers, so the streams exercise the engine's hot
// paths rather than string handling; skew comes from Rng::Zipf. Every
// generator is a pure function of (seed, index, timestamp), which makes
// streams byte-identical across runs — the determinism tests and the
// real-engine-vs-simulator agreement tests rely on that.
//
// The same workload runs on the virtual-time simulator (src/sim): build a
// query, compute the exact filter selectivity on a pregenerated stream
// with MeasuredSelectivity(), stamp it onto the node metadata, and the
// simulator's fractional-credit model reproduces the real engine's result
// counts exactly (see tests/harness/sim_agreement_test.cc).

#ifndef FLEXSTREAM_WORKLOAD_NEXMARK_H_
#define FLEXSTREAM_WORKLOAD_NEXMARK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "api/query_builder.h"
#include "graph/query_graph.h"
#include "operators/latency_sink.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "util/clock.h"
#include "util/random.h"
#include "workload/rate_source.h"

namespace flexstream {
namespace nexmark {

// -- Schemas (attribute indices) -------------------------------------------

/// Bid: {auction id, bidder (person) id, price}.
inline constexpr size_t kBidAuction = 0;
inline constexpr size_t kBidBidder = 1;
inline constexpr size_t kBidPrice = 2;
inline constexpr size_t kBidArity = 3;

/// Auction: {auction id, seller (person) id, category, reserve price}.
inline constexpr size_t kAuctionId = 0;
inline constexpr size_t kAuctionSeller = 1;
inline constexpr size_t kAuctionCategory = 2;
inline constexpr size_t kAuctionReserve = 3;
inline constexpr size_t kAuctionArity = 4;

/// Person: {person id, city, state}.
inline constexpr size_t kPersonId = 0;
inline constexpr size_t kPersonCity = 1;
inline constexpr size_t kPersonState = 2;
inline constexpr size_t kPersonArity = 3;

struct NexmarkConfig {
  /// Id domains. Bids reference auctions/persons in [1, n].
  int64_t num_auctions = 1'000;
  int64_t num_persons = 500;
  int64_t num_categories = 20;
  int64_t num_cities = 100;
  /// Zipf exponents: bid->auction skew (a few hot items take most bids)
  /// and bid->bidder skew (heavy bidders).
  double auction_zipf = 0.9;
  double person_zipf = 0.7;
  /// Prices are uniform in [1, max_price].
  int64_t max_price = 10'000;
  /// currency query: dollars -> euros.
  double exchange_rate = 0.908;
  /// filter query passes bids whose auction id % filter_modulus == 0
  /// (≈ 1/filter_modulus of the *id domain*; the Zipf skew makes the
  /// realized selectivity data-dependent — measure it, don't assume it).
  int64_t filter_modulus = 8;
  /// hot_items tumbling window length (application time).
  AppTime hot_window_micros = 10'000;
};

// -- Generators ------------------------------------------------------------

/// One bid/auction/person element. Deterministic in (config, rng state);
/// `index` drives round-robin id assignment, `ts` becomes the tuple
/// timestamp.
Tuple MakeBid(const NexmarkConfig& config, int64_t index, AppTime ts,
              Rng* rng);
Tuple MakeAuction(const NexmarkConfig& config, int64_t index, AppTime ts,
                  Rng* rng);
Tuple MakePerson(const NexmarkConfig& config, int64_t index, AppTime ts,
                 Rng* rng);

/// RateSource-compatible generators (workload/rate_source.h).
RateSource::Generator BidGenerator(NexmarkConfig config);
RateSource::Generator AuctionGenerator(NexmarkConfig config);

/// Pregenerated streams: element i carries timestamp (i + 1) *
/// spacing_micros and is drawn from Rng(seed). Two calls with identical
/// arguments return byte-identical streams (the determinism the
/// sim-agreement and replay tests assert).
std::vector<Tuple> GenerateBids(const NexmarkConfig& config, uint64_t seed,
                                int64_t count, AppTime spacing_micros = 1);
std::vector<Tuple> GenerateAuctions(const NexmarkConfig& config,
                                    uint64_t seed, int64_t count,
                                    AppTime spacing_micros = 1);

/// Exact fraction of `bids` passing the filter query's predicate — the
/// selectivity to stamp on the filter node so the simulator's fractional
/// credits (floor(n * s)) equal the real engine's survivor count.
double MeasuredFilterSelectivity(const NexmarkConfig& config,
                                 const std::vector<Tuple>& bids);

// -- Queries ---------------------------------------------------------------

/// How a query is instrumented. When `epoch` is set, the bid source is
/// expected to stamp the emit offset as a trailing attribute (RateSource
/// stamp_emit_offset, or a manual Append on pregenerated tuples) and the
/// query attaches a LatencySink reading it.
struct QueryOptions {
  /// Measure end-to-end latency against this epoch (requires stamped
  /// input); unset = no latency sink.
  std::optional<TimePoint> epoch;
};

/// A built query. Pointers are owned by the graph.
struct QueryHandle {
  Source* bids = nullptr;
  Source* auctions = nullptr;  // join query only
  /// The stateful operator worth sharding (hot_items aggregate / join);
  /// nullptr for the stateless queries.
  Operator* shardable = nullptr;
  /// Counts the query's result stream.
  CountingSink* results = nullptr;
  /// End-to-end latency (only when QueryOptions::epoch was set). For
  /// hot_items this observes the pre-aggregate stream — aggregate outputs
  /// do not carry their triggering element's stamp — so it measures
  /// source->operator-input delivery latency, which is where scheduling
  /// policy shows up.
  LatencySink* latency = nullptr;
};

/// currency (Q1): bids -> map(price *= exchange_rate) -> sinks.
QueryHandle BuildCurrencyQuery(QueryGraph* graph, const NexmarkConfig& config,
                               const QueryOptions& options);

/// filter (Q2): bids -> select(auction % m == 0) -> sinks.
QueryHandle BuildFilterQuery(QueryGraph* graph, const NexmarkConfig& config,
                             const QueryOptions& options);

/// hot_items (Q5): bids -> tumbling count per auction -> count sink; the
/// latency sink (when enabled) taps the aggregate's input stream.
QueryHandle BuildHotItemsQuery(QueryGraph* graph, const NexmarkConfig& config,
                               const QueryOptions& options);

/// join (Q8-style): auctions x bids -> SHJ on auction id over
/// `window_micros` -> sinks. The join concatenates (auction attrs, bid
/// attrs), so a stamped bid's emit offset lands at attribute
/// kAuctionArity + kBidArity of the join output — where the latency sink
/// reads it.
QueryHandle BuildAuctionJoinQuery(QueryGraph* graph,
                                  const NexmarkConfig& config,
                                  const QueryOptions& options,
                                  AppTime window_micros);

}  // namespace nexmark
}  // namespace flexstream

#endif  // FLEXSTREAM_WORKLOAD_NEXMARK_H_

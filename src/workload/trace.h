// Stream traces: record, serialize, load and replay streams.
//
// A Trace is an ordered sequence of timestamped tuples — a materialized
// stream. Traces make experiments repeatable across process runs: record
// a synthetic (or real) stream once, write it to a text file, and replay
// it later through any scheduling configuration. The text format is
// line-oriented:
//
//   <timestamp> <value>[,<value>...]
//
// where each value is `i:<int>`, `d:<double>` or `s:<string>` (strings
// use %-escaping for %, comma, whitespace and newline).

#ifndef FLEXSTREAM_WORKLOAD_TRACE_H_
#define FLEXSTREAM_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "operators/source.h"
#include "tuple/tuple.h"
#include "util/status.h"

namespace flexstream {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Tuple> tuples);

  void Append(Tuple tuple);
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Pushes every tuple into `source` in order, then closes it.
  void ReplayInto(Source* source) const;

  /// Serialization.
  std::string Serialize() const;
  static Result<Trace> Deserialize(const std::string& text);

  Status SaveToFile(const std::string& path) const;
  static Result<Trace> LoadFromFile(const std::string& path);

  friend bool operator==(const Trace& a, const Trace& b) {
    return a.tuples_ == b.tuples_;
  }

 private:
  std::vector<Tuple> tuples_;
};

// To record a live stream, attach a CollectingSink and build a Trace from
// its results: Trace(sink->TakeResults()).

/// Formats one value as `i:`/`d:`/`s:` text.
std::string SerializeValue(const Value& value);
/// Parses one serialized value.
Result<Value> DeserializeValue(const std::string& text);

}  // namespace flexstream

#endif  // FLEXSTREAM_WORKLOAD_TRACE_H_

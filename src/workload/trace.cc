#include "workload/trace.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace flexstream {
namespace {

std::string EscapeString(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '%' || c == ',' || c == ' ' || c == '\t' || c == '\n' ||
        c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeString(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size() ||
        !std::isxdigit(static_cast<unsigned char>(s[i + 1])) ||
        !std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      return Status::InvalidArgument("bad %-escape in string: " + s);
    }
    out.push_back(static_cast<char>(
        std::stoi(s.substr(i + 1, 2), nullptr, 16)));
    i += 2;
  }
  return out;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

std::string SerializeValue(const Value& value) {
  switch (value.type()) {
    case Value::Type::kInt64:
      return "i:" + std::to_string(value.AsInt64());
    case Value::Type::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d:%.17g", value.AsDouble());
      return buf;
    }
    case Value::Type::kString:
      return "s:" + EscapeString(value.AsString());
  }
  return "";
}

Result<Value> DeserializeValue(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad value literal: " + text);
  }
  const std::string body = text.substr(2);
  switch (text[0]) {
    case 'i': {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(body.c_str(), &end, 10);
      if (errno != 0 || end == body.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int literal: " + text);
      }
      return Value(static_cast<int64_t>(v));
    }
    case 'd': {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(body.c_str(), &end);
      if (errno != 0 || end == body.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double literal: " + text);
      }
      return Value(v);
    }
    case 's': {
      Result<std::string> unescaped = UnescapeString(body);
      if (!unescaped.ok()) return unescaped.status();
      return Value(*unescaped);
    }
    default:
      return Status::InvalidArgument("unknown value tag: " + text);
  }
}

Trace::Trace(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {
  for (const Tuple& t : tuples_) {
    CHECK(t.is_data()) << "traces hold data tuples only";
  }
}

void Trace::Append(Tuple tuple) {
  CHECK(tuple.is_data());
  tuples_.push_back(std::move(tuple));
}

void Trace::ReplayInto(Source* source) const {
  AppTime last_ts = 0;
  for (const Tuple& t : tuples_) {
    source->Push(t);
    last_ts = t.timestamp();
  }
  source->Close(last_ts);
}

std::string Trace::Serialize() const {
  std::ostringstream os;
  for (const Tuple& t : tuples_) {
    os << t.timestamp() << ' ';
    for (size_t i = 0; i < t.arity(); ++i) {
      if (i > 0) os << ',';
      os << SerializeValue(t.at(i));
    }
    os << '\n';
  }
  return os.str();
}

Result<Trace> Trace::Deserialize(const std::string& text) {
  Trace trace;
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    const std::string ts_text =
        space == std::string::npos ? line : line.substr(0, space);
    errno = 0;
    char* end = nullptr;
    const long long ts = std::strtoll(ts_text.c_str(), &end, 10);
    if (errno != 0 || end == ts_text.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          "bad timestamp on line " + std::to_string(line_number));
    }
    std::vector<Value> values;
    if (space != std::string::npos && space + 1 < line.size()) {
      for (const std::string& part :
           SplitOn(line.substr(space + 1), ',')) {
        Result<Value> v = DeserializeValue(part);
        if (!v.ok()) return v.status();
        values.push_back(std::move(*v));
      }
    }
    trace.Append(Tuple(std::move(values), static_cast<AppTime>(ts)));
  }
  return trace;
}

Status Trace::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<Trace> Trace::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

}  // namespace flexstream

#include "workload/phase.h"

namespace flexstream {

int64_t TotalCount(const std::vector<Phase>& phases) {
  int64_t total = 0;
  for (const Phase& p : phases) total += p.count;
  return total;
}

double ExpectedDurationSeconds(const std::vector<Phase>& phases) {
  double total = 0.0;
  for (const Phase& p : phases) {
    if (p.rate_per_sec > 0.0) {
      total += static_cast<double>(p.count) / p.rate_per_sec;
    }
  }
  return total;
}

std::string PhasesToString(const std::vector<Phase>& phases) {
  std::string s;
  for (const Phase& p : phases) {
    if (!s.empty()) s += ", ";
    s += std::to_string(p.count) + "@" +
         std::to_string(static_cast<int64_t>(p.rate_per_sec)) + "/s";
  }
  return "[" + s + "]";
}

}  // namespace flexstream

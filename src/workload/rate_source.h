// Rate-controlled autonomous sources.
//
// A RateSource drives a Source node from its own thread — the paper's
// "autonomous data sources" (Section 6.3) — emitting a configured number
// of elements at configured rates with constant or Poisson pacing
// ("the inter arrival rate between two successive elements followed a
// Poisson distribution", Section 6.2).
//
// Application timestamps are the *scheduled* logical arrival times, so
// window semantics depend only on the schedule; wall-clock pacing (which
// may be scaled or disabled) only affects when elements physically enter
// the graph.
//
// Backpressure observation: Push() is synchronous — with DI and no queue
// after the source, a slow downstream operator delays the source past its
// schedule. The per-bucket achieved-rate timeline exposes exactly the
// input-rate collapse of Figure 6.

#ifndef FLEXSTREAM_WORKLOAD_RATE_SOURCE_H_
#define FLEXSTREAM_WORKLOAD_RATE_SOURCE_H_

#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "operators/source.h"
#include "util/random.h"
#include "workload/phase.h"

namespace flexstream {

class RateSource {
 public:
  enum class Pacing { kConstant, kPoisson };

  struct Options {
    std::vector<Phase> phases;
    Pacing pacing = Pacing::kConstant;
    /// Wall-time speedup: 2.0 replays the schedule twice as fast as its
    /// logical rates (application timestamps are unaffected).
    double time_scale = 1.0;
    /// Record achieved emission rate per wall-time bucket.
    bool record_rate_timeline = false;
    double bucket_seconds = 1.0;
    /// RNG seed (Poisson pacing and generator randomness).
    uint64_t seed = 42;
    /// Appends the element's actual emission time — microseconds since
    /// `stamp_epoch` — as an extra trailing integer attribute, for
    /// LatencySink (operators/latency_sink.h).
    bool stamp_emit_offset = false;
    TimePoint stamp_epoch{};
  };

  /// Generator: (element index, scheduled app timestamp, rng) -> tuple.
  using Generator = std::function<Tuple(int64_t, AppTime, Rng*)>;

  /// `source` must outlive this driver. The driver closes the source after
  /// the last element.
  RateSource(Source* source, Options options, Generator generator);
  ~RateSource();

  RateSource(const RateSource&) = delete;
  RateSource& operator=(const RateSource&) = delete;

  /// Spawns the emission thread.
  void Start();

  /// Waits for the emission thread to finish (all elements + EOS pushed).
  void Join();

  /// Runs the schedule in the calling thread (blocking).
  void Run();

  int64_t emitted() const { return emitted_; }

  /// (bucket start seconds, achieved elements/second) samples.
  std::vector<std::pair<double, double>> TakeRateTimeline();

  /// Generator producing single-int64 tuples uniform in [lo, hi].
  static Generator UniformInt(int64_t lo, int64_t hi);

 private:
  Source* source_;
  Options options_;
  Generator generator_;
  Rng rng_;
  std::thread thread_;
  int64_t emitted_ = 0;
  std::vector<int64_t> bucket_counts_;
  double actual_duration_seconds_ = 0.0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_WORKLOAD_RATE_SOURCE_H_

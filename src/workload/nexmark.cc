#include "workload/nexmark.h"

#include <cmath>

#include "util/logging.h"

namespace flexstream {
namespace nexmark {
namespace {

// Approximate-Zipf rank in [1, n] from a uniform u in [0, 1): the inverse
// CDF of the continuous Pareto envelope, rank = ceil(n^(1-s) scaled).
// Rng::Zipf is exact but rebuilds its inverse-CDF table whenever (n, s)
// changes — alternating the auction draw (num_auctions, auction_zipf) with
// a bidder draw would rebuild it on *every* element — so the secondary
// (bidder/seller) skew uses this closed form instead. Requires s < 1.
int64_t SkewedRank(double u, int64_t n, double s) {
  CHECK(s < 1.0) << "SkewedRank requires exponent < 1, got " << s;
  const double x = std::pow(u, 1.0 / (1.0 - s));
  int64_t rank = 1 + static_cast<int64_t>(x * static_cast<double>(n));
  return rank > n ? n : rank;
}

}  // namespace

Tuple MakeBid(const NexmarkConfig& config, int64_t index, AppTime ts,
              Rng* rng) {
  (void)index;
  const int64_t auction = rng->Zipf(config.num_auctions, config.auction_zipf);
  const int64_t bidder =
      SkewedRank(rng->UniformDouble(), config.num_persons, config.person_zipf);
  const int64_t price = rng->UniformInt(1, config.max_price);
  return Tuple({Value(auction), Value(bidder), Value(price)}, ts);
}

Tuple MakeAuction(const NexmarkConfig& config, int64_t index, AppTime ts,
                  Rng* rng) {
  // Round-robin ids so after num_auctions elements every auction a bid can
  // reference exists (the join's build side covers the probe key domain).
  const int64_t id = 1 + (index % config.num_auctions);
  const int64_t seller = rng->UniformInt(1, config.num_persons);
  const int64_t category = rng->UniformInt(1, config.num_categories);
  const int64_t reserve = rng->UniformInt(1, config.max_price);
  return Tuple({Value(id), Value(seller), Value(category), Value(reserve)},
               ts);
}

Tuple MakePerson(const NexmarkConfig& config, int64_t index, AppTime ts,
                 Rng* rng) {
  const int64_t id = 1 + index;
  const int64_t city = rng->UniformInt(1, config.num_cities);
  const int64_t state = rng->UniformInt(1, 50);
  return Tuple({Value(id), Value(city), Value(state)}, ts);
}

RateSource::Generator BidGenerator(NexmarkConfig config) {
  return [config](int64_t index, AppTime ts, Rng* rng) {
    return MakeBid(config, index, ts, rng);
  };
}

RateSource::Generator AuctionGenerator(NexmarkConfig config) {
  return [config](int64_t index, AppTime ts, Rng* rng) {
    return MakeAuction(config, index, ts, rng);
  };
}

std::vector<Tuple> GenerateBids(const NexmarkConfig& config, uint64_t seed,
                                int64_t count, AppTime spacing_micros) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    out.push_back(MakeBid(config, i, (i + 1) * spacing_micros, &rng));
  }
  return out;
}

std::vector<Tuple> GenerateAuctions(const NexmarkConfig& config,
                                    uint64_t seed, int64_t count,
                                    AppTime spacing_micros) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    out.push_back(MakeAuction(config, i, (i + 1) * spacing_micros, &rng));
  }
  return out;
}

double MeasuredFilterSelectivity(const NexmarkConfig& config,
                                 const std::vector<Tuple>& bids) {
  if (bids.empty()) return 0.0;
  int64_t survivors = 0;
  for (const Tuple& t : bids) {
    if (t.IntAt(kBidAuction) % config.filter_modulus == 0) ++survivors;
  }
  return static_cast<double>(survivors) / static_cast<double>(bids.size());
}

QueryHandle BuildCurrencyQuery(QueryGraph* graph, const NexmarkConfig& config,
                               const QueryOptions& options) {
  QueryBuilder qb(graph);
  QueryHandle h;
  h.bids = qb.AddSource("nexmark_bids");
  const double rate = config.exchange_rate;
  // In-place price rewrite: arity (and any trailing emit-offset stamp) is
  // preserved, so the latency sink downstream still finds its attribute.
  MapOp* convert = qb.Map(h.bids, "q1_currency", [rate](const Tuple& t) {
    Tuple out = t;
    out.at(kBidPrice) =
        Value(static_cast<double>(t.IntAt(kBidPrice)) * rate);
    return out;
  });
  h.results = qb.CountSink(convert, "q1_out");
  if (options.epoch) {
    h.latency = qb.Latency(convert, "q1_lat", kBidArity, *options.epoch);
  }
  return h;
}

QueryHandle BuildFilterQuery(QueryGraph* graph, const NexmarkConfig& config,
                             const QueryOptions& options) {
  QueryBuilder qb(graph);
  QueryHandle h;
  h.bids = qb.AddSource("nexmark_bids");
  const int64_t modulus = config.filter_modulus;
  // Typed-column form: under EngineOptions::columnar the filter scans the
  // raw auction-id column (DESIGN.md §17); row-wise deliveries evaluate
  // the same predicate through the synthesized row wrapper.
  Selection* filter = qb.Select(
      h.bids, "q2_filter",
      Int64ColumnPredicate{kBidAuction,
                           [modulus](int64_t auction) {
                             return auction % modulus == 0;
                           }});
  h.results = qb.CountSink(filter, "q2_out");
  if (options.epoch) {
    h.latency = qb.Latency(filter, "q2_lat", kBidArity, *options.epoch);
  }
  return h;
}

QueryHandle BuildHotItemsQuery(QueryGraph* graph, const NexmarkConfig& config,
                               const QueryOptions& options) {
  QueryBuilder qb(graph);
  QueryHandle h;
  h.bids = qb.AddSource("nexmark_bids");
  TumblingAggregate::Options agg;
  agg.kind = AggregateKind::kCount;
  agg.group_attr = kBidAuction;
  agg.window_micros = config.hot_window_micros;
  TumblingAggregate* hot = qb.Tumbling(h.bids, "q5_hot_items", agg);
  h.shardable = hot;
  h.results = qb.CountSink(hot, "q5_out");
  if (options.epoch) {
    // Aggregate outputs are new tuples without the input's stamp, so the
    // sink taps the aggregate's input stream (see QueryHandle::latency).
    h.latency = qb.Latency(h.bids, "q5_lat", kBidArity, *options.epoch);
  }
  return h;
}

QueryHandle BuildAuctionJoinQuery(QueryGraph* graph,
                                  const NexmarkConfig& config,
                                  const QueryOptions& options,
                                  AppTime window_micros) {
  (void)config;
  QueryBuilder qb(graph);
  QueryHandle h;
  h.auctions = qb.AddSource("nexmark_auctions");
  h.bids = qb.AddSource("nexmark_bids");
  SymmetricHashJoin* join =
      qb.HashJoin(h.auctions, h.bids, "q8_join", window_micros, kAuctionId,
                  kBidAuction);
  h.shardable = join;
  h.results = qb.CountSink(join, "q8_out");
  if (options.epoch) {
    h.latency = qb.Latency(join, "q8_lat", kAuctionArity + kBidArity,
                           *options.epoch);
  }
  return h;
}

}  // namespace nexmark
}  // namespace flexstream

#include "workload/rate_source.h"

#include <cmath>

#include "util/clock.h"
#include "util/logging.h"

namespace flexstream {

RateSource::RateSource(Source* source, Options options, Generator generator)
    : source_(source),
      options_(std::move(options)),
      generator_(std::move(generator)),
      rng_(options_.seed) {
  CHECK(source_ != nullptr);
  CHECK(generator_ != nullptr);
  CHECK_GT(options_.time_scale, 0.0);
}

RateSource::~RateSource() {
  if (thread_.joinable()) thread_.join();
}

void RateSource::Start() {
  CHECK(!thread_.joinable()) << "RateSource already started";
  thread_ = std::thread([this] { Run(); });
}

void RateSource::Join() {
  if (thread_.joinable()) thread_.join();
}

void RateSource::Run() {
  const TimePoint wall_start = Now();
  AppTime app_time = 0;  // scheduled logical time in microseconds
  int64_t index = 0;
  for (const Phase& phase : options_.phases) {
    const double mean_gap_micros =
        phase.rate_per_sec > 0.0 ? 1e6 / phase.rate_per_sec : 0.0;
    for (int64_t i = 0; i < phase.count; ++i, ++index) {
      if (mean_gap_micros > 0.0) {
        const double gap = options_.pacing == Pacing::kPoisson
                               ? rng_.Exponential(mean_gap_micros)
                               : mean_gap_micros;
        app_time += static_cast<AppTime>(std::llround(gap));
        // Pace against the wall clock (scaled). Push() below may overrun
        // the schedule when downstream processing is slow — that overrun
        // *is* the backpressure signal the experiments observe.
        const double wall_offset_micros =
            static_cast<double>(app_time) / options_.time_scale;
        SleepUntil(wall_start +
                   FromMicros(static_cast<int64_t>(wall_offset_micros)));
      } else {
        // Unpaced phase: logical time still advances by a nominal 1 us so
        // timestamps stay strictly monotone.
        app_time += 1;
      }
      Tuple tuple = generator_(index, app_time, &rng_);
      if (options_.stamp_emit_offset) {
        tuple.Append(Value(ToMicros(Now() - options_.stamp_epoch)));
      }
      source_->Push(tuple);
      ++emitted_;
      if (options_.record_rate_timeline) {
        const double elapsed = ToSeconds(Now() - wall_start);
        const size_t bucket =
            static_cast<size_t>(elapsed / options_.bucket_seconds);
        if (bucket_counts_.size() <= bucket) {
          bucket_counts_.resize(bucket + 1, 0);
        }
        ++bucket_counts_[bucket];
      }
    }
  }
  actual_duration_seconds_ = ToSeconds(Now() - wall_start);
  source_->Close(app_time);
}

std::vector<std::pair<double, double>> RateSource::TakeRateTimeline() {
  std::vector<std::pair<double, double>> timeline;
  timeline.reserve(bucket_counts_.size());
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    timeline.emplace_back(
        static_cast<double>(i) * options_.bucket_seconds,
        static_cast<double>(bucket_counts_[i]) / options_.bucket_seconds);
  }
  bucket_counts_.clear();
  return timeline;
}

RateSource::Generator RateSource::UniformInt(int64_t lo, int64_t hi) {
  return [lo, hi](int64_t index, AppTime ts, Rng* rng) {
    (void)index;
    return Tuple::OfInt(rng->UniformInt(lo, hi), ts);
  };
}

}  // namespace flexstream

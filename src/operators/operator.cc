#include "operators/operator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {
namespace {

std::atomic<bool> g_stats_enabled{true};

// Accumulates the wall time of nested Receive() calls so a parent can
// subtract child time from its own measurement (self-time accounting for
// DI call chains).
thread_local double tl_child_micros = 0.0;

}  // namespace

void SetStatsCollectionEnabled(bool enabled) {
  g_stats_enabled.store(enabled, std::memory_order_relaxed);
}

bool StatsCollectionEnabled() {
  return g_stats_enabled.load(std::memory_order_relaxed);
}

Operator::Operator(Kind kind, std::string name, int input_arity)
    : Node(kind, std::move(name), input_arity) {}

void Operator::SetSimulatedCostMicros(double micros) {
  simulated_cost_micros_ = micros;
}

void Operator::SetFaultHook(FaultHook hook) {
  fault_hook_ = hook ? std::make_shared<const FaultHook>(std::move(hook))
                     : nullptr;
}

void Operator::Fail(Status status) {
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;
  if (run_status_ != nullptr) {
    run_status_->Report(status, name());
  } else {
    LOG(ERROR) << DebugString() << " failed with no RunStatus attached: "
               << status;
  }
}

bool Operator::PassesFaultHook(const Tuple& tuple, int port) {
  // Copy the shared_ptr so a concurrent SetFaultHook(nullptr) from a
  // teardown path cannot free the function mid-call.
  const std::shared_ptr<const FaultHook> hook = fault_hook_;
  if (hook == nullptr) return true;
  for (int attempt = 0;; ++attempt) {
    switch ((*hook)(*this, tuple, port, attempt)) {
      case FaultAction::kProceed:
        return true;
      case FaultAction::kPermanentFailure:
        Fail(Status::Internal("permanent fault while processing element"));
        return false;
      case FaultAction::kTransientFailure:
        if (attempt >= kMaxFaultRetries) {
          Fail(Status::Internal("transient-fault retry budget exhausted (" +
                                std::to_string(kMaxFaultRetries) +
                                " attempts)"));
          return false;
        }
        fault_retries_.fetch_add(1, std::memory_order_relaxed);
        // Capped exponential backoff; long enough to model a real retry,
        // short enough that chaos sweeps stay fast.
        std::this_thread::sleep_for(
            std::chrono::microseconds(std::min(1 << attempt, 256)));
        break;
    }
  }
}

void Operator::SetSerializedReceive(bool enabled) {
  if (enabled && receive_mutex_ == nullptr) {
    receive_mutex_ = std::make_unique<std::mutex>();
  } else if (!enabled) {
    receive_mutex_.reset();
  }
}

void Operator::Receive(const Tuple& tuple, int port) {
  if (receive_mutex_ != nullptr) {
    std::lock_guard<std::mutex> lock(*receive_mutex_);
    ReceiveLocked(tuple, port);
    return;
  }
  ReceiveLocked(tuple, port);
}

void Operator::Receive(Tuple&& tuple, int port) {
  // Qualified call: a non-virtual forward into the base lvalue path. Safe
  // because an operator that overrides the lvalue Receive must override
  // the rvalue one too (QueueOp, the only overrider, does); spares every
  // rvalue delivery a second virtual dispatch.
  Operator::Receive(static_cast<const Tuple&>(tuple), port);
}

void Operator::ReceiveLocked(const Tuple& tuple, int port) {
  if (tuple.is_eos()) {
    max_eos_timestamp_ = std::max(max_eos_timestamp_, tuple.timestamp());
    ++eos_received_;
    DCHECK_LE(eos_received_, std::max<size_t>(fan_in(), 1));
    if (eos_received_ >= fan_in() && !closed_) {
      closed_ = true;
      OnAllInputsClosed(max_eos_timestamp_);
    }
    return;
  }
  DCHECK(!closed_) << DebugString() << " received data after close";
  // A failed operator is poisoned: it drops data silently (the failure is
  // already recorded in the RunStatus) but keeps honoring EOS above so the
  // rest of the graph can close down.
  if (failed_.load(std::memory_order_relaxed)) return;
  if (fault_hook_ != nullptr && !PassesFaultHook(tuple, port)) return;
  if (!StatsCollectionEnabled()) {
    if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
    Process(tuple, port);
    return;
  }
  const TimePoint start = Now();
  stats().RecordArrival(start);
  const double saved_child_micros = tl_child_micros;
  tl_child_micros = 0.0;
  // The synthetic burn sits inside the measured window so c(v) reflects it.
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  Process(tuple, port);
  const double total_micros = static_cast<double>(ToMicros(Now() - start));
  const double self_micros = std::max(0.0, total_micros - tl_child_micros);
  stats().RecordProcessed(self_micros);
  tl_child_micros = saved_child_micros + total_micros;
}

void Operator::OnAllInputsClosed(AppTime timestamp) { EmitEos(timestamp); }

void Operator::Emit(const Tuple& tuple) {
  DCHECK(tuple.is_data());
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  for (const auto& edge : outputs()) {
    edge.target->Receive(tuple, edge.port);
  }
}

void Operator::EmitMove(Tuple&& tuple) {
  DCHECK(tuple.is_data());
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  const auto& edges = outputs();
  if (edges.empty()) return;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    edges[i].target->Receive(tuple, edges[i].port);
  }
  const OutEdge& last = edges.back();
  last.target->Receive(std::move(tuple), last.port);
}

void Operator::EmitTo(size_t output_index, const Tuple& tuple) {
  DCHECK(tuple.is_data());
  DCHECK_LT(output_index, outputs().size());
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  const OutEdge& edge = outputs()[output_index];
  edge.target->Receive(tuple, edge.port);
}

void Operator::EmitEos(AppTime timestamp) {
  const Tuple eos = Tuple::EndOfStream(timestamp);
  for (const auto& edge : outputs()) {
    edge.target->Receive(eos, edge.port);
  }
}

void Operator::Reset() {
  eos_received_ = 0;
  closed_ = false;
  max_eos_timestamp_ = 0;
  failed_.store(false, std::memory_order_release);
  fault_retries_.store(0, std::memory_order_relaxed);
}

}  // namespace flexstream

#include "operators/operator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "tuple/batch_pool.h"
#include "tuple/columnar_batch.h"
#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {
namespace {

std::atomic<bool> g_stats_enabled{true};

// Accumulates the wall time of nested Receive() calls so a parent can
// subtract child time from its own measurement (self-time accounting for
// DI call chains).
thread_local double tl_child_micros = 0.0;

// The node whose Emit/drain loop is making the current Receive() call.
// Barrier alignment keys input channels on it (variadic operators receive
// every producer on port 0, so the port alone cannot identify a channel).
}  // namespace

void SetStatsCollectionEnabled(bool enabled) {
  g_stats_enabled.store(enabled, std::memory_order_relaxed);
}

bool StatsCollectionEnabled() {
  return g_stats_enabled.load(std::memory_order_relaxed);
}

Operator::Operator(Kind kind, std::string name, int input_arity)
    : Node(kind, std::move(name), input_arity) {}

void Operator::SetSimulatedCostMicros(double micros) {
  simulated_cost_micros_ = micros;
}

void Operator::SetSimulatedBlockingMicros(double micros) {
  simulated_blocking_micros_ = micros;
}

namespace {
/// The simulated-blocking sleep. Kept out of the cost-stats window: it
/// models waiting (I/O), not computing, so c(v) must not see it.
void SleepBlockingMicros(double micros) {
  if (micros >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(micros)));
  }
}
}  // namespace

std::unique_ptr<Operator> Operator::CloneFresh(std::string) const {
  return nullptr;
}

void Operator::OnEpochAligned(uint64_t) {}

void Operator::OnInputEos(const Node*, int) {}

void Operator::SetFaultHook(FaultHook hook) {
  fault_hook_ = hook ? std::make_shared<const FaultHook>(std::move(hook))
                     : nullptr;
}

void Operator::Fail(Status status) {
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;
  if (run_status_ != nullptr) {
    run_status_->Report(status, name());
  } else {
    LOG(ERROR) << DebugString() << " failed with no RunStatus attached: "
               << status;
  }
}

bool Operator::PassesFaultHook(const Tuple& tuple, int port) {
  // Copy the shared_ptr so a concurrent SetFaultHook(nullptr) from a
  // teardown path cannot free the function mid-call.
  const std::shared_ptr<const FaultHook> hook = fault_hook_;
  if (hook == nullptr) return true;
  for (int attempt = 0;; ++attempt) {
    switch ((*hook)(*this, tuple, port, attempt)) {
      case FaultAction::kProceed:
        return true;
      case FaultAction::kPermanentFailure:
        Fail(Status::Internal("permanent fault while processing element"));
        return false;
      case FaultAction::kTransientFailure: {
        if (attempt >= kMaxFaultRetries) {
          Fail(Status::Internal("transient-fault retry budget exhausted (" +
                                std::to_string(kMaxFaultRetries) +
                                " attempts)"));
          return false;
        }
        fault_retries_.fetch_add(1, std::memory_order_relaxed);
        // Capped exponential backoff with per-operator seeded jitter:
        // parallel partitions retrying against a shared downstream draw
        // different sleeps, so they don't thundering-herd it in lockstep.
        double sleep_micros =
            std::min(retry_backoff_.cap_micros,
                     retry_backoff_.base_micros *
                         std::ldexp(1.0, std::min(attempt, 62)));
        if (retry_backoff_.jitter > 0.0) {
          if (retry_rng_ == nullptr) {
            retry_rng_ = std::make_unique<std::mt19937_64>(
                retry_backoff_.seed ^
                static_cast<uint64_t>(std::hash<std::string>{}(name())));
          }
          std::uniform_real_distribution<double> unit(0.0, 1.0);
          sleep_micros *= 1.0 - retry_backoff_.jitter * unit(*retry_rng_);
        }
        if (sleep_micros >= 1.0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(static_cast<int64_t>(sleep_micros)));
        }
        break;
      }
    }
  }
}

void Operator::SetRetryBackoff(const RetryBackoffOptions& options) {
  retry_backoff_ = options;
  retry_rng_.reset();  // re-seed lazily with the new options
}

void Operator::SetSerializedReceive(bool enabled) {
  if (enabled && receive_mutex_ == nullptr) {
    receive_mutex_ = std::make_unique<std::mutex>();
  } else if (!enabled) {
    receive_mutex_.reset();
  }
}

void Operator::Receive(const Tuple& tuple, int port) {
  if (receive_mutex_ != nullptr) {
    std::lock_guard<std::mutex> lock(*receive_mutex_);
    ReceiveLocked(tuple, port);
    return;
  }
  ReceiveLocked(tuple, port);
}

void Operator::Receive(Tuple&& tuple, int port) {
  // Qualified call: a non-virtual forward into the base lvalue path. Safe
  // because an operator that overrides the lvalue Receive must override
  // the rvalue one too (QueueOp, the only overrider, does); spares every
  // rvalue delivery a second virtual dispatch.
  Operator::Receive(static_cast<const Tuple&>(tuple), port);
}

void Operator::ReceiveBatch(TupleBatch&& batch, int port) {
  if (receive_mutex_ != nullptr) {
    std::lock_guard<std::mutex> lock(*receive_mutex_);
    ReceiveBatchLocked(std::move(batch), port);
    return;
  }
  ReceiveBatchLocked(std::move(batch), port);
}

void Operator::ReceiveBatchLocked(TupleBatch&& batch, int port) {
  if (batch.empty()) return;
  if (epoch_state_ != nullptr || fault_hook_ != nullptr || stamp_emit_seq_) {
    // Per-delivery machinery is engaged: barrier channels buffer, fault
    // hooks vote, and sequence stamping reads the per-element stamp — all
    // element by element, so the batch is unbundled onto the exact
    // per-tuple path. The sender is re-declared before every element
    // because a processed element's downstream Emit overwrites the
    // thread-local.
    const Node* sender = tl_delivery_sender_;
    for (Tuple& tuple : batch) {
      tl_delivery_sender_ = sender;
      ReceiveLocked(tuple, port);
    }
    return;
  }
  DCHECK(!closed_) << DebugString() << " received data after close";
  if (failed_.load(std::memory_order_relaxed)) return;
  const size_t n = batch.size();
  if (simulated_blocking_micros_ > 0.0) {
    SleepBlockingMicros(simulated_blocking_micros_ * static_cast<double>(n));
  }
  if (!StatsCollectionEnabled()) {
    if (simulated_cost_micros_ > 0.0) {
      BurnMicros(simulated_cost_micros_ * static_cast<double>(n));
    }
    ProcessBatch(std::move(batch), port);
    return;
  }
  const TimePoint start = Now();
  stats().RecordArrivalBatch(start, static_cast<int64_t>(n));
  const double saved_child_micros = tl_child_micros;
  tl_child_micros = 0.0;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(n));
  }
  ProcessBatch(std::move(batch), port);
  const double total_micros = static_cast<double>(ToMicros(Now() - start));
  const double self_micros = std::max(0.0, total_micros - tl_child_micros);
  stats().RecordProcessedBatch(self_micros, static_cast<int64_t>(n));
  tl_child_micros = saved_child_micros + total_micros;
}

void Operator::ProcessBatch(TupleBatch&& batch, int port) {
  for (const Tuple& tuple : batch) Process(tuple, port);
}

void Operator::ReceiveColumnar(ColumnarBatchPtr batch, int port) {
  if (receive_mutex_ != nullptr) {
    std::lock_guard<std::mutex> lock(*receive_mutex_);
    ReceiveColumnarLocked(std::move(batch), port);
    return;
  }
  ReceiveColumnarLocked(std::move(batch), port);
}

void Operator::ReceiveColumnarLocked(ColumnarBatchPtr batch, int port) {
  if (batch == nullptr || batch->empty()) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  if (!columnar_native_ || epoch_state_ != nullptr || fault_hook_ != nullptr ||
      stamp_emit_seq_) {
    // The fallback contract (DESIGN.md §17): no kernel, or per-delivery
    // machinery (barrier channels, fault hooks, seq stamping) is engaged —
    // materialize to rows and take the existing batch path, which applies
    // every gate exactly (including its own per-tuple unbundling).
    ReceiveBatchLocked(columnar::MaterializeAndRelease(std::move(batch)),
                       port);
    return;
  }
  DCHECK(!closed_) << DebugString() << " received data after close";
  if (failed_.load(std::memory_order_relaxed)) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  const size_t n = batch->size();
  if (simulated_blocking_micros_ > 0.0) {
    SleepBlockingMicros(simulated_blocking_micros_ * static_cast<double>(n));
  }
  if (!StatsCollectionEnabled()) {
    if (simulated_cost_micros_ > 0.0) {
      BurnMicros(simulated_cost_micros_ * static_cast<double>(n));
    }
    ProcessColumnar(std::move(batch), port);
    return;
  }
  const TimePoint start = Now();
  stats().RecordArrivalBatch(start, static_cast<int64_t>(n));
  const double saved_child_micros = tl_child_micros;
  tl_child_micros = 0.0;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(n));
  }
  ProcessColumnar(std::move(batch), port);
  const double total_micros = static_cast<double>(ToMicros(Now() - start));
  const double self_micros = std::max(0.0, total_micros - tl_child_micros);
  stats().RecordProcessedBatch(self_micros, static_cast<int64_t>(n));
  tl_child_micros = saved_child_micros + total_micros;
}

void Operator::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
}

SchemaPtr Operator::InferOutputSchema(const std::vector<SchemaPtr>&) const {
  return nullptr;
}

void Operator::ReceiveLocked(const Tuple& tuple, int port) {
  // Barrier alignment engages lazily: until the first barrier arrives,
  // every delivery takes the plain path below at zero extra cost.
  if (epoch_state_ != nullptr || tuple.is_barrier()) {
    if (HandleEpochDelivery(tuple, port)) return;
  }
  DeliverLocked(tuple, port);
}

bool Operator::HandleEpochDelivery(const Tuple& tuple, int port) {
  if (epoch_state_ == nullptr) InitEpochState(/*aligned_epoch=*/0);
  EpochChannel* ch = ChannelForCurrentSender(port);
  if (ch == nullptr) {
    // Delivery from outside the graph (test driving the operator
    // directly): no channel structure to align — swallow barriers, let
    // everything else through.
    return tuple.is_barrier();
  }
  if (ch->blocked) {
    // Post-barrier arrival: held back until this operator finishes the
    // epoch, so the snapshot sees exactly the pre-barrier input.
    ch->backlog.push_back(tuple);
    return true;
  }
  if (tuple.is_barrier()) {
    // A poisoned operator must not align: its state diverged when it
    // started dropping data, and a snapshot of it must never commit.
    if (failed_.load(std::memory_order_relaxed)) return true;
    DCHECK_EQ(tuple.epoch(), epoch_state_->aligned_epoch + 1);
    ch->blocked = true;
    AlignAndRelease();
    return true;
  }
  if (tuple.is_eos()) {
    // A closed channel counts as aligned for every future epoch.
    ch->closed = true;
    DeliverLocked(tuple, port);
    AlignAndRelease();
    return true;
  }
  return false;
}

Operator::EpochChannel* Operator::ChannelForCurrentSender(int port) {
  auto& channels = epoch_state_->channels;
  if (channels.size() == 1) return &channels[0];
  for (EpochChannel& ch : channels) {
    if (ch.source == tl_delivery_sender_ && ch.port == port) return &ch;
  }
  DCHECK(channels.empty())
      << DebugString() << " delivery from unknown sender on port " << port;
  return nullptr;
}

void Operator::InitEpochState(uint64_t aligned_epoch) {
  epoch_state_ = std::make_unique<EpochState>();
  epoch_state_->aligned_epoch = aligned_epoch;
  aligned_epoch_.store(aligned_epoch, std::memory_order_release);
  for (const InEdge& in : inputs()) {
    EpochChannel ch;
    ch.source = in.source;
    ch.port = in.port;
    epoch_state_->channels.push_back(std::move(ch));
  }
}

void Operator::AlignAndRelease() {
  EpochState& es = *epoch_state_;
  if (es.releasing) return;
  es.releasing = true;
  for (;;) {
    // Aligned when every open channel is blocked at the next barrier
    // (closed channels are aligned at infinity) and at least one channel
    // is actually blocked — an all-closed operator has nothing to align.
    bool any_blocked = false;
    bool all_ready = true;
    for (const EpochChannel& ch : es.channels) {
      if (ch.closed) continue;
      if (ch.blocked) {
        any_blocked = true;
      } else {
        all_ready = false;
        break;
      }
    }
    if (!any_blocked || !all_ready) break;
    const uint64_t epoch = ++es.aligned_epoch;
    aligned_epoch_.store(epoch, std::memory_order_release);
    // Alignment hook first: emissions made here (the ordered Merge's lane
    // flush) still belong to the closing epoch and must precede both the
    // snapshot and the downstream barrier.
    OnEpochAligned(epoch);
    // State now reflects exactly epochs 1..epoch: snapshot, then let the
    // barrier race ahead of the backlog.
    if (const std::shared_ptr<const EpochCallback> cb = epoch_callback_) {
      (*cb)(epoch);
    }
    EmitBarrier(Tuple::EpochBarrier(epoch));
    for (EpochChannel& ch : es.channels) ch.blocked = false;
    // Release each channel's backlog until it re-blocks (next barrier),
    // closes, or empties; another full alignment may follow immediately.
    // The delivery sender is re-declared before every element: the value
    // left in the thread-local belongs to whichever delivery triggered
    // the alignment (and each element's own downstream Emit overwrites it
    // again), but sender-keyed consumers — the Merge's lane lookup — must
    // see the channel the element actually arrived on.
    for (EpochChannel& ch : es.channels) {
      while (!ch.blocked && !ch.backlog.empty()) {
        Tuple t = std::move(ch.backlog.front());
        ch.backlog.pop_front();
        if (t.is_barrier()) {
          ch.blocked = true;
        } else if (t.is_eos()) {
          ch.closed = true;
          tl_delivery_sender_ = ch.source;
          DeliverLocked(t, ch.port);
        } else {
          tl_delivery_sender_ = ch.source;
          DeliverLocked(t, ch.port);
        }
      }
    }
  }
  es.releasing = false;
}

void Operator::SetEpochCallback(EpochCallback callback) {
  epoch_callback_ =
      callback ? std::make_shared<const EpochCallback>(std::move(callback))
               : nullptr;
}

void Operator::SetRecoveredEpoch(uint64_t epoch) { InitEpochState(epoch); }

thread_local const Node* Operator::tl_delivery_sender_ = nullptr;

void Operator::DeliverLocked(const Tuple& tuple, int port) {
  if (tuple.is_eos()) {
    OnInputEos(tl_delivery_sender_, port);
    max_eos_timestamp_ = std::max(max_eos_timestamp_, tuple.timestamp());
    ++eos_received_;
    DCHECK_LE(eos_received_, std::max<size_t>(fan_in(), 1));
    if (eos_received_ >= fan_in() && !closed_) {
      closed_ = true;
      OnAllInputsClosed(max_eos_timestamp_);
      // Tell the checkpoint coordinator this operator is out of the
      // alignment game: its final state is fully reflected downstream.
      if (const std::shared_ptr<const EpochCallback> cb = epoch_callback_) {
        (*cb)(kEpochClosed);
      }
    }
    return;
  }
  DCHECK(!closed_) << DebugString() << " received data after close";
  // A failed operator is poisoned: it drops data silently (the failure is
  // already recorded in the RunStatus) but keeps honoring EOS above so the
  // rest of the graph can close down.
  if (failed_.load(std::memory_order_relaxed)) return;
  if (fault_hook_ != nullptr && !PassesFaultHook(tuple, port)) return;
  if (stamp_emit_seq_) current_input_seq_ = tuple.seq();
  if (simulated_blocking_micros_ > 0.0) {
    SleepBlockingMicros(simulated_blocking_micros_);
  }
  if (!StatsCollectionEnabled()) {
    if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
    Process(tuple, port);
    return;
  }
  const TimePoint start = Now();
  stats().RecordArrival(start);
  const double saved_child_micros = tl_child_micros;
  tl_child_micros = 0.0;
  // The synthetic burn sits inside the measured window so c(v) reflects it.
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  Process(tuple, port);
  const double total_micros = static_cast<double>(ToMicros(Now() - start));
  const double self_micros = std::max(0.0, total_micros - tl_child_micros);
  stats().RecordProcessed(self_micros);
  tl_child_micros = saved_child_micros + total_micros;
}

void Operator::OnAllInputsClosed(AppTime timestamp) { EmitEos(timestamp); }

void Operator::Emit(const Tuple& tuple) {
  DCHECK(tuple.is_data());
  if (stamp_emit_seq_) {
    // Stamping needs a mutable element; pay the copy once and take the
    // move path (stamped there).
    EmitMove(Tuple(tuple));
    return;
  }
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  for (const auto& edge : outputs()) {
    tl_delivery_sender_ = this;  // re-set per edge: nested Emits overwrite it
    edge.target->Receive(tuple, edge.port);
  }
}

void Operator::EmitMove(Tuple&& tuple) {
  DCHECK(tuple.is_data());
  if (stamp_emit_seq_) tuple.set_seq(current_input_seq_);
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  const auto& edges = outputs();
  if (edges.empty()) return;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    tl_delivery_sender_ = this;
    edges[i].target->Receive(tuple, edges[i].port);
  }
  const OutEdge& last = edges.back();
  tl_delivery_sender_ = this;
  last.target->Receive(std::move(tuple), last.port);
}

void Operator::EmitBatch(TupleBatch&& batch) {
  if (batch.empty()) return;
  if (StatsCollectionEnabled()) {
    stats().RecordEmitted(static_cast<int64_t>(batch.size()));
  }
  const auto& edges = outputs();
  if (edges.empty()) return;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    TupleBatch copy = batch;
    tl_delivery_sender_ = this;
    edges[i].target->ReceiveBatch(std::move(copy), edges[i].port);
  }
  const OutEdge& last = edges.back();
  tl_delivery_sender_ = this;
  last.target->ReceiveBatch(std::move(batch), last.port);
}

void Operator::EmitColumnar(ColumnarBatchPtr batch) {
  if (batch == nullptr || batch->empty()) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  if (StatsCollectionEnabled()) {
    stats().RecordEmitted(static_cast<int64_t>(batch->size()));
  }
  const auto& edges = outputs();
  if (edges.empty()) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    ColumnarBatchPtr copy = columnar::AcquireBatch(batch->schema_ptr());
    copy->CopyFrom(*batch);
    tl_delivery_sender_ = this;
    edges[i].target->ReceiveColumnar(std::move(copy), edges[i].port);
  }
  const OutEdge& last = edges.back();
  tl_delivery_sender_ = this;
  last.target->ReceiveColumnar(std::move(batch), last.port);
}

void Operator::EmitTo(size_t output_index, const Tuple& tuple) {
  DCHECK(tuple.is_data());
  DCHECK_LT(output_index, outputs().size());
  if (stamp_emit_seq_) {
    EmitTo(output_index, Tuple(tuple));  // copy so the stamp can land
    return;
  }
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  const OutEdge& edge = outputs()[output_index];
  tl_delivery_sender_ = this;
  edge.target->Receive(tuple, edge.port);
}

void Operator::EmitTo(size_t output_index, Tuple&& tuple) {
  DCHECK(tuple.is_data());
  DCHECK_LT(output_index, outputs().size());
  if (stamp_emit_seq_) tuple.set_seq(current_input_seq_);
  if (StatsCollectionEnabled()) stats().RecordEmitted(1);
  const OutEdge& edge = outputs()[output_index];
  tl_delivery_sender_ = this;
  edge.target->Receive(std::move(tuple), edge.port);
}

void Operator::EmitBatchTo(size_t output_index, TupleBatch&& batch) {
  if (batch.empty()) return;
  DCHECK_LT(output_index, outputs().size());
  if (StatsCollectionEnabled()) {
    stats().RecordEmitted(static_cast<int64_t>(batch.size()));
  }
  const OutEdge& edge = outputs()[output_index];
  tl_delivery_sender_ = this;
  edge.target->ReceiveBatch(std::move(batch), edge.port);
}

void Operator::EmitEos(AppTime timestamp) {
  const Tuple eos = Tuple::EndOfStream(timestamp);
  for (const auto& edge : outputs()) {
    tl_delivery_sender_ = this;
    edge.target->Receive(eos, edge.port);
  }
}

void Operator::EmitBarrier(const Tuple& barrier) {
  DCHECK(barrier.is_barrier());
  for (const auto& edge : outputs()) {
    tl_delivery_sender_ = this;
    edge.target->Receive(barrier, edge.port);
  }
}

void Operator::Reset() {
  eos_received_ = 0;
  closed_ = false;
  max_eos_timestamp_ = 0;
  current_input_seq_ = 0;
  failed_.store(false, std::memory_order_release);
  fault_retries_.store(0, std::memory_order_relaxed);
  // Epoch machinery re-engages at the next barrier (or via
  // SetRecoveredEpoch); the callback survives like the fault hook does.
  epoch_state_.reset();
  aligned_epoch_.store(0, std::memory_order_release);
}

}  // namespace flexstream

#include "operators/projection.h"

#include "util/busy_work.h"

namespace flexstream {

Projection::Projection(std::string name, std::vector<size_t> attrs,
                       double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      attrs_(std::move(attrs)),
      simulated_cost_micros_(simulated_cost_micros) {}

void Projection::Process(const Tuple& tuple, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  if (attrs_.empty()) {
    Emit(tuple);
    return;
  }
  std::vector<Value> values;
  values.reserve(attrs_.size());
  for (size_t a : attrs_) values.push_back(tuple.at(a));
  Emit(Tuple(std::move(values), tuple.timestamp()));
}

}  // namespace flexstream

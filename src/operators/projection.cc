#include "operators/projection.h"

#include <algorithm>

#include "tuple/batch_pool.h"
#include "util/busy_work.h"

namespace flexstream {

Projection::Projection(std::string name, std::vector<size_t> attrs,
                       double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      attrs_(std::move(attrs)),
      simulated_cost_micros_(simulated_cost_micros) {
  std::vector<size_t> sorted = attrs_;
  std::sort(sorted.begin(), sorted.end());
  attrs_unique_ =
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
  MarkColumnarNative();
}

SchemaPtr Projection::InferOutputSchema(
    const std::vector<SchemaPtr>& inputs) const {
  if (inputs.empty() || inputs[0] == nullptr) return nullptr;
  if (attrs_.empty()) return inputs[0];
  std::vector<Value::Type> types;
  types.reserve(attrs_.size());
  for (size_t a : attrs_) {
    if (a >= inputs[0]->arity()) return nullptr;
    types.push_back(inputs[0]->type(a));
  }
  return MakeSchema(std::move(types));
}

void Projection::Process(const Tuple& tuple, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  if (attrs_.empty()) {
    Emit(tuple);
    return;
  }
  std::vector<Value> values;
  values.reserve(attrs_.size());
  for (size_t a : attrs_) values.push_back(tuple.at(a));
  EmitMove(Tuple(std::move(values), tuple.timestamp()));
}

void Projection::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(batch.size()));
  }
  if (!attrs_.empty()) {
    for (Tuple& tuple : batch) {
      std::vector<Value> values;
      values.reserve(attrs_.size());
      for (size_t a : attrs_) {
        if (attrs_unique_) {
          values.push_back(std::move(tuple.at(a)));
        } else {
          values.push_back(tuple.at(a));
        }
      }
      tuple = Tuple(std::move(values), tuple.timestamp());
    }
  }
  EmitBatch(std::move(batch));
}

void Projection::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(batch->size()));
  }
  if (attrs_.empty()) {
    EmitColumnar(std::move(batch));
    return;
  }
  const SchemaPtr& in = batch->schema_ptr();
  for (size_t a : attrs_) {
    if (a >= in->arity()) {
      // Out-of-range attr for this (drifted) schema: the row path's
      // accessor checks will report it.
      ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
      return;
    }
  }
  if (cached_in_ != in) {
    cached_in_ = in;
    std::vector<Value::Type> types;
    types.reserve(attrs_.size());
    for (size_t a : attrs_) types.push_back(in->type(a));
    cached_out_ = MakeSchema(std::move(types));
  }
  batch->ProjectColumns(attrs_, cached_out_);
  batch->ClearSeqs();
  EmitColumnar(std::move(batch));
}

}  // namespace flexstream

#include "operators/union_op.h"

namespace flexstream {

UnionOp::UnionOp(std::string name)
    : Operator(Kind::kOperator, std::move(name), kVariadicArity) {}

void UnionOp::Process(const Tuple& tuple, int port) {
  (void)port;
  Emit(tuple);
}

void UnionOp::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  EmitBatch(std::move(batch));
}

}  // namespace flexstream

#include "operators/union_op.h"

#include "tuple/columnar_batch.h"

namespace flexstream {

UnionOp::UnionOp(std::string name)
    : Operator(Kind::kOperator, std::move(name), kVariadicArity) {
  MarkColumnarNative();
}

void UnionOp::Process(const Tuple& tuple, int port) {
  (void)port;
  Emit(tuple);
}

void UnionOp::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  EmitBatch(std::move(batch));
}

void UnionOp::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  (void)port;
  EmitColumnar(std::move(batch));
}

}  // namespace flexstream

#include "operators/selection.h"

#include "tuple/batch_pool.h"
#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {

Selection::Selection(std::string name, Predicate predicate,
                     double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      predicate_(std::move(predicate)),
      simulated_cost_micros_(simulated_cost_micros) {
  CHECK(predicate_ != nullptr);
}

Selection::Selection(std::string name, Int64ColumnPredicate pred,
                     double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      typed_pred_(std::move(pred)),
      simulated_cost_micros_(simulated_cost_micros) {
  CHECK(typed_pred_.fn != nullptr);
  // Row deliveries evaluate the same function through the row accessor.
  predicate_ = [attr = typed_pred_.attr, fn = typed_pred_.fn](const Tuple& t) {
    return fn(t.IntAt(attr));
  };
  MarkColumnarNative();
}

Selection::Predicate Selection::IntAttrLessThan(int64_t threshold,
                                                size_t attr) {
  return [threshold, attr](const Tuple& t) {
    return t.IntAt(attr) < threshold;
  };
}

Int64ColumnPredicate Selection::ColumnIntLessThan(int64_t threshold,
                                                  size_t attr) {
  return Int64ColumnPredicate{
      attr, [threshold](int64_t v) { return v < threshold; }};
}

void Selection::Process(const Tuple& tuple, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  if (predicate_(tuple)) Emit(tuple);
}

void Selection::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(batch.size()));
  }
  batch.Compact(predicate_);
  EmitBatch(std::move(batch));
}

void Selection::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  const Schema& schema = batch->schema();
  if (typed_pred_.fn == nullptr || typed_pred_.attr >= schema.arity() ||
      schema.type(typed_pred_.attr) != Value::Type::kInt64) {
    // Schema without our typed column (drifted stream): row fallback.
    ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  const size_t n = batch->size();
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(n));
  }
  const int64_t* vals = batch->Ints(typed_pred_.attr);
  keep_.clear();
  keep_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (typed_pred_.fn(vals[i])) keep_.push_back(static_cast<uint32_t>(i));
  }
  if (keep_.empty()) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  batch->CompactRows(keep_.data(), keep_.size());
  EmitColumnar(std::move(batch));
}

}  // namespace flexstream

#include "operators/selection.h"

#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {

Selection::Selection(std::string name, Predicate predicate,
                     double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      predicate_(std::move(predicate)),
      simulated_cost_micros_(simulated_cost_micros) {
  CHECK(predicate_ != nullptr);
}

Selection::Predicate Selection::IntAttrLessThan(int64_t threshold,
                                                size_t attr) {
  return [threshold, attr](const Tuple& t) {
    return t.IntAt(attr) < threshold;
  };
}

void Selection::Process(const Tuple& tuple, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  if (predicate_(tuple)) Emit(tuple);
}

void Selection::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(batch.size()));
  }
  batch.Compact(predicate_);
  EmitBatch(std::move(batch));
}

}  // namespace flexstream

#include "operators/tumbling_aggregate.h"

#include <algorithm>

#include "util/logging.h"

namespace flexstream {

TumblingAggregate::TumblingAggregate(std::string name, Options options)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      options_(options) {
  CHECK_GT(options.window_micros, 0);
}

void TumblingAggregate::Reset() {
  Operator::Reset();
  has_window_ = false;
  current_window_ = 0;
  groups_.clear();
}

double TumblingAggregate::Finish(const GroupState& g) const {
  switch (options_.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(g.count);
    case AggregateKind::kSum:
      return g.sum;
    case AggregateKind::kAvg:
      return g.count == 0 ? 0.0 : g.sum / static_cast<double>(g.count);
    case AggregateKind::kMin:
      return g.min;
    case AggregateKind::kMax:
      return g.max;
  }
  return 0.0;
}

void TumblingAggregate::FlushCurrentWindow() {
  if (!has_window_ || groups_.empty()) {
    groups_.clear();
    return;
  }
  const AppTime stamp =
      options_.stamp_window_start
          ? current_window_ * options_.window_micros
          : (current_window_ + 1) * options_.window_micros;
  for (const auto& [key, state] : groups_) {
    if (options_.group_attr) {
      EmitMove(Tuple({key, Value(Finish(state))}, stamp));
    } else {
      EmitMove(Tuple({Value(Finish(state))}, stamp));
    }
  }
  groups_.clear();
}

void TumblingAggregate::Process(const Tuple& tuple, int port) {
  (void)port;
  const AppTime window = WindowIndexOf(tuple.timestamp());
  if (has_window_ && window != current_window_) {
    // Tumbling windows require timestamp-monotone input per edge.
    DCHECK_GT(window, current_window_);
    FlushCurrentWindow();
  }
  has_window_ = true;
  current_window_ = window;
  const Value key = options_.group_attr ? tuple.at(*options_.group_attr)
                                        : Value(int64_t{0});
  const double v = options_.kind == AggregateKind::kCount
                       ? 0.0
                       : tuple.at(options_.value_attr).ToDouble();
  GroupState& g = groups_[key];
  if (g.count == 0) {
    g.min = v;
    g.max = v;
  } else {
    g.min = std::min(g.min, v);
    g.max = std::max(g.max, v);
  }
  ++g.count;
  g.sum += v;
}

void TumblingAggregate::OnAllInputsClosed(AppTime timestamp) {
  FlushCurrentWindow();
  EmitEos(timestamp);
}


OperatorSnapshot TumblingAggregate::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::make_tuple(has_window_, current_window_, groups_);
  snap.element_count = static_cast<int64_t>(groups_.size());
  return snap;
}

void TumblingAggregate::RestoreState(const OperatorSnapshot& snapshot) {
  using State = std::tuple<bool, AppTime, std::map<Value, GroupState>>;
  const auto& state = std::any_cast<const State&>(snapshot.state);
  has_window_ = std::get<0>(state);
  current_window_ = std::get<1>(state);
  groups_ = std::get<2>(state);
}
}  // namespace flexstream

#include "operators/tumbling_aggregate.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "tuple/batch_pool.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

TumblingAggregate::TumblingAggregate(std::string name, Options options)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      options_(options) {
  CHECK_GT(options.window_micros, 0);
  MarkColumnarNative();
}

SchemaPtr TumblingAggregate::InferOutputSchema(
    const std::vector<SchemaPtr>& inputs) const {
  std::vector<Value::Type> types;
  if (options_.group_attr) {
    if (inputs.empty() || inputs[0] == nullptr ||
        *options_.group_attr >= inputs[0]->arity()) {
      return nullptr;
    }
    types.push_back(inputs[0]->type(*options_.group_attr));
  }
  types.push_back(Value::Type::kDouble);
  return MakeSchema(std::move(types));
}

void TumblingAggregate::Reset() {
  Operator::Reset();
  has_window_ = false;
  current_window_ = 0;
  groups_.clear();
}

double TumblingAggregate::Finish(const GroupState& g) const {
  switch (options_.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(g.count);
    case AggregateKind::kSum:
      return g.sum;
    case AggregateKind::kAvg:
      return g.count == 0 ? 0.0 : g.sum / static_cast<double>(g.count);
    case AggregateKind::kMin:
      return g.min;
    case AggregateKind::kMax:
      return g.max;
  }
  return 0.0;
}

void TumblingAggregate::FlushCurrentWindow() {
  if (!has_window_ || groups_.empty()) {
    groups_.clear();
    return;
  }
  const AppTime stamp =
      options_.stamp_window_start
          ? current_window_ * options_.window_micros
          : (current_window_ + 1) * options_.window_micros;
  for (const auto& [key, state] : groups_) {
    if (options_.group_attr) {
      EmitMove(Tuple({key, Value(Finish(state))}, stamp));
    } else {
      EmitMove(Tuple({Value(Finish(state))}, stamp));
    }
  }
  groups_.clear();
}

void TumblingAggregate::Process(const Tuple& tuple, int port) {
  (void)port;
  const AppTime window = WindowIndexOf(tuple.timestamp());
  if (has_window_ && window != current_window_) {
    // Tumbling windows require timestamp-monotone input per edge.
    DCHECK_GT(window, current_window_);
    FlushCurrentWindow();
  }
  has_window_ = true;
  current_window_ = window;
  const Value key = options_.group_attr ? tuple.at(*options_.group_attr)
                                        : Value(int64_t{0});
  const double v = options_.kind == AggregateKind::kCount
                       ? 0.0
                       : tuple.at(options_.value_attr).ToDouble();
  GroupState& g = groups_[key];
  if (g.count == 0) {
    g.min = v;
    g.max = v;
  } else {
    g.min = std::min(g.min, v);
    g.max = std::max(g.max, v);
  }
  ++g.count;
  g.sum += v;
}

void TumblingAggregate::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  const Schema& schema = batch->schema();
  const bool needs_value = options_.kind != AggregateKind::kCount;
  const bool value_ok =
      !needs_value ||
      (options_.value_attr < schema.arity() &&
       (schema.type(options_.value_attr) == Value::Type::kInt64 ||
        schema.type(options_.value_attr) == Value::Type::kDouble));
  const bool group_ok =
      !options_.group_attr || *options_.group_attr < schema.arity();
  if (!value_ok || !group_ok) {
    ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  const size_t n = batch->size();
  const AppTime* ts = batch->Timestamps();
  const int64_t* vi = nullptr;
  const double* vd = nullptr;
  if (needs_value) {
    if (schema.type(options_.value_attr) == Value::Type::kInt64) {
      vi = batch->Ints(options_.value_attr);
    } else {
      vd = batch->Doubles(options_.value_attr);
    }
  }
  const size_t group_attr = options_.group_attr ? *options_.group_attr : 0;
  const Value::Type group_type =
      options_.group_attr ? schema.type(group_attr) : Value::Type::kInt64;
  // The single-group (and run-of-equal-int-keys) state is cached across
  // rows; a window flush invalidates it.
  GroupState* cached = nullptr;
  for (size_t i = 0; i < n; ++i) {
    const AppTime window = WindowIndexOf(ts[i]);
    if (has_window_ && window != current_window_) {
      DCHECK_GT(window, current_window_);
      FlushCurrentWindow();
      cached = nullptr;
    }
    has_window_ = true;
    current_window_ = window;
    GroupState* g;
    if (!options_.group_attr) {
      if (cached == nullptr) cached = &groups_[Value(int64_t{0})];
      g = cached;
    } else {
      switch (group_type) {
        case Value::Type::kInt64:
          g = &groups_[Value(batch->Ints(group_attr)[i])];
          break;
        case Value::Type::kDouble:
          g = &groups_[Value(batch->Doubles(group_attr)[i])];
          break;
        case Value::Type::kString:
        default:
          g = &groups_[Value(std::string(batch->StringAt(group_attr, i)))];
          break;
      }
    }
    const double v = !needs_value
                         ? 0.0
                         : (vi != nullptr ? static_cast<double>(vi[i]) : vd[i]);
    if (g->count == 0) {
      g->min = v;
      g->max = v;
    } else {
      g->min = std::min(g->min, v);
      g->max = std::max(g->max, v);
    }
    ++g->count;
    g->sum += v;
  }
  columnar::ReleaseBatch(std::move(batch));
}

void TumblingAggregate::OnAllInputsClosed(AppTime timestamp) {
  FlushCurrentWindow();
  EmitEos(timestamp);
}


OperatorSnapshot TumblingAggregate::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::make_tuple(has_window_, current_window_, groups_);
  snap.element_count = static_cast<int64_t>(groups_.size());
  return snap;
}

void TumblingAggregate::RestoreState(const OperatorSnapshot& snapshot) {
  using State = std::tuple<bool, AppTime, std::map<Value, GroupState>>;
  const auto& state = std::any_cast<const State&>(snapshot.state);
  has_window_ = std::get<0>(state);
  current_window_ = std::get<1>(state);
  groups_ = std::get<2>(state);
}

Status TumblingAggregate::EncodeState(const OperatorSnapshot& snapshot,
                                      std::string* out) const {
  using State = std::tuple<bool, AppTime, std::map<Value, GroupState>>;
  const State* state = nullptr;
  if (snapshot.state.has_value()) {
    state = std::any_cast<State>(&snapshot.state);
    if (state == nullptr) {
      return Status::InvalidArgument(
          "snapshot is not a tumbling-aggregate snapshot");
    }
  }
  BinaryWriter w(out);
  if (state == nullptr) {
    w.U8(0);
    w.I64(0);
    w.U64(0);
    return Status::Ok();
  }
  w.U8(std::get<0>(*state) ? 1 : 0);
  w.I64(std::get<1>(*state));
  const std::map<Value, GroupState>& groups = std::get<2>(*state);
  w.U64(groups.size());
  for (const auto& [key, group] : groups) {
    w.Value(key);
    w.I64(group.count);
    w.F64(group.sum);
    w.F64(group.min);
    w.F64(group.max);
  }
  return Status::Ok();
}

Result<OperatorSnapshot> TumblingAggregate::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  uint8_t has_window = 0;
  int64_t current_window = 0;
  uint64_t group_count = 0;
  Status st = r.U8(&has_window);
  if (st.ok()) st = r.I64(&current_window);
  if (st.ok()) st = r.U64(&group_count);
  if (!st.ok()) return st;
  if (has_window > 1) {
    return Status::InvalidArgument("malformed tumbling-aggregate snapshot");
  }
  std::map<Value, GroupState> groups;
  for (uint64_t g = 0; g < group_count; ++g) {
    Value key;
    st = r.Value(&key);
    if (!st.ok()) return st;
    GroupState group;
    st = r.I64(&group.count);
    if (st.ok()) st = r.F64(&group.sum);
    if (st.ok()) st = r.F64(&group.min);
    if (st.ok()) st = r.F64(&group.max);
    if (!st.ok()) return st;
    if (!groups.emplace(std::move(key), group).second) {
      return Status::InvalidArgument("duplicate group key in snapshot");
    }
  }
  if (!r.done()) {
    return Status::InvalidArgument(
        "trailing bytes in tumbling-aggregate snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count = static_cast<int64_t>(groups.size());
  snap.state =
      std::make_tuple(has_window == 1, current_window, std::move(groups));
  return snap;
}
}  // namespace flexstream

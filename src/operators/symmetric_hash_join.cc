#include "operators/symmetric_hash_join.h"

#include "util/logging.h"

namespace flexstream {

SymmetricHashJoin::SymmetricHashJoin(std::string name, AppTime window_micros,
                                     size_t left_key_attr,
                                     size_t right_key_attr)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/2),
      window_micros_(window_micros) {
  sides_[kLeftPort].key_attr = left_key_attr;
  sides_[kRightPort].key_attr = right_key_attr;
}

void SymmetricHashJoin::Reset() {
  Operator::Reset();
  for (Side& side : sides_) {
    side.table.clear();
    side.expiry.clear();
    side.stored = 0;
  }
}

size_t SymmetricHashJoin::StateSize() const {
  return sides_[0].stored + sides_[1].stored;
}

void SymmetricHashJoin::Side::Insert(const Tuple& tuple) {
  const Value key = tuple.at(key_attr);
  table[key].push_back(tuple);
  expiry.emplace_back(key, tuple.timestamp());
  ++stored;
}

void SymmetricHashJoin::Side::ExpireBefore(AppTime watermark) {
  while (!expiry.empty() && expiry.front().second < watermark) {
    const Value& key = expiry.front().first;
    auto it = table.find(key);
    DCHECK(it != table.end());
    // Timestamps are monotone per input, so the oldest tuple for this key
    // is at the front of its bucket.
    it->second.pop_front();
    if (it->second.empty()) table.erase(it);
    expiry.pop_front();
    --stored;
  }
}

void SymmetricHashJoin::Process(const Tuple& tuple, int port) {
  DCHECK(port == kLeftPort || port == kRightPort);
  Side& own = sides_[port];
  Side& other = sides_[1 - port];
  const AppTime watermark = tuple.timestamp() - window_micros_;
  own.ExpireBefore(watermark);
  other.ExpireBefore(watermark);
  const Value key = tuple.at(own.key_attr);
  auto it = other.table.find(key);
  if (it != other.table.end()) {
    for (const Tuple& match : it->second) {
      // Explicit window-band check: a pair joins iff each element lies in
      // the other's window (|delta ts| <= w). Expiration alone is not
      // enough when the two inputs are drained by different threads and
      // one side runs ahead — the result multiset must not depend on the
      // schedule (Section 2.4).
      if (match.timestamp() < watermark ||
          match.timestamp() > tuple.timestamp() + window_micros_) {
        continue;
      }
      if (port == kLeftPort) {
        EmitMove(Tuple::Concat(tuple, match));
      } else {
        EmitMove(Tuple::Concat(match, tuple));
      }
    }
  }
  own.Insert(tuple);
}


OperatorSnapshot SymmetricHashJoin::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::vector<Side>{sides_[0], sides_[1]};
  snap.element_count = static_cast<int64_t>(StateSize());
  return snap;
}

void SymmetricHashJoin::RestoreState(const OperatorSnapshot& snapshot) {
  const auto& sides =
      std::any_cast<const std::vector<Side>&>(snapshot.state);
  sides_[0] = sides[0];
  sides_[1] = sides[1];
}
}  // namespace flexstream

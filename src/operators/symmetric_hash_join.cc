#include "operators/symmetric_hash_join.h"

#include <algorithm>
#include <utility>

#include "operators/router.h"
#include "tuple/batch_pool.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

SymmetricHashJoin::SymmetricHashJoin(std::string name, AppTime window_micros,
                                     size_t left_key_attr,
                                     size_t right_key_attr)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/2),
      window_micros_(window_micros) {
  sides_[kLeftPort].key_attr = left_key_attr;
  sides_[kRightPort].key_attr = right_key_attr;
  MarkColumnarNative();
}

void SymmetricHashJoin::Reset() {
  Operator::Reset();
  for (Side& side : sides_) {
    side.table.clear();
    side.expiry.clear();
    side.stored = 0;
  }
}

size_t SymmetricHashJoin::StateSize() const {
  return sides_[0].stored + sides_[1].stored;
}

void SymmetricHashJoin::Side::Insert(const Tuple& tuple) {
  const Value key = tuple.at(key_attr);
  table[key].push_back(tuple);
  expiry.emplace_back(key, tuple.timestamp());
  ++stored;
}

void SymmetricHashJoin::Side::ExpireBefore(AppTime watermark) {
  while (!expiry.empty() && expiry.front().second < watermark) {
    const Value& key = expiry.front().first;
    auto it = table.find(key);
    DCHECK(it != table.end());
    // Timestamps are monotone per input, so the oldest tuple for this key
    // is at the front of its bucket.
    it->second.pop_front();
    if (it->second.empty()) table.erase(it);
    expiry.pop_front();
    --stored;
  }
}

void SymmetricHashJoin::Process(const Tuple& tuple, int port) {
  DCHECK(port == kLeftPort || port == kRightPort);
  Side& own = sides_[port];
  Side& other = sides_[1 - port];
  const AppTime watermark = tuple.timestamp() - window_micros_;
  own.ExpireBefore(watermark);
  other.ExpireBefore(watermark);
  const Value key = tuple.at(own.key_attr);
  auto it = other.table.find(key);
  if (it != other.table.end()) {
    for (const Tuple& match : it->second) {
      // Explicit window-band check: a pair joins iff each element lies in
      // the other's window (|delta ts| <= w). Expiration alone is not
      // enough when the two inputs are drained by different threads and
      // one side runs ahead — the result multiset must not depend on the
      // schedule (Section 2.4).
      if (match.timestamp() < watermark ||
          match.timestamp() > tuple.timestamp() + window_micros_) {
        continue;
      }
      if (port == kLeftPort) {
        EmitMove(Tuple::Concat(tuple, match));
      } else {
        EmitMove(Tuple::Concat(match, tuple));
      }
    }
  }
  own.Insert(tuple);
}

void SymmetricHashJoin::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  DCHECK(port == kLeftPort || port == kRightPort);
  Side& own = sides_[port];
  Side& other = sides_[1 - port];
  const Schema& schema = batch->schema();
  if (own.key_attr >= schema.arity()) {
    ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  const Value::Type key_type = schema.type(own.key_attr);
  const int64_t* int_keys = key_type == Value::Type::kInt64
                                ? batch->Ints(own.key_attr)
                                : nullptr;
  const AppTime* ts = batch->Timestamps();
  const size_t n = batch->size();
  for (size_t i = 0; i < n; ++i) {
    const AppTime watermark = ts[i] - window_micros_;
    own.ExpireBefore(watermark);
    other.ExpireBefore(watermark);
    Value key;
    if (int_keys != nullptr) {
      key = Value(int_keys[i]);
    } else if (key_type == Value::Type::kDouble) {
      key = Value(batch->Doubles(own.key_attr)[i]);
    } else {
      key = Value(std::string(batch->StringAt(own.key_attr, i)));
    }
    auto it = other.table.find(key);
    // Every row is inserted into its own side, so each is materialized
    // exactly once; matches are emitted before the insertion, matching
    // the row path's expire/probe/insert order.
    Tuple tuple = batch->MaterializeRow(i);
    if (it != other.table.end()) {
      for (const Tuple& match : it->second) {
        if (match.timestamp() < watermark ||
            match.timestamp() > ts[i] + window_micros_) {
          continue;
        }
        if (port == kLeftPort) {
          EmitMove(Tuple::Concat(tuple, match));
        } else {
          EmitMove(Tuple::Concat(match, tuple));
        }
      }
    }
    own.Insert(tuple);
  }
  columnar::ReleaseBatch(std::move(batch));
}

OperatorSnapshot SymmetricHashJoin::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::vector<Side>{sides_[0], sides_[1]};
  snap.element_count = static_cast<int64_t>(StateSize());
  return snap;
}

void SymmetricHashJoin::RestoreState(const OperatorSnapshot& snapshot) {
  const auto& sides =
      std::any_cast<const std::vector<Side>&>(snapshot.state);
  sides_[0] = sides[0];
  sides_[1] = sides[1];
}

Status SymmetricHashJoin::EncodeState(const OperatorSnapshot& snapshot,
                                      std::string* out) const {
  const std::vector<Side>* sides = nullptr;
  if (snapshot.state.has_value()) {
    sides = std::any_cast<std::vector<Side>>(&snapshot.state);
    if (sides == nullptr) {
      return Status::InvalidArgument("snapshot is not a join snapshot");
    }
    if (sides->size() != 2) {
      return Status::InvalidArgument("malformed join snapshot");
    }
  }
  BinaryWriter w(out);
  for (int s = 0; s < 2; ++s) {
    const size_t key_attr =
        sides != nullptr ? (*sides)[s].key_attr : sides_[s].key_attr;
    w.U64(key_attr);
    if (sides == nullptr) {
      w.U64(0);
      continue;
    }
    const Side& side = (*sides)[s];
    w.U64(side.stored);
    // Emit stored tuples in arrival order: the i-th expiry entry for key k
    // pairs with the i-th tuple of k's bucket (both FIFO), so a per-key
    // cursor walk over the expiry queue recovers the arrival stream.
    std::unordered_map<Value, size_t, ValueHash> cursor;
    for (const auto& entry : side.expiry) {
      auto it = side.table.find(entry.first);
      if (it == side.table.end()) {
        return Status::Internal("join snapshot expiry/table mismatch");
      }
      size_t& index = cursor[entry.first];
      if (index >= it->second.size()) {
        return Status::Internal("join snapshot expiry/table mismatch");
      }
      w.Tuple(it->second[index++]);
    }
  }
  return Status::Ok();
}

Result<OperatorSnapshot> SymmetricHashJoin::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  std::vector<Side> sides(2);
  for (int s = 0; s < 2; ++s) {
    uint64_t key_attr = 0;
    uint64_t count = 0;
    Status st = r.U64(&key_attr);
    if (st.ok()) st = r.U64(&count);
    if (!st.ok()) return st;
    if (key_attr != sides_[s].key_attr) {
      return Status::InvalidArgument(
          "join snapshot key attribute does not match operator");
    }
    sides[s].key_attr = key_attr;
    for (uint64_t i = 0; i < count; ++i) {
      Tuple tuple = Tuple::OfInt(0, 0);
      st = r.Tuple(&tuple);
      if (!st.ok()) return st;
      if (!tuple.is_data() || tuple.arity() <= key_attr) {
        return Status::InvalidArgument("malformed join snapshot tuple");
      }
      sides[s].Insert(tuple);
    }
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in join snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count =
      static_cast<int64_t>(sides[0].stored + sides[1].stored);
  snap.state = std::move(sides);
  return snap;
}

std::unique_ptr<Operator> SymmetricHashJoin::CloneFresh(
    std::string name) const {
  return std::make_unique<SymmetricHashJoin>(std::move(name), window_micros_,
                                             sides_[kLeftPort].key_attr,
                                             sides_[kRightPort].key_attr);
}

Result<std::vector<OperatorSnapshot>> SymmetricHashJoin::RepartitionSnapshots(
    const std::vector<OperatorSnapshot>& snapshots, size_t new_n) const {
  if (new_n == 0) {
    return Status::InvalidArgument("cannot repartition into 0 shards");
  }
  if (snapshots.empty()) {
    return Status::InvalidArgument("no replica snapshots to repartition");
  }
  std::vector<std::vector<Side>> shards(new_n, std::vector<Side>(2));
  for (std::vector<Side>& shard : shards) {
    shard[kLeftPort].key_attr = sides_[kLeftPort].key_attr;
    shard[kRightPort].key_attr = sides_[kRightPort].key_attr;
  }
  for (int s = 0; s < 2; ++s) {
    // Reconstruct each replica's per-side arrival stream: the i-th expiry
    // entry for key k corresponds to the i-th tuple of k's bucket (both
    // are FIFO in arrival order).
    std::vector<Tuple> arrivals;
    for (const OperatorSnapshot& snap : snapshots) {
      if (snap.epoch != snapshots.front().epoch) {
        return Status::FailedPrecondition(
            "replica snapshots span different epochs");
      }
      const auto* replica =
          std::any_cast<std::vector<Side>>(&snap.state);
      if (replica == nullptr && snap.state.has_value()) {
        return Status::InvalidArgument("snapshot is not a join snapshot");
      }
      if (replica == nullptr) continue;  // empty state: nothing stored
      if (replica->size() != 2) {
        return Status::InvalidArgument("malformed join snapshot");
      }
      const Side& side = (*replica)[s];
      std::unordered_map<Value, size_t, ValueHash> cursor;
      for (const auto& entry : side.expiry) {
        auto it = side.table.find(entry.first);
        if (it == side.table.end()) {
          return Status::Internal("join snapshot expiry/table mismatch");
        }
        size_t& index = cursor[entry.first];
        if (index >= it->second.size()) {
          return Status::Internal("join snapshot expiry/table mismatch");
        }
        arrivals.push_back(it->second[index++]);
      }
    }
    // Merge the replicas into one timestamp-ordered stream. Each replica's
    // stream is timestamp-monotone, so a stable sort is a valid merge; the
    // expiry queues of the new shards come out monotone as required.
    std::stable_sort(
        arrivals.begin(), arrivals.end(),
        [](const Tuple& a, const Tuple& b) {
          return a.timestamp() < b.timestamp();
        });
    for (const Tuple& tuple : arrivals) {
      const size_t shard =
          Router::HashValue(tuple.at(sides_[s].key_attr)) % new_n;
      shards[shard][s].Insert(tuple);
    }
  }
  std::vector<OperatorSnapshot> out(new_n);
  for (size_t i = 0; i < new_n; ++i) {
    out[i].epoch = snapshots.front().epoch;
    out[i].element_count = static_cast<int64_t>(shards[i][0].stored +
                                                shards[i][1].stored);
    out[i].state = std::move(shards[i]);
  }
  return out;
}
}  // namespace flexstream

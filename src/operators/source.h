// Data sources.
//
// Sources "only deliver data" (Section 2.1). They are driven from outside
// the scheduler — either by an autonomous thread (workload/rate_source.h),
// or synchronously by tests/benchmarks pushing elements. With DI and no
// queue after the source, the source's driving thread executes the whole
// downstream subgraph (the configuration Section 6.3 shows to be unsafe
// for expensive operators).

#ifndef FLEXSTREAM_OPERATORS_SOURCE_H_
#define FLEXSTREAM_OPERATORS_SOURCE_H_

#include <string>
#include <vector>

#include "operators/operator.h"

namespace flexstream {

/// Base class for sources: exposes Push/Close so external drivers can
/// inject elements.
class Source : public Operator {
 public:
  explicit Source(std::string name);

  /// Delivers one data element downstream (in the calling thread).
  void Push(const Tuple& tuple);

  /// Emits the end-of-stream punctuation. Idempotent.
  void Close(AppTime timestamp = 0);

  bool closed_by_driver() const { return closed_by_driver_; }

  void Reset() override;

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  bool closed_by_driver_ = false;
};

/// A source over a pre-materialized vector of tuples; PushAll() replays
/// them in order and closes. Used by tests and oracle computations.
class VectorSource : public Source {
 public:
  VectorSource(std::string name, std::vector<Tuple> tuples);

  /// Replays every tuple then EOS (timestamped with the last element's
  /// timestamp).
  void PushAll();

  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SOURCE_H_

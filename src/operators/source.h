// Data sources.
//
// Sources "only deliver data" (Section 2.1). They are driven from outside
// the scheduler — either by an autonomous thread (workload/rate_source.h),
// or synchronously by tests/benchmarks pushing elements. With DI and no
// queue after the source, the source's driving thread executes the whole
// downstream subgraph (the configuration Section 6.3 shows to be unsafe
// for expensive operators).

#ifndef FLEXSTREAM_OPERATORS_SOURCE_H_
#define FLEXSTREAM_OPERATORS_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "tuple/columnar_batch.h"

namespace flexstream {

/// Base class for sources: exposes Push/Close so external drivers can
/// inject elements.
///
/// Checkpointing (src/recovery/): ArmEpochs makes the source inject an
/// epoch-barrier punctuation after every `interval` pushed elements and
/// report each push to a PushObserver (the recovery manager's replay
/// buffer) *before* emitting it — so an element lost to a failure mid-emit
/// is still replayable. While armed, Push/Close also take a shared lock on
/// the recovery gate; recovery takes it exclusively to quiesce all driving
/// threads before restoring state.
class Source : public Operator {
 public:
  /// Observes the armed source's input stream for replay (implemented by
  /// recovery::ReplayBuffer). Called in the driving thread, before the
  /// element is emitted. `epoch` is the epoch the element belongs to
  /// (elements after barrier k-1 and up to barrier k belong to epoch k).
  class PushObserver {
   public:
    virtual ~PushObserver() = default;
    virtual void OnPush(const Tuple& tuple, uint64_t epoch) = 0;
    virtual void OnClose(AppTime timestamp) = 0;
  };

  explicit Source(std::string name);

  /// Delivers one data element downstream (in the calling thread). With an
  /// emit batch size > 1, the element is accumulated instead and delivered
  /// as part of the next TupleBatch (DESIGN.md §11).
  void Push(const Tuple& tuple);

  /// Move-aware Push: the element's payload is moved downstream (into the
  /// accumulating batch, or — single subscriber — into the first Receive).
  void Push(Tuple&& tuple);

  /// Emits the end-of-stream punctuation (flushing any pending batch
  /// first). Idempotent.
  void Close(AppTime timestamp = 0);

  /// Batch accumulation (EngineOptions::emit_batch_size): sizes > 1 make
  /// Push collect elements into a TupleBatch and emit it downstream once
  /// full. Pending elements are flushed before every epoch barrier, before
  /// Close's EOS, and by this call itself — batches never straddle a
  /// punctuation. 0 is treated as 1 (per-tuple delivery, the default).
  /// Engine-configured; call from the driving thread or while quiescent.
  void SetEmitBatchSize(size_t batch_size);
  size_t emit_batch_size() const { return emit_batch_size_; }

  /// Thread-safe batch-size change request (the SLO controller's rung-2
  /// actuation): the new size is applied by the driving thread itself at
  /// its next Push (pending elements are flushed first, so batches never
  /// reorder across the change). 0 is treated as 1.
  void RequestEmitBatchSize(size_t batch_size) {
    requested_batch_size_.store(batch_size == 0 ? 1 : batch_size,
                                std::memory_order_relaxed);
  }

  /// Columnar accumulation (EngineOptions::columnar, DESIGN.md §17): with
  /// an emit batch size > 1, Push scatters elements into a pooled
  /// ColumnarBatch instead of a row-wise TupleBatch and emits it via
  /// EmitColumnar once full. The batch's schema is the declared output
  /// schema when it matches the data, else inferred from the first
  /// element; an element that stops matching flushes the batch and starts
  /// a new one under the new schema, so mixed-type streams degrade to
  /// smaller batches, never to wrong answers. Punctuation flushing rules
  /// are identical to the row path. Engine-configured; call from the
  /// driving thread or while quiescent.
  void SetColumnarEmit(bool enabled);
  bool columnar_emit() const { return columnar_emit_; }

  /// Declares the attribute types this source will push — the graph-build-
  /// time anchor of schema propagation (StreamEngine::Configure walks it
  /// through the topology). Purely declarative: batches still verify
  /// element-by-element, so a wrong declaration costs batch granularity,
  /// never correctness.
  void DeclareOutputSchema(SchemaPtr schema);
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override;

  /// Columnar quickstart: delivers a pre-built typed batch downstream
  /// whole, skipping per-tuple Tuple construction entirely (benches and
  /// columnar-native feeds). Any accumulated elements are flushed first so
  /// order is preserved. When the epoch/replay machinery is armed the
  /// batch is unbundled onto the per-element Push path (the observer must
  /// see every element), so recovery semantics are untouched.
  void PushColumnar(ColumnarBatchPtr batch);

  bool closed_by_driver() const { return closed_by_driver_; }

  /// Arms epoch injection: a barrier after every `interval` pushes,
  /// deliveries reported to `observer`, Push/Close gated by `gate`.
  /// Engine-configured; call while quiescent. Survives Reset (the counters
  /// rewind via RewindTo instead).
  void ArmEpochs(uint64_t interval, PushObserver* observer,
                 std::shared_mutex* gate);
  void DisarmEpochs();
  bool epochs_armed() const { return epoch_interval_ != 0; }

  /// The epoch the next pushed element will belong to (1-based).
  uint64_t current_epoch() const { return next_epoch_; }

  /// Recovery rewind: resumes the epoch counters at the boundary of
  /// committed epoch `epoch`, reopening the source if the driver's Close
  /// is being replayed too. Call with the gate held exclusively, after
  /// Reset().
  void RewindTo(uint64_t epoch);

  /// Cold-restart resume (DESIGN.md §16): silently discards the next `n`
  /// data pushes on the epoch path — no emit, no observer record, no epoch
  /// counting. After a cold restart the driver re-feeds the source's full
  /// deterministic input; the skip swallows the prefix already reflected
  /// in the restored epoch's state, so the live run resumes exactly at the
  /// durable replay cursor and barriers regenerate at identical positions.
  /// Call with the graph quiescent, after RewindTo. Cleared by
  /// ArmEpochs/DisarmEpochs but preserved across RewindTo/Reset (a live
  /// recovery during the skip phase must keep skipping).
  void SetResumeSkip(uint64_t n) { resume_skip_ = n; }
  uint64_t resume_skip() const { return resume_skip_; }

  /// Replay bracket: between BeginReplay and EndReplay, Push/Close bypass
  /// both the gate (the recovery thread holds it exclusively — retaking it
  /// would self-deadlock) and the observer (replayed elements are already
  /// buffered).
  void BeginReplay() { replaying_ = true; }
  void EndReplay() { replaying_ = false; }

  void Reset() override;

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  void PushEpochs(const Tuple& tuple);
  /// Emits the accumulated batch — row-wise or columnar — downstream.
  void FlushPendingBatch();
  /// Scatters one element into the pending columnar batch (creating it
  /// from the pool on first use), flushing when full or on schema change.
  void AppendPendingColumnar(const Tuple& tuple);
  void FlushPendingColumnar();
  /// Driving-thread check for a pending RequestEmitBatchSize; applies it
  /// (flush + switch) when one differs from the current size. One relaxed
  /// load on the push path.
  void ApplyRequestedBatchSize() {
    const size_t requested =
        requested_batch_size_.load(std::memory_order_relaxed);
    if (requested != emit_batch_size_) SetEmitBatchSize(requested);
  }

  bool closed_by_driver_ = false;

  // Batch accumulation (driving-thread only, like the epoch counters).
  size_t emit_batch_size_ = 1;
  // Cross-thread change request, applied by the driving thread.
  std::atomic<size_t> requested_batch_size_{1};
  TupleBatch pending_;

  // Columnar accumulation (driving-thread only).
  bool columnar_emit_ = false;
  ColumnarBatchPtr pending_col_;
  SchemaPtr declared_schema_;  // user declaration (DeclareOutputSchema)
  SchemaPtr batch_schema_;     // working schema of the current batches

  // Epoch/replay state. Touched by the (single) driving thread and, with
  // the gate held exclusively, by the recovery thread.
  uint64_t epoch_interval_ = 0;
  uint64_t next_epoch_ = 1;
  uint64_t pushed_in_epoch_ = 0;
  uint64_t resume_skip_ = 0;
  PushObserver* observer_ = nullptr;
  std::shared_mutex* gate_ = nullptr;
  bool replaying_ = false;
};

/// A source over a pre-materialized vector of tuples; PushAll() replays
/// them in order and closes. Used by tests and oracle computations.
class VectorSource : public Source {
 public:
  VectorSource(std::string name, std::vector<Tuple> tuples);

  /// Replays every tuple then EOS (timestamped with the last element's
  /// timestamp).
  void PushAll();

  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SOURCE_H_

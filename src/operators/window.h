// Time-based sliding window buffer.
//
// Windows in flexstream are defined over *application time* (the timestamp
// carried in each tuple), so window contents are a deterministic function
// of the logical stream — experiments can be replayed faster or slower
// than real time without changing results (see DESIGN.md).
//
// Streams are assumed to be timestamp-monotone per input edge; the window
// expires from the front as the watermark advances. This matches the
// paper's Section 6.3 setup ("a one minute sliding window").

#ifndef FLEXSTREAM_OPERATORS_WINDOW_H_
#define FLEXSTREAM_OPERATORS_WINDOW_H_

#include <deque>
#include <functional>
#include <string>

#include "tuple/tuple.h"
#include "util/status.h"

namespace flexstream {

class BinaryReader;

class SlidingWindow {
 public:
  /// `duration_micros` is the window length w: a tuple with timestamp ts
  /// stays in the window while the watermark is <= ts + w.
  explicit SlidingWindow(AppTime duration_micros);

  void Add(const Tuple& tuple);

  /// Removes all tuples with timestamp < watermark, oldest first, invoking
  /// `on_expired` (if non-null) for each removed tuple.
  void ExpireBefore(AppTime watermark,
                    const std::function<void(const Tuple&)>& on_expired = {});

  /// Watermark for an arrival at time `now`: now - duration.
  AppTime WatermarkFor(AppTime now) const { return now - duration_micros_; }

  const std::deque<Tuple>& contents() const { return contents_; }
  size_t size() const { return contents_.size(); }
  bool empty() const { return contents_.empty(); }
  AppTime duration_micros() const { return duration_micros_; }

  void Clear() { contents_.clear(); }

 private:
  AppTime duration_micros_;
  std::deque<Tuple> contents_;
};

/// Durable-checkpoint serialization (DESIGN.md §16): duration + contents
/// in window order. Deterministic, so the byte-exact round-trip tests can
/// pin the encoding of every window-carrying operator snapshot.
void EncodeWindow(const SlidingWindow& window, std::string* out);
Result<SlidingWindow> DecodeWindow(BinaryReader* reader);

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_WINDOW_H_

#include "operators/multiway_join.h"

#include <algorithm>

#include "util/logging.h"

namespace flexstream {

MultiwayJoin::MultiwayJoin(std::string name, AppTime window_micros,
                           std::vector<size_t> key_attrs)
    : Operator(Kind::kOperator, std::move(name),
               static_cast<int>(key_attrs.size())),
      window_micros_(window_micros) {
  CHECK_GE(key_attrs.size(), 2u);
  inputs_.resize(key_attrs.size());
  for (size_t i = 0; i < key_attrs.size(); ++i) {
    inputs_[i].key_attr = key_attrs[i];
  }
}

void MultiwayJoin::Reset() {
  Operator::Reset();
  for (Input& in : inputs_) {
    in.table.clear();
    in.expiry.clear();
    in.stored = 0;
  }
}

size_t MultiwayJoin::StateSize() const {
  size_t total = 0;
  for (const Input& in : inputs_) total += in.stored;
  return total;
}

void MultiwayJoin::Input::Insert(const Tuple& tuple) {
  const Value key = tuple.at(key_attr);
  table[key].push_back(tuple);
  expiry.emplace_back(key, tuple.timestamp());
  ++stored;
}

void MultiwayJoin::Input::ExpireBefore(AppTime watermark) {
  while (!expiry.empty() && expiry.front().second < watermark) {
    auto it = table.find(expiry.front().first);
    DCHECK(it != table.end());
    it->second.pop_front();
    if (it->second.empty()) table.erase(it);
    expiry.pop_front();
    --stored;
  }
}

void MultiwayJoin::ProbeFrom(const Value& key, int arrival,
                             size_t next_input,
                             std::vector<const Tuple*>* parts,
                             AppTime out_ts) {
  if (next_input == inputs_.size()) {
    std::vector<Value> values;
    for (const Tuple* part : *parts) {
      values.insert(values.end(), part->values().begin(),
                    part->values().end());
    }
    EmitMove(Tuple(std::move(values), out_ts));
    return;
  }
  if (static_cast<int>(next_input) == arrival) {
    ProbeFrom(key, arrival, next_input + 1, parts, out_ts);
    return;
  }
  auto it = inputs_[next_input].table.find(key);
  if (it == inputs_[next_input].table.end()) return;
  const Tuple& arrived = *(*parts)[static_cast<size_t>(arrival)];
  for (const Tuple& match : it->second) {
    // Window-band check relative to the arriving tuple (see
    // symmetric_hash_join.cc): schedule-independent combinations only.
    if (match.timestamp() < arrived.timestamp() - window_micros_ ||
        match.timestamp() > arrived.timestamp() + window_micros_) {
      continue;
    }
    (*parts)[next_input] = &match;
    ProbeFrom(key, arrival, next_input + 1, parts,
              std::max(out_ts, match.timestamp()));
  }
}

void MultiwayJoin::Process(const Tuple& tuple, int port) {
  DCHECK_GE(port, 0);
  DCHECK_LT(port, num_inputs());
  const AppTime watermark = tuple.timestamp() - window_micros_;
  for (Input& in : inputs_) in.ExpireBefore(watermark);
  const Value key = tuple.at(inputs_[static_cast<size_t>(port)].key_attr);
  std::vector<const Tuple*> parts(inputs_.size(), nullptr);
  parts[static_cast<size_t>(port)] = &tuple;
  ProbeFrom(key, port, 0, &parts, tuple.timestamp());
  inputs_[static_cast<size_t>(port)].Insert(tuple);
}


OperatorSnapshot MultiwayJoin::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = inputs_;
  snap.element_count = static_cast<int64_t>(StateSize());
  return snap;
}

void MultiwayJoin::RestoreState(const OperatorSnapshot& snapshot) {
  inputs_ = std::any_cast<const std::vector<Input>&>(snapshot.state);
}
}  // namespace flexstream

#include "operators/multiway_join.h"

#include <algorithm>
#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

MultiwayJoin::MultiwayJoin(std::string name, AppTime window_micros,
                           std::vector<size_t> key_attrs)
    : Operator(Kind::kOperator, std::move(name),
               static_cast<int>(key_attrs.size())),
      window_micros_(window_micros) {
  CHECK_GE(key_attrs.size(), 2u);
  inputs_.resize(key_attrs.size());
  for (size_t i = 0; i < key_attrs.size(); ++i) {
    inputs_[i].key_attr = key_attrs[i];
  }
}

void MultiwayJoin::Reset() {
  Operator::Reset();
  for (Input& in : inputs_) {
    in.table.clear();
    in.expiry.clear();
    in.stored = 0;
  }
}

size_t MultiwayJoin::StateSize() const {
  size_t total = 0;
  for (const Input& in : inputs_) total += in.stored;
  return total;
}

void MultiwayJoin::Input::Insert(const Tuple& tuple) {
  const Value key = tuple.at(key_attr);
  table[key].push_back(tuple);
  expiry.emplace_back(key, tuple.timestamp());
  ++stored;
}

void MultiwayJoin::Input::ExpireBefore(AppTime watermark) {
  while (!expiry.empty() && expiry.front().second < watermark) {
    auto it = table.find(expiry.front().first);
    DCHECK(it != table.end());
    it->second.pop_front();
    if (it->second.empty()) table.erase(it);
    expiry.pop_front();
    --stored;
  }
}

void MultiwayJoin::ProbeFrom(const Value& key, int arrival,
                             size_t next_input,
                             std::vector<const Tuple*>* parts,
                             AppTime out_ts) {
  if (next_input == inputs_.size()) {
    std::vector<Value> values;
    for (const Tuple* part : *parts) {
      values.insert(values.end(), part->values().begin(),
                    part->values().end());
    }
    EmitMove(Tuple(std::move(values), out_ts));
    return;
  }
  if (static_cast<int>(next_input) == arrival) {
    ProbeFrom(key, arrival, next_input + 1, parts, out_ts);
    return;
  }
  auto it = inputs_[next_input].table.find(key);
  if (it == inputs_[next_input].table.end()) return;
  const Tuple& arrived = *(*parts)[static_cast<size_t>(arrival)];
  for (const Tuple& match : it->second) {
    // Window-band check relative to the arriving tuple (see
    // symmetric_hash_join.cc): schedule-independent combinations only.
    if (match.timestamp() < arrived.timestamp() - window_micros_ ||
        match.timestamp() > arrived.timestamp() + window_micros_) {
      continue;
    }
    (*parts)[next_input] = &match;
    ProbeFrom(key, arrival, next_input + 1, parts,
              std::max(out_ts, match.timestamp()));
  }
}

void MultiwayJoin::Process(const Tuple& tuple, int port) {
  DCHECK_GE(port, 0);
  DCHECK_LT(port, num_inputs());
  const AppTime watermark = tuple.timestamp() - window_micros_;
  for (Input& in : inputs_) in.ExpireBefore(watermark);
  const Value key = tuple.at(inputs_[static_cast<size_t>(port)].key_attr);
  std::vector<const Tuple*> parts(inputs_.size(), nullptr);
  parts[static_cast<size_t>(port)] = &tuple;
  ProbeFrom(key, port, 0, &parts, tuple.timestamp());
  inputs_[static_cast<size_t>(port)].Insert(tuple);
}


OperatorSnapshot MultiwayJoin::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = inputs_;
  snap.element_count = static_cast<int64_t>(StateSize());
  return snap;
}

void MultiwayJoin::RestoreState(const OperatorSnapshot& snapshot) {
  inputs_ = std::any_cast<const std::vector<Input>&>(snapshot.state);
}

Status MultiwayJoin::EncodeState(const OperatorSnapshot& snapshot,
                                 std::string* out) const {
  const std::vector<Input>* inputs = nullptr;
  if (snapshot.state.has_value()) {
    inputs = std::any_cast<std::vector<Input>>(&snapshot.state);
    if (inputs == nullptr) {
      return Status::InvalidArgument("snapshot is not a multiway-join snapshot");
    }
    if (inputs->size() != inputs_.size()) {
      return Status::InvalidArgument("malformed multiway-join snapshot");
    }
  }
  BinaryWriter w(out);
  w.U32(static_cast<uint32_t>(inputs_.size()));
  for (size_t i = 0; i < inputs_.size(); ++i) {
    const Input& in = inputs != nullptr ? (*inputs)[i] : inputs_[i];
    w.U64(inputs != nullptr ? in.key_attr : inputs_[i].key_attr);
    if (inputs == nullptr) {
      w.U64(0);
      continue;
    }
    w.U64(in.stored);
    // Arrival-order reconstruction via per-key cursors over the expiry
    // queue (same idiom as SymmetricHashJoin::EncodeState).
    std::unordered_map<Value, size_t, ValueHash> cursor;
    for (const auto& entry : in.expiry) {
      auto it = in.table.find(entry.first);
      if (it == in.table.end()) {
        return Status::Internal("join snapshot expiry/table mismatch");
      }
      size_t& index = cursor[entry.first];
      if (index >= it->second.size()) {
        return Status::Internal("join snapshot expiry/table mismatch");
      }
      w.Tuple(it->second[index++]);
    }
  }
  return Status::Ok();
}

Result<OperatorSnapshot> MultiwayJoin::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  uint32_t n = 0;
  Status st = r.U32(&n);
  if (!st.ok()) return st;
  if (n != inputs_.size()) {
    return Status::InvalidArgument(
        "multiway-join snapshot input count does not match operator");
  }
  std::vector<Input> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key_attr = 0;
    uint64_t count = 0;
    st = r.U64(&key_attr);
    if (st.ok()) st = r.U64(&count);
    if (!st.ok()) return st;
    if (key_attr != inputs_[i].key_attr) {
      return Status::InvalidArgument(
          "multiway-join snapshot key attribute does not match operator");
    }
    inputs[i].key_attr = key_attr;
    for (uint64_t t = 0; t < count; ++t) {
      Tuple tuple = Tuple::OfInt(0, 0);
      st = r.Tuple(&tuple);
      if (!st.ok()) return st;
      if (!tuple.is_data() || tuple.arity() <= key_attr) {
        return Status::InvalidArgument("malformed join snapshot tuple");
      }
      inputs[i].Insert(tuple);
    }
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in multiway-join snapshot");
  }
  OperatorSnapshot snap;
  int64_t total = 0;
  for (const Input& in : inputs) total += static_cast<int64_t>(in.stored);
  snap.element_count = total;
  snap.state = std::move(inputs);
  return snap;
}
}  // namespace flexstream

// Count-based (ROWS) sliding-window aggregation: the aggregate over the
// last N elements, emitted once per input element. The count-based
// counterpart of WindowedAggregate's time-based window; CQL-style systems
// (the paper's STREAM comparison point) offer both window flavors.

#ifndef FLEXSTREAM_OPERATORS_COUNT_WINDOW_AGGREGATE_H_
#define FLEXSTREAM_OPERATORS_COUNT_WINDOW_AGGREGATE_H_

#include <deque>
#include <set>
#include <string>

#include "operators/aggregate.h"
#include "operators/operator.h"
#include "recovery/state_snapshot.h"

namespace flexstream {

class CountWindowAggregate : public Operator, public StatefulOperator {
 public:
  struct Options {
    AggregateKind kind = AggregateKind::kCount;
    size_t value_attr = 0;
    /// Window size in elements (the last N).
    size_t window_rows = 100;
  };

  CountWindowAggregate(std::string name, Options options);

  void Reset() override;

  size_t window_size() const { return window_.size(); }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  double Current() const;

  Options options_;
  std::deque<double> window_;
  double sum_ = 0.0;
  std::multiset<double> ordered_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_COUNT_WINDOW_AGGREGATE_H_

// Selection (filter) operator.
//
// The workhorse of the paper's evaluation: Sections 6.4–6.6 build queries
// from chains of selections with precise selectivities and processing
// costs. `simulated_cost_micros` burns calibrated CPU per element to model
// "complex predicate evaluation" (the 2-second selection of Section 6.6).

#ifndef FLEXSTREAM_OPERATORS_SELECTION_H_
#define FLEXSTREAM_OPERATORS_SELECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "tuple/columnar_batch.h"

namespace flexstream {

/// A typed columnar predicate over one int64 attribute (DESIGN.md §17):
/// the columnar kernel evaluates `fn` over the raw column and compacts the
/// batch in place through a selection vector; the row path wraps it as
/// `fn(tuple.IntAt(attr))`, so both paths are the same predicate.
struct Int64ColumnPredicate {
  size_t attr = 0;
  std::function<bool(int64_t)> fn;
};

class Selection : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Selection(std::string name, Predicate predicate,
            double simulated_cost_micros = 0.0);

  /// Typed form: columnar-native. Batches whose schema carries kInt64 at
  /// `pred.attr` are filtered column-at-a-time; anything else (including
  /// every row-wise delivery) goes through the synthesized row predicate,
  /// so answers are identical either way.
  Selection(std::string name, Int64ColumnPredicate pred,
            double simulated_cost_micros = 0.0);

  /// Convenience: selects tuples whose integer attribute 0 lies in
  /// [0, threshold) given values uniform in [0, domain) — yielding
  /// selectivity = threshold / domain exactly as the paper's synthetic
  /// queries do.
  static Predicate IntAttrLessThan(int64_t threshold, size_t attr = 0);

  /// The typed-column twin of IntAttrLessThan.
  static Int64ColumnPredicate ColumnIntLessThan(int64_t threshold,
                                                size_t attr = 0);

  double simulated_cost_micros() const { return simulated_cost_micros_; }

  /// Selections never change the row layout.
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override {
    return inputs.empty() ? nullptr : inputs[0];
  }

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    if (typed_pred_.fn != nullptr) {
      return std::make_unique<Selection>(std::move(name), typed_pred_,
                                         simulated_cost_micros_);
    }
    return std::make_unique<Selection>(std::move(name), predicate_,
                                       simulated_cost_micros_);
  }

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Batch-native path: compacts the batch in place (order-preserving
  /// remove-if) and forwards the survivors as one batch.
  void ProcessBatch(TupleBatch&& batch, int port) override;
  /// Columnar kernel: typed-column predicate scan into a selection
  /// vector, then in-place CompactRows. Falls back to the row path when
  /// the batch's schema does not carry kInt64 at the predicate's attr.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;

 private:
  Predicate predicate_;
  Int64ColumnPredicate typed_pred_;  // fn == nullptr ⇒ row-form only
  double simulated_cost_micros_;
  std::vector<uint32_t> keep_;  // selection-vector scratch (serialized
                                // under the operator mutex)
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SELECTION_H_

// Selection (filter) operator.
//
// The workhorse of the paper's evaluation: Sections 6.4–6.6 build queries
// from chains of selections with precise selectivities and processing
// costs. `simulated_cost_micros` burns calibrated CPU per element to model
// "complex predicate evaluation" (the 2-second selection of Section 6.6).

#ifndef FLEXSTREAM_OPERATORS_SELECTION_H_
#define FLEXSTREAM_OPERATORS_SELECTION_H_

#include <functional>
#include <string>

#include "operators/operator.h"

namespace flexstream {

class Selection : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Selection(std::string name, Predicate predicate,
            double simulated_cost_micros = 0.0);

  /// Convenience: selects tuples whose integer attribute 0 lies in
  /// [0, threshold) given values uniform in [0, domain) — yielding
  /// selectivity = threshold / domain exactly as the paper's synthetic
  /// queries do.
  static Predicate IntAttrLessThan(int64_t threshold, size_t attr = 0);

  double simulated_cost_micros() const { return simulated_cost_micros_; }

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    return std::make_unique<Selection>(std::move(name), predicate_,
                                       simulated_cost_micros_);
  }

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Batch-native path: compacts the batch in place (order-preserving
  /// remove-if) and forwards the survivors as one batch.
  void ProcessBatch(TupleBatch&& batch, int port) override;

 private:
  Predicate predicate_;
  double simulated_cost_micros_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SELECTION_H_

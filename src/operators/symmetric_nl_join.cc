#include "operators/symmetric_nl_join.h"

#include "util/logging.h"

namespace flexstream {

SymmetricNlJoin::SymmetricNlJoin(std::string name, AppTime window_micros,
                                 Predicate predicate)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/2),
      predicate_(std::move(predicate)),
      windows_{SlidingWindow(window_micros), SlidingWindow(window_micros)} {
  CHECK(predicate_ != nullptr);
}

SymmetricNlJoin::Predicate SymmetricNlJoin::EqualAttr(size_t left_attr,
                                                      size_t right_attr) {
  return [left_attr, right_attr](const Tuple& l, const Tuple& r) {
    return l.at(left_attr) == r.at(right_attr);
  };
}

void SymmetricNlJoin::Reset() {
  Operator::Reset();
  windows_[0].Clear();
  windows_[1].Clear();
}

void SymmetricNlJoin::Process(const Tuple& tuple, int port) {
  DCHECK(port == kLeftPort || port == kRightPort);
  SlidingWindow& own = windows_[port];
  SlidingWindow& other = windows_[1 - port];
  const AppTime watermark = tuple.timestamp() - own.duration_micros();
  own.ExpireBefore(watermark);
  other.ExpireBefore(watermark);
  for (const Tuple& candidate : other.contents()) {
    // Window-band check (see symmetric_hash_join.cc): schedule-independent
    // semantics even when one input queue runs ahead of the other.
    if (candidate.timestamp() < watermark ||
        candidate.timestamp() > tuple.timestamp() + own.duration_micros()) {
      continue;
    }
    const Tuple& left = (port == kLeftPort) ? tuple : candidate;
    const Tuple& right = (port == kLeftPort) ? candidate : tuple;
    if (predicate_(left, right)) {
      EmitMove(Tuple::Concat(left, right));
    }
  }
  own.Add(tuple);
}


OperatorSnapshot SymmetricNlJoin::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::vector<SlidingWindow>{windows_[0], windows_[1]};
  snap.element_count = static_cast<int64_t>(StateSize());
  return snap;
}

void SymmetricNlJoin::RestoreState(const OperatorSnapshot& snapshot) {
  const auto& windows =
      std::any_cast<const std::vector<SlidingWindow>&>(snapshot.state);
  windows_[0] = windows[0];
  windows_[1] = windows[1];
}
}  // namespace flexstream

#include "operators/symmetric_nl_join.h"

#include <utility>
#include <vector>

#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

SymmetricNlJoin::SymmetricNlJoin(std::string name, AppTime window_micros,
                                 Predicate predicate)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/2),
      predicate_(std::move(predicate)),
      windows_{SlidingWindow(window_micros), SlidingWindow(window_micros)} {
  CHECK(predicate_ != nullptr);
}

SymmetricNlJoin::Predicate SymmetricNlJoin::EqualAttr(size_t left_attr,
                                                      size_t right_attr) {
  return [left_attr, right_attr](const Tuple& l, const Tuple& r) {
    return l.at(left_attr) == r.at(right_attr);
  };
}

void SymmetricNlJoin::Reset() {
  Operator::Reset();
  windows_[0].Clear();
  windows_[1].Clear();
}

void SymmetricNlJoin::Process(const Tuple& tuple, int port) {
  DCHECK(port == kLeftPort || port == kRightPort);
  SlidingWindow& own = windows_[port];
  SlidingWindow& other = windows_[1 - port];
  const AppTime watermark = tuple.timestamp() - own.duration_micros();
  own.ExpireBefore(watermark);
  other.ExpireBefore(watermark);
  for (const Tuple& candidate : other.contents()) {
    // Window-band check (see symmetric_hash_join.cc): schedule-independent
    // semantics even when one input queue runs ahead of the other.
    if (candidate.timestamp() < watermark ||
        candidate.timestamp() > tuple.timestamp() + own.duration_micros()) {
      continue;
    }
    const Tuple& left = (port == kLeftPort) ? tuple : candidate;
    const Tuple& right = (port == kLeftPort) ? candidate : tuple;
    if (predicate_(left, right)) {
      EmitMove(Tuple::Concat(left, right));
    }
  }
  own.Add(tuple);
}


OperatorSnapshot SymmetricNlJoin::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::vector<SlidingWindow>{windows_[0], windows_[1]};
  snap.element_count = static_cast<int64_t>(StateSize());
  return snap;
}

void SymmetricNlJoin::RestoreState(const OperatorSnapshot& snapshot) {
  const auto& windows =
      std::any_cast<const std::vector<SlidingWindow>&>(snapshot.state);
  windows_[0] = windows[0];
  windows_[1] = windows[1];
}

Status SymmetricNlJoin::EncodeState(const OperatorSnapshot& snapshot,
                                    std::string* out) const {
  const std::vector<SlidingWindow>* windows = nullptr;
  if (snapshot.state.has_value()) {
    windows = std::any_cast<std::vector<SlidingWindow>>(&snapshot.state);
    if (windows == nullptr) {
      return Status::InvalidArgument("snapshot is not an nl-join snapshot");
    }
    if (windows->size() != 2) {
      return Status::InvalidArgument("malformed nl-join snapshot");
    }
  }
  for (int s = 0; s < 2; ++s) {
    if (windows == nullptr) {
      EncodeWindow(SlidingWindow(windows_[s].duration_micros()), out);
    } else {
      EncodeWindow((*windows)[s], out);
    }
  }
  return Status::Ok();
}

Result<OperatorSnapshot> SymmetricNlJoin::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  std::vector<SlidingWindow> windows;
  for (int s = 0; s < 2; ++s) {
    Result<SlidingWindow> window = DecodeWindow(&r);
    if (!window.ok()) return std::move(window).status();
    if (window->duration_micros() != windows_[s].duration_micros()) {
      return Status::InvalidArgument(
          "nl-join snapshot window duration does not match operator");
    }
    windows.push_back(std::move(window).value());
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in nl-join snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count =
      static_cast<int64_t>(windows[0].size() + windows[1].size());
  snap.state = std::move(windows);
  return snap;
}
}  // namespace flexstream

// Merge: re-unifies the per-replica streams of a sharded operator
// (src/api/shard.h) into one output stream.
//
// Two variants:
//  * kArrival — pass-through union: elements flow downstream in whatever
//    order the replica threads deliver them. Zero buffering, zero
//    overhead; output order is nondeterministic across runs.
//  * kSequence — ordered k-way merge on the global arrival sequence
//    numbers stamped at the split point (a sequencing Router, propagated
//    through the replicas via Operator::SetStampEmitSeq). The output is
//    the exact arrival order of the pre-split stream, so the differential
//    harness's exact-sequence oracle keeps applying to sharded graphs.
//
// Ordered release rule: one lane per upstream channel (replica, or the
// queue the engine wires in front of the merge). A lane's head element is
// releasable iff every *other* open lane is non-empty — each lane is FIFO
// in sequence order, so when all open lanes are non-empty the globally
// smallest head can never be undercut by a future arrival. Closed lanes
// (EOS seen, via Operator::OnInputEos) never block; open empty lanes do.
//
// Punctuation-awareness bounds the buffering: at every epoch-barrier
// alignment (Operator::OnEpochAligned) all lanes have delivered their full
// pre-barrier prefix, so the merge flushes everything pending — in
// sequence order, still ahead of the outgoing barrier. The merge is
// therefore stateless at every snapshot point and needs no state snapshot
// of its own. Likewise all-inputs-EOS flushes the tail.

#ifndef FLEXSTREAM_OPERATORS_MERGE_H_
#define FLEXSTREAM_OPERATORS_MERGE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "operators/operator.h"

namespace flexstream {

class MergeOperator : public Operator {
 public:
  enum class Order {
    kArrival,   // pass-through union, nondeterministic interleaving
    kSequence,  // k-way merge on Tuple::seq, restores split-point order
  };

  MergeOperator(std::string name, Order order);

  Order order() const { return order_; }

  /// Total elements currently buffered across all lanes (diagnostics).
  size_t PendingCount() const;

  /// Quiesced flush (live re-sharding, src/api/shard.h ResizeShard): emits
  /// everything pending in global sequence order. Only safe when every
  /// produced element has reached the merge — sources paused and all
  /// upstream queues drained — because then the pending lanes hold the
  /// complete undelivered set and sequence order is the exact release
  /// order, just like at a barrier alignment. Runs in the calling thread.
  void FlushPendingQuiesced() { FlushAllPending(); }

  void Reset() override;

 protected:
  void Process(const Tuple& tuple, int port) override;
  void ProcessBatch(TupleBatch&& batch, int port) override;
  void OnEpochAligned(uint64_t epoch) override;
  void OnInputEos(const Node* sender, int port) override;
  void OnAllInputsClosed(AppTime timestamp) override;

 private:
  struct Lane {
    const Node* source = nullptr;
    std::deque<Tuple> pending;  // FIFO, ascending Tuple::seq
    bool closed = false;        // EOS delivered; never blocks releases
  };

  /// Lanes mirror inputs(), built lazily at the first delivery so they see
  /// the final topology (the engine inserts decoupling queues after
  /// construction; the actual senders are those queues).
  void EnsureLanes();
  Lane* LaneForSender(const Node* sender);

  /// Releases the longest currently-safe run under the release rule and
  /// emits it (one EmitBatch for a multi-element run).
  void ReleaseReady();
  /// Emits everything pending, in global sequence order (barrier
  /// alignment / final close — see file comment for why this is safe).
  void FlushAllPending();

  const Order order_;
  std::vector<Lane> lanes_;
  bool lanes_built_ = false;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_MERGE_H_

// Map operator: applies a user function producing exactly one output tuple
// per input tuple (a generalized projection).

#ifndef FLEXSTREAM_OPERATORS_MAP_OP_H_
#define FLEXSTREAM_OPERATORS_MAP_OP_H_

#include <functional>
#include <string>

#include "operators/operator.h"

namespace flexstream {

class MapOp : public Operator {
 public:
  using MapFn = std::function<Tuple(const Tuple&)>;

  MapOp(std::string name, MapFn fn, double simulated_cost_micros = 0.0);

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    return std::make_unique<MapOp>(std::move(name), fn_,
                                   simulated_cost_micros_);
  }

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Batch-native path: replaces each tuple with fn_(tuple) in place and
  /// forwards the batch whole.
  void ProcessBatch(TupleBatch&& batch, int port) override;

 private:
  MapFn fn_;
  double simulated_cost_micros_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_MAP_OP_H_

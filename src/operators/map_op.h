// Map operator: applies a user function producing exactly one output tuple
// per input tuple (a generalized projection).

#ifndef FLEXSTREAM_OPERATORS_MAP_OP_H_
#define FLEXSTREAM_OPERATORS_MAP_OP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "operators/operator.h"
#include "tuple/columnar_batch.h"

namespace flexstream {

/// A typed columnar transform over one int64 attribute (DESIGN.md §17):
/// the columnar kernel rewrites the raw column in place; the row path
/// copies the tuple and rewrites the one attribute, so both paths compute
/// the same rows (timestamps and seq stamps ride along unchanged).
struct Int64ColumnMap {
  size_t attr = 0;
  std::function<int64_t(int64_t)> fn;
};

class MapOp : public Operator {
 public:
  using MapFn = std::function<Tuple(const Tuple&)>;

  MapOp(std::string name, MapFn fn, double simulated_cost_micros = 0.0);

  /// Typed form: columnar-native. Batches carrying kInt64 at `map.attr`
  /// are transformed column-at-a-time; everything else goes through the
  /// synthesized row function.
  MapOp(std::string name, Int64ColumnMap map,
        double simulated_cost_micros = 0.0);

  /// The typed form rewrites one attribute in place, so the row layout is
  /// unchanged; the generic form's output shape is opaque.
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override {
    if (typed_map_.fn == nullptr || inputs.empty()) return nullptr;
    return inputs[0];
  }

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    if (typed_map_.fn != nullptr) {
      return std::make_unique<MapOp>(std::move(name), typed_map_,
                                     simulated_cost_micros_);
    }
    return std::make_unique<MapOp>(std::move(name), fn_,
                                   simulated_cost_micros_);
  }

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Batch-native path: replaces each tuple with fn_(tuple) in place and
  /// forwards the batch whole.
  void ProcessBatch(TupleBatch&& batch, int port) override;
  /// Columnar kernel: rewrites the typed column in place. Falls back to
  /// rows when the schema does not carry kInt64 at the map's attr.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;

 private:
  MapFn fn_;
  Int64ColumnMap typed_map_;  // fn == nullptr ⇒ row-form only
  double simulated_cost_micros_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_MAP_OP_H_

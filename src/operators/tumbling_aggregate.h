// Tumbling-window aggregation.
//
// Application time is divided into fixed, non-overlapping windows of
// `window_micros`; one aggregate tuple per (window, group) is emitted
// when the window *closes* — i.e. when the first element of a later
// window arrives (streams are timestamp-monotone per input), or at
// end-of-stream for the final window. Complements WindowedAggregate
// (sliding window, one output per input).

#ifndef FLEXSTREAM_OPERATORS_TUMBLING_AGGREGATE_H_
#define FLEXSTREAM_OPERATORS_TUMBLING_AGGREGATE_H_

#include <map>
#include <optional>
#include <string>

#include "operators/aggregate.h"
#include "operators/operator.h"
#include "recovery/state_snapshot.h"
#include "tuple/columnar_batch.h"

namespace flexstream {

class TumblingAggregate : public Operator, public StatefulOperator {
 public:
  struct Options {
    AggregateKind kind = AggregateKind::kCount;
    size_t value_attr = 0;
    std::optional<size_t> group_attr;
    AppTime window_micros = kMicrosPerSecond;
    /// Attach the window-start (true) or window-end (false) timestamp to
    /// emitted aggregates.
    bool stamp_window_start = false;
  };

  TumblingAggregate(std::string name, Options options);

  /// Aggregates emit (group?, f64) rows regardless of input layout.
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override;

  void Reset() override;

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    return std::make_unique<TumblingAggregate>(std::move(name), options_);
  }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Columnar kernel: the grouped update loop reads the timestamp, value
  /// and group columns directly (no Tuple per row); window flushes emit
  /// aggregate rows exactly as the row path does. Falls back to rows when
  /// the schema lacks the typed columns it needs.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;
  void OnAllInputsClosed(AppTime timestamp) override;

 private:
  struct GroupState {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  AppTime WindowIndexOf(AppTime ts) const {
    return ts / options_.window_micros;
  }
  double Finish(const GroupState& g) const;
  void FlushCurrentWindow();

  Options options_;
  bool has_window_ = false;
  AppTime current_window_ = 0;
  // Ordered map => deterministic emission order of groups per window.
  std::map<Value, GroupState> groups_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_TUMBLING_AGGREGATE_H_

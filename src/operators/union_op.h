// Union operator: merges any number of input streams into one output
// stream, preserving per-input order (bag union; no duplicate
// elimination). Variadic arity — any number of producers may connect.

#ifndef FLEXSTREAM_OPERATORS_UNION_OP_H_
#define FLEXSTREAM_OPERATORS_UNION_OP_H_

#include <string>

#include "operators/operator.h"

namespace flexstream {

class UnionOp : public Operator {
 public:
  explicit UnionOp(std::string name);

  /// Bag union preserves the row layout; the engine's propagation pass
  /// already collapses conflicting producer schemas to null.
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override {
    return inputs.empty() ? nullptr : inputs[0];
  }

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    return std::make_unique<UnionOp>(std::move(name));
  }

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Batch-native path: forwards the batch whole (bag union is a no-op on
  /// the payload; per-input order is preserved because a batch is a
  /// contiguous run from one producer).
  void ProcessBatch(TupleBatch&& batch, int port) override;
  /// Columnar passthrough: a pointer move, zero per-row work.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_UNION_OP_H_

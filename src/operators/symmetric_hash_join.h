// Binary symmetric hash join (SHJ) over sliding time windows.
//
// The join of Section 6.3's decoupling experiment. Each side maintains a
// hash table keyed on its join attribute plus an expiration queue; an
// arriving element expires both windows to its watermark, probes the
// opposite hash table, emits one concatenated result per match, and is
// inserted into its own side. Output attribute order is always
// (left-tuple attrs, right-tuple attrs) regardless of which side arrived.

#ifndef FLEXSTREAM_OPERATORS_SYMMETRIC_HASH_JOIN_H_
#define FLEXSTREAM_OPERATORS_SYMMETRIC_HASH_JOIN_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "operators/operator.h"
#include "operators/window.h"
#include "recovery/state_snapshot.h"
#include "tuple/columnar_batch.h"
#include "util/status.h"

namespace flexstream {

class SymmetricHashJoin : public Operator, public StatefulOperator {
 public:
  static constexpr int kLeftPort = 0;
  static constexpr int kRightPort = 1;

  /// `window_micros` is the sliding-window length applied to both sides.
  /// `left_key_attr` / `right_key_attr` select the equi-join attributes.
  SymmetricHashJoin(std::string name, AppTime window_micros,
                    size_t left_key_attr = 0, size_t right_key_attr = 0);

  void Reset() override;

  /// Current number of stored tuples (both windows) — the join's state
  /// size, one of the memory metrics benchmarks report.
  size_t StateSize() const;

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

  std::unique_ptr<Operator> CloneFresh(std::string name) const override;

  /// Redistributes the committed snapshots of N replicas of this join
  /// (key-partitioned on both sides' join attributes) into `new_n`
  /// partitions, assigning every stored tuple to
  /// Router::HashValue(key) % new_n — exactly how a sequencing Router
  /// routes live elements, so a restore with a different shard count sees
  /// every tuple where future probes will look for it. `this` supplies the
  /// join parameters; its own state is untouched. Per-side arrival order
  /// is rebuilt by a timestamp-stable merge (expiration requires monotone
  /// expiry queues).
  Result<std::vector<OperatorSnapshot>> RepartitionSnapshots(
      const std::vector<OperatorSnapshot>& snapshots, size_t new_n) const;

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Columnar inner loop: typed-key probes read the key column directly
  /// (an int64 key never touches a Tuple until a row is inserted or
  /// matched), timestamps come from the batch's timestamp column, and the
  /// per-row Receive overhead is gone. Expire/probe/insert order — and
  /// hence the result multiset — is identical to the row path.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;

 private:
  struct Side {
    size_t key_attr;
    std::unordered_map<Value, std::deque<Tuple>, ValueHash> table;
    // (key, timestamp) in arrival order for expiration.
    std::deque<std::pair<Value, AppTime>> expiry;
    size_t stored = 0;

    void Insert(const Tuple& tuple);
    void ExpireBefore(AppTime watermark);
  };

  AppTime window_micros_;
  Side sides_[2];
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SYMMETRIC_HASH_JOIN_H_

// N-ary symmetric hash join (MJoin) over sliding time windows.
//
// The paper's related-work section cites Viglas et al.'s multi-way join
// as a natural virtual operator: "because the join does not materialize
// intermediate results, a join with n inputs can be seen as a VO with n
// inputs and one output" (Section 7). This operator implements that: an
// equi-join of n input streams on one attribute per input, probing the
// other n-1 windows without materializing intermediate join results.
// Output attributes are concatenated in input-index order.

#ifndef FLEXSTREAM_OPERATORS_MULTIWAY_JOIN_H_
#define FLEXSTREAM_OPERATORS_MULTIWAY_JOIN_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "operators/operator.h"
#include "recovery/state_snapshot.h"

namespace flexstream {

class MultiwayJoin : public Operator, public StatefulOperator {
 public:
  /// One stream per entry of `key_attrs`; input i joins on attribute
  /// key_attrs[i]. Requires at least 2 inputs.
  MultiwayJoin(std::string name, AppTime window_micros,
               std::vector<size_t> key_attrs);

  void Reset() override;

  size_t StateSize() const;
  int num_inputs() const { return static_cast<int>(inputs_.size()); }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  struct Input {
    size_t key_attr;
    std::unordered_map<Value, std::deque<Tuple>, ValueHash> table;
    std::deque<std::pair<Value, AppTime>> expiry;
    size_t stored = 0;

    void Insert(const Tuple& tuple);
    void ExpireBefore(AppTime watermark);
  };

  /// Depth-first probe across inputs != arrival input, emitting complete
  /// combinations. `parts[i]` holds the tuple chosen for input i.
  void ProbeFrom(const Value& key, int arrival, size_t next_input,
                 std::vector<const Tuple*>* parts, AppTime out_ts);

  AppTime window_micros_;
  std::vector<Input> inputs_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_MULTIWAY_JOIN_H_

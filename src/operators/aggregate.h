// Windowed aggregation over a sliding time window, with optional group-by.
//
// On every input element the operator expires the window, folds the new
// element in, and emits the updated aggregate for the element's group —
// the standard continuous-aggregate semantics. The paper uses an expensive
// aggregation as the canonical stall-inducing operator (Figure 5), so the
// operator also supports a simulated per-element cost.

#ifndef FLEXSTREAM_OPERATORS_AGGREGATE_H_
#define FLEXSTREAM_OPERATORS_AGGREGATE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "operators/operator.h"
#include "operators/window.h"
#include "recovery/state_snapshot.h"
#include "util/status.h"

namespace flexstream {

enum class AggregateKind { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateKindToString(AggregateKind kind);

class WindowedAggregate : public Operator, public StatefulOperator {
 public:
  struct Options {
    AggregateKind kind = AggregateKind::kCount;
    /// Attribute aggregated (numeric); ignored for kCount.
    size_t value_attr = 0;
    /// Group-by attribute; nullopt = single global group.
    std::optional<size_t> group_attr;
    AppTime window_micros = kMicrosPerMinute;
    double simulated_cost_micros = 0.0;
  };

  WindowedAggregate(std::string name, Options options);

  /// Output schema: (group_key, aggregate) when grouped, else (aggregate);
  /// timestamp = input timestamp.
  void Reset() override;

  size_t window_size() const { return window_.size(); }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

  std::unique_ptr<Operator> CloneFresh(std::string name) const override;

  /// Redistributes the committed snapshots of N replicas of this aggregate
  /// into `new_n` key-partitions on the group attribute, assigning every
  /// windowed element to Router::HashValue(group key) % new_n — exactly
  /// how a Router routes live elements. Group states are re-folded from
  /// the merged windows. Fails on a non-grouped aggregate (its single
  /// global group cannot be key-partitioned). `this` supplies the
  /// aggregate options; its own state is untouched.
  Result<std::vector<OperatorSnapshot>> RepartitionSnapshots(
      const std::vector<OperatorSnapshot>& snapshots, size_t new_n) const;

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  struct GroupState {
    int64_t count = 0;
    double sum = 0.0;
    // Multiset of values so min/max survive expiration.
    std::multiset<double> values;
  };

  Value GroupKeyOf(const Tuple& tuple) const;
  double ValueOf(const Tuple& tuple) const;
  double Current(const GroupState& g) const;
  void Fold(GroupState* g, double v) const;
  void Unfold(GroupState* g, double v) const;

  Options options_;
  SlidingWindow window_;
  std::unordered_map<Value, GroupState, ValueHash> groups_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_AGGREGATE_H_

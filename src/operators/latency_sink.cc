#include "operators/latency_sink.h"

#include <utility>

#include "tuple/batch_pool.h"
#include "util/binary_io.h"

namespace flexstream {

LatencySink::LatencySink(std::string name, size_t offset_attr,
                         TimePoint epoch, std::optional<size_t> phase_attr)
    : Sink(std::move(name)),
      offset_attr_(offset_attr),
      epoch_(epoch),
      phase_attr_(phase_attr) {
  MarkColumnarNative();
}

void LatencySink::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  const Schema& schema = batch->schema();
  const bool offset_ok = offset_attr_ < schema.arity() &&
                         schema.type(offset_attr_) == Value::Type::kInt64;
  const bool phase_ok =
      !phase_attr_.has_value() ||
      (*phase_attr_ < schema.arity() &&
       schema.type(*phase_attr_) == Value::Type::kInt64);
  if (!offset_ok || !phase_ok) {
    ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  const size_t n = batch->size();
  const int64_t* offsets = batch->Ints(offset_attr_);
  const int64_t* phases =
      phase_attr_.has_value() ? batch->Ints(*phase_attr_) : nullptr;
  const int64_t now_offset = ToMicros(Now() - epoch_);
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < n; ++i) {
    const double latency_micros = static_cast<double>(now_offset - offsets[i]);
    histogram_.Add(latency_micros);
    if (phases != nullptr) phase_histograms_[phases[i]].Add(latency_micros);
  }
  columnar::ReleaseBatch(std::move(batch));
}

Histogram LatencySink::TakeHistogram() {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram h = histogram_;
  histogram_.Reset();
  return h;
}

Histogram LatencySink::SnapshotHistogram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_;
}

std::map<int64_t, Histogram> LatencySink::TakePhaseHistograms() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<int64_t, Histogram> out;
  out.swap(phase_histograms_);
  return out;
}

int64_t LatencySink::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_.count();
}

namespace {
struct LatencyState {
  Histogram histogram;
  std::map<int64_t, Histogram> phase_histograms;
};
}  // namespace

OperatorSnapshot LatencySink::SnapshotState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  OperatorSnapshot s;
  s.state = LatencyState{histogram_, phase_histograms_};
  s.element_count = histogram_.count();
  return s;
}

void LatencySink::RestoreState(const OperatorSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!snapshot.state.has_value()) {
    histogram_.Reset();
    phase_histograms_.clear();
    return;
  }
  const auto& state = std::any_cast<const LatencyState&>(snapshot.state);
  histogram_ = state.histogram;
  phase_histograms_ = state.phase_histograms;
}

Status LatencySink::EncodeState(const OperatorSnapshot& snapshot,
                                std::string* out) const {
  const LatencyState* state = nullptr;
  if (snapshot.state.has_value()) {
    state = std::any_cast<LatencyState>(&snapshot.state);
    if (state == nullptr) {
      return Status::InvalidArgument(
          "snapshot is not a latency-sink snapshot");
    }
  }
  BinaryWriter w(out);
  if (state == nullptr) {
    Histogram().EncodeTo(out);
    w.U64(0);
    return Status::Ok();
  }
  state->histogram.EncodeTo(out);
  w.U64(state->phase_histograms.size());
  for (const auto& [phase, histogram] : state->phase_histograms) {
    w.I64(phase);
    histogram.EncodeTo(out);
  }
  return Status::Ok();
}

Result<OperatorSnapshot> LatencySink::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  LatencyState state;
  Status st = Histogram::DecodeFrom(&r, &state.histogram);
  if (!st.ok()) return st;
  uint64_t phase_count = 0;
  st = r.U64(&phase_count);
  if (!st.ok()) return st;
  for (uint64_t i = 0; i < phase_count; ++i) {
    int64_t phase = 0;
    st = r.I64(&phase);
    if (!st.ok()) return st;
    Histogram histogram;
    st = Histogram::DecodeFrom(&r, &histogram);
    if (!st.ok()) return st;
    if (!state.phase_histograms.emplace(phase, histogram).second) {
      return Status::InvalidArgument("duplicate phase id in snapshot");
    }
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in latency-sink snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count = state.histogram.count();
  snap.state = std::move(state);
  return snap;
}

void LatencySink::Reset() {
  Sink::Reset();
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Reset();
  phase_histograms_.clear();
}

void LatencySink::Consume(const Tuple& tuple, int port) {
  (void)port;
  const int64_t now_offset = ToMicros(Now() - epoch_);
  const double latency_micros =
      static_cast<double>(now_offset - tuple.IntAt(offset_attr_));
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Add(latency_micros);
  if (phase_attr_.has_value()) {
    phase_histograms_[tuple.IntAt(*phase_attr_)].Add(latency_micros);
  }
}

void LatencySink::ConsumeBatch(TupleBatch&& batch, int port) {
  (void)port;
  const int64_t now_offset = ToMicros(Now() - epoch_);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Tuple& tuple : batch) {
    const double latency_micros =
        static_cast<double>(now_offset - tuple.IntAt(offset_attr_));
    histogram_.Add(latency_micros);
    if (phase_attr_.has_value()) {
      phase_histograms_[tuple.IntAt(*phase_attr_)].Add(latency_micros);
    }
  }
}

}  // namespace flexstream

#include "operators/latency_sink.h"

namespace flexstream {

LatencySink::LatencySink(std::string name, size_t offset_attr,
                         TimePoint epoch)
    : Sink(std::move(name)), offset_attr_(offset_attr), epoch_(epoch) {}

Histogram LatencySink::TakeHistogram() {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram h = histogram_;
  histogram_.Reset();
  return h;
}

int64_t LatencySink::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_.count();
}

void LatencySink::Reset() {
  Sink::Reset();
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Reset();
}

void LatencySink::Consume(const Tuple& tuple, int port) {
  (void)port;
  const int64_t emit_offset = tuple.IntAt(offset_attr_);
  const double latency_micros =
      static_cast<double>(ToMicros(Now() - epoch_) - emit_offset);
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.Add(latency_micros);
}

}  // namespace flexstream

// A sink that measures end-to-end element latency.
//
// Latency of a result = (wall time it reaches the sink) - (wall time its
// originating element entered the graph). Sources stamp the entry time as
// an extra integer attribute (microseconds since a shared epoch; see
// workload::RateSource::Options::stamp_emit_offset); the sink reads that
// attribute and accumulates a log-bucketed histogram. Scheduling policy
// does not change *what* is computed, but it changes latency drastically —
// this sink is how every benchmark observes tail latency (p50/p95/p99/
// p999; see stats/report.h BuildLatencyTable for the engine-wide view).
//
// Optionally a second integer attribute identifies the workload *phase*
// the element belongs to (multi-phase soak scenarios stamp it in the
// generator); the sink then also keeps one histogram per phase, so bursty
// runs can report "p99 during the flash-sale burst" separately from the
// baseline phases.

#ifndef FLEXSTREAM_OPERATORS_LATENCY_SINK_H_
#define FLEXSTREAM_OPERATORS_LATENCY_SINK_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "operators/sink.h"
#include "recovery/state_snapshot.h"
#include "util/histogram.h"

namespace flexstream {

/// Stateful for recovery: restoring the epoch's histograms and replaying
/// only post-epoch input counts every element exactly once. Replayed
/// elements are re-measured against the wall clock at replay time, so a
/// recovered run's tail honestly includes the outage.
class LatencySink : public Sink, public StatefulOperator {
 public:
  /// `offset_attr` is the attribute holding the emit offset in
  /// microseconds relative to `epoch`. `phase_attr`, when given, holds the
  /// integer phase id the element was generated in.
  LatencySink(std::string name, size_t offset_attr, TimePoint epoch,
              std::optional<size_t> phase_attr = std::nullopt);

  /// Snapshot of the latency histogram (microseconds), clearing it.
  Histogram TakeHistogram();

  /// Non-destructive snapshot — what the stats tables and the watchdog
  /// read from a still-running graph.
  Histogram SnapshotHistogram() const;

  /// Per-phase histograms (phase id -> histogram), clearing them. Empty
  /// unless a phase attribute was configured.
  std::map<int64_t, Histogram> TakePhaseHistograms();

  int64_t count() const;

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

  void Reset() override;

 protected:
  void Consume(const Tuple& tuple, int port) override;
  /// Batch-safe path: one clock read and one lock acquisition per batch.
  /// All elements of the batch share the arrival timestamp — they became
  /// visible to the sink at the same drain instant, so per-element clock
  /// reads would only add noise (and cost) to the measurement.
  void ConsumeBatch(TupleBatch&& batch, int port) override;
  /// Columnar kernel: reads the offset (and phase) columns directly —
  /// one clock read, one lock, no row materialization. Falls back to rows
  /// when the schema lacks kInt64 at the configured attributes.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;

 private:
  size_t offset_attr_;
  TimePoint epoch_;
  std::optional<size_t> phase_attr_;
  mutable std::mutex mutex_;
  Histogram histogram_;
  std::map<int64_t, Histogram> phase_histograms_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_LATENCY_SINK_H_

// A sink that measures end-to-end element latency.
//
// Latency of a result = (wall time it reaches the sink) - (wall time its
// originating element entered the graph). Sources stamp the entry time as
// an extra integer attribute (microseconds since a shared epoch; see
// workload::RateSource::Options::stamp_emit_offset); the sink reads that
// attribute and accumulates a log-bucketed histogram. Scheduling policy
// does not change *what* is computed, but it changes latency drastically —
// this sink is how the latency benchmarks observe that.

#ifndef FLEXSTREAM_OPERATORS_LATENCY_SINK_H_
#define FLEXSTREAM_OPERATORS_LATENCY_SINK_H_

#include <mutex>
#include <string>

#include "operators/sink.h"
#include "util/histogram.h"

namespace flexstream {

class LatencySink : public Sink {
 public:
  /// `offset_attr` is the attribute holding the emit offset in
  /// microseconds relative to `epoch`.
  LatencySink(std::string name, size_t offset_attr, TimePoint epoch);

  /// Snapshot of the latency histogram (microseconds).
  Histogram TakeHistogram();

  int64_t count() const;

  void Reset() override;

 protected:
  void Consume(const Tuple& tuple, int port) override;

 private:
  size_t offset_attr_;
  TimePoint epoch_;
  mutable std::mutex mutex_;
  Histogram histogram_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_LATENCY_SINK_H_

#include "operators/router.h"

#include "util/logging.h"

namespace flexstream {

Router::Router(std::string name, RouteFn route)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      route_(std::move(route)) {
  CHECK(route_ != nullptr);
}

Router::RouteFn Router::HashAttr(size_t attr) {
  return [attr](const Tuple& t) { return t.at(attr).Hash(); };
}

void Router::Process(const Tuple& tuple, int port) {
  (void)port;
  if (outputs().empty()) return;
  EmitTo(route_(tuple) % outputs().size(), tuple);
}

}  // namespace flexstream

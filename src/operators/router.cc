#include "operators/router.h"

#include <utility>

#include "queue/queue_op.h"
#include "util/logging.h"

namespace flexstream {

Router::Router(std::string name, RouteFn route)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      route_(std::move(route)) {
  CHECK(route_ != nullptr);
}

uint64_t Router::MixHash(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

size_t Router::HashValue(const Value& value) {
  return static_cast<size_t>(MixHash(static_cast<uint64_t>(value.Hash())));
}

Router::RouteFn Router::HashAttr(size_t attr) {
  return [attr](const Tuple& t) { return HashValue(t.at(attr)); };
}

std::unique_ptr<Operator> Router::CloneFresh(std::string name) const {
  auto clone = std::make_unique<Router>(std::move(name), route_);
  clone->SetSequencing(sequencing_);
  return clone;
}

void Router::Process(const Tuple& tuple, int port) {
  (void)port;
  // Punctuations are broadcast by the Operator base class (EmitEos /
  // EmitBarrier) and must never be routed to a single subscriber — a
  // barrier seen by only one replica would misalign or deadlock
  // checkpointing downstream of the split.
  DCHECK(tuple.is_data()) << DebugString() << " routed a punctuation";
  if (outputs().empty()) return;
  const size_t target = route_(tuple) % outputs().size();
  if (sequencing_) {
    Tuple stamped = tuple;
    stamped.set_seq(AllocateArrivalSeq());
    EmitTo(target, std::move(stamped));
    return;
  }
  EmitTo(target, tuple);
}

void Router::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  const size_t fan_out = outputs().size();
  if (fan_out == 0 || batch.empty()) return;
  if (fan_out == 1) {
    if (sequencing_) {
      uint64_t seq = AllocateArrivalSeq(batch.size());
      for (Tuple& tuple : batch) tuple.set_seq(seq++);
    }
    EmitBatchTo(0, std::move(batch));
    return;
  }
  scatter_.resize(fan_out);
  // One bulk sequence reservation covers the whole batch: within the batch
  // the stamp order is the batch order, which is the arrival order.
  uint64_t seq = sequencing_ ? AllocateArrivalSeq(batch.size()) : 0;
  for (Tuple& tuple : batch) {
    if (sequencing_) tuple.set_seq(seq++);
    scatter_[route_(tuple) % fan_out].PushBack(std::move(tuple));
  }
  for (size_t i = 0; i < fan_out; ++i) {
    if (scatter_[i].empty()) continue;
    EmitBatchTo(i, std::move(scatter_[i]));
    scatter_[i].clear();  // moved-from: return the slot to a known state
  }
}

}  // namespace flexstream

// Projection operator: keeps a subset of attributes (by index), preserving
// order. Like Selection, can burn a configured per-element CPU cost to
// model the paper's synthetic workloads (the 2.7 us projection of
// Section 6.6).

#ifndef FLEXSTREAM_OPERATORS_PROJECTION_H_
#define FLEXSTREAM_OPERATORS_PROJECTION_H_

#include <string>
#include <vector>

#include "operators/operator.h"
#include "tuple/columnar_batch.h"

namespace flexstream {

class Projection : public Operator {
 public:
  /// `attrs` lists the input attribute indices to keep, in output order.
  /// An empty list means identity (keep all attributes) — useful when the
  /// projection exists purely as a cost stage.
  Projection(std::string name, std::vector<size_t> attrs,
             double simulated_cost_micros = 0.0);

  const std::vector<size_t>& attrs() const { return attrs_; }

  /// Output schema = input schema restricted to `attrs` (identity when
  /// the list is empty).
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override;

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    return std::make_unique<Projection>(std::move(name), attrs_,
                                        simulated_cost_micros_);
  }

 protected:
  void Process(const Tuple& tuple, int port) override;
  /// Batch-native path: rebuilds each tuple in place, moving the kept
  /// Values out of the owned input (copying only when `attrs` repeats an
  /// index, since a repeated index would read a moved-from Value).
  void ProcessBatch(TupleBatch&& batch, int port) override;
  /// Columnar kernel: ProjectColumns rebinds the column vector (moving
  /// kept columns, sharing the arena) — no per-row work at all. Seq
  /// stamps are dropped to match the row path, which builds fresh Tuples.
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;

 private:
  std::vector<size_t> attrs_;
  bool attrs_unique_ = true;
  double simulated_cost_micros_;
  // Projected-schema cache keyed on the input batch's SchemaPtr identity:
  // steady-state streams reuse one Schema object, so the projected schema
  // is computed once, not per batch. Serialized under the operator mutex.
  SchemaPtr cached_in_;
  SchemaPtr cached_out_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_PROJECTION_H_

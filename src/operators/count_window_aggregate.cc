#include "operators/count_window_aggregate.h"

#include "util/logging.h"

namespace flexstream {

CountWindowAggregate::CountWindowAggregate(std::string name, Options options)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      options_(options) {
  CHECK_GT(options.window_rows, 0u);
}

void CountWindowAggregate::Reset() {
  Operator::Reset();
  window_.clear();
  ordered_.clear();
  sum_ = 0.0;
}

double CountWindowAggregate::Current() const {
  switch (options_.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(window_.size());
    case AggregateKind::kSum:
      return sum_;
    case AggregateKind::kAvg:
      return window_.empty()
                 ? 0.0
                 : sum_ / static_cast<double>(window_.size());
    case AggregateKind::kMin:
      return ordered_.empty() ? 0.0 : *ordered_.begin();
    case AggregateKind::kMax:
      return ordered_.empty() ? 0.0 : *ordered_.rbegin();
  }
  return 0.0;
}

void CountWindowAggregate::Process(const Tuple& tuple, int port) {
  (void)port;
  const double v = options_.kind == AggregateKind::kCount
                       ? 0.0
                       : tuple.at(options_.value_attr).ToDouble();
  window_.push_back(v);
  sum_ += v;
  ordered_.insert(v);
  if (window_.size() > options_.window_rows) {
    const double evicted = window_.front();
    window_.pop_front();
    sum_ -= evicted;
    auto it = ordered_.find(evicted);
    DCHECK(it != ordered_.end());
    ordered_.erase(it);
  }
  EmitMove(Tuple({Value(Current())}, tuple.timestamp()));
}


OperatorSnapshot CountWindowAggregate::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::make_tuple(window_, sum_, ordered_);
  snap.element_count = static_cast<int64_t>(window_.size());
  return snap;
}

void CountWindowAggregate::RestoreState(const OperatorSnapshot& snapshot) {
  using State =
      std::tuple<std::deque<double>, double, std::multiset<double>>;
  const auto& state = std::any_cast<const State&>(snapshot.state);
  window_ = std::get<0>(state);
  sum_ = std::get<1>(state);
  ordered_ = std::get<2>(state);
}
}  // namespace flexstream

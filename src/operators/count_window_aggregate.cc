#include "operators/count_window_aggregate.h"

#include <tuple>
#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

CountWindowAggregate::CountWindowAggregate(std::string name, Options options)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      options_(options) {
  CHECK_GT(options.window_rows, 0u);
}

void CountWindowAggregate::Reset() {
  Operator::Reset();
  window_.clear();
  ordered_.clear();
  sum_ = 0.0;
}

double CountWindowAggregate::Current() const {
  switch (options_.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(window_.size());
    case AggregateKind::kSum:
      return sum_;
    case AggregateKind::kAvg:
      return window_.empty()
                 ? 0.0
                 : sum_ / static_cast<double>(window_.size());
    case AggregateKind::kMin:
      return ordered_.empty() ? 0.0 : *ordered_.begin();
    case AggregateKind::kMax:
      return ordered_.empty() ? 0.0 : *ordered_.rbegin();
  }
  return 0.0;
}

void CountWindowAggregate::Process(const Tuple& tuple, int port) {
  (void)port;
  const double v = options_.kind == AggregateKind::kCount
                       ? 0.0
                       : tuple.at(options_.value_attr).ToDouble();
  window_.push_back(v);
  sum_ += v;
  ordered_.insert(v);
  if (window_.size() > options_.window_rows) {
    const double evicted = window_.front();
    window_.pop_front();
    sum_ -= evicted;
    auto it = ordered_.find(evicted);
    DCHECK(it != ordered_.end());
    ordered_.erase(it);
  }
  EmitMove(Tuple({Value(Current())}, tuple.timestamp()));
}


OperatorSnapshot CountWindowAggregate::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::make_tuple(window_, sum_, ordered_);
  snap.element_count = static_cast<int64_t>(window_.size());
  return snap;
}

void CountWindowAggregate::RestoreState(const OperatorSnapshot& snapshot) {
  using State =
      std::tuple<std::deque<double>, double, std::multiset<double>>;
  const auto& state = std::any_cast<const State&>(snapshot.state);
  window_ = std::get<0>(state);
  sum_ = std::get<1>(state);
  ordered_ = std::get<2>(state);
}

Status CountWindowAggregate::EncodeState(const OperatorSnapshot& snapshot,
                                         std::string* out) const {
  using State = std::tuple<std::deque<double>, double, std::multiset<double>>;
  const State* state = nullptr;
  if (snapshot.state.has_value()) {
    state = std::any_cast<State>(&snapshot.state);
    if (state == nullptr) {
      return Status::InvalidArgument(
          "snapshot is not a count-window-aggregate snapshot");
    }
  }
  BinaryWriter w(out);
  if (state == nullptr) {
    w.U64(0);
    w.F64(0.0);
    w.U64(0);
    return Status::Ok();
  }
  const std::deque<double>& window = std::get<0>(*state);
  w.U64(window.size());
  for (double v : window) w.F64(v);
  w.F64(std::get<1>(*state));
  const std::multiset<double>& ordered = std::get<2>(*state);
  w.U64(ordered.size());
  for (double v : ordered) w.F64(v);
  return Status::Ok();
}

Result<OperatorSnapshot> CountWindowAggregate::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  uint64_t window_count = 0;
  Status st = r.U64(&window_count);
  if (!st.ok()) return st;
  std::deque<double> window;
  for (uint64_t i = 0; i < window_count; ++i) {
    double v = 0.0;
    st = r.F64(&v);
    if (!st.ok()) return st;
    window.push_back(v);
  }
  double sum = 0.0;
  uint64_t ordered_count = 0;
  st = r.F64(&sum);
  if (st.ok()) st = r.U64(&ordered_count);
  if (!st.ok()) return st;
  if (ordered_count != window_count) {
    return Status::InvalidArgument(
        "count-window snapshot window/ordered size mismatch");
  }
  std::multiset<double> ordered;
  for (uint64_t i = 0; i < ordered_count; ++i) {
    double v = 0.0;
    st = r.F64(&v);
    if (!st.ok()) return st;
    ordered.insert(v);
  }
  if (!r.done()) {
    return Status::InvalidArgument(
        "trailing bytes in count-window-aggregate snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count = static_cast<int64_t>(window.size());
  snap.state = std::make_tuple(std::move(window), sum, std::move(ordered));
  return snap;
}
}  // namespace flexstream

#include "operators/source.h"

#include "tuple/batch_pool.h"
#include "util/logging.h"

namespace flexstream {

Source::Source(std::string name)
    : Operator(Kind::kSource, std::move(name), /*input_arity=*/0) {}

void Source::Push(const Tuple& tuple) {
  ApplyRequestedBatchSize();
  if (epoch_interval_ != 0) {
    PushEpochs(tuple);
    return;
  }
  DCHECK(tuple.is_data());
  DCHECK(!closed_by_driver_) << DebugString() << " pushed after Close";
  if (StatsCollectionEnabled()) {
    stats().RecordArrival(Now());
    stats().RecordProcessed(0.0);
  }
  if (emit_batch_size_ > 1) {
    if (columnar_emit_) {
      AppendPendingColumnar(tuple);
      return;
    }
    pending_.PushBack(tuple);
    if (pending_.size() >= emit_batch_size_) FlushPendingBatch();
    return;
  }
  Emit(tuple);
}

void Source::Push(Tuple&& tuple) {
  ApplyRequestedBatchSize();
  if (epoch_interval_ != 0) {
    // The epoch path copies into the replay buffer anyway; no move win.
    PushEpochs(tuple);
    return;
  }
  DCHECK(tuple.is_data());
  DCHECK(!closed_by_driver_) << DebugString() << " pushed after Close";
  if (StatsCollectionEnabled()) {
    stats().RecordArrival(Now());
    stats().RecordProcessed(0.0);
  }
  if (emit_batch_size_ > 1) {
    if (columnar_emit_) {
      // Scattering copies the attribute payloads into the columns; the
      // move-in tuple is simply dropped afterwards.
      AppendPendingColumnar(tuple);
      return;
    }
    pending_.PushBack(std::move(tuple));
    if (pending_.size() >= emit_batch_size_) FlushPendingBatch();
    return;
  }
  EmitMove(std::move(tuple));
}

void Source::SetEmitBatchSize(size_t batch_size) {
  FlushPendingBatch();
  emit_batch_size_ = batch_size == 0 ? 1 : batch_size;
  // Keep the cross-thread request in sync so a stale earlier request
  // cannot resurrect an old size at the next Push.
  requested_batch_size_.store(emit_batch_size_, std::memory_order_relaxed);
  // Growth-policy satellite: reserve the accumulation buffer to the hint
  // up front instead of letting PushBack double its way there.
  if (emit_batch_size_ > 1) pending_.reserve(emit_batch_size_);
}

void Source::FlushPendingBatch() {
  if (!pending_.empty()) {
    TupleBatch batch = std::move(pending_);
    pending_.clear();  // normalize the moved-from state
    // Steady state: re-reserve the hint so the next fill costs exactly one
    // allocation (the growth-policy satellite; see tests/batch_alloc_test).
    if (emit_batch_size_ > 1) pending_.reserve(emit_batch_size_);
    EmitBatch(std::move(batch));
  }
  FlushPendingColumnar();
}

void Source::FlushPendingColumnar() {
  if (pending_col_ == nullptr || pending_col_->empty()) return;
  EmitColumnar(std::move(pending_col_));
}

void Source::AppendPendingColumnar(const Tuple& tuple) {
  if (pending_col_ == nullptr) {
    if (batch_schema_ == nullptr || !batch_schema_->Matches(tuple)) {
      batch_schema_ =
          (declared_schema_ != nullptr && declared_schema_->Matches(tuple))
              ? declared_schema_
              : MakeSchema(Schema::InferFrom(tuple).types());
    }
    pending_col_ = columnar::AcquireBatch(batch_schema_);
  }
  if (!pending_col_->AppendTuple(tuple)) {
    // Schema drift mid-stream: flush what accumulated and restart under
    // the element's own schema.
    FlushPendingColumnar();
    batch_schema_ = MakeSchema(Schema::InferFrom(tuple).types());
    pending_col_ = columnar::AcquireBatch(batch_schema_);
    const bool ok = pending_col_->AppendTuple(tuple);
    DCHECK(ok);
  }
  if (pending_col_->size() >= emit_batch_size_) FlushPendingColumnar();
}

void Source::SetColumnarEmit(bool enabled) {
  FlushPendingBatch();
  columnar_emit_ = enabled;
}

void Source::DeclareOutputSchema(SchemaPtr schema) {
  declared_schema_ = std::move(schema);
  SetStaticOutputSchema(declared_schema_);
}

SchemaPtr Source::InferOutputSchema(const std::vector<SchemaPtr>&) const {
  return declared_schema_;
}

void Source::PushColumnar(ColumnarBatchPtr batch) {
  if (batch == nullptr || batch->empty()) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  ApplyRequestedBatchSize();
  if (epoch_interval_ != 0) {
    // The epoch/replay machinery (observer records, barrier counting,
    // resume skip) is per-element: unbundle onto the exact Push path.
    TupleBatch rows = columnar::MaterializeAndRelease(std::move(batch));
    for (Tuple& tuple : rows) Push(std::move(tuple));
    return;
  }
  DCHECK(!closed_by_driver_) << DebugString() << " pushed after Close";
  if (StatsCollectionEnabled()) {
    stats().RecordArrivalBatch(Now(), static_cast<int64_t>(batch->size()));
    stats().RecordProcessedBatch(0.0, static_cast<int64_t>(batch->size()));
  }
  FlushPendingBatch();  // anything accumulated earlier goes first
  EmitColumnar(std::move(batch));
}

void Source::PushEpochs(const Tuple& tuple) {
  // The gate stalls live pushes while recovery rewinds/replays; replayed
  // pushes come from the thread already holding it exclusively.
  std::shared_lock<std::shared_mutex> gate_lock;
  if (gate_ != nullptr && !replaying_) {
    gate_lock = std::shared_lock<std::shared_mutex>(*gate_);
  }
  DCHECK(tuple.is_data());
  DCHECK(!closed_by_driver_) << DebugString() << " pushed after Close";
  if (resume_skip_ > 0 && !replaying_) {
    // Cold-restart prefix: already reflected in the restored state.
    --resume_skip_;
    return;
  }
  // Record before emitting: if a failure poisons the graph mid-emit, the
  // element is already in the replay buffer.
  if (observer_ != nullptr && !replaying_) observer_->OnPush(tuple, next_epoch_);
  if (StatsCollectionEnabled()) {
    stats().RecordArrival(Now());
    stats().RecordProcessed(0.0);
  }
  if (emit_batch_size_ > 1) {
    if (columnar_emit_) {
      AppendPendingColumnar(tuple);
    } else {
      pending_.PushBack(tuple);
      if (pending_.size() >= emit_batch_size_) FlushPendingBatch();
    }
  } else {
    Emit(tuple);
  }
  if (++pushed_in_epoch_ >= epoch_interval_) {
    // Barriers regenerate deterministically on replay: the counters rewind
    // to the committed boundary, so replayed elements re-cross the same
    // epoch boundaries at the same positions. Any accumulating batch is
    // flushed first — a batch never straddles a barrier.
    FlushPendingBatch();
    EmitBarrier(Tuple::EpochBarrier(next_epoch_));
    ++next_epoch_;
    pushed_in_epoch_ = 0;
  }
}

void Source::Close(AppTime timestamp) {
  std::shared_lock<std::shared_mutex> gate_lock;
  if (epoch_interval_ != 0 && gate_ != nullptr && !replaying_) {
    gate_lock = std::shared_lock<std::shared_mutex>(*gate_);
  }
  if (closed_by_driver_) return;
  closed_by_driver_ = true;
  if (observer_ != nullptr && !replaying_) observer_->OnClose(timestamp);
  FlushPendingBatch();
  EmitEos(timestamp);
}

void Source::ArmEpochs(uint64_t interval, PushObserver* observer,
                       std::shared_mutex* gate) {
  epoch_interval_ = interval;
  observer_ = observer;
  gate_ = gate;
  next_epoch_ = 1;
  pushed_in_epoch_ = 0;
  resume_skip_ = 0;
  replaying_ = false;
}

void Source::DisarmEpochs() {
  epoch_interval_ = 0;
  observer_ = nullptr;
  gate_ = nullptr;
  next_epoch_ = 1;
  pushed_in_epoch_ = 0;
  resume_skip_ = 0;
  replaying_ = false;
}

void Source::RewindTo(uint64_t epoch) {
  closed_by_driver_ = false;
  next_epoch_ = epoch + 1;
  pushed_in_epoch_ = 0;
}

void Source::Reset() {
  Operator::Reset();
  closed_by_driver_ = false;
  pending_.clear();
  columnar::ReleaseBatch(std::move(pending_col_));
  pending_col_.reset();
}

void Source::Process(const Tuple& tuple, int port) {
  (void)tuple;
  (void)port;
  LOG(FATAL) << "sources have no inputs: " << DebugString();
}

VectorSource::VectorSource(std::string name, std::vector<Tuple> tuples)
    : Source(std::move(name)), tuples_(std::move(tuples)) {}

void VectorSource::PushAll() {
  AppTime last_ts = 0;
  for (const Tuple& t : tuples_) {
    Push(t);
    last_ts = t.timestamp();
  }
  Close(last_ts);
}

}  // namespace flexstream

#include "operators/source.h"

#include "util/logging.h"

namespace flexstream {

Source::Source(std::string name)
    : Operator(Kind::kSource, std::move(name), /*input_arity=*/0) {}

void Source::Push(const Tuple& tuple) {
  DCHECK(tuple.is_data());
  DCHECK(!closed_by_driver_) << DebugString() << " pushed after Close";
  if (StatsCollectionEnabled()) {
    stats().RecordArrival(Now());
    stats().RecordProcessed(0.0);
  }
  Emit(tuple);
}

void Source::Close(AppTime timestamp) {
  if (closed_by_driver_) return;
  closed_by_driver_ = true;
  EmitEos(timestamp);
}

void Source::Reset() {
  Operator::Reset();
  closed_by_driver_ = false;
}

void Source::Process(const Tuple& tuple, int port) {
  (void)tuple;
  (void)port;
  LOG(FATAL) << "sources have no inputs: " << DebugString();
}

VectorSource::VectorSource(std::string name, std::vector<Tuple> tuples)
    : Source(std::move(name)), tuples_(std::move(tuples)) {}

void VectorSource::PushAll() {
  AppTime last_ts = 0;
  for (const Tuple& t : tuples_) {
    Push(t);
    last_ts = t.timestamp();
  }
  Close(last_ts);
}

}  // namespace flexstream

// Windowed duplicate elimination.
//
// Emits an element iff no equal element (compared on a configurable
// attribute subset; empty = all attributes) currently resides in the
// sliding window. Unbounded streams make exact DISTINCT impossible with
// finite state, so — as everywhere in a DSMS — the semantics are
// window-relative.

#ifndef FLEXSTREAM_OPERATORS_DISTINCT_H_
#define FLEXSTREAM_OPERATORS_DISTINCT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "operators/operator.h"
#include "operators/window.h"
#include "recovery/state_snapshot.h"

namespace flexstream {

class Distinct : public Operator, public StatefulOperator {
 public:
  /// `key_attrs` selects the attributes compared for equality; empty
  /// means the whole tuple (all attributes, not the timestamp).
  Distinct(std::string name, AppTime window_micros,
           std::vector<size_t> key_attrs = {});

  void Reset() override;

  size_t window_size() const { return window_.size(); }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

  std::unique_ptr<Operator> CloneFresh(std::string name) const override {
    return std::make_unique<Distinct>(std::move(name),
                                      window_.duration_micros(), key_attrs_);
  }

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };

  std::vector<Value> KeyOf(const Tuple& tuple) const;

  std::vector<size_t> key_attrs_;
  SlidingWindow window_;
  // Occurrence count per live key (window contents may hold duplicates of
  // suppressed elements' keys — every arrival enters the window so
  // expiration bookkeeping stays exact).
  std::unordered_map<std::vector<Value>, int64_t, KeyHash> live_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_DISTINCT_H_

#include "operators/aggregate.h"

#include <algorithm>
#include <map>
#include <utility>

#include "operators/router.h"
#include "util/binary_io.h"
#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
  }
  return "unknown";
}

WindowedAggregate::WindowedAggregate(std::string name, Options options)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      options_(options),
      window_(options.window_micros) {}

void WindowedAggregate::Reset() {
  Operator::Reset();
  window_.Clear();
  groups_.clear();
}

Value WindowedAggregate::GroupKeyOf(const Tuple& tuple) const {
  return options_.group_attr ? tuple.at(*options_.group_attr)
                             : Value(int64_t{0});
}

double WindowedAggregate::ValueOf(const Tuple& tuple) const {
  if (options_.kind == AggregateKind::kCount) return 0.0;
  return tuple.at(options_.value_attr).ToDouble();
}

void WindowedAggregate::Fold(GroupState* g, double v) const {
  ++g->count;
  g->sum += v;
  if (options_.kind == AggregateKind::kMin ||
      options_.kind == AggregateKind::kMax) {
    g->values.insert(v);
  }
}

void WindowedAggregate::Unfold(GroupState* g, double v) const {
  --g->count;
  g->sum -= v;
  if (options_.kind == AggregateKind::kMin ||
      options_.kind == AggregateKind::kMax) {
    auto it = g->values.find(v);
    DCHECK(it != g->values.end());
    g->values.erase(it);
  }
}

double WindowedAggregate::Current(const GroupState& g) const {
  switch (options_.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(g.count);
    case AggregateKind::kSum:
      return g.sum;
    case AggregateKind::kAvg:
      return g.count == 0 ? 0.0 : g.sum / static_cast<double>(g.count);
    case AggregateKind::kMin:
      return g.values.empty() ? 0.0 : *g.values.begin();
    case AggregateKind::kMax:
      return g.values.empty() ? 0.0 : *g.values.rbegin();
  }
  return 0.0;
}

void WindowedAggregate::Process(const Tuple& tuple, int port) {
  (void)port;
  if (options_.simulated_cost_micros > 0.0) {
    BurnMicros(options_.simulated_cost_micros);
  }
  const AppTime watermark = window_.WatermarkFor(tuple.timestamp());
  window_.ExpireBefore(watermark, [&](const Tuple& expired) {
    const Value key = GroupKeyOf(expired);
    auto it = groups_.find(key);
    DCHECK(it != groups_.end());
    Unfold(&it->second, ValueOf(expired));
    if (it->second.count == 0) groups_.erase(it);
  });
  window_.Add(tuple);
  GroupState& group = groups_[GroupKeyOf(tuple)];
  Fold(&group, ValueOf(tuple));
  if (options_.group_attr) {
    EmitMove(Tuple({tuple.at(*options_.group_attr), Value(Current(group))},
               tuple.timestamp()));
  } else {
    EmitMove(Tuple({Value(Current(group))}, tuple.timestamp()));
  }
}


OperatorSnapshot WindowedAggregate::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::make_pair(window_, groups_);
  snap.element_count = static_cast<int64_t>(window_.size());
  return snap;
}

void WindowedAggregate::RestoreState(const OperatorSnapshot& snapshot) {
  using State =
      std::pair<SlidingWindow,
                std::unordered_map<Value, GroupState, ValueHash>>;
  const auto& state = std::any_cast<const State&>(snapshot.state);
  window_ = state.first;
  groups_ = state.second;
}

Status WindowedAggregate::EncodeState(const OperatorSnapshot& snapshot,
                                      std::string* out) const {
  using State = std::pair<SlidingWindow,
                          std::unordered_map<Value, GroupState, ValueHash>>;
  const State* state = nullptr;
  if (snapshot.state.has_value()) {
    state = std::any_cast<State>(&snapshot.state);
    if (state == nullptr) {
      return Status::InvalidArgument("snapshot is not an aggregate snapshot");
    }
  }
  BinaryWriter w(out);
  if (state == nullptr) {
    EncodeWindow(SlidingWindow(options_.window_micros), out);
    w.U64(0);
    return Status::Ok();
  }
  EncodeWindow(state->first, out);
  // Group states are serialized field-exact (sum as IEEE-754 bits, the
  // min/max multiset verbatim) — never re-folded from the window, so a
  // restored aggregate continues the identical floating-point trajectory.
  std::map<Value, const GroupState*> ordered;
  for (const auto& [key, group] : state->second) {
    ordered.emplace(key, &group);
  }
  w.U64(ordered.size());
  for (const auto& [key, group] : ordered) {
    w.Value(key);
    w.I64(group->count);
    w.F64(group->sum);
    w.U64(group->values.size());
    for (double v : group->values) w.F64(v);
  }
  return Status::Ok();
}

Result<OperatorSnapshot> WindowedAggregate::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  Result<SlidingWindow> window = DecodeWindow(&r);
  if (!window.ok()) return std::move(window).status();
  std::unordered_map<Value, GroupState, ValueHash> groups;
  uint64_t group_count = 0;
  Status st = r.U64(&group_count);
  if (!st.ok()) return st;
  for (uint64_t g = 0; g < group_count; ++g) {
    Value key;
    st = r.Value(&key);
    if (!st.ok()) return st;
    GroupState group;
    uint64_t value_count = 0;
    st = r.I64(&group.count);
    if (st.ok()) st = r.F64(&group.sum);
    if (st.ok()) st = r.U64(&value_count);
    if (!st.ok()) return st;
    for (uint64_t i = 0; i < value_count; ++i) {
      double v = 0.0;
      st = r.F64(&v);
      if (!st.ok()) return st;
      group.values.insert(v);
    }
    if (!groups.emplace(std::move(key), std::move(group)).second) {
      return Status::InvalidArgument("duplicate group key in snapshot");
    }
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in aggregate snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count = static_cast<int64_t>(window->size());
  snap.state = std::make_pair(std::move(window).value(), std::move(groups));
  return snap;
}

std::unique_ptr<Operator> WindowedAggregate::CloneFresh(
    std::string name) const {
  return std::make_unique<WindowedAggregate>(std::move(name), options_);
}

Result<std::vector<OperatorSnapshot>> WindowedAggregate::RepartitionSnapshots(
    const std::vector<OperatorSnapshot>& snapshots, size_t new_n) const {
  using State =
      std::pair<SlidingWindow,
                std::unordered_map<Value, GroupState, ValueHash>>;
  if (new_n == 0) {
    return Status::InvalidArgument("cannot repartition into 0 shards");
  }
  if (!options_.group_attr) {
    return Status::InvalidArgument(
        "cannot key-repartition a non-grouped aggregate: " + name());
  }
  if (snapshots.empty()) {
    return Status::InvalidArgument("no replica snapshots to repartition");
  }
  // Merge the replicas' windows into one timestamp-ordered stream (each
  // window deque is timestamp-monotone, so a stable sort is a valid
  // merge), then rebuild each shard by re-folding its share.
  std::vector<Tuple> arrivals;
  for (const OperatorSnapshot& snap : snapshots) {
    if (snap.epoch != snapshots.front().epoch) {
      return Status::FailedPrecondition(
          "replica snapshots span different epochs");
    }
    const auto* state = std::any_cast<State>(&snap.state);
    if (state == nullptr && snap.state.has_value()) {
      return Status::InvalidArgument("snapshot is not an aggregate snapshot");
    }
    if (state == nullptr) continue;  // empty state: nothing windowed
    for (const Tuple& tuple : state->first.contents()) {
      arrivals.push_back(tuple);
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a.timestamp() < b.timestamp();
                   });
  std::vector<SlidingWindow> windows(new_n,
                                     SlidingWindow(options_.window_micros));
  std::vector<std::unordered_map<Value, GroupState, ValueHash>> groups(new_n);
  for (const Tuple& tuple : arrivals) {
    const Value key = tuple.at(*options_.group_attr);
    const size_t shard = Router::HashValue(key) % new_n;
    windows[shard].Add(tuple);
    Fold(&groups[shard][key], ValueOf(tuple));
  }
  std::vector<OperatorSnapshot> out(new_n);
  for (size_t i = 0; i < new_n; ++i) {
    out[i].epoch = snapshots.front().epoch;
    out[i].element_count = static_cast<int64_t>(windows[i].size());
    out[i].state = std::make_pair(std::move(windows[i]), std::move(groups[i]));
  }
  return out;
}
}  // namespace flexstream

// Sinks: nodes that only consume data (Section 2.1).
//
// Sinks are the observation points of every experiment: they count or
// collect results, record arrival times for the "early results" series of
// Figure 10, and let callers block until the stream has fully terminated.

#ifndef FLEXSTREAM_OPERATORS_SINK_H_
#define FLEXSTREAM_OPERATORS_SINK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "recovery/state_snapshot.h"
#include "tuple/columnar_batch.h"

namespace flexstream {

/// Base sink: tracks completion and lets callers wait for it. Subclasses
/// implement Consume(). Consume runs in whichever thread executes the
/// sink's partition; the completion signal is thread-safe.
class Sink : public Operator {
 public:
  explicit Sink(std::string name);

  /// Blocks until the sink has seen EOS on all inputs.
  void WaitUntilClosed();

  /// Like WaitUntilClosed with a timeout; returns false on timeout.
  bool WaitUntilClosedFor(Duration timeout);

  void Reset() override;

 protected:
  void Process(const Tuple& tuple, int port) override;
  void ProcessBatch(TupleBatch&& batch, int port) override;
  void OnAllInputsClosed(AppTime timestamp) override;

  virtual void Consume(const Tuple& tuple, int port) = 0;

  /// Batch analogue of Consume. The default unbundles into per-tuple
  /// Consume calls; the counting/collecting sinks override it to absorb
  /// the whole batch under one lock/atomic update.
  virtual void ConsumeBatch(TupleBatch&& batch, int port);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
};

/// Counts results; optionally timestamps every arrival relative to a start
/// point so benches can print cumulative-results-over-time series (Fig 10).
/// Stateful for recovery: restoring the checkpointed count (and replaying
/// only post-epoch input) makes the final count exactly-once.
class CountingSink : public Sink, public StatefulOperator {
 public:
  explicit CountingSink(std::string name);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

  /// Enables per-arrival time recording relative to `start`.
  void StartTimeline(TimePoint start);
  /// (seconds since start, cumulative count) samples, one per arrival.
  std::vector<std::pair<double, int64_t>> TakeTimeline();

  void Reset() override;

 protected:
  void Consume(const Tuple& tuple, int port) override;
  void ConsumeBatch(TupleBatch&& batch, int port) override;
  /// Columnar kernel: one atomic add for the whole batch — no row
  /// materialization at all (the timeline mode keeps the per-tuple path).
  void ProcessColumnar(ColumnarBatchPtr batch, int port) override;

 private:
  std::atomic<int64_t> count_{0};
  std::mutex timeline_mutex_;
  bool timeline_enabled_ = false;
  TimePoint timeline_start_{};
  std::vector<std::pair<double, int64_t>> timeline_;
};

/// Stores every received tuple; the store is mutex-protected so tests can
/// inspect results from the main thread after WaitUntilClosed().
/// Stateful for recovery: truncating the store back to the committed
/// epoch's snapshot deduplicates replayed results exactly (the epoch +
/// arrival-sequence dedup of DESIGN.md §10), so a recovered run's results
/// are an exact multiset match against an undisturbed one.
class CollectingSink : public Sink, public StatefulOperator {
 public:
  explicit CollectingSink(std::string name);

  std::vector<Tuple> TakeResults();
  std::vector<Tuple> Results() const;
  size_t size() const;

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

  void Reset() override;

 protected:
  void Consume(const Tuple& tuple, int port) override;
  void ConsumeBatch(TupleBatch&& batch, int port) override;

 private:
  mutable std::mutex results_mutex_;
  std::vector<Tuple> results_;
};

/// Invokes a callback per tuple (for examples and ad-hoc probes).
class CallbackSink : public Sink {
 public:
  CallbackSink(std::string name,
               std::function<void(const Tuple&, int)> callback);

 protected:
  void Consume(const Tuple& tuple, int port) override;

 private:
  std::function<void(const Tuple&, int)> callback_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SINK_H_

// Router: partitions its input stream across its subscribers.
//
// Unlike plain fan-out (Emit broadcasts to every subscriber — the
// subquery-sharing pattern of Figure 1), a Router sends each element to
// exactly one subscriber, selected by a user routing function. This is
// the building block for splitting a hot stream across parallel
// sub-pipelines that separate HMTS partitions can then execute.

#ifndef FLEXSTREAM_OPERATORS_ROUTER_H_
#define FLEXSTREAM_OPERATORS_ROUTER_H_

#include <functional>
#include <string>

#include "operators/operator.h"

namespace flexstream {

class Router : public Operator {
 public:
  /// The route function returns any non-negative value; the element goes
  /// to subscriber (value % fan_out). Subscribers are numbered in
  /// connection order.
  using RouteFn = std::function<size_t(const Tuple&)>;

  Router(std::string name, RouteFn route);

  /// Routes by hash of one attribute (key partitioning).
  static RouteFn HashAttr(size_t attr);

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  RouteFn route_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_ROUTER_H_

// Router: partitions its input stream across its subscribers.
//
// Unlike plain fan-out (Emit broadcasts to every subscriber — the
// subquery-sharing pattern of Figure 1), a Router sends each element to
// exactly one subscriber, selected by a user routing function. This is
// the building block for splitting a hot stream across parallel
// sub-pipelines that separate HMTS partitions can then execute, and the
// split half of the shard pattern (src/api/shard.h): key-partition the
// input across N replicas, re-merge behind them.
//
// Punctuations (EOS, epoch barriers) never reach Process — the Operator
// base class broadcasts them to *every* subscriber (EmitEos/EmitBarrier),
// which is exactly the semantics a splitter needs: every sub-pipeline must
// observe every barrier for alignment, and every replica must close.

#ifndef FLEXSTREAM_OPERATORS_ROUTER_H_
#define FLEXSTREAM_OPERATORS_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "tuple/value.h"

namespace flexstream {

class Router : public Operator {
 public:
  /// The route function returns any non-negative value; the element goes
  /// to subscriber (value % fan_out). Subscribers are numbered in
  /// connection order.
  using RouteFn = std::function<size_t(const Tuple&)>;

  Router(std::string name, RouteFn route);

  /// Routes by hash of one attribute (key partitioning). The raw
  /// Value::Hash is finalized through MixHash so that small-integer keys
  /// (which std::hash maps to themselves on most implementations) don't
  /// partition modulo-N pathologically.
  static RouteFn HashAttr(size_t attr);

  /// The hardened key hash HashAttr routes by: Value::Hash run through the
  /// splitmix64 finalizer. Exposed so state repartitioning (shard snapshot
  /// restore with a different N) assigns keys exactly as live routing does.
  static size_t HashValue(const Value& value);

  /// splitmix64 finalizer: full-avalanche bit mixer.
  static uint64_t MixHash(uint64_t h);

  /// When enabled, every routed data element is stamped with a fresh
  /// global arrival sequence number (AllocateArrivalSeq) before delivery.
  /// This marks the Router as the *split point* of an ordered shard: the
  /// replicas propagate the stamp (Operator::SetStampEmitSeq) and the
  /// ordered Merge restores the global order. Configure while quiescent.
  void SetSequencing(bool enabled) { sequencing_ = enabled; }
  bool sequencing() const { return sequencing_; }

  std::unique_ptr<Operator> CloneFresh(std::string name) const override;

 protected:
  void Process(const Tuple& tuple, int port) override;

  /// Batch-native scatter: partitions the batch into per-subscriber runs
  /// (order-preserving within each run) and delivers each non-empty run as
  /// one ReceiveBatch call, instead of unbundling into per-tuple EmitTo.
  void ProcessBatch(TupleBatch&& batch, int port) override;

 private:
  RouteFn route_;
  bool sequencing_ = false;
  /// Scatter staging, one slot per subscriber; reused across batches.
  std::vector<TupleBatch> scatter_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_ROUTER_H_

// Binary symmetric nested-loops join (SNJ) over sliding time windows.
//
// The second join of Section 6.3. Supports arbitrary join predicates; an
// arriving element scans the entire opposite window, which makes its
// per-element cost proportional to the window population — exactly why
// Figure 6 shows SNJ falling behind the input rate much earlier than SHJ.

#ifndef FLEXSTREAM_OPERATORS_SYMMETRIC_NL_JOIN_H_
#define FLEXSTREAM_OPERATORS_SYMMETRIC_NL_JOIN_H_

#include <functional>
#include <string>

#include "operators/operator.h"
#include "operators/window.h"
#include "recovery/state_snapshot.h"

namespace flexstream {

class SymmetricNlJoin : public Operator, public StatefulOperator {
 public:
  static constexpr int kLeftPort = 0;
  static constexpr int kRightPort = 1;

  /// Predicate over (left tuple, right tuple).
  using Predicate = std::function<bool(const Tuple&, const Tuple&)>;

  SymmetricNlJoin(std::string name, AppTime window_micros,
                  Predicate predicate);

  /// Equality predicate on one attribute per side (equi-join), matching
  /// the SHJ configuration for head-to-head comparisons.
  static Predicate EqualAttr(size_t left_attr, size_t right_attr);

  void Reset() override;

  size_t StateSize() const {
    return windows_[0].size() + windows_[1].size();
  }

  OperatorSnapshot SnapshotState() const override;
  void RestoreState(const OperatorSnapshot& snapshot) override;

  bool SupportsDurableState() const override { return true; }
  Status EncodeState(const OperatorSnapshot& snapshot,
                     std::string* out) const override;
  Result<OperatorSnapshot> DecodeState(std::string_view bytes) const override;

 protected:
  void Process(const Tuple& tuple, int port) override;

 private:
  Predicate predicate_;
  SlidingWindow windows_[2];
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_SYMMETRIC_NL_JOIN_H_

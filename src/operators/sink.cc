#include "operators/sink.h"

#include <utility>

#include "tuple/batch_pool.h"
#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

Sink::Sink(std::string name)
    : Operator(Kind::kSink, std::move(name), kVariadicArity) {}

void Sink::WaitUntilClosed() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
}

bool Sink::WaitUntilClosedFor(Duration timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] { return done_; });
}

void Sink::Reset() {
  Operator::Reset();
  std::lock_guard<std::mutex> lock(mutex_);
  done_ = false;
}

void Sink::Process(const Tuple& tuple, int port) { Consume(tuple, port); }

void Sink::ProcessBatch(TupleBatch&& batch, int port) {
  ConsumeBatch(std::move(batch), port);
}

void Sink::ConsumeBatch(TupleBatch&& batch, int port) {
  for (const Tuple& tuple : batch) Consume(tuple, port);
}

void Sink::OnAllInputsClosed(AppTime timestamp) {
  (void)timestamp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
  }
  cv_.notify_all();
}

CountingSink::CountingSink(std::string name) : Sink(std::move(name)) {
  MarkColumnarNative();
}

void CountingSink::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  if (timeline_enabled_) {
    // One (time, cumulative count) sample per arrival: row path.
    ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  count_.fetch_add(static_cast<int64_t>(batch->size()),
                   std::memory_order_relaxed);
  columnar::ReleaseBatch(std::move(batch));
}

void CountingSink::StartTimeline(TimePoint start) {
  std::lock_guard<std::mutex> lock(timeline_mutex_);
  timeline_enabled_ = true;
  timeline_start_ = start;
  timeline_.clear();
}

std::vector<std::pair<double, int64_t>> CountingSink::TakeTimeline() {
  std::lock_guard<std::mutex> lock(timeline_mutex_);
  timeline_enabled_ = false;
  return std::move(timeline_);
}

void CountingSink::Reset() {
  Sink::Reset();
  count_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(timeline_mutex_);
  timeline_.clear();
}

void CountingSink::Consume(const Tuple& tuple, int port) {
  (void)tuple;
  (void)port;
  const int64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (timeline_enabled_) {
    std::lock_guard<std::mutex> lock(timeline_mutex_);
    if (timeline_enabled_) {
      timeline_.emplace_back(ToSeconds(Now() - timeline_start_), n);
    }
  }
}

void CountingSink::ConsumeBatch(TupleBatch&& batch, int port) {
  if (timeline_enabled_) {
    // The timeline wants one (time, cumulative count) sample per arrival:
    // keep the per-tuple path.
    Sink::ConsumeBatch(std::move(batch), port);
    return;
  }
  count_.fetch_add(static_cast<int64_t>(batch.size()),
                   std::memory_order_relaxed);
}

OperatorSnapshot CountingSink::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = count_.load(std::memory_order_relaxed);
  snap.element_count = count_.load(std::memory_order_relaxed);
  return snap;
}

void CountingSink::RestoreState(const OperatorSnapshot& snapshot) {
  count_.store(std::any_cast<int64_t>(snapshot.state),
               std::memory_order_relaxed);
}

Status CountingSink::EncodeState(const OperatorSnapshot& snapshot,
                                 std::string* out) const {
  int64_t count = 0;
  if (snapshot.state.has_value()) {
    const int64_t* p = std::any_cast<int64_t>(&snapshot.state);
    if (p == nullptr) {
      return Status::InvalidArgument(
          "snapshot is not a counting-sink snapshot");
    }
    count = *p;
  }
  BinaryWriter(out).I64(count);
  return Status::Ok();
}

Result<OperatorSnapshot> CountingSink::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  int64_t count = 0;
  Status st = r.I64(&count);
  if (!st.ok()) return st;
  if (!r.done()) {
    return Status::InvalidArgument(
        "trailing bytes in counting-sink snapshot");
  }
  if (count < 0) {
    return Status::InvalidArgument("counting-sink snapshot count negative");
  }
  OperatorSnapshot snap;
  snap.element_count = count;
  snap.state = count;
  return snap;
}

CollectingSink::CollectingSink(std::string name) : Sink(std::move(name)) {}

OperatorSnapshot CollectingSink::SnapshotState() const {
  std::lock_guard<std::mutex> lock(results_mutex_);
  OperatorSnapshot snap;
  snap.state = results_;
  snap.element_count = static_cast<int64_t>(results_.size());
  return snap;
}

void CollectingSink::RestoreState(const OperatorSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(results_mutex_);
  results_ = std::any_cast<std::vector<Tuple>>(snapshot.state);
}

Status CollectingSink::EncodeState(const OperatorSnapshot& snapshot,
                                   std::string* out) const {
  const std::vector<Tuple>* results = nullptr;
  if (snapshot.state.has_value()) {
    results = std::any_cast<std::vector<Tuple>>(&snapshot.state);
    if (results == nullptr) {
      return Status::InvalidArgument(
          "snapshot is not a collecting-sink snapshot");
    }
  }
  BinaryWriter w(out);
  if (results == nullptr) {
    w.U64(0);
    return Status::Ok();
  }
  w.U64(results->size());
  for (const Tuple& tuple : *results) w.Tuple(tuple);
  return Status::Ok();
}

Result<OperatorSnapshot> CollectingSink::DecodeState(
    std::string_view bytes) const {
  BinaryReader r(bytes);
  uint64_t count = 0;
  Status st = r.U64(&count);
  if (!st.ok()) return st;
  // Every stored tuple costs at least its fixed header, so a count
  // beyond the remaining bytes is corrupt — reject it before reserve()
  // turns a garbage count into a std::length_error.
  if (count > r.remaining()) {
    return Status::InvalidArgument(
        "collecting-sink count " + std::to_string(count) +
        " exceeds the " + std::to_string(r.remaining()) +
        " bytes remaining");
  }
  std::vector<Tuple> results;
  results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Tuple tuple = Tuple::OfInt(0, 0);
    st = r.Tuple(&tuple);
    if (!st.ok()) return st;
    results.push_back(std::move(tuple));
  }
  if (!r.done()) {
    return Status::InvalidArgument(
        "trailing bytes in collecting-sink snapshot");
  }
  OperatorSnapshot snap;
  snap.element_count = static_cast<int64_t>(results.size());
  snap.state = std::move(results);
  return snap;
}

std::vector<Tuple> CollectingSink::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mutex_);
  return std::move(results_);
}

std::vector<Tuple> CollectingSink::Results() const {
  std::lock_guard<std::mutex> lock(results_mutex_);
  return results_;
}

size_t CollectingSink::size() const {
  std::lock_guard<std::mutex> lock(results_mutex_);
  return results_.size();
}

void CollectingSink::Reset() {
  Sink::Reset();
  std::lock_guard<std::mutex> lock(results_mutex_);
  results_.clear();
}

void CollectingSink::Consume(const Tuple& tuple, int port) {
  (void)port;
  std::lock_guard<std::mutex> lock(results_mutex_);
  results_.push_back(tuple);
}

void CollectingSink::ConsumeBatch(TupleBatch&& batch, int port) {
  (void)port;
  std::lock_guard<std::mutex> lock(results_mutex_);
  results_.insert(results_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
}

CallbackSink::CallbackSink(std::string name,
                           std::function<void(const Tuple&, int)> callback)
    : Sink(std::move(name)), callback_(std::move(callback)) {
  CHECK(callback_ != nullptr);
}

void CallbackSink::Consume(const Tuple& tuple, int port) {
  callback_(tuple, port);
}

}  // namespace flexstream

#include "operators/merge.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace flexstream {

MergeOperator::MergeOperator(std::string name, Order order)
    : Operator(Kind::kOperator, std::move(name), Node::kVariadicArity),
      order_(order) {}

size_t MergeOperator::PendingCount() const {
  size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.pending.size();
  return total;
}

void MergeOperator::EnsureLanes() {
  if (lanes_built_) return;
  lanes_built_ = true;
  lanes_.clear();
  for (const InEdge& in : inputs()) {
    Lane lane;
    lane.source = in.source;
    lanes_.push_back(std::move(lane));
  }
}

MergeOperator::Lane* MergeOperator::LaneForSender(const Node* sender) {
  for (Lane& lane : lanes_) {
    if (lane.source == sender) return &lane;
  }
  return nullptr;
}

void MergeOperator::Process(const Tuple& tuple, int port) {
  (void)port;
  if (order_ == Order::kArrival) {
    Emit(tuple);
    return;
  }
  EnsureLanes();
  Lane* lane = LaneForSender(CurrentDeliverySender());
  if (lane == nullptr) {
    // Driven from outside the graph (unit test): no lane structure to
    // merge against — pass through.
    Emit(tuple);
    return;
  }
  // Non-decreasing, not strict: a replica emitting several outputs for one
  // input stamps them all with that input's sequence number.
  DCHECK(lane->pending.empty() || lane->pending.back().seq() <= tuple.seq())
      << DebugString() << " lane delivered out of sequence";
  lane->pending.push_back(tuple);
  ReleaseReady();
}

void MergeOperator::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (order_ == Order::kArrival) {
    EmitBatch(std::move(batch));
    return;
  }
  EnsureLanes();
  Lane* lane = LaneForSender(CurrentDeliverySender());
  if (lane == nullptr) {
    EmitBatch(std::move(batch));
    return;
  }
  for (Tuple& tuple : batch) lane->pending.push_back(std::move(tuple));
  ReleaseReady();
}

void MergeOperator::ReleaseReady() {
  TupleBatch run;
  for (;;) {
    Lane* best = nullptr;
    bool blocked = false;
    for (Lane& lane : lanes_) {
      if (lane.pending.empty()) {
        if (!lane.closed) {
          // An open empty lane may still produce the next-smallest
          // sequence number; nothing may overtake it.
          blocked = true;
          break;
        }
        continue;
      }
      if (best == nullptr ||
          lane.pending.front().seq() < best->pending.front().seq()) {
        best = &lane;
      }
    }
    if (blocked || best == nullptr) break;
    run.PushBack(std::move(best->pending.front()));
    best->pending.pop_front();
  }
  if (run.empty()) return;
  if (run.size() == 1) {
    EmitMove(std::move(run[0]));
  } else {
    EmitBatch(std::move(run));
  }
}

void MergeOperator::FlushAllPending() {
  TupleBatch run;
  for (Lane& lane : lanes_) {
    for (Tuple& tuple : lane.pending) run.PushBack(std::move(tuple));
    lane.pending.clear();
  }
  if (run.empty()) return;
  // Stable: equal stamps (several outputs of one input element) only occur
  // within one lane, and their within-lane order must survive the flush.
  std::stable_sort(
      run.begin(), run.end(),
      [](const Tuple& a, const Tuple& b) { return a.seq() < b.seq(); });
  if (run.size() == 1) {
    EmitMove(std::move(run[0]));
  } else {
    EmitBatch(std::move(run));
  }
}

void MergeOperator::OnEpochAligned(uint64_t epoch) {
  (void)epoch;
  if (order_ != Order::kSequence) return;
  // Alignment guarantees every lane delivered its full pre-barrier prefix
  // and everything still to come is post-barrier (hence larger sequence
  // numbers): the whole backlog is safe to release ahead of the barrier.
  FlushAllPending();
}

void MergeOperator::OnInputEos(const Node* sender, int port) {
  (void)port;
  if (order_ != Order::kSequence) return;
  EnsureLanes();
  Lane* lane = LaneForSender(sender);
  if (lane == nullptr) return;
  lane->closed = true;
  ReleaseReady();
}

void MergeOperator::OnAllInputsClosed(AppTime timestamp) {
  // Belt and braces: with every lane closed ReleaseReady has already
  // drained everything, but a direct-driven merge (no lanes) may not have.
  if (order_ == Order::kSequence) FlushAllPending();
  Operator::OnAllInputsClosed(timestamp);
}

void MergeOperator::Reset() {
  Operator::Reset();
  lanes_.clear();
  lanes_built_ = false;
}

}  // namespace flexstream

#include "operators/map_op.h"

#include "tuple/batch_pool.h"
#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {

MapOp::MapOp(std::string name, MapFn fn, double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      fn_(std::move(fn)),
      simulated_cost_micros_(simulated_cost_micros) {
  CHECK(fn_ != nullptr);
}

MapOp::MapOp(std::string name, Int64ColumnMap map, double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      typed_map_(std::move(map)),
      simulated_cost_micros_(simulated_cost_micros) {
  CHECK(typed_map_.fn != nullptr);
  // Row deliveries rewrite the one attribute through the row accessor.
  fn_ = [attr = typed_map_.attr, f = typed_map_.fn](const Tuple& t) {
    Tuple out = t;
    out.at(attr) = Value(f(out.at(attr).AsInt64()));
    return out;
  };
  MarkColumnarNative();
}

void MapOp::Process(const Tuple& tuple, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  EmitMove(fn_(tuple));
}

void MapOp::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(batch.size()));
  }
  for (Tuple& tuple : batch) tuple = fn_(tuple);
  EmitBatch(std::move(batch));
}

void MapOp::ProcessColumnar(ColumnarBatchPtr batch, int port) {
  const Schema& schema = batch->schema();
  if (typed_map_.fn == nullptr || typed_map_.attr >= schema.arity() ||
      schema.type(typed_map_.attr) != Value::Type::kInt64) {
    ProcessBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  const size_t n = batch->size();
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(n));
  }
  int64_t* vals = batch->MutableInts(typed_map_.attr);
  for (size_t i = 0; i < n; ++i) vals[i] = typed_map_.fn(vals[i]);
  EmitColumnar(std::move(batch));
}

}  // namespace flexstream

#include "operators/map_op.h"

#include "util/busy_work.h"
#include "util/logging.h"

namespace flexstream {

MapOp::MapOp(std::string name, MapFn fn, double simulated_cost_micros)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      fn_(std::move(fn)),
      simulated_cost_micros_(simulated_cost_micros) {
  CHECK(fn_ != nullptr);
}

void MapOp::Process(const Tuple& tuple, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) BurnMicros(simulated_cost_micros_);
  EmitMove(fn_(tuple));
}

void MapOp::ProcessBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (simulated_cost_micros_ > 0.0) {
    BurnMicros(simulated_cost_micros_ * static_cast<double>(batch.size()));
  }
  for (Tuple& tuple : batch) tuple = fn_(tuple);
  EmitBatch(std::move(batch));
}

}  // namespace flexstream

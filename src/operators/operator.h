// The push-based operator base class with direct interoperability (DI).
//
// Section 2.4 of the paper: "we let an operator invoke its successors.
// Therefore, an incoming element at an operator triggers a chain reaction,
// resulting in a depth first traversal of the graph." Emit() is that
// invocation — it calls Receive() on every subscriber in the current
// thread. Decoupling only happens where a QueueOp (queue/queue_op.h) is
// wired in; everything between two queues forms a virtual operator
// (Section 3.3) automatically.
//
// Threading contract: a non-queue operator is only ever executed by one
// thread at a time (the thread driving its partition). Queue operators
// override Receive with a thread-safe implementation and are the only legal
// cross-thread boundaries.

#ifndef FLEXSTREAM_OPERATORS_OPERATOR_H_
#define FLEXSTREAM_OPERATORS_OPERATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "graph/node.h"
#include "tuple/tuple.h"
#include "util/run_status.h"

namespace flexstream {

/// Globally enables/disables online statistics collection (cost,
/// inter-arrival, selectivity). Enabled by default; throughput benchmarks
/// that compare raw scheduling overheads switch it off so all modes pay
/// identical bookkeeping (none).
void SetStatsCollectionEnabled(bool enabled);
bool StatsCollectionEnabled();

/// Verdict of a fault hook for one delivery attempt (testing/chaos.h).
enum class FaultAction {
  kProceed,           // process the element normally
  kTransientFailure,  // fail this attempt; the operator retries with backoff
  kPermanentFailure,  // the operator fails permanently (Operator::Fail)
};

class Operator : public Node {
 public:
  /// Transient-failure retry budget per element; when a fault hook keeps
  /// reporting kTransientFailure past this many attempts the failure is
  /// escalated to a permanent one.
  static constexpr int kMaxFaultRetries = 16;

  /// Consulted once per delivery attempt before Process(); `attempt` is 0
  /// on the first try and increments across retries of the same element.
  using FaultHook =
      std::function<FaultAction(const Operator&, const Tuple&, int port,
                                int attempt)>;

  Operator(Kind kind, std::string name, int input_arity);

  /// Delivers `tuple` on input `port` in the calling thread.
  ///
  /// The default implementation:
  ///  * data tuple: records arrival + processing-cost statistics and calls
  ///    Process(). Cost accounting measures *self* time — time spent inside
  ///    downstream Receive() calls triggered by Emit() is attributed to the
  ///    downstream operators, so c(v) is per-operator as Section 5.1.2
  ///    requires even though DI executes whole subgraphs in one call stack.
  ///  * EOS tuple: counts punctuations; once every input edge has delivered
  ///    EOS, calls OnAllInputsClosed() exactly once.
  virtual void Receive(const Tuple& tuple, int port);

  /// Move-aware delivery. The default forwards to the const& overload
  /// (Process never stores its argument, so nothing is copied); operators
  /// that buffer tuples — most importantly QueueOp — override it to move
  /// the payload in instead of copying the values vector.
  /// Note: the base implementation forwards to the base lvalue Receive
  /// without a second virtual dispatch, so a subclass overriding the
  /// lvalue form must override this one as well.
  virtual void Receive(Tuple&& tuple, int port);

  /// True once OnAllInputsClosed has run (all inputs delivered EOS).
  bool closed() const { return closed_; }

  /// Deterministic synthetic work: burns this much CPU per data element
  /// immediately before Process(), independent of the element's content.
  /// Lets harnesses attach a fixed per-element cost to *any* operator
  /// (including pass-through ones like UnionOp) so scheduling experiments
  /// and differential tests exercise realistic interleavings without
  /// data-dependent work. 0 (the default) disables the burn.
  void SetSimulatedCostMicros(double micros);
  double simulated_cost_micros() const { return simulated_cost_micros_; }

  /// Serializes Receive() with an internal mutex. Required only when the
  /// operator is driven by multiple threads *without* a decoupling queue
  /// in between — i.e. source-driven execution where several autonomous
  /// sources push into a shared operator (the Section 6.3 join setup).
  /// The cost of this lock is part of the "synchronization overhead"
  /// trade-off the paper discusses; scheduled execution never needs it
  /// because partitions are single-threaded and queues decouple.
  void SetSerializedReceive(bool enabled);
  bool serialized_receive() const { return receive_mutex_ != nullptr; }

  /// Attaches the engine run's first-failure collector. Fail() reports
  /// here; without one, failures are only logged. Set while the graph is
  /// quiescent (engine Configure/Deconfigure); pass nullptr to detach.
  void SetRunStatus(RunStatus* run_status) { run_status_ = run_status; }
  RunStatus* run_status() const { return run_status_; }

  /// True once Fail() has run: the operator is poisoned and drops all
  /// further data elements (EOS is still honored so the graph can close).
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Installs a per-delivery fault hook (deterministic fault injection —
  /// see testing/chaos.h). Transient verdicts are retried with capped
  /// exponential backoff; permanent verdicts (or an exhausted retry
  /// budget) fail the operator. Install/remove only while quiescent.
  void SetFaultHook(FaultHook hook);
  bool has_fault_hook() const { return fault_hook_ != nullptr; }

  /// Transient-fault retries performed so far (one per repeated attempt).
  int64_t fault_retries() const {
    return fault_retries_.load(std::memory_order_relaxed);
  }

  /// Re-arms EOS bookkeeping for a new run. Subclasses clearing operator
  /// state must call the base implementation.
  void Reset() override;

 protected:
  /// Marks this operator permanently failed: reports `status` to the run's
  /// RunStatus (naming this operator) and poisons the operator so later
  /// data deliveries are dropped. Never aborts the process. Idempotent —
  /// only the first failure is reported.
  void Fail(Status status);
  /// Handles one data element from input `port`. Implementations call
  /// Emit() zero or more times.
  virtual void Process(const Tuple& tuple, int port) = 0;

  /// Called once when all input edges have closed. The default emits an EOS
  /// punctuation downstream; stateful operators flush first, sinks signal
  /// completion. `timestamp` is the max EOS timestamp observed.
  virtual void OnAllInputsClosed(AppTime timestamp);

  /// Direct interoperability: pushes `tuple` to every subscriber, in
  /// subscription order, within the current thread.
  void Emit(const Tuple& tuple);

  /// Like Emit, but surrenders ownership of `tuple`: the last subscriber
  /// receives it by rvalue, so a downstream QueueOp moves the values
  /// vector instead of copying it. Earlier subscribers (fan-out) still get
  /// copies — they each need their own payload. Taking an rvalue reference
  /// (not by value) spares the hot drain loops one move per element.
  void EmitMove(Tuple&& tuple);

  /// Pushes `tuple` to the single subscriber at `output_index` (the order
  /// outputs were connected in). Used by routing operators that partition
  /// their output stream instead of broadcasting it.
  void EmitTo(size_t output_index, const Tuple& tuple);

  /// Emits the EOS punctuation downstream (used by OnAllInputsClosed
  /// overrides after flushing).
  void EmitEos(AppTime timestamp);

 private:
  void ReceiveLocked(const Tuple& tuple, int port);
  /// Runs the fault hook's retry loop for one element. Returns true when
  /// the element should be processed, false when it must be dropped (the
  /// operator failed permanently).
  bool PassesFaultHook(const Tuple& tuple, int port);

  size_t eos_received_ = 0;
  bool closed_ = false;
  AppTime max_eos_timestamp_ = 0;
  double simulated_cost_micros_ = 0.0;
  std::unique_ptr<std::mutex> receive_mutex_;

  // Failure state: failed_ is written by the operator's own executing
  // thread but read by engine/test threads, hence atomic; the Status
  // payload lives in the shared RunStatus.
  std::atomic<bool> failed_{false};
  RunStatus* run_status_ = nullptr;
  std::shared_ptr<const FaultHook> fault_hook_;
  std::atomic<int64_t> fault_retries_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_OPERATOR_H_

// The push-based operator base class with direct interoperability (DI).
//
// Section 2.4 of the paper: "we let an operator invoke its successors.
// Therefore, an incoming element at an operator triggers a chain reaction,
// resulting in a depth first traversal of the graph." Emit() is that
// invocation — it calls Receive() on every subscriber in the current
// thread. Decoupling only happens where a QueueOp (queue/queue_op.h) is
// wired in; everything between two queues forms a virtual operator
// (Section 3.3) automatically.
//
// Threading contract: a non-queue operator is only ever executed by one
// thread at a time (the thread driving its partition). Queue operators
// override Receive with a thread-safe implementation and are the only legal
// cross-thread boundaries.

#ifndef FLEXSTREAM_OPERATORS_OPERATOR_H_
#define FLEXSTREAM_OPERATORS_OPERATOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "graph/node.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"
#include "util/run_status.h"

namespace flexstream {

class ColumnarBatch;
using ColumnarBatchPtr = std::unique_ptr<ColumnarBatch>;

/// Globally enables/disables online statistics collection (cost,
/// inter-arrival, selectivity). Enabled by default; throughput benchmarks
/// that compare raw scheduling overheads switch it off so all modes pay
/// identical bookkeeping (none).
void SetStatsCollectionEnabled(bool enabled);
bool StatsCollectionEnabled();

/// Verdict of a fault hook for one delivery attempt (testing/chaos.h).
enum class FaultAction {
  kProceed,           // process the element normally
  kTransientFailure,  // fail this attempt; the operator retries with backoff
  kPermanentFailure,  // the operator fails permanently (Operator::Fail)
};

/// Shape of the capped exponential backoff between transient-fault
/// retries: attempt n sleeps min(cap, base * 2^n) microseconds, shortened
/// by a uniformly random fraction in [0, jitter]. The jitter is seeded per
/// operator (seed ^ hash(name)), so parallel partitions retrying against a
/// shared downstream desynchronize deterministically instead of
/// thundering-herding it in lockstep.
struct RetryBackoffOptions {
  double base_micros = 1.0;
  double cap_micros = 256.0;
  /// Fraction of the computed sleep that may be randomly shaved off
  /// (0 = fully synchronized legacy behavior, 1 = anywhere down to 0).
  double jitter = 0.5;
  uint64_t seed = 0;
};

class Operator : public Node {
 public:
  /// Transient-failure retry budget per element; when a fault hook keeps
  /// reporting kTransientFailure past this many attempts the failure is
  /// escalated to a permanent one.
  static constexpr int kMaxFaultRetries = 16;

  /// Consulted once per delivery attempt before Process(); `attempt` is 0
  /// on the first try and increments across retries of the same element.
  using FaultHook =
      std::function<FaultAction(const Operator&, const Tuple&, int port,
                                int attempt)>;

  Operator(Kind kind, std::string name, int input_arity);

  /// Delivers `tuple` on input `port` in the calling thread.
  ///
  /// The default implementation:
  ///  * data tuple: records arrival + processing-cost statistics and calls
  ///    Process(). Cost accounting measures *self* time — time spent inside
  ///    downstream Receive() calls triggered by Emit() is attributed to the
  ///    downstream operators, so c(v) is per-operator as Section 5.1.2
  ///    requires even though DI executes whole subgraphs in one call stack.
  ///  * EOS tuple: counts punctuations; once every input edge has delivered
  ///    EOS, calls OnAllInputsClosed() exactly once.
  virtual void Receive(const Tuple& tuple, int port);

  /// Move-aware delivery. The default forwards to the const& overload
  /// (Process never stores its argument, so nothing is copied); operators
  /// that buffer tuples — most importantly QueueOp — override it to move
  /// the payload in instead of copying the values vector.
  /// Note: the base implementation forwards to the base lvalue Receive
  /// without a second virtual dispatch, so a subclass overriding the
  /// lvalue form must override this one as well.
  virtual void Receive(Tuple&& tuple, int port);

  /// Batch delivery (DESIGN.md §11): semantically identical to calling
  /// Receive() once per element, in order, on `port`, but pays the virtual
  /// dispatch, serialization lock and statistics bookkeeping once per
  /// batch. Batches carry data tuples only — punctuations (EOS, barriers)
  /// always travel through Receive() — so fan-in close accounting and
  /// barrier alignment never see a batch. When per-delivery machinery is
  /// engaged (a fault hook is installed or barrier alignment is armed) the
  /// base implementation unbundles the batch onto the exact per-tuple
  /// path, so chaos and checkpoint semantics are preserved bit-for-bit.
  virtual void ReceiveBatch(TupleBatch&& batch, int port);

  /// Columnar delivery (DESIGN.md §17): semantically identical to calling
  /// ReceiveBatch on the materialized rows — and that is literally what the
  /// base implementation does whenever the operator has no columnar kernel
  /// (MarkColumnarNative not set) or any per-delivery machinery is engaged
  /// (fault hook, armed barrier alignment, seq stamping): the batch
  /// materializes to a TupleBatch, recycles its column storage, and takes
  /// the existing row-wise path, which applies every gate exactly.
  /// Columnar-native operators instead get the whole typed batch via
  /// ProcessColumnar after the batch-level gates (failure poisoning,
  /// stats, simulated cost/blocking) have been applied once.
  virtual void ReceiveColumnar(ColumnarBatchPtr batch, int port);

  /// True when this operator has a columnar kernel (see MarkColumnarNative).
  bool columnar_native() const { return columnar_native_; }

  /// Graph-build-time schema propagation: given one schema per input edge
  /// (null where unknown), returns this operator's output schema, or null
  /// when unknown or type-changing. Schema-preserving operators (Selection,
  /// queues, Union over identical inputs) override this; the engine's
  /// Configure pass walks the topology with it and records the result via
  /// SetStaticOutputSchema.
  virtual SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const;

  /// The statically propagated output schema (null when unknown). Purely
  /// declarative: kernels still verify each batch's own schema at delivery
  /// time, so a wrong declaration can cost speed, never correctness.
  void SetStaticOutputSchema(SchemaPtr schema) {
    static_output_schema_ = std::move(schema);
  }
  const SchemaPtr& static_output_schema() const {
    return static_output_schema_;
  }

  /// True once OnAllInputsClosed has run (all inputs delivered EOS).
  bool closed() const { return closed_; }

  /// Deterministic synthetic work: burns this much CPU per data element
  /// immediately before Process(), independent of the element's content.
  /// Lets harnesses attach a fixed per-element cost to *any* operator
  /// (including pass-through ones like UnionOp) so scheduling experiments
  /// and differential tests exercise realistic interleavings without
  /// data-dependent work. 0 (the default) disables the burn.
  void SetSimulatedCostMicros(double micros);
  double simulated_cost_micros() const { return simulated_cost_micros_; }

  /// Deterministic synthetic *blocking*: sleeps this long per data element
  /// immediately before Process(), modeling an operator bound by waiting
  /// (I/O, remote lookups) rather than CPU. Unlike the busy burn above,
  /// sleeps overlap across threads, so sharding a blocking operator scales
  /// even on a single core. 0 (the default) disables it.
  void SetSimulatedBlockingMicros(double micros);
  double simulated_blocking_micros() const {
    return simulated_blocking_micros_;
  }

  /// Constructs a fresh, state-empty copy of this operator under a new
  /// name: same logical parameters (predicate, window, key attributes...),
  /// none of the run state, detached from any graph. Returns nullptr when
  /// the operator does not support cloning (the default). ShardOperator
  /// (src/api/shard.h) uses this to make replicas.
  virtual std::unique_ptr<Operator> CloneFresh(std::string name) const;

  // -- Sharding support (src/api/shard.h) --------------------------------

  /// When enabled, every emitted data tuple is stamped with the arrival
  /// sequence number of the input element currently being processed, and
  /// batch deliveries unbundle onto the per-tuple path (so the stamp is
  /// exact per element). Shard replicas under an ordered merge enable
  /// this; it propagates the split-point sequence through one-in/N-out
  /// operators so the Merge can restore global arrival order.
  void SetStampEmitSeq(bool enabled) { stamp_emit_seq_ = enabled; }
  bool stamp_emit_seq() const { return stamp_emit_seq_; }

  /// Requests that HMTS placement give this operator its own partition
  /// (its own thread) instead of flood-filling it into the surrounding
  /// component. Shard replicas set this so the shards actually spread.
  void SetPlacementSolo(bool solo) { placement_solo_ = solo; }
  bool placement_solo() const { return placement_solo_; }

  /// Tags this operator as replica `index` of the sharded operator named
  /// `group` (stats reporting surfaces per-replica rows and an imbalance
  /// summary). An empty group means "not a shard replica".
  void SetShardInfo(std::string group, int index) {
    shard_group_ = std::move(group);
    shard_index_ = index;
  }
  const std::string& shard_group() const { return shard_group_; }
  int shard_index() const { return shard_index_; }

  /// Serializes Receive() with an internal mutex. Required only when the
  /// operator is driven by multiple threads *without* a decoupling queue
  /// in between — i.e. source-driven execution where several autonomous
  /// sources push into a shared operator (the Section 6.3 join setup).
  /// The cost of this lock is part of the "synchronization overhead"
  /// trade-off the paper discusses; scheduled execution never needs it
  /// because partitions are single-threaded and queues decouple.
  void SetSerializedReceive(bool enabled);
  bool serialized_receive() const { return receive_mutex_ != nullptr; }

  /// Attaches the engine run's first-failure collector. Fail() reports
  /// here; without one, failures are only logged. Set while the graph is
  /// quiescent (engine Configure/Deconfigure); pass nullptr to detach.
  void SetRunStatus(RunStatus* run_status) { run_status_ = run_status; }
  RunStatus* run_status() const { return run_status_; }

  /// True once Fail() has run: the operator is poisoned and drops all
  /// further data elements (EOS is still honored so the graph can close).
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Installs a per-delivery fault hook (deterministic fault injection —
  /// see testing/chaos.h). Transient verdicts are retried with capped
  /// exponential backoff; permanent verdicts (or an exhausted retry
  /// budget) fail the operator. Install/remove only while quiescent.
  void SetFaultHook(FaultHook hook);
  bool has_fault_hook() const { return fault_hook_ != nullptr; }

  /// Transient-fault retries performed so far (one per repeated attempt).
  int64_t fault_retries() const {
    return fault_retries_.load(std::memory_order_relaxed);
  }

  /// Configures the transient-retry backoff (see RetryBackoffOptions).
  /// Set while quiescent.
  void SetRetryBackoff(const RetryBackoffOptions& options);
  const RetryBackoffOptions& retry_backoff() const { return retry_backoff_; }

  // -- Epoch barriers (checkpoint/recovery, src/recovery/) ---------------
  //
  // Barrier tuples (Tuple::EpochBarrier) flow through the graph like data
  // but are intercepted by the base Receive path: the operator blocks each
  // input channel that has delivered the epoch-k barrier (buffering any
  // further arrivals from it) until every open channel has, then — with its
  // state reflecting exactly epochs 1..k — invokes the epoch callback
  // (which snapshots StatefulOperators), forwards one barrier downstream,
  // and releases the buffered backlog. Single-input operators align
  // instantly and never buffer. Channels are identified by the *sender*
  // (thread-local, set by every Emit/drain path), not the port, because
  // variadic operators receive all producers on port 0.

  /// Invoked in the operator's own thread at each barrier alignment, after
  /// state reflects the closed epoch and before downstream forwarding; the
  /// sentinel kEpochClosed is delivered once when all inputs close. Install
  /// while quiescent; nullptr detaches.
  using EpochCallback = std::function<void(uint64_t epoch)>;
  static constexpr uint64_t kEpochClosed = ~0ull;
  void SetEpochCallback(EpochCallback callback);

  /// Last epoch this operator aligned (0 before the first barrier).
  /// Readable from any thread (diagnostics).
  uint64_t aligned_epoch() const {
    return aligned_epoch_.load(std::memory_order_acquire);
  }

  /// After a recovery restore (post-Reset): future barriers continue from
  /// `epoch` + 1 instead of 1.
  void SetRecoveredEpoch(uint64_t epoch);

  /// Re-arms EOS bookkeeping for a new run. Subclasses clearing operator
  /// state must call the base implementation.
  void Reset() override;

 protected:
  /// Marks this operator permanently failed: reports `status` to the run's
  /// RunStatus (naming this operator) and poisons the operator so later
  /// data deliveries are dropped. Never aborts the process. Idempotent —
  /// only the first failure is reported.
  void Fail(Status status);
  /// Handles one data element from input `port`. Implementations call
  /// Emit() zero or more times.
  virtual void Process(const Tuple& tuple, int port) = 0;

  /// Handles one batch of data elements — all Receive-path gates (failure
  /// poisoning, stats, simulated cost) have already been applied for the
  /// whole batch. Batch-native operators (Selection, Projection, MapOp,
  /// UnionOp, the counting/collecting sinks) override this to transform
  /// the batch in place and forward it with EmitBatch(); the default
  /// unbundles into per-tuple Process() calls, so batches simply dissolve
  /// at the first operator that hasn't opted in.
  virtual void ProcessBatch(TupleBatch&& batch, int port);

  /// Handles one columnar batch — only ever invoked on columnar-native
  /// operators, with all batch-level gates already applied. Kernels verify
  /// the batch's schema fits their configuration and otherwise materialize
  /// and delegate to ProcessBatch (the default does exactly that).
  virtual void ProcessColumnar(ColumnarBatchPtr batch, int port);

  /// Declares that this operator implements ProcessColumnar. Kernels call
  /// this from their constructor when their configuration is columnar-
  /// capable; without it, ReceiveColumnar materializes at the door.
  void MarkColumnarNative(bool native = true) { columnar_native_ = native; }

  /// Called once when all input edges have closed. The default emits an EOS
  /// punctuation downstream; stateful operators flush first, sinks signal
  /// completion. `timestamp` is the max EOS timestamp observed.
  virtual void OnAllInputsClosed(AppTime timestamp);

  /// Called at each barrier alignment, after state reflects the closed
  /// epoch (and after aligned_epoch() advanced) but *before* the epoch
  /// callback runs and the barrier is forwarded downstream. Emissions made
  /// here still belong to the closing epoch. The ordered Merge flushes its
  /// pending lanes here — at alignment every channel has delivered its
  /// full pre-barrier prefix, so the flush is safe and leaves the merge
  /// stateless at every snapshot point. Default: no-op.
  virtual void OnEpochAligned(uint64_t epoch);

  /// Called at the top of the EOS delivery path, once per input channel
  /// that closes, before fan-in close accounting. `sender` is the
  /// delivering upstream node (nullptr when driven from outside a graph).
  /// The ordered Merge marks the sender's lane closed so it stops gating
  /// releases. Default: no-op.
  virtual void OnInputEos(const Node* sender, int port);

  /// The upstream node whose Emit/drain loop is making the current
  /// delivery (see SetDeliverySender). Valid inside Process/ProcessBatch.
  static const Node* CurrentDeliverySender() { return tl_delivery_sender_; }

  /// Direct interoperability: pushes `tuple` to every subscriber, in
  /// subscription order, within the current thread.
  void Emit(const Tuple& tuple);

  /// Like Emit, but surrenders ownership of `tuple`: the last subscriber
  /// receives it by rvalue, so a downstream QueueOp moves the values
  /// vector instead of copying it. Earlier subscribers (fan-out) still get
  /// copies — they each need their own payload. Taking an rvalue reference
  /// (not by value) spares the hot drain loops one move per element.
  void EmitMove(Tuple&& tuple);

  /// Batch analogue of EmitMove: pushes `batch` to every subscriber in
  /// subscription order. The last subscriber adopts the storage; earlier
  /// (fan-out) subscribers receive copies.
  void EmitBatch(TupleBatch&& batch);

  /// Columnar analogue of EmitBatch: the last subscriber adopts the boxed
  /// batch; earlier (fan-out) subscribers receive pool-allocated copies.
  void EmitColumnar(ColumnarBatchPtr batch);

  /// Pushes `tuple` to the single subscriber at `output_index` (the order
  /// outputs were connected in). Used by routing operators that partition
  /// their output stream instead of broadcasting it.
  void EmitTo(size_t output_index, const Tuple& tuple);

  /// Move-aware EmitTo: the single subscriber adopts the payload.
  void EmitTo(size_t output_index, Tuple&& tuple);

  /// Batch analogue of EmitTo: the subscriber at `output_index` adopts the
  /// whole run. Used by the Router's batch-native scatter to deliver each
  /// per-replica run as one ReceiveBatch call.
  void EmitBatchTo(size_t output_index, TupleBatch&& batch);

  /// Emits the EOS punctuation downstream (used by OnAllInputsClosed
  /// overrides after flushing).
  void EmitEos(AppTime timestamp);

  /// Forwards an epoch barrier to every subscriber (alignment and QueueOp
  /// pass-through).
  void EmitBarrier(const Tuple& barrier);

  /// Declares `sender` as the origin of the Receive() calls this thread is
  /// about to make — barrier alignment keys channels on it. Every Emit*
  /// path sets it automatically; QueueOp's drain loops call it directly.
  /// Inline (a single thread-local store): it sits on per-tuple drain
  /// loops, where an out-of-line call is measurable.
  static void SetDeliverySender(const Node* sender) {
    tl_delivery_sender_ = sender;
  }

 private:
  // One input channel = one upstream producer. `port` is the port its
  // deliveries arrive on (0 for variadic operators regardless of producer).
  struct EpochChannel {
    const Node* source = nullptr;
    int port = 0;
    bool blocked = false;  // barrier for the next epoch seen, holding input
    bool closed = false;   // EOS consumed — aligned at infinity
    std::deque<Tuple> backlog;  // arrivals while blocked, in order
  };
  struct EpochState {
    uint64_t aligned_epoch = 0;
    bool releasing = false;  // re-entrancy guard for backlog release
    std::vector<EpochChannel> channels;  // from Node::inputs()
  };

  /// The sender of the Receive() calls the current thread is making; see
  /// SetDeliverySender. Read only by barrier channel lookup.
  static thread_local const Node* tl_delivery_sender_;

  void ReceiveLocked(const Tuple& tuple, int port);
  /// Batch delivery under the (optional) serialization lock: applies the
  /// Receive-path gates once for the whole batch, or unbundles it when
  /// per-delivery machinery (fault hook, barrier alignment) is engaged.
  void ReceiveBatchLocked(TupleBatch&& batch, int port);
  /// Columnar delivery under the (optional) serialization lock: applies
  /// the batch-level gates once, or materializes onto the row-wise path
  /// when the operator lacks a kernel or per-delivery machinery is armed.
  void ReceiveColumnarLocked(ColumnarBatchPtr batch, int port);
  /// The pre-barrier delivery path (stats, fault hook, Process/EOS).
  void DeliverLocked(const Tuple& tuple, int port);
  /// Barrier-aware routing. Returns true when the delivery was consumed
  /// (barrier handled or arrival buffered behind one). Kept out of line so
  /// the epoch machinery never bloats ReceiveLocked out of the inliner's
  /// budget on the per-tuple delivery path of un-armed runs.
  __attribute__((noinline)) bool HandleEpochDelivery(const Tuple& tuple,
                                                     int port);
  void InitEpochState(uint64_t aligned_epoch);
  EpochChannel* ChannelForCurrentSender(int port);
  /// Aligns as many epochs as the blocked/closed channel pattern allows,
  /// releasing backlogs between alignments.
  void AlignAndRelease();
  /// Runs the fault hook's retry loop for one element. Returns true when
  /// the element should be processed, false when it must be dropped (the
  /// operator failed permanently).
  bool PassesFaultHook(const Tuple& tuple, int port);

  size_t eos_received_ = 0;
  bool closed_ = false;
  bool columnar_native_ = false;
  SchemaPtr static_output_schema_;
  AppTime max_eos_timestamp_ = 0;
  double simulated_cost_micros_ = 0.0;
  double simulated_blocking_micros_ = 0.0;
  std::unique_ptr<std::mutex> receive_mutex_;

  // -- Sharding state (src/api/shard.h) ----------------------------------
  // stamp_emit_seq_/current_input_seq_ implement split-point sequence
  // propagation: DeliverLocked records the input element's stamp, the
  // Emit family copies it onto every output element. Only the operator's
  // executing thread touches current_input_seq_.
  bool stamp_emit_seq_ = false;
  uint64_t current_input_seq_ = 0;
  bool placement_solo_ = false;
  std::string shard_group_;
  int shard_index_ = -1;

  // Failure state: failed_ is written by the operator's own executing
  // thread but read by engine/test threads, hence atomic; the Status
  // payload lives in the shared RunStatus.
  std::atomic<bool> failed_{false};
  RunStatus* run_status_ = nullptr;
  std::shared_ptr<const FaultHook> fault_hook_;
  std::atomic<int64_t> fault_retries_{0};
  RetryBackoffOptions retry_backoff_;
  std::unique_ptr<std::mt19937_64> retry_rng_;  // lazily seeded on first use

  // Epoch machinery. epoch_state_ is touched only by the operator's
  // executing thread (allocated lazily at the first barrier);
  // aligned_epoch_ mirrors its counter for cross-thread reads. The
  // callback is shared_ptr-guarded like the fault hook.
  std::unique_ptr<EpochState> epoch_state_;
  std::shared_ptr<const EpochCallback> epoch_callback_;
  std::atomic<uint64_t> aligned_epoch_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_OPERATORS_OPERATOR_H_

#include "operators/window.h"

#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

SlidingWindow::SlidingWindow(AppTime duration_micros)
    : duration_micros_(duration_micros) {
  CHECK_GE(duration_micros, 0);
}

void SlidingWindow::Add(const Tuple& tuple) {
  DCHECK(tuple.is_data());
  DCHECK(contents_.empty() ||
         contents_.back().timestamp() <= tuple.timestamp())
      << "window input must be timestamp-monotone";
  contents_.push_back(tuple);
}

void SlidingWindow::ExpireBefore(
    AppTime watermark, const std::function<void(const Tuple&)>& on_expired) {
  while (!contents_.empty() && contents_.front().timestamp() < watermark) {
    if (on_expired) on_expired(contents_.front());
    contents_.pop_front();
  }
}

void EncodeWindow(const SlidingWindow& window, std::string* out) {
  BinaryWriter w(out);
  w.I64(window.duration_micros());
  w.U64(window.size());
  for (const Tuple& tuple : window.contents()) {
    w.Tuple(tuple);
  }
}

Result<SlidingWindow> DecodeWindow(BinaryReader* reader) {
  int64_t duration = 0;
  uint64_t count = 0;
  Status s = reader->I64(&duration);
  if (s.ok()) s = reader->U64(&count);
  if (!s.ok()) return s;
  if (duration < 0) {
    return Status::InvalidArgument("window duration negative");
  }
  SlidingWindow window(duration);
  for (uint64_t i = 0; i < count; ++i) {
    Tuple tuple = Tuple::OfInt(0, 0);
    s = reader->Tuple(&tuple);
    if (!s.ok()) return s;
    if (!tuple.is_data()) {
      return Status::InvalidArgument("window contents must be data tuples");
    }
    window.Add(tuple);
  }
  return window;
}

}  // namespace flexstream

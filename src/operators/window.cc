#include "operators/window.h"

#include "util/logging.h"

namespace flexstream {

SlidingWindow::SlidingWindow(AppTime duration_micros)
    : duration_micros_(duration_micros) {
  CHECK_GE(duration_micros, 0);
}

void SlidingWindow::Add(const Tuple& tuple) {
  DCHECK(tuple.is_data());
  DCHECK(contents_.empty() ||
         contents_.back().timestamp() <= tuple.timestamp())
      << "window input must be timestamp-monotone";
  contents_.push_back(tuple);
}

void SlidingWindow::ExpireBefore(
    AppTime watermark, const std::function<void(const Tuple&)>& on_expired) {
  while (!contents_.empty() && contents_.front().timestamp() < watermark) {
    if (on_expired) on_expired(contents_.front());
    contents_.pop_front();
  }
}

}  // namespace flexstream

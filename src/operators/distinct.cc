#include "operators/distinct.h"

#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"

namespace flexstream {

size_t Distinct::KeyHash::operator()(const std::vector<Value>& key) const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

Distinct::Distinct(std::string name, AppTime window_micros,
                   std::vector<size_t> key_attrs)
    : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1),
      key_attrs_(std::move(key_attrs)),
      window_(window_micros) {}

void Distinct::Reset() {
  Operator::Reset();
  window_.Clear();
  live_.clear();
}

std::vector<Value> Distinct::KeyOf(const Tuple& tuple) const {
  if (key_attrs_.empty()) return tuple.values();
  std::vector<Value> key;
  key.reserve(key_attrs_.size());
  for (size_t a : key_attrs_) key.push_back(tuple.at(a));
  return key;
}

void Distinct::Process(const Tuple& tuple, int port) {
  (void)port;
  window_.ExpireBefore(
      window_.WatermarkFor(tuple.timestamp()), [&](const Tuple& expired) {
        auto it = live_.find(KeyOf(expired));
        DCHECK(it != live_.end());
        if (--it->second == 0) live_.erase(it);
      });
  std::vector<Value> key = KeyOf(tuple);
  auto it = live_.try_emplace(std::move(key), 0).first;
  const bool first_in_window = it->second == 0;
  ++it->second;
  window_.Add(tuple);
  if (first_in_window) Emit(tuple);
}


OperatorSnapshot Distinct::SnapshotState() const {
  OperatorSnapshot snap;
  snap.state = std::make_pair(window_, live_);
  snap.element_count = static_cast<int64_t>(window_.size());
  return snap;
}

void Distinct::RestoreState(const OperatorSnapshot& snapshot) {
  using State =
      std::pair<SlidingWindow,
                std::unordered_map<std::vector<Value>, int64_t, KeyHash>>;
  const auto& state = std::any_cast<const State&>(snapshot.state);
  window_ = state.first;
  live_ = state.second;
}

Status Distinct::EncodeState(const OperatorSnapshot& snapshot,
                             std::string* out) const {
  using State =
      std::pair<SlidingWindow,
                std::unordered_map<std::vector<Value>, int64_t, KeyHash>>;
  const State* state = nullptr;
  if (snapshot.state.has_value()) {
    state = std::any_cast<State>(&snapshot.state);
    if (state == nullptr) {
      return Status::InvalidArgument("snapshot is not a distinct snapshot");
    }
  }
  // The live-key occurrence counts are an exact function of the window
  // contents (KeyOf over every buffered tuple), so only the window is
  // persisted; DecodeState recounts.
  if (state == nullptr) {
    EncodeWindow(SlidingWindow(window_.duration_micros()), out);
  } else {
    EncodeWindow(state->first, out);
  }
  return Status::Ok();
}

Result<OperatorSnapshot> Distinct::DecodeState(std::string_view bytes) const {
  BinaryReader r(bytes);
  Result<SlidingWindow> window = DecodeWindow(&r);
  if (!window.ok()) return std::move(window).status();
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in distinct snapshot");
  }
  std::unordered_map<std::vector<Value>, int64_t, KeyHash> live;
  for (const Tuple& tuple : window->contents()) {
    for (size_t a : key_attrs_) {
      if (a >= tuple.arity()) {
        return Status::InvalidArgument("malformed distinct snapshot tuple");
      }
    }
    ++live[KeyOf(tuple)];
  }
  OperatorSnapshot snap;
  snap.element_count = static_cast<int64_t>(window->size());
  snap.state = std::make_pair(std::move(window).value(), std::move(live));
  return snap;
}
}  // namespace flexstream

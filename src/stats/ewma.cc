#include "stats/ewma.h"

#include "util/logging.h"

namespace flexstream {

Ewma::Ewma(double alpha) : alpha_(alpha) {
  DCHECK_GT(alpha, 0.0);
  DCHECK_LE(alpha, 1.0);
}

void Ewma::Add(double sample) {
  if (count_ == 0) {
    value_ = sample;
  } else {
    value_ += alpha_ * (sample - value_);
  }
  sum_ += sample;
  ++count_;
}

double Ewma::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void Ewma::Reset() {
  value_ = 0.0;
  sum_ = 0.0;
  count_ = 0;
}

}  // namespace flexstream

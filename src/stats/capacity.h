// Capacity model of Section 5.1.2.
//
// For an operator v: c(v) = mean processing cost per element, d(v) = mean
// inter-arrival time of its inputs. For a partition (virtual operator) P:
//
//   c(P)   = sum_{v in P} c(v)
//   d(P)   = 1 / sum_{v in P} 1/d(v)
//   cap(P) = d(P) - c(P)
//
// cap(P) >= 0 means the VO can keep pace with its input rates; negative
// capacity means it stalls incoming elements.
//
// PropagateRates derives d(v) for every node of a graph from the sources'
// rates and the operators' selectivities — the model-based alternative to
// runtime measurement the paper mentions (Section 5.1.3, citing [5]).

#ifndef FLEXSTREAM_STATS_CAPACITY_H_
#define FLEXSTREAM_STATS_CAPACITY_H_

#include <vector>

#include "graph/node.h"
#include "util/status.h"

namespace flexstream {

class QueryGraph;

/// Accumulates (c, 1/d) sums for a growing partition; O(1) merge and query.
class CapacityAccumulator {
 public:
  CapacityAccumulator() = default;

  /// Adds one operator's (c(v), d(v)).
  void AddNode(double cost_micros, double interarrival_micros);

  /// Merges another accumulator (set union of disjoint node sets).
  void Merge(const CapacityAccumulator& other);

  double CombinedCost() const { return sum_cost_; }

  /// d(P); +infinity when no node has finite inter-arrival time.
  double CombinedInterarrival() const;

  /// cap(P) = d(P) - c(P).
  double Capacity() const { return CombinedInterarrival() - sum_cost_; }

  size_t size() const { return count_; }

 private:
  double sum_cost_ = 0.0;
  double sum_inverse_interarrival_ = 0.0;
  size_t count_ = 0;
};

/// cap over an explicit node set, reading each node's c(v)/d(v) metadata.
double CapacityOfNodes(const std::vector<Node*>& nodes);

/// Computes d(v) for every node reachable from the sources and stores it
/// as the node's inter-arrival override.
///
/// Model: a source's output rate is 1/d(source) (its inter-arrival
/// override must be set by the caller); an operator's input rate is the
/// sum of its producers' output rates; its output rate is input rate times
/// its selectivity. Fails if some source lacks a d override or the graph
/// is cyclic.
Status PropagateRates(QueryGraph* graph);

}  // namespace flexstream

#endif  // FLEXSTREAM_STATS_CAPACITY_H_

#include "stats/capacity.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "graph/query_graph.h"
#include "util/logging.h"

namespace flexstream {

void CapacityAccumulator::AddNode(double cost_micros,
                                  double interarrival_micros) {
  sum_cost_ += cost_micros;
  if (std::isfinite(interarrival_micros) && interarrival_micros > 0.0) {
    sum_inverse_interarrival_ += 1.0 / interarrival_micros;
  }
  ++count_;
}

void CapacityAccumulator::Merge(const CapacityAccumulator& other) {
  sum_cost_ += other.sum_cost_;
  sum_inverse_interarrival_ += other.sum_inverse_interarrival_;
  count_ += other.count_;
}

double CapacityAccumulator::CombinedInterarrival() const {
  if (sum_inverse_interarrival_ <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / sum_inverse_interarrival_;
}

double CapacityOfNodes(const std::vector<Node*>& nodes) {
  CapacityAccumulator acc;
  for (const Node* n : nodes) {
    acc.AddNode(n->CostMicros(), n->InterarrivalMicros());
  }
  return acc.Capacity();
}

Status PropagateRates(QueryGraph* graph) {
  Result<std::vector<Node*>> order = graph->TopologicalOrder();
  if (!order.ok()) return order.status();
  // Rates in elements per microsecond.
  std::unordered_map<const Node*, double> out_rate;
  for (Node* node : *order) {
    double in_rate = 0.0;
    if (node->fan_in() == 0) {
      if (!node->has_interarrival_override() &&
          !std::isfinite(node->InterarrivalMicros())) {
        return Status::FailedPrecondition(
            "source without inter-arrival metadata: " + node->DebugString());
      }
      const double d = node->InterarrivalMicros();
      in_rate = d > 0.0 ? 1.0 / d : 0.0;
    } else {
      for (const auto& edge : node->inputs()) {
        in_rate += out_rate[edge.source];
      }
      node->SetInterarrivalMicros(
          in_rate > 0.0 ? 1.0 / in_rate
                        : std::numeric_limits<double>::infinity());
    }
    out_rate[node] = in_rate * node->Selectivity();
  }
  return Status::Ok();
}

}  // namespace flexstream

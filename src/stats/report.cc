#include "stats/report.h"

#include <cmath>
#include <sstream>

#include "graph/query_graph.h"
#include "queue/queue_op.h"

namespace flexstream {

Table BuildStatsTable(const QueryGraph& graph) {
  Table t({"node", "kind", "arrivals", "processed", "emitted", "cost_us",
           "selectivity", "interarrival_us", "busy_ms", "queue_now",
           "queue_peak", "dropped", "retries"});
  for (const Node* node : graph.nodes()) {
    const OpStats& s = node->stats();
    const double d = s.InterarrivalMicros();
    std::string queue_now = "-";
    std::string queue_peak = "-";
    std::string dropped = "-";
    std::string retries = "-";
    if (const QueueOp* q = dynamic_cast<const QueueOp*>(node)) {
      queue_now = Table::Int(static_cast<int64_t>(q->Size()));
      queue_peak = Table::Int(static_cast<int64_t>(q->PeakSize()));
      if (q->bounded()) dropped = Table::Int(q->dropped());
    }
    if (const Operator* op = dynamic_cast<const Operator*>(node)) {
      if (op->fault_retries() > 0) retries = Table::Int(op->fault_retries());
    }
    t.AddRow({node->name(), NodeKindToString(node->kind()),
              Table::Int(s.arrivals()), Table::Int(s.processed()),
              Table::Int(s.emitted()), Table::Num(s.CostMicros(), 2),
              Table::Num(s.Selectivity(), 3),
              std::isfinite(d) ? Table::Num(d, 1) : std::string("inf"),
              Table::Num(s.BusyMicros() / 1000.0, 1), queue_now,
              queue_peak, dropped, retries});
  }
  return t;
}

Table BuildResilienceTable(const QueryGraph& graph) {
  Table t({"queue", "policy", "max_elements", "dropped_newest",
           "dropped_oldest", "block_waits", "block_timeouts"});
  for (const Node* node : graph.nodes()) {
    const QueueOp* q = dynamic_cast<const QueueOp*>(node);
    if (q == nullptr || !q->bounded()) continue;
    t.AddRow({q->name(), OverloadPolicyToString(q->overload_policy()),
              Table::Int(static_cast<int64_t>(q->max_elements())),
              Table::Int(q->dropped_newest()), Table::Int(q->dropped_oldest()),
              Table::Int(q->block_waits()), Table::Int(q->block_timeouts())});
  }
  return t;
}

std::string StatsReport(const QueryGraph& graph) {
  std::ostringstream os;
  BuildStatsTable(graph).Print(os);
  return os.str();
}

}  // namespace flexstream

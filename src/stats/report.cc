#include "stats/report.h"

#include <cmath>
#include <sstream>

#include "graph/query_graph.h"
#include "queue/queue_op.h"
#include "recovery/recovery_manager.h"

namespace flexstream {

Table BuildStatsTable(const QueryGraph& graph) {
  Table t({"node", "kind", "arrivals", "processed", "emitted", "cost_us",
           "selectivity", "interarrival_us", "busy_ms", "queue_now",
           "queue_peak", "dropped", "retries"});
  for (const Node* node : graph.nodes()) {
    const OpStats& s = node->stats();
    const double d = s.InterarrivalMicros();
    std::string queue_now = "-";
    std::string queue_peak = "-";
    std::string dropped = "-";
    std::string retries = "-";
    if (const QueueOp* q = dynamic_cast<const QueueOp*>(node)) {
      queue_now = Table::Int(static_cast<int64_t>(q->Size()));
      queue_peak = Table::Int(static_cast<int64_t>(q->PeakSize()));
      if (q->bounded()) dropped = Table::Int(q->dropped());
    }
    if (const Operator* op = dynamic_cast<const Operator*>(node)) {
      if (op->fault_retries() > 0) retries = Table::Int(op->fault_retries());
    }
    t.AddRow({node->name(), NodeKindToString(node->kind()),
              Table::Int(s.arrivals()), Table::Int(s.processed()),
              Table::Int(s.emitted()), Table::Num(s.CostMicros(), 2),
              Table::Num(s.Selectivity(), 3),
              std::isfinite(d) ? Table::Num(d, 1) : std::string("inf"),
              Table::Num(s.BusyMicros() / 1000.0, 1), queue_now,
              queue_peak, dropped, retries});
  }
  return t;
}

Table BuildResilienceTable(const QueryGraph& graph) {
  Table t({"queue", "policy", "max_elements", "dropped_newest",
           "dropped_oldest", "block_waits", "block_timeouts"});
  for (const Node* node : graph.nodes()) {
    const QueueOp* q = dynamic_cast<const QueueOp*>(node);
    if (q == nullptr || !q->bounded()) continue;
    t.AddRow({q->name(), OverloadPolicyToString(q->overload_policy()),
              Table::Int(static_cast<int64_t>(q->max_elements())),
              Table::Int(q->dropped_newest()), Table::Int(q->dropped_oldest()),
              Table::Int(q->block_waits()), Table::Int(q->block_timeouts())});
  }
  return t;
}

Table BuildRecoveryTable(const RecoveryManager& recovery) {
  Table t({"metric", "value"});
  const CheckpointCoordinator& coord = recovery.coordinator();
  t.AddRow({"epoch_interval",
            Table::Int(static_cast<int64_t>(
                recovery.options().epoch_interval))});
  t.AddRow({"committed_epoch",
            Table::Int(static_cast<int64_t>(coord.committed_epoch()))});
  t.AddRow({"epochs_committed", Table::Int(coord.epochs_committed())});
  t.AddRow({"snapshots_taken", Table::Int(coord.snapshots_taken())});
  t.AddRow(
      {"committed_state_elements", Table::Int(coord.committed_state_elements())});
  t.AddRow({"replay_depth",
            Table::Int(static_cast<int64_t>(recovery.replay_depth()))});
  t.AddRow({"replay_peak_depth",
            Table::Int(static_cast<int64_t>(recovery.replay_peak_depth()))});
  t.AddRow({"replay_truncated",
            Table::Int(recovery.any_buffer_truncated() ? 1 : 0)});
  t.AddRow({"replayed_elements", Table::Int(recovery.replayed_elements())});
  t.AddRow({"recovery_attempts", Table::Int(recovery.attempts())});
  t.AddRow(
      {"recoveries_completed", Table::Int(recovery.completed_recoveries())});
  t.AddRow({"last_recovery_latency_us",
            Table::Int(recovery.last_recovery_latency_micros())});
  return t;
}

std::string StatsReport(const QueryGraph& graph) {
  std::ostringstream os;
  BuildStatsTable(graph).Print(os);
  return os.str();
}

}  // namespace flexstream

#include "stats/report.h"

#include <cmath>
#include <sstream>

#include "graph/query_graph.h"
#include "queue/queue_op.h"

namespace flexstream {

Table BuildStatsTable(const QueryGraph& graph) {
  Table t({"node", "kind", "arrivals", "processed", "emitted", "cost_us",
           "selectivity", "interarrival_us", "busy_ms", "queue_now",
           "queue_peak"});
  for (const Node* node : graph.nodes()) {
    const OpStats& s = node->stats();
    const double d = s.InterarrivalMicros();
    std::string queue_now = "-";
    std::string queue_peak = "-";
    if (const QueueOp* q = dynamic_cast<const QueueOp*>(node)) {
      queue_now = Table::Int(static_cast<int64_t>(q->Size()));
      queue_peak = Table::Int(static_cast<int64_t>(q->PeakSize()));
    }
    t.AddRow({node->name(), NodeKindToString(node->kind()),
              Table::Int(s.arrivals()), Table::Int(s.processed()),
              Table::Int(s.emitted()), Table::Num(s.CostMicros(), 2),
              Table::Num(s.Selectivity(), 3),
              std::isfinite(d) ? Table::Num(d, 1) : std::string("inf"),
              Table::Num(s.BusyMicros() / 1000.0, 1), queue_now,
              queue_peak});
  }
  return t;
}

std::string StatsReport(const QueryGraph& graph) {
  std::ostringstream os;
  BuildStatsTable(graph).Print(os);
  return os.str();
}

}  // namespace flexstream

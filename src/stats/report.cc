#include "stats/report.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "graph/query_graph.h"
#include "operators/latency_sink.h"
#include "operators/operator.h"
#include "queue/queue_op.h"
#include "recovery/recovery_manager.h"

namespace flexstream {

Table BuildStatsTable(const QueryGraph& graph) {
  Table t({"node", "kind", "arrivals", "processed", "emitted", "cost_us",
           "selectivity", "interarrival_us", "busy_ms", "queue_now",
           "queue_peak", "dropped", "retries"});
  for (const Node* node : graph.nodes()) {
    const OpStats& s = node->stats();
    const double d = s.InterarrivalMicros();
    std::string queue_now = "-";
    std::string queue_peak = "-";
    std::string dropped = "-";
    std::string retries = "-";
    if (const QueueOp* q = dynamic_cast<const QueueOp*>(node)) {
      queue_now = Table::Int(static_cast<int64_t>(q->Size()));
      queue_peak = Table::Int(static_cast<int64_t>(q->PeakSize()));
      if (q->bounded()) dropped = Table::Int(q->dropped());
    }
    if (const Operator* op = dynamic_cast<const Operator*>(node)) {
      if (op->fault_retries() > 0) retries = Table::Int(op->fault_retries());
    }
    t.AddRow({node->name(), NodeKindToString(node->kind()),
              Table::Int(s.arrivals()), Table::Int(s.processed()),
              Table::Int(s.emitted()), Table::Num(s.CostMicros(), 2),
              Table::Num(s.Selectivity(), 3),
              std::isfinite(d) ? Table::Num(d, 1) : std::string("inf"),
              Table::Num(s.BusyMicros() / 1000.0, 1), queue_now,
              queue_peak, dropped, retries});
  }
  return t;
}

Table BuildResilienceTable(const QueryGraph& graph) {
  Table t({"queue", "policy", "max_elements", "dropped_newest",
           "dropped_oldest", "block_waits", "block_timeouts"});
  for (const Node* node : graph.nodes()) {
    const QueueOp* q = dynamic_cast<const QueueOp*>(node);
    if (q == nullptr || !q->bounded()) continue;
    t.AddRow({q->name(), OverloadPolicyToString(q->overload_policy()),
              Table::Int(static_cast<int64_t>(q->max_elements())),
              Table::Int(q->dropped_newest()), Table::Int(q->dropped_oldest()),
              Table::Int(q->block_waits()), Table::Int(q->block_timeouts())});
  }
  return t;
}

Table BuildShardTable(const QueryGraph& graph) {
  Table t({"group", "replica", "routed", "processed", "emitted", "queue_now",
           "queue_peak", "dropped"});
  for (const Node* node : graph.nodes()) {
    const auto* op = dynamic_cast<const Operator*>(node);
    if (op == nullptr || op->shard_index() < 0) continue;
    const OpStats& s = node->stats();
    std::string queue_now = "-";
    std::string queue_peak = "-";
    std::string dropped = "-";
    // The replica's input queue(s): engine-inserted between the split
    // router and the replica when they land in different partitions.
    int64_t now = 0;
    int64_t peak = 0;
    int64_t drops = 0;
    bool has_queue = false;
    bool has_bounded = false;
    for (const Node::InEdge& in : node->inputs()) {
      const auto* q = dynamic_cast<const QueueOp*>(in.source);
      if (q == nullptr) continue;
      has_queue = true;
      now += static_cast<int64_t>(q->Size());
      peak += static_cast<int64_t>(q->PeakSize());
      if (q->bounded()) {
        has_bounded = true;
        drops += q->dropped();
      }
    }
    if (has_queue) {
      queue_now = Table::Int(now);
      queue_peak = Table::Int(peak);
      if (has_bounded) dropped = Table::Int(drops);
    }
    t.AddRow({op->shard_group(), node->name(), Table::Int(s.arrivals()),
              Table::Int(s.processed()), Table::Int(s.emitted()), queue_now,
              queue_peak, dropped});
  }
  return t;
}

std::string ShardImbalanceSummary(const QueryGraph& graph) {
  // Group name -> per-replica routed counts, in replica index order (the
  // graph holds replicas in creation order).
  std::map<std::string, std::vector<int64_t>> groups;
  for (const Node* node : graph.nodes()) {
    const auto* op = dynamic_cast<const Operator*>(node);
    if (op == nullptr || op->shard_index() < 0) continue;
    groups[op->shard_group()].push_back(node->stats().arrivals());
  }
  std::ostringstream os;
  for (const auto& [group, counts] : groups) {
    int64_t total = 0;
    int64_t max = 0;
    for (int64_t c : counts) {
      total += c;
      max = std::max(max, c);
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(counts.size());
    const double imbalance =
        mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
    os << "shard group '" << group << "': " << counts.size() << " replicas, "
       << total << " routed, imbalance " << Table::Num(imbalance, 2)
       << " (max/mean)\n";
  }
  return os.str();
}

Table BuildLatencyTable(const QueryGraph& graph) {
  Table t({"sink", "count", "mean_us", "p50_us", "p95_us", "p99_us",
           "p999_us", "max_us"});
  Histogram merged;
  size_t sinks = 0;
  auto add_row = [&t](const std::string& name, const Histogram& h) {
    t.AddRow({name, Table::Int(h.count()), Table::Num(h.mean(), 1),
              Table::Num(h.Percentile(0.50), 0),
              Table::Num(h.Percentile(0.95), 0),
              Table::Num(h.Percentile(0.99), 0),
              Table::Num(h.Percentile(0.999), 0), Table::Num(h.max(), 0)});
  };
  for (const Node* node : graph.nodes()) {
    const auto* sink = dynamic_cast<const LatencySink*>(node);
    if (sink == nullptr) continue;
    const Histogram h = sink->SnapshotHistogram();
    add_row(sink->name(), h);
    merged.Merge(h);
    ++sinks;
  }
  if (sinks > 1) add_row("(all)", merged);
  return t;
}

Histogram MergedLatencyHistogram(const QueryGraph& graph) {
  Histogram merged;
  for (const Node* node : graph.nodes()) {
    if (const auto* sink = dynamic_cast<const LatencySink*>(node)) {
      merged.Merge(sink->SnapshotHistogram());
    }
  }
  return merged;
}

Table BuildRecoveryTable(const RecoveryManager& recovery) {
  Table t({"metric", "value"});
  const CheckpointCoordinator& coord = recovery.coordinator();
  t.AddRow({"epoch_interval",
            Table::Int(static_cast<int64_t>(
                recovery.options().epoch_interval))});
  t.AddRow({"committed_epoch",
            Table::Int(static_cast<int64_t>(coord.committed_epoch()))});
  t.AddRow({"epochs_committed", Table::Int(coord.epochs_committed())});
  t.AddRow({"snapshots_taken", Table::Int(coord.snapshots_taken())});
  t.AddRow(
      {"committed_state_elements", Table::Int(coord.committed_state_elements())});
  t.AddRow({"replay_depth",
            Table::Int(static_cast<int64_t>(recovery.replay_depth()))});
  t.AddRow({"replay_peak_depth",
            Table::Int(static_cast<int64_t>(recovery.replay_peak_depth()))});
  t.AddRow({"replay_truncated",
            Table::Int(recovery.any_buffer_truncated() ? 1 : 0)});
  t.AddRow({"replayed_elements", Table::Int(recovery.replayed_elements())});
  t.AddRow({"recovery_attempts", Table::Int(recovery.attempts())});
  t.AddRow(
      {"recoveries_completed", Table::Int(recovery.completed_recoveries())});
  t.AddRow({"last_recovery_latency_us",
            Table::Int(recovery.last_recovery_latency_micros())});
  return t;
}

Table BuildDurabilityTable(const RecoveryManager& recovery) {
  Table t({"metric", "value"});
  const SnapshotStore* store = recovery.snapshot_store();
  if (store == nullptr) return t;
  const SnapshotStoreStats stats = store->stats();
  const std::vector<uint64_t> epochs = store->manifest_epochs();
  t.AddRow({"epochs_persisted", Table::Int(stats.epochs_written)});
  t.AddRow({"write_failures", Table::Int(stats.write_failures)});
  t.AddRow({"bytes_written", Table::Int(stats.bytes_written)});
  t.AddRow({"last_epoch_bytes", Table::Int(stats.last_epoch_bytes)});
  t.AddRow({"last_write_us", Table::Int(stats.last_write_micros)});
  t.AddRow({"gc_removed_files", Table::Int(stats.gc_removed_files)});
  t.AddRow(
      {"corrupt_epochs_skipped", Table::Int(stats.corrupt_epochs_skipped)});
  t.AddRow({"manifest_epochs",
            Table::Int(static_cast<int64_t>(epochs.size()))});
  t.AddRow({"newest_epoch_on_disk",
            Table::Int(epochs.empty()
                           ? 0
                           : static_cast<int64_t>(epochs.back()))});
  t.AddRow({"persist_failures", Table::Int(recovery.persist_failures())});
  return t;
}

Table BuildControlTable(const std::vector<ControlDecision>& decisions) {
  Table t({"interval", "trigger", "rung", "action", "outcome", "p99_us",
           "smoothed_us", "backlog", "shed"});
  for (const ControlDecision& d : decisions) {
    const std::string rung =
        d.rung_before == d.rung_after
            ? std::to_string(d.rung_before)
            : std::to_string(d.rung_before) + "->" +
                  std::to_string(d.rung_after);
    t.AddRow({Table::Int(d.interval), d.trigger, rung, d.action,
              d.outcome.ok() ? "OK" : d.outcome.ToString(),
              Table::Num(d.p99_micros, 0), Table::Num(d.smoothed_p99, 0),
              Table::Int(static_cast<int64_t>(d.backlog)),
              Table::Int(d.dropped_delta)});
  }
  return t;
}

std::string StatsReport(const QueryGraph& graph) {
  std::ostringstream os;
  BuildStatsTable(graph).Print(os);
  Table shards = BuildShardTable(graph);
  if (shards.row_count() > 0) {
    os << "\n";
    shards.Print(os);
    os << ShardImbalanceSummary(graph);
  }
  Table latency = BuildLatencyTable(graph);
  if (latency.row_count() > 0) {
    os << "\n";
    latency.Print(os);
  }
  return os.str();
}

}  // namespace flexstream

// Exponentially weighted moving average estimator.
//
// The runtime statistics the paper's capacity model needs — c(v), the mean
// per-element processing cost, and d(v), the mean inter-arrival time
// (Section 5.1.2) — must track drifting stream characteristics. EWMA gives
// recency-weighted means with O(1) state.

#ifndef FLEXSTREAM_STATS_EWMA_H_
#define FLEXSTREAM_STATS_EWMA_H_

#include <cstdint>

namespace flexstream {

class Ewma {
 public:
  /// alpha in (0, 1]: weight of each new sample. alpha = 1 degenerates to
  /// "last sample"; small alpha gives a long memory.
  explicit Ewma(double alpha = 0.05);

  void Add(double sample);

  /// Recency-weighted mean; 0 before the first sample.
  double value() const { return value_; }

  /// Plain arithmetic mean over all samples (useful for offline analysis).
  double mean() const;

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  double sum_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_STATS_EWMA_H_

// Human-readable runtime statistics reports.
//
// Snapshots the per-operator statistics of a query graph — processed and
// emitted counts, measured c(v), selectivity, d(v), busy time, queue
// occupancy — into an aligned table. Used by examples and ad-hoc
// debugging; the same numbers feed the placement algorithms.

#ifndef FLEXSTREAM_STATS_REPORT_H_
#define FLEXSTREAM_STATS_REPORT_H_

#include <string>
#include <vector>

#include "control/slo_controller.h"
#include "util/histogram.h"
#include "util/table.h"

namespace flexstream {

class QueryGraph;
class RecoveryManager;

/// One row per node: kind, name, arrivals, processed, emitted, measured
/// cost (us), selectivity, inter-arrival (us), busy time (ms), and for
/// queues their current/peak sizes plus elements dropped by the overload
/// policy; every operator also reports transient-fault retries absorbed.
Table BuildStatsTable(const QueryGraph& graph);

/// Overload/failure counters, one row per *bounded* queue: policy, budget,
/// dropped-newest/oldest, kBlock waits and timed-out (overrun) waits.
/// Empty (headers only) when no queue is bounded. Same Table type as
/// BuildStatsTable, so it prints/CSV-exports identically.
Table BuildResilienceTable(const QueryGraph& graph);

/// One row per shard replica (operators created by ShardOperator,
/// api/shard.h), grouped by the original operator's name: elements routed
/// to the replica (arrivals), processed, emitted, and its input queue's
/// current/peak depth plus overload drops. Empty (headers only) when the
/// graph has no sharded operators.
Table BuildShardTable(const QueryGraph& graph);

/// One line per shard group summarizing routing skew:
/// "shard group '<name>': N replicas, M routed, imbalance R (max/mean)".
/// Empty string when the graph has no sharded operators.
std::string ShardImbalanceSummary(const QueryGraph& graph);

/// End-to-end latency percentiles, one row per LatencySink in the graph
/// (count, mean and p50/p95/p99/p999/max in microseconds) plus — when the
/// graph holds more than one latency sink — a final "(all)" row merging
/// every sink's histogram into the engine-wide distribution. Snapshots are
/// non-destructive, so the table can be printed mid-run (the watchdog's
/// partition snapshots use the same source). Empty (headers only) when the
/// graph has no LatencySink.
Table BuildLatencyTable(const QueryGraph& graph);

/// The engine-wide latency distribution: every LatencySink's histogram
/// merged. Empty histogram when the graph has no LatencySink.
Histogram MergedLatencyHistogram(const QueryGraph& graph);

/// The SLO controller's per-interval decision log as a table: one row per
/// control interval with the trigger, the ladder rung before/after, the
/// action taken (or hold), the actuator outcome, and the interval's raw +
/// smoothed p99, backlog, and shed count. Pass SloController::decisions().
Table BuildControlTable(const std::vector<ControlDecision>& decisions);

/// Checkpoint/recovery counters (metric/value rows): committed epoch,
/// epochs committed, snapshots taken, committed state elements, replay
/// buffer depth/peak/truncation, replayed elements, and the recovery
/// attempt ledger. Only meaningful for an engine configured with
/// checkpoint_epoch_interval > 0 (see StreamEngine::recovery()).
Table BuildRecoveryTable(const RecoveryManager& recovery);

/// Durable-checkpoint counters (metric/value rows): epochs persisted,
/// write failures, bytes written (total and last epoch), last write
/// latency, GC'd files, corrupt epochs skipped on load, on-disk manifest
/// depth and newest epoch, and persist (encode/write) failures. Empty
/// (headers only) when the manager has no durable store configured.
Table BuildDurabilityTable(const RecoveryManager& recovery);

/// Convenience: the table rendered to a string.
std::string StatsReport(const QueryGraph& graph);

}  // namespace flexstream

#endif  // FLEXSTREAM_STATS_REPORT_H_

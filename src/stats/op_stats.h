// Per-operator runtime statistics.
//
// Section 5.1.3 of the paper: "We assume that the required values c(v) and
// d(v) are meta data provided by the DSMS during runtime." OpStats is that
// metadata provider: it measures processing cost, inter-arrival gaps and
// selectivity online. The hot-path updates are performed by the single
// thread currently executing the operator; monitor threads read through
// relaxed atomics, so snapshots are cheap and never block processing.

#ifndef FLEXSTREAM_STATS_OP_STATS_H_
#define FLEXSTREAM_STATS_OP_STATS_H_

#include <atomic>
#include <cstdint>

#include "stats/ewma.h"
#include "util/clock.h"

namespace flexstream {

class OpStats {
 public:
  OpStats() = default;
  OpStats(const OpStats&) = delete;
  OpStats& operator=(const OpStats&) = delete;

  /// Records the arrival of a data element (updates d(v)). `now` is passed
  /// in so the caller can reuse one clock read across several updates.
  void RecordArrival(TimePoint now);

  /// Records one processed element costing `micros` of CPU (updates c(v)).
  void RecordProcessed(double micros);

  // Batch analogues (DESIGN.md §11): record `n` elements with one clock
  // read and one EWMA update each, so batch delivery amortizes the stats
  // bookkeeping too. The per-element estimates stay meaningful — the
  // batch's gap/cost is spread evenly across its elements, keeping d(v)
  // and c(v) per-element as Section 5.1 requires.

  /// Records the arrival of `n` data elements delivered as one batch.
  void RecordArrivalBatch(TimePoint now, int64_t n);

  /// Records `n` processed elements costing `total_micros` of CPU in total.
  void RecordProcessedBatch(double total_micros, int64_t n);

  /// Records `n` emitted output elements (updates selectivity).
  void RecordEmitted(int64_t n = 1);

  /// Mean per-element processing cost in microseconds — the paper's c(v).
  double CostMicros() const { return cost_micros_.load(std::memory_order_relaxed); }

  /// Mean inter-arrival time in microseconds — the paper's d(v).
  /// Returns +infinity before two arrivals have been seen (an operator that
  /// has never received input has rate 0).
  double InterarrivalMicros() const;

  /// Output elements per input element.
  double Selectivity() const;

  int64_t processed() const { return processed_.load(std::memory_order_relaxed); }
  int64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  int64_t arrivals() const { return arrivals_.load(std::memory_order_relaxed); }

  /// Total busy time spent inside Process, in microseconds.
  double BusyMicros() const { return busy_micros_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  // EWMAs are owned by the processing thread; published values mirror them
  // through atomics for cross-thread reads.
  Ewma cost_ewma_{0.05};
  Ewma gap_ewma_{0.05};
  bool has_last_arrival_ = false;
  TimePoint last_arrival_{};

  std::atomic<double> cost_micros_{0.0};
  std::atomic<double> interarrival_micros_{0.0};
  std::atomic<double> busy_micros_{0.0};
  std::atomic<int64_t> processed_{0};
  std::atomic<int64_t> emitted_{0};
  std::atomic<int64_t> arrivals_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_STATS_OP_STATS_H_

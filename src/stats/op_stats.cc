#include "stats/op_stats.h"

#include <limits>

namespace flexstream {

void OpStats::RecordArrival(TimePoint now) {
  arrivals_.fetch_add(1, std::memory_order_relaxed);
  if (has_last_arrival_) {
    const double gap =
        static_cast<double>(ToMicros(now - last_arrival_));
    gap_ewma_.Add(gap);
    interarrival_micros_.store(gap_ewma_.value(), std::memory_order_relaxed);
  }
  has_last_arrival_ = true;
  last_arrival_ = now;
}

void OpStats::RecordProcessed(double micros) {
  processed_.fetch_add(1, std::memory_order_relaxed);
  cost_ewma_.Add(micros);
  cost_micros_.store(cost_ewma_.value(), std::memory_order_relaxed);
  busy_micros_.store(busy_micros_.load(std::memory_order_relaxed) + micros,
                     std::memory_order_relaxed);
}

void OpStats::RecordArrivalBatch(TimePoint now, int64_t n) {
  if (n <= 0) return;
  arrivals_.fetch_add(n, std::memory_order_relaxed);
  if (has_last_arrival_) {
    // The batch arrived as one unit: spread the observed gap across its
    // elements so the EWMA keeps estimating a per-element inter-arrival.
    const double gap = static_cast<double>(ToMicros(now - last_arrival_)) /
                       static_cast<double>(n);
    gap_ewma_.Add(gap);
    interarrival_micros_.store(gap_ewma_.value(), std::memory_order_relaxed);
  }
  has_last_arrival_ = true;
  last_arrival_ = now;
}

void OpStats::RecordProcessedBatch(double total_micros, int64_t n) {
  if (n <= 0) return;
  processed_.fetch_add(n, std::memory_order_relaxed);
  cost_ewma_.Add(total_micros / static_cast<double>(n));
  cost_micros_.store(cost_ewma_.value(), std::memory_order_relaxed);
  busy_micros_.store(
      busy_micros_.load(std::memory_order_relaxed) + total_micros,
      std::memory_order_relaxed);
}

void OpStats::RecordEmitted(int64_t n) {
  emitted_.fetch_add(n, std::memory_order_relaxed);
}

double OpStats::InterarrivalMicros() const {
  const double v = interarrival_micros_.load(std::memory_order_relaxed);
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  return v;
}

double OpStats::Selectivity() const {
  const int64_t in = processed_.load(std::memory_order_relaxed);
  if (in == 0) return 1.0;
  return static_cast<double>(emitted_.load(std::memory_order_relaxed)) /
         static_cast<double>(in);
}

void OpStats::Reset() {
  cost_ewma_.Reset();
  gap_ewma_.Reset();
  has_last_arrival_ = false;
  cost_micros_.store(0.0, std::memory_order_relaxed);
  interarrival_micros_.store(0.0, std::memory_order_relaxed);
  busy_micros_.store(0.0, std::memory_order_relaxed);
  processed_.store(0, std::memory_order_relaxed);
  emitted_.store(0, std::memory_order_relaxed);
  arrivals_.store(0, std::memory_order_relaxed);
}

}  // namespace flexstream

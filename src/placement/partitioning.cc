#include "placement/partitioning.h"

#include <deque>
#include <map>
#include <sstream>
#include <unordered_set>

#include "graph/query_graph.h"
#include "operators/operator.h"
#include "util/logging.h"

namespace flexstream {

Partitioning::Partitioning(const QueryGraph* graph) : graph_(graph) {
  CHECK(graph != nullptr);
}

Partitioning Partitioning::FromAssignment(
    const QueryGraph* graph,
    const std::unordered_map<const Node*, int>& assignment) {
  Partitioning p(graph);
  // Renumber group ids densely, in ascending original-id order for
  // determinism.
  std::map<int, std::vector<Node*>> by_id;
  for (Node* node : graph->nodes()) {
    const auto it = assignment.find(node);
    if (it != assignment.end()) by_id[it->second].push_back(node);
  }
  for (auto& [id, nodes] : by_id) {
    (void)id;
    p.AddGroup(std::move(nodes));
  }
  return p;
}

int Partitioning::AddGroup(std::vector<Node*> nodes) {
  const int id = static_cast<int>(groups_.size());
  for (Node* n : nodes) {
    CHECK(group_of_.find(n) == group_of_.end())
        << n->DebugString() << " already assigned";
    group_of_[n] = id;
  }
  groups_.push_back(std::move(nodes));
  return id;
}

const std::vector<Node*>& Partitioning::group(size_t id) const {
  CHECK_LT(id, groups_.size());
  return groups_[id];
}

int Partitioning::GroupOf(const Node* node) const {
  const auto it = group_of_.find(node);
  return it == group_of_.end() ? -1 : it->second;
}

double Partitioning::CapacityOf(size_t id) const {
  return CapacityOfNodes(group(id));
}

std::vector<std::pair<Node*, Operator*>> Partitioning::CrossEdges() const {
  std::vector<std::pair<Node*, Operator*>> edges;
  for (Node* node : graph_->nodes()) {
    const int from_group = GroupOf(node);
    for (const auto& edge : node->outputs()) {
      const int to_group = GroupOf(static_cast<const Node*>(edge.target));
      if (from_group != to_group || from_group == -1) {
        edges.emplace_back(node, edge.target);
      }
    }
  }
  return edges;
}

Status Partitioning::Validate() const {
  std::unordered_set<const Node*> in_graph(graph_->nodes().begin(),
                                           graph_->nodes().end());
  for (size_t id = 0; id < groups_.size(); ++id) {
    const auto& nodes = groups_[id];
    if (nodes.empty()) {
      return Status::Internal("empty group " + std::to_string(id));
    }
    std::unordered_set<const Node*> members;
    for (const Node* n : nodes) {
      if (!in_graph.count(n)) {
        return Status::Internal("group node not in graph: " +
                                n->DebugString());
      }
      if (GroupOf(n) != static_cast<int>(id)) {
        return Status::Internal("inconsistent assignment for " +
                                n->DebugString());
      }
      members.insert(n);
    }
    // Weak connectivity over intra-group edges.
    std::unordered_set<const Node*> visited;
    std::deque<const Node*> frontier{nodes.front()};
    while (!frontier.empty()) {
      const Node* n = frontier.front();
      frontier.pop_front();
      if (!visited.insert(n).second) continue;
      for (const auto& edge : n->outputs()) {
        const Node* t = static_cast<const Node*>(edge.target);
        if (members.count(t)) frontier.push_back(t);
      }
      for (const auto& edge : n->inputs()) {
        if (members.count(edge.source)) frontier.push_back(edge.source);
      }
    }
    if (visited.size() != members.size()) {
      return Status::Internal("group " + std::to_string(id) +
                              " is not connected");
    }
  }
  return Status::Ok();
}

std::string Partitioning::DebugString() const {
  std::ostringstream os;
  os << "Partitioning{" << groups_.size() << " groups\n";
  for (size_t id = 0; id < groups_.size(); ++id) {
    os << "  P" << id << " (cap=" << CapacityOf(id) << "):";
    for (const Node* n : groups_[id]) os << " #" << n->id();
    os << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace flexstream

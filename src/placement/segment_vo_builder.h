// VO construction based on the simplified Segment strategy of Jiang &
// Chakravarthy (Figure 11 competitor).
//
// Section 6.7 compares against "the algorithm for the simplified segment
// strategy [10]": an operator path is split into segments with no queues
// inside a segment. The simplified construction appends an operator to
// the current segment whenever the operator can locally keep pace with
// its own input rate (d(v) - c(v) >= 0) and starts a new segment
// otherwise — it never evaluates the *combined* capacity of the segment,
// which is why its VOs stall more than Algorithm 1's (Figure 11).

#ifndef FLEXSTREAM_PLACEMENT_SEGMENT_VO_BUILDER_H_
#define FLEXSTREAM_PLACEMENT_SEGMENT_VO_BUILDER_H_

#include "placement/partitioning.h"

namespace flexstream {

class QueryGraph;

Partitioning SegmentVoPlacement(const QueryGraph& graph);

}  // namespace flexstream

#endif  // FLEXSTREAM_PLACEMENT_SEGMENT_VO_BUILDER_H_

#include "placement/evaluator.h"

#include <cmath>

namespace flexstream {

CapacityReport EvaluateCapacities(const Partitioning& partitioning) {
  CapacityReport report;
  report.group_count = partitioning.group_count();
  double negative_sum = 0.0;
  double positive_sum = 0.0;
  for (size_t id = 0; id < partitioning.group_count(); ++id) {
    const double cap = partitioning.CapacityOf(id);
    if (!std::isfinite(cap)) {
      ++report.unbounded_count;
      continue;
    }
    report.total_capacity += cap;
    if (cap < 0.0) {
      ++report.negative_count;
      negative_sum += cap;
    } else {
      ++report.positive_count;
      positive_sum += cap;
    }
  }
  if (report.negative_count > 0) {
    report.avg_negative_capacity =
        negative_sum / static_cast<double>(report.negative_count);
  }
  if (report.positive_count > 0) {
    report.avg_positive_capacity =
        positive_sum / static_cast<double>(report.positive_count);
  }
  return report;
}

}  // namespace flexstream

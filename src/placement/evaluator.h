// Capacity evaluation of partitionings — the metric of Figure 11.
//
// "Recall that negative capacity means that a VO stalls incoming
// elements, while a positive capacity means that the VO is not fully
// utilized. ... The negative and positive capacities are shown
// separately." (Section 6.7)

#ifndef FLEXSTREAM_PLACEMENT_EVALUATOR_H_
#define FLEXSTREAM_PLACEMENT_EVALUATOR_H_

#include <cstddef>

#include "placement/partitioning.h"

namespace flexstream {

struct CapacityReport {
  size_t group_count = 0;
  /// Groups with cap < 0 / cap >= 0 (finite) / cap == +inf.
  size_t negative_count = 0;
  size_t positive_count = 0;
  size_t unbounded_count = 0;
  /// Mean capacity over negative-capacity groups (0 when none).
  double avg_negative_capacity = 0.0;
  /// Mean capacity over finite non-negative-capacity groups (0 when none).
  double avg_positive_capacity = 0.0;
  /// Sum over all finite capacities.
  double total_capacity = 0.0;
};

CapacityReport EvaluateCapacities(const Partitioning& partitioning);

}  // namespace flexstream

#endif  // FLEXSTREAM_PLACEMENT_EVALUATOR_H_

#include "placement/static_queue_placement.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/query_graph.h"
#include "stats/capacity.h"
#include "util/logging.h"

namespace flexstream {
namespace {

/// Union-find over node indices whose components carry capacity sums.
class PartitionForest {
 public:
  explicit PartitionForest(const std::vector<Node*>& nodes) {
    parent_.resize(nodes.size());
    acc_.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      parent_[i] = i;
      acc_[i].AddNode(nodes[i]->CostMicros(), nodes[i]->InterarrivalMicros());
    }
  }

  size_t Find(size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  /// Capacity the union of the two components would have.
  double MergedCapacity(size_t a, size_t b) {
    CapacityAccumulator merged = acc_[Find(a)];
    merged.Merge(acc_[Find(b)]);
    return merged.Capacity();
  }

  double CapacityOf(size_t i) { return acc_[Find(i)].Capacity(); }

  void Union(size_t a, size_t b) {
    const size_t ra = Find(a);
    const size_t rb = Find(b);
    if (ra == rb) return;
    parent_[rb] = ra;
    acc_[ra].Merge(acc_[rb]);
  }

 private:
  std::vector<size_t> parent_;
  std::vector<CapacityAccumulator> acc_;
};

}  // namespace

Partitioning StaticQueuePlacement(const QueryGraph& graph) {
  Result<std::vector<Node*>> order_or = graph.TopologicalOrder();
  CHECK(order_or.ok()) << order_or.status();
  std::vector<Node*> order;
  order.reserve(order_or->size());
  for (Node* node : *order_or) {
    // Disconnected nodes (e.g. queue husks left behind by a previous
    // configuration) take no part in placement.
    if (node->fan_in() == 0 && node->fan_out() == 0 && !node->is_source()) {
      continue;
    }
    CHECK(!node->is_queue())
        << "StaticQueuePlacement expects a queue-free graph, found "
        << node->DebugString();
    order.push_back(node);
  }

  std::unordered_map<const Node*, size_t> index;
  for (size_t i = 0; i < order.size(); ++i) {
    index[order[i]] = i;
  }
  PartitionForest forest(order);

  // Bottom-up: for each node, merge producers first-fit-decreasing by
  // capacity while the combined partition capacity stays non-negative.
  for (size_t i = 0; i < order.size(); ++i) {
    Node* node = order[i];
    std::vector<size_t> producers;
    producers.reserve(node->fan_in());
    for (const auto& edge : node->inputs()) {
      producers.push_back(index.at(edge.source));
    }
    std::sort(producers.begin(), producers.end(), [&](size_t a, size_t b) {
      return forest.CapacityOf(a) > forest.CapacityOf(b);
    });
    for (size_t producer : producers) {
      if (forest.Find(producer) == forest.Find(i)) continue;  // diamond
      if (forest.MergedCapacity(i, producer) >= 0.0) {
        forest.Union(i, producer);
      }
      // Not merged => the edge producer -> node crosses partitions and
      // will receive a queue (Partitioning::CrossEdges).
    }
  }

  std::unordered_map<const Node*, int> assignment;
  for (size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<int>(forest.Find(i));
  }
  return Partitioning::FromAssignment(&graph, assignment);
}

}  // namespace flexstream

#include "placement/chain_vo_builder.h"

#include <unordered_map>

#include "graph/query_graph.h"
#include "operators/operator.h"
#include "sched/chain_strategy.h"
#include "util/logging.h"

namespace flexstream {

std::vector<std::vector<Node*>> DecomposeIntoChains(const QueryGraph& graph) {
  Result<std::vector<Node*>> order_or = graph.TopologicalOrder();
  CHECK(order_or.ok()) << order_or.status();
  std::vector<std::vector<Node*>> chains;
  std::unordered_map<const Node*, bool> in_chain;
  for (Node* node : *order_or) {
    if (in_chain[node]) continue;
    // Skip disconnected husks (see static_queue_placement.cc).
    if (node->fan_in() == 0 && node->fan_out() == 0 && !node->is_source()) {
      continue;
    }
    // A chain head: fan-in != 1, or its single producer branches.
    const bool is_head =
        node->fan_in() != 1 || node->inputs()[0].source->fan_out() != 1;
    if (!is_head) continue;  // will be appended to its producer's chain
    std::vector<Node*> chain;
    Node* cur = node;
    while (true) {
      chain.push_back(cur);
      in_chain[cur] = true;
      if (cur->fan_out() != 1) break;
      Node* next = static_cast<Node*>(cur->outputs()[0].target);
      if (next->fan_in() != 1) break;
      cur = next;
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

Partitioning ChainVoPlacement(const QueryGraph& graph) {
  std::unordered_map<const Node*, int> assignment;
  int next_group = 0;
  for (const auto& chain : DecomposeIntoChains(graph)) {
    std::vector<double> costs;
    std::vector<double> sels;
    costs.reserve(chain.size());
    sels.reserve(chain.size());
    for (const Node* n : chain) {
      costs.push_back(n->CostMicros());
      sels.push_back(n->Selectivity());
    }
    for (const EnvelopeSegment& segment :
         ComputeLowerEnvelope(costs, sels)) {
      const int group = next_group++;
      for (size_t i = segment.begin; i < segment.end; ++i) {
        assignment[chain[i]] = group;
      }
    }
  }
  return Partitioning::FromAssignment(&graph, assignment);
}

}  // namespace flexstream

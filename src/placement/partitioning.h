// Partitionings of a query graph into virtual operators.
//
// Section 5: "From a formal point of view, this is a graph partitioning
// problem, where each partition corresponds to a VO. ... we additionally
// require that all nodes in a partition are connected." A Partitioning is
// a disjoint cover of (a subset of) the graph's nodes by connected groups;
// edges crossing groups are exactly the edges that receive decoupling
// queues.

#ifndef FLEXSTREAM_PLACEMENT_PARTITIONING_H_
#define FLEXSTREAM_PLACEMENT_PARTITIONING_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/node.h"
#include "stats/capacity.h"
#include "util/status.h"

namespace flexstream {

class QueryGraph;
class Operator;

class Partitioning {
 public:
  /// An empty partitioning over `graph`.
  explicit Partitioning(const QueryGraph* graph);

  /// Builds a partitioning from a node -> group-id map (ids need not be
  /// dense; they are renumbered).
  static Partitioning FromAssignment(
      const QueryGraph* graph,
      const std::unordered_map<const Node*, int>& assignment);

  /// Appends a group; returns its id.
  int AddGroup(std::vector<Node*> nodes);

  const QueryGraph* graph() const { return graph_; }
  size_t group_count() const { return groups_.size(); }
  const std::vector<Node*>& group(size_t id) const;
  const std::vector<std::vector<Node*>>& groups() const { return groups_; }

  /// Group id of `node`, or -1 when the node is not covered.
  int GroupOf(const Node* node) const;

  /// cap(P) of one group, from the nodes' c/d metadata.
  double CapacityOf(size_t id) const;

  /// Edges (u, v) of the graph whose endpoints lie in different groups
  /// (or where exactly one endpoint is covered) — the queue positions.
  std::vector<std::pair<Node*, Operator*>> CrossEdges() const;

  /// Checks: every node covered at most once; every group non-empty and
  /// weakly connected within the graph (treating edges as undirected,
  /// using only edges internal to the group).
  Status Validate() const;

  std::string DebugString() const;

 private:
  const QueryGraph* graph_;
  std::vector<std::vector<Node*>> groups_;
  std::unordered_map<const Node*, int> group_of_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_PLACEMENT_PARTITIONING_H_

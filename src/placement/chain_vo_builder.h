// VO construction based on the Chain strategy (Figure 11 competitor).
//
// Section 6.7: "an algorithm based on the chain strategy [3]. The latter
// removes queues if they belong to the same chain." Operators that fall
// into the same lower-envelope segment of their operator chain's progress
// chart are merged into one virtual operator; queues remain only between
// segments (and at chain boundaries). Chain segments optimize memory
// release, not stall avoidance, so the resulting VOs may have strongly
// negative capacity — exactly what Figure 11 shows.

#ifndef FLEXSTREAM_PLACEMENT_CHAIN_VO_BUILDER_H_
#define FLEXSTREAM_PLACEMENT_CHAIN_VO_BUILDER_H_

#include <vector>

#include "placement/partitioning.h"

namespace flexstream {

class QueryGraph;

/// Decomposes a queue-free DAG into its maximal unary chains: every node
/// is in exactly one chain; chains break wherever fan-in or fan-out
/// differs from 1. Chains are returned in topological order of their
/// heads.
std::vector<std::vector<Node*>> DecomposeIntoChains(const QueryGraph& graph);

/// Builds the Chain-based partitioning of `graph` from node metadata.
Partitioning ChainVoPlacement(const QueryGraph& graph);

}  // namespace flexstream

#endif  // FLEXSTREAM_PLACEMENT_CHAIN_VO_BUILDER_H_

#include "placement/segment_vo_builder.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "placement/chain_vo_builder.h"
#include "util/logging.h"

namespace flexstream {

Partitioning SegmentVoPlacement(const QueryGraph& graph) {
  std::unordered_map<const Node*, int> assignment;
  int next_group = -1;
  for (const auto& chain : DecomposeIntoChains(graph)) {
    bool start_new = true;
    for (Node* node : chain) {
      if (start_new) {
        ++next_group;
        start_new = false;
      } else {
        const double d = node->InterarrivalMicros();
        const double local_cap =
            std::isfinite(d) ? d - node->CostMicros()
                             : std::numeric_limits<double>::infinity();
        if (local_cap < 0.0) ++next_group;  // operator opens a new segment
      }
      assignment[node] = next_group;
    }
  }
  return Partitioning::FromAssignment(&graph, assignment);
}

}  // namespace flexstream

#include "placement/producer_annotation.h"

#include <cstdint>
#include <unordered_set>

#include "placement/partitioning.h"
#include "queue/queue_op.h"

namespace flexstream {

size_t CountProducerContexts(const QueueOp& queue,
                             const Partitioning* partitioning) {
  // Context keys: non-negative values are partition group ids; negative
  // values encode per-node contexts (sources, or operators outside any
  // partitioning) without colliding with group ids.
  std::unordered_set<int64_t> contexts;
  for (const auto& edge : queue.inputs()) {
    const Node* producer = edge.source;
    int group = -1;
    if (!producer->is_source() && partitioning != nullptr) {
      group = partitioning->GroupOf(producer);
    }
    if (group >= 0) {
      contexts.insert(group);
    } else {
      contexts.insert(-static_cast<int64_t>(producer->id()) - 1);
    }
  }
  return contexts.size();
}

void AnnotateSingleProducerQueues(const std::vector<QueueOp*>& queues,
                                  const Partitioning* partitioning) {
  for (QueueOp* queue : queues) {
    queue->SetSingleProducer(CountProducerContexts(*queue, partitioning) <=
                             1);
  }
}

}  // namespace flexstream

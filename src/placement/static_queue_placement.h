// Stall-avoiding static queue placement — Algorithm 1 of the paper
// (Section 5.1.3).
//
// The heuristic traverses the queue-free query graph bottom-up from its
// sources. For each node it decides which of the node's direct producers
// to merge into the node's partition: producers are sorted by capacity in
// descending order and merged first-fit-decreasing while the combined
// capacity of the partition stays non-negative (cap(P) = d(P) - c(P),
// Section 5.1.2). Edges to producers that were not merged receive a
// decoupling queue. The goal: minimize the number of partitions subject
// to no partition stalling (cap >= 0).
//
// Implementation notes vs. the published pseudocode:
//  * Nodes are processed in topological order, so a producer's partition
//    membership (and therefore its partition's combined capacity, which
//    the pseudocode stores via node.setCap) is final before any consumer
//    inspects it.
//  * Partitions are maintained with a union-find whose components carry
//    (sum of costs, sum of inverse inter-arrival times), so merging a
//    producer merges its whole partition and diamonds are not
//    double-counted.

#ifndef FLEXSTREAM_PLACEMENT_STATIC_QUEUE_PLACEMENT_H_
#define FLEXSTREAM_PLACEMENT_STATIC_QUEUE_PLACEMENT_H_

#include "placement/partitioning.h"

namespace flexstream {

class QueryGraph;

/// Computes the stall-avoiding partitioning of `graph` from each node's
/// c(v)/d(v) metadata (set overrides or run PropagateRates first). The
/// graph must be queue-free. Every node (sources and sinks included) is
/// assigned to exactly one group; CrossEdges() of the result are the
/// queue positions.
Partitioning StaticQueuePlacement(const QueryGraph& graph);

}  // namespace flexstream

#endif  // FLEXSTREAM_PLACEMENT_STATIC_QUEUE_PLACEMENT_H_

// Producer-count annotation for decoupling queues.
//
// A QueueOp can route enqueues through its lock-free SPSC ring only when at
// most one thread at a time produces into it. Placement knows this
// statically: every upstream edge of a queue originates either in a source
// (driven by its own autonomous thread) or in an operator (driven by the
// single thread of the partition that owns it). Counting the distinct
// producing execution contexts of a queue therefore decides the enqueue
// path — exactly one context enables the SPSC fast path; more fall back to
// the mutex-protected MPSC path.

#ifndef FLEXSTREAM_PLACEMENT_PRODUCER_ANNOTATION_H_
#define FLEXSTREAM_PLACEMENT_PRODUCER_ANNOTATION_H_

#include <cstddef>
#include <vector>

namespace flexstream {

class Partitioning;
class QueueOp;

/// Number of distinct producing execution contexts feeding `queue`:
/// sources count individually (each is its own driving thread); operators
/// count by their group in `partitioning` (one partition = one worker
/// thread). Without a partitioning — GTS/OTS full decoupling, where no
/// named grouping exists — every producing node counts as its own context,
/// which is conservative (a node is only ever executed by one thread at a
/// time) and exact for the engine's one-queue-per-edge layout.
size_t CountProducerContexts(const QueueOp& queue,
                             const Partitioning* partitioning);

/// Switches every queue fed by at most one producing context to the SPSC
/// fast path and every other queue to the MPSC path. Call after queue
/// insertion, while the graph is quiescent (queues empty, nothing
/// running).
void AnnotateSingleProducerQueues(const std::vector<QueueOp*>& queues,
                                  const Partitioning* partitioning);

}  // namespace flexstream

#endif  // FLEXSTREAM_PLACEMENT_PRODUCER_ANNOTATION_H_

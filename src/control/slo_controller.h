// Closed-loop SLO guardian: elastic control with a graceful-degradation
// ladder (DESIGN.md §15).
//
// The controller watches one number — the p99 end-to-end latency of the
// current control interval (from the LatencySink histograms, differenced
// with Histogram::DeltaSince) — against a target, and actuates through an
// explicit ladder of progressively more drastic levers:
//
//   rung 1  grow the level-3 thread pool (ThreadScheduler::SetMaxRunning)
//   rung 2  raise the emit batch size (amortize per-element overhead)
//   rung 3  reshard hot stateful operators up (ResizeShard, state-carrying)
//   rung 4  flip the overload policy to load shedding — the only rung that
//           gives up result completeness, engaged last, with exact drop
//           accounting in the decision log
//
// and back down in reverse order. Three mechanisms make the loop provably
// non-oscillating under steady load:
//   * EWMA smoothing of the p99 input — one noisy interval cannot trigger.
//   * A hysteresis band: escalation triggers at p99 > target, but
//     de-escalation requires p99 < deescalate_fraction * target for
//     deescalate_intervals consecutive intervals. Anywhere in between, the
//     controller holds — zero actions.
//   * Minimum dwell: after any action, no de-escalation for min_dwell.
// Under a steady load the smoothed p99 converges; once it lands either
// inside the band or below it with no lever engaged, the action stream
// stops (the no-oscillation tests pin this: square-wave load => action
// count bounded by the number of load edges, steady load => zero actions
// after convergence).
//
// The controller is deliberately decoupled from the engine: it talks to a
// MetricsProbe (what is the world doing) and an Actuator (pull this
// lever), both abstract. src/control/engine_hooks.h binds them to a live
// StreamEngine; tests and the simulator bind fakes and a VirtualControlClock.
// This header therefore includes nothing from api/ — stats/report.h can
// include it for BuildControlTable without a cycle.

#ifndef FLEXSTREAM_CONTROL_SLO_CONTROLLER_H_
#define FLEXSTREAM_CONTROL_SLO_CONTROLLER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "control/control_clock.h"
#include "util/clock.h"
#include "util/status.h"

namespace flexstream {

/// What the controller reads each interval. Produced by a MetricsProbe.
struct ControlMetrics {
  /// p99 of the results completed during this interval, microseconds.
  /// Meaningless when interval_count == 0.
  double interval_p99_micros = 0.0;
  /// Results completed during this interval.
  int64_t interval_count = 0;
  /// Results completed per second over the interval (diagnostics).
  double throughput_per_sec = 0.0;
  /// Hottest-stage utilization rho = c(v)/d(v) over the measured EWMAs;
  /// > 1 means the stage cannot keep up (paper Section 5.1.2).
  double max_utilization = 0.0;
  /// Name of the node with max_utilization.
  std::string hottest_stage;
  /// Elements currently buffered in the engine's queues.
  size_t backlog = 0;
  /// Elements shed by overload policies since the previous sample.
  int64_t dropped_delta = 0;
};

class MetricsProbe {
 public:
  virtual ~MetricsProbe() = default;
  virtual ControlMetrics Sample() = 0;
};

/// The levers. Engine binding in engine_hooks.h; each setter returns the
/// engine's structured refusal verbatim on failure, and the controller
/// logs it in the decision record and treats that lever as unavailable.
class Actuator {
 public:
  virtual ~Actuator() = default;
  /// True while the engine is mid-recovery; the controller suspends.
  virtual bool recovering() const { return false; }
  virtual Status SetMaxThreads(int max_running) = 0;
  virtual Status SetBatchSize(size_t batch_size) = 0;
  virtual Status SetShards(size_t shards) = 0;
  virtual Status SetShedding(bool enabled) = 0;
};

struct SloOptions {
  /// The SLO: end-to-end p99 latency target, microseconds.
  double target_p99_micros = 50'000.0;
  /// How often the background thread ticks (TickOnce is also public for
  /// virtual-time driving).
  Duration control_interval = std::chrono::milliseconds(500);
  /// EWMA weight for the smoothed p99 (1.0 = trust each interval fully).
  double ewma_alpha = 0.4;
  /// De-escalation threshold as a fraction of the target; the band
  /// [fraction * target, target] is the action-free hysteresis zone.
  double deescalate_fraction = 0.6;
  /// Consecutive calm intervals required before stepping one rung down.
  int deescalate_intervals = 3;
  /// Minimum time after any action before a de-escalation may fire.
  Duration min_dwell = std::chrono::seconds(2);
  /// Rung 1: the pool size the engine started with, and the ceiling the
  /// controller may grow it to (doubling per interval).
  int base_threads = 1;
  int max_threads = 4;
  /// Rung 2: starting emit batch size and ceiling (x4 per interval).
  size_t base_batch_size = 1;
  size_t max_batch_size = 64;
  /// Rung 3: the shard count of the graph's (single) resharded cell.
  /// base_shards == 0 means the graph has no shard cell; rung skipped.
  size_t base_shards = 0;
  size_t max_shards = 4;
  bool allow_reshard = false;
  /// Rung 4: permission to shed. When false the ladder tops out at 3.
  bool allow_shedding = true;
  /// Consecutive breach intervals required before the heavy rungs (3, 4)
  /// may engage — a transient spike never sheds or resharads.
  int heavy_rung_patience = 3;
  /// A backlog this deep with zero completions in the interval counts as
  /// a breach even though no p99 exists (the pipeline is stalled).
  size_t stall_backlog = 1024;
  /// Decision-log ring capacity (oldest entries dropped beyond this).
  size_t decision_log_limit = 512;
};

/// One row of the per-interval decision log (BuildControlTable renders
/// these; the soak bench dumps them into BENCH_control.json).
struct ControlDecision {
  int64_t interval = 0;
  /// Why: "p99 81ms > slo 50ms", "calm 3/3", "steady", "recovery", ...
  std::string trigger;
  int rung_before = 0;
  int rung_after = 0;
  /// What: "grow threads 1->2", "batch 4->16", "shed on", "hold", ...
  std::string action;
  /// The actuator's verdict (structured refusals preserved verbatim).
  Status outcome = Status::Ok();
  double p99_micros = 0.0;    // raw interval p99 (0 when no completions)
  double smoothed_p99 = 0.0;  // the EWMA the trigger compared
  size_t backlog = 0;
  int64_t dropped_delta = 0;  // exact shed accounting once rung 4 engages
};

class SloController {
 public:
  /// `probe` and `actuator` must outlive the controller. `clock` may be
  /// null (a SteadyControlClock is owned internally); pass a
  /// VirtualControlClock to drive intervals in virtual time.
  SloController(SloOptions options, MetricsProbe* probe, Actuator* actuator,
                ControlClock* clock = nullptr);
  ~SloController();

  SloController(const SloController&) = delete;
  SloController& operator=(const SloController&) = delete;

  /// One control interval: sample, decide, actuate, log. Thread-safe;
  /// called by the background thread or directly by virtual-time tests.
  ControlDecision TickOnce();

  /// Background loop at options().control_interval (real time — tests
  /// that use a virtual clock call TickOnce themselves). Idempotent.
  void Start();
  void Stop();

  const SloOptions& options() const { return options_; }

  /// Highest currently-engaged rung (0 = everything at baseline).
  int current_rung() const;
  /// Count of real actuations (holds and suspensions excluded).
  int64_t actions_taken() const;
  /// Total elements shed while rung 4 was engaged (exact accounting).
  int64_t shed_while_degraded() const;
  /// Copy of the decision log (ring-capped at decision_log_limit).
  std::vector<ControlDecision> decisions() const;

  /// One-line state summary for watchdog stall reports and
  /// DiagnosticSnapshot: "slo-control: rung 2 (threads 4, batch 16, ...)".
  std::string DescribeState() const;

 private:
  /// Levers currently engaged above baseline, highest first.
  int EngagedRungLocked() const;
  void EscalateLocked(TimePoint now, ControlDecision* d);
  void DeescalateLocked(TimePoint now, ControlDecision* d);
  void CommitActionLocked(TimePoint now, const Status& outcome,
                          ControlDecision* d);
  void RecordLocked(ControlDecision decision);
  void RunLoop();

  const SloOptions options_;
  MetricsProbe* const probe_;
  Actuator* const actuator_;
  SteadyControlClock owned_clock_;
  ControlClock* const clock_;

  mutable std::mutex mutex_;
  int64_t tick_ = 0;
  double smoothed_p99_ = 0.0;
  bool have_smoothed_ = false;
  int calm_streak_ = 0;
  int breach_streak_ = 0;
  TimePoint last_action_time_{};
  bool any_action_yet_ = false;
  // Current lever positions (the engaged rung is derived from these).
  int current_threads_;
  size_t current_batch_;
  size_t current_shards_;
  bool shedding_ = false;
  // Levers that refused structurally (e.g. non-HMTS engine): skipped for
  // the rest of the run instead of re-failing every interval.
  bool threads_dead_ = false;
  bool reshard_dead_ = false;
  bool shedding_dead_ = false;
  int64_t actions_taken_ = 0;
  int64_t shed_while_degraded_ = 0;
  std::deque<ControlDecision> decisions_;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;
  std::thread loop_thread_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_CONTROL_SLO_CONTROLLER_H_

#include "control/slo_controller.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace flexstream {

namespace {

std::string Micros(double us) {
  std::ostringstream os;
  if (us >= 10'000.0) {
    os << static_cast<int64_t>(us / 1000.0) << "ms";
  } else {
    os << static_cast<int64_t>(us) << "us";
  }
  return os.str();
}

}  // namespace

SloController::SloController(SloOptions options, MetricsProbe* probe,
                             Actuator* actuator, ControlClock* clock)
    : options_(std::move(options)),
      probe_(probe),
      actuator_(actuator),
      clock_(clock != nullptr ? clock : &owned_clock_),
      current_threads_(options_.base_threads),
      current_batch_(options_.base_batch_size),
      current_shards_(options_.base_shards) {
  CHECK(probe_ != nullptr);
  CHECK(actuator_ != nullptr);
  CHECK_GT(options_.target_p99_micros, 0.0);
  CHECK_GT(options_.ewma_alpha, 0.0);
  CHECK_LE(options_.ewma_alpha, 1.0);
  CHECK_GT(options_.deescalate_fraction, 0.0);
  CHECK_LT(options_.deescalate_fraction, 1.0);
  CHECK_GE(options_.deescalate_intervals, 1);
  CHECK_GE(options_.heavy_rung_patience, 1);
  CHECK_GE(options_.base_threads, 1);
  CHECK_GE(options_.base_batch_size, 1u);
}

SloController::~SloController() { Stop(); }

int SloController::EngagedRungLocked() const {
  if (shedding_) return 4;
  if (options_.base_shards > 0 && current_shards_ > options_.base_shards) {
    return 3;
  }
  if (current_batch_ > options_.base_batch_size) return 2;
  if (current_threads_ > options_.base_threads) return 1;
  return 0;
}

void SloController::CommitActionLocked(TimePoint now, const Status& outcome,
                                       ControlDecision* d) {
  d->outcome = outcome;
  d->rung_after = EngagedRungLocked();
  ++actions_taken_;
  last_action_time_ = now;
  any_action_yet_ = true;
}

void SloController::EscalateLocked(TimePoint now, ControlDecision* d) {
  std::string refusals;
  // Rung 1: grow the level-3 slot pool (doubling, capped).
  if (!threads_dead_ && current_threads_ < options_.max_threads) {
    const int next = std::min(options_.max_threads, current_threads_ * 2);
    const Status s = actuator_->SetMaxThreads(next);
    if (s.ok()) {
      d->action = "grow threads " + std::to_string(current_threads_) + "->" +
                  std::to_string(next) + refusals;
      current_threads_ = next;
      CommitActionLocked(now, s, d);
      return;
    }
    // Structural refusal (non-HMTS engine): retire the lever instead of
    // re-failing every interval; keep the message in this decision.
    threads_dead_ = true;
    refusals += " [threads refused: " + s.message() + "]";
  }
  // Rung 2: raise the emit batch size (x4, capped).
  if (current_batch_ < options_.max_batch_size) {
    const size_t next = std::min(options_.max_batch_size, current_batch_ * 4);
    const Status s = actuator_->SetBatchSize(next);
    if (s.ok()) {
      d->action = "batch " + std::to_string(current_batch_) + "->" +
                  std::to_string(next) + refusals;
      current_batch_ = next;
      CommitActionLocked(now, s, d);
      return;
    }
    // Batch refusals can be transient (engine reconfiguring); retry later.
    refusals += " [batch refused: " + s.message() + "]";
  }
  // Heavy rungs (reshard, shed) need persistent overload, never a spike.
  if (breach_streak_ < options_.heavy_rung_patience) {
    d->action = "hold (heavy rungs await persistence " +
                std::to_string(breach_streak_) + "/" +
                std::to_string(options_.heavy_rung_patience) + ")" + refusals;
    d->rung_after = EngagedRungLocked();
    return;
  }
  // Rung 3: reshard the hot stateful cell up (doubling, capped).
  if (options_.allow_reshard && !reshard_dead_ && options_.base_shards > 0 &&
      current_shards_ < options_.max_shards) {
    const size_t next = std::min(options_.max_shards, current_shards_ * 2);
    const Status s = actuator_->SetShards(next);
    if (s.ok()) {
      d->action = "reshard " + std::to_string(current_shards_) + "->" +
                  std::to_string(next) + refusals;
      current_shards_ = next;
      CommitActionLocked(now, s, d);
      return;
    }
    if (s.code() == StatusCode::kUnimplemented) reshard_dead_ = true;
    refusals += " [reshard refused: " + s.message() + "]";
  }
  // Rung 4: give up completeness — shed load, with exact accounting.
  if (options_.allow_shedding && !shedding_dead_ && !shedding_) {
    const Status s = actuator_->SetShedding(true);
    if (s.ok()) {
      d->action = "shed on (overload policy -> shed-newest)" + refusals;
      shedding_ = true;
      CommitActionLocked(now, s, d);
      return;
    }
    shedding_dead_ = true;
    refusals += " [shed refused: " + s.message() + "]";
  }
  d->action = "hold (ladder saturated)" + refusals;
  d->rung_after = EngagedRungLocked();
}

void SloController::DeescalateLocked(TimePoint now, ControlDecision* d) {
  Status s = Status::Ok();
  std::string action;
  // Reverse order: restore completeness first, release capacity last.
  if (shedding_) {
    s = actuator_->SetShedding(false);
    if (s.ok()) {
      shedding_ = false;
      action = "shed off (overload policy -> block)";
    }
  } else if (options_.base_shards > 0 &&
             current_shards_ > options_.base_shards) {
    const size_t next = std::max(options_.base_shards, current_shards_ / 2);
    s = actuator_->SetShards(next);
    if (s.ok()) {
      action = "reshard " + std::to_string(current_shards_) + "->" +
               std::to_string(next);
      current_shards_ = next;
    }
  } else if (current_batch_ > options_.base_batch_size) {
    const size_t next = std::max(options_.base_batch_size, current_batch_ / 4);
    s = actuator_->SetBatchSize(next);
    if (s.ok()) {
      action = "batch " + std::to_string(current_batch_) + "->" +
               std::to_string(next);
      current_batch_ = next;
    }
  } else if (current_threads_ > options_.base_threads) {
    const int next = std::max(options_.base_threads, current_threads_ / 2);
    s = actuator_->SetMaxThreads(next);
    if (s.ok()) {
      action = "shrink threads " + std::to_string(current_threads_) + "->" +
               std::to_string(next);
      current_threads_ = next;
    }
  }
  if (s.ok() && !action.empty()) {
    d->action = action;
    CommitActionLocked(now, s, d);
    // Each step down restarts the calm count — one rung per calm window.
    calm_streak_ = 0;
  } else {
    d->action = "hold (de-escalation refused)";
    d->outcome = s;
    d->rung_after = EngagedRungLocked();
  }
}

ControlDecision SloController::TickOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  const TimePoint now = clock_->Now();
  ControlDecision d;
  d.interval = ++tick_;
  d.rung_before = EngagedRungLocked();
  d.rung_after = d.rung_before;

  // Recovery wins: the engine is rewinding/rebuilding, so both the
  // metrics and any actuation would race the restore. Count the interval
  // toward neither calm nor breach.
  if (actuator_->recovering()) {
    d.trigger = "recovery in flight";
    d.action = "suspended";
    d.smoothed_p99 = smoothed_p99_;
    RecordLocked(d);
    return d;
  }

  const ControlMetrics m = probe_->Sample();
  d.p99_micros = m.interval_count > 0 ? m.interval_p99_micros : 0.0;
  d.backlog = m.backlog;
  d.dropped_delta = m.dropped_delta;
  if (shedding_ && m.dropped_delta > 0) {
    shed_while_degraded_ += m.dropped_delta;
  }

  bool breach = false;
  bool calm = false;
  if (m.interval_count > 0) {
    if (!have_smoothed_) {
      smoothed_p99_ = m.interval_p99_micros;
      have_smoothed_ = true;
    } else {
      smoothed_p99_ +=
          options_.ewma_alpha * (m.interval_p99_micros - smoothed_p99_);
    }
    breach = smoothed_p99_ > options_.target_p99_micros;
    calm = smoothed_p99_ <
           options_.deescalate_fraction * options_.target_p99_micros;
  } else if (m.backlog >= options_.stall_backlog) {
    breach = true;  // nothing completing but work is piling up: stalled
  } else {
    calm = true;  // idle interval
  }
  d.smoothed_p99 = smoothed_p99_;

  if (breach) {
    ++breach_streak_;
    calm_streak_ = 0;
    std::ostringstream trig;
    if (m.interval_count > 0) {
      trig << "p99 " << Micros(smoothed_p99_) << " > slo "
           << Micros(options_.target_p99_micros);
    } else {
      trig << "stalled: backlog " << m.backlog << ", no completions";
    }
    if (m.max_utilization > 0.0 && !m.hottest_stage.empty()) {
      trig << ", hot " << m.hottest_stage << " rho="
           << (std::round(m.max_utilization * 100.0) / 100.0);
    }
    d.trigger = trig.str();
    EscalateLocked(now, &d);
  } else if (calm) {
    ++calm_streak_;
    breach_streak_ = 0;
    const int rung = EngagedRungLocked();
    if (rung == 0) {
      d.trigger = "steady";
      d.action = "hold";
    } else {
      d.trigger = "calm " +
                  std::to_string(std::min(calm_streak_,
                                          options_.deescalate_intervals)) +
                  "/" + std::to_string(options_.deescalate_intervals);
      const bool dwell_ok =
          !any_action_yet_ || now - last_action_time_ >= options_.min_dwell;
      if (calm_streak_ >= options_.deescalate_intervals && dwell_ok) {
        DeescalateLocked(now, &d);
      } else {
        d.action = dwell_ok ? "hold" : "hold (dwell)";
      }
    }
  } else {
    // The hysteresis band: above the de-escalation threshold, below the
    // SLO. By design nothing happens here, whatever the rung.
    breach_streak_ = 0;
    calm_streak_ = 0;
    d.trigger = "in band (p99 " + Micros(smoothed_p99_) + ")";
    d.action = "hold";
  }

  RecordLocked(d);
  return d;
}

void SloController::RecordLocked(ControlDecision decision) {
  decisions_.push_back(std::move(decision));
  while (decisions_.size() > options_.decision_log_limit) {
    decisions_.pop_front();
  }
}

int SloController::current_rung() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return EngagedRungLocked();
}

int64_t SloController::actions_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return actions_taken_;
}

int64_t SloController::shed_while_degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_while_degraded_;
}

std::vector<ControlDecision> SloController::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<ControlDecision>(decisions_.begin(), decisions_.end());
}

std::string SloController::DescribeState() const {
  // try_lock: this is called from the watchdog thread mid-stall-report;
  // blocking on a controller mid-actuation (which may itself be waiting
  // on engine internals) could close a lock cycle through the watchdog.
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return "slo-control: (actuating)";
  std::ostringstream os;
  os << "slo-control: rung " << EngagedRungLocked() << " (threads "
     << current_threads_ << ", batch " << current_batch_;
  if (options_.base_shards > 0) os << ", shards " << current_shards_;
  os << ", shedding " << (shedding_ ? "on" : "off") << "), smoothed p99 "
     << Micros(smoothed_p99_) << " / slo " << Micros(options_.target_p99_micros)
     << ", actions " << actions_taken_;
  if (shed_while_degraded_ > 0) os << ", shed " << shed_while_degraded_;
  return os.str();
}

void SloController::Start() {
  std::lock_guard<std::mutex> lock(loop_mutex_);
  if (loop_thread_.joinable()) return;
  stop_requested_ = false;
  loop_thread_ = std::thread([this] { RunLoop(); });
}

void SloController::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    if (!loop_thread_.joinable()) return;
    stop_requested_ = true;
    to_join = std::move(loop_thread_);
  }
  loop_cv_.notify_all();
  to_join.join();
}

void SloController::RunLoop() {
  std::unique_lock<std::mutex> lock(loop_mutex_);
  while (!stop_requested_) {
    if (loop_cv_.wait_for(lock, options_.control_interval,
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    TickOnce();
    lock.lock();
  }
}

}  // namespace flexstream

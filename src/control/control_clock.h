// Injectable time source for the SLO controller (DESIGN.md §15).
//
// The controller's hysteresis machinery — minimum dwell between actions,
// consecutive-calm-interval counting — is all expressed against this
// clock, never against SteadyClock directly. Production uses
// SteadyControlClock (a thin shim over util/clock.h Now()); unit tests
// and the src/sim agreement cases use VirtualControlClock and drive
// control intervals by Advance(), so every ladder property (escalation
// order, no-oscillation, dwell enforcement) is tested in virtual time
// with zero sleeps.

#ifndef FLEXSTREAM_CONTROL_CONTROL_CLOCK_H_
#define FLEXSTREAM_CONTROL_CONTROL_CLOCK_H_

#include "util/clock.h"

namespace flexstream {

class ControlClock {
 public:
  virtual ~ControlClock() = default;
  virtual TimePoint Now() = 0;
};

/// The production clock: real steady time.
class SteadyControlClock : public ControlClock {
 public:
  TimePoint Now() override { return flexstream::Now(); }
};

/// Deterministic test clock. Starts at the steady-clock epoch and only
/// moves when told to. Not thread-safe — virtual-time tests are
/// single-threaded by construction (they call TickOnce directly rather
/// than running the controller's background thread).
class VirtualControlClock : public ControlClock {
 public:
  TimePoint Now() override { return now_; }
  void Advance(Duration d) { now_ += d; }

 private:
  TimePoint now_{};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_CONTROL_CONTROL_CLOCK_H_

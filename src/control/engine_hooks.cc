#include "control/engine_hooks.h"

#include <cmath>

#include "graph/query_graph.h"
#include "operators/latency_sink.h"

namespace flexstream {

EngineMetricsProbe::EngineMetricsProbe(StreamEngine* engine,
                                       const QueryGraph* graph,
                                       std::vector<const LatencySink*> sinks)
    : engine_(engine), graph_(graph), sinks_(std::move(sinks)) {}

ControlMetrics EngineMetricsProbe::Sample() {
  ControlMetrics m;
  const TimePoint now = Now();

  // Per-interval latency: merge every sink's lifetime histogram, then
  // difference against the previous sample's merge. Non-destructive, so
  // the stats tables keep seeing the full-run distribution.
  Histogram merged;
  if (sinks_.empty()) {
    for (const Node* node : graph_->nodes()) {
      if (const auto* sink = dynamic_cast<const LatencySink*>(node)) {
        merged.Merge(sink->SnapshotHistogram());
      }
    }
  } else {
    for (const LatencySink* sink : sinks_) {
      merged.Merge(sink->SnapshotHistogram());
    }
  }
  const Histogram delta = merged.DeltaSince(previous_);
  previous_ = merged;
  m.interval_count = delta.count();
  m.interval_p99_micros = delta.count() > 0 ? delta.Percentile(0.99) : 0.0;
  if (!first_sample_ && delta.count() > 0) {
    const double secs = ToSeconds(now - last_sample_time_);
    if (secs > 0.0) {
      m.throughput_per_sec = static_cast<double>(delta.count()) / secs;
    }
  }
  first_sample_ = false;
  last_sample_time_ = now;

  // Hottest-stage utilization from the measured statistics EWMAs:
  // rho(v) = c(v) / d(v), the paper's Section 5.1.2 load model. Sources
  // and queues carry no processing cost of their own; detached nodes
  // (retired shard generations, sharded prototypes) see no arrivals and
  // report d(v) = inf, so they drop out naturally.
  for (const Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    const double cost = node->CostMicros();
    const double interarrival = node->InterarrivalMicros();
    if (!(cost > 0.0) || !std::isfinite(interarrival) ||
        !(interarrival > 0.0)) {
      continue;
    }
    const double rho = cost / interarrival;
    if (rho > m.max_utilization) {
      m.max_utilization = rho;
      m.hottest_stage = node->name();
    }
  }

  m.backlog = engine_->QueuedElements();
  const int64_t dropped = engine_->DroppedElements();
  m.dropped_delta = dropped - previous_dropped_;
  previous_dropped_ = dropped;
  return m;
}

}  // namespace flexstream

// Bindings from the abstract SLO-controller interfaces (slo_controller.h)
// to a live StreamEngine.
//
//   EngineMetricsProbe  merges the graph's LatencySink histograms, diffs
//                       them against the previous sample (Histogram::
//                       DeltaSince) for a per-interval p99, and derives
//                       the hottest-stage utilization rho = c(v)/d(v)
//                       from the measured per-node statistics EWMAs —
//                       the same numbers the placement algorithms use.
//   EngineActuator      maps the four ladder rungs onto the engine's live
//                       actuation hooks. Rung 3 (resharding) is not a
//                       single engine call — it needs a quiesce/
//                       deconfigure/ResizeShard/reconfigure choreography
//                       that only the run's owner can stage — so it is an
//                       injectable callback; without one the rung reports
//                       Unimplemented and the ladder skips over it.

#ifndef FLEXSTREAM_CONTROL_ENGINE_HOOKS_H_
#define FLEXSTREAM_CONTROL_ENGINE_HOOKS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "api/stream_engine.h"
#include "control/slo_controller.h"
#include "util/histogram.h"

namespace flexstream {

class LatencySink;
class QueryGraph;

class EngineMetricsProbe : public MetricsProbe {
 public:
  /// `engine` and `graph` must outlive the probe. When `sinks` is empty
  /// the graph is scanned for LatencySinks at each sample (they may not
  /// exist yet when the probe is constructed).
  EngineMetricsProbe(StreamEngine* engine, const QueryGraph* graph,
                     std::vector<const LatencySink*> sinks = {});

  ControlMetrics Sample() override;

 private:
  StreamEngine* const engine_;
  const QueryGraph* const graph_;
  std::vector<const LatencySink*> sinks_;
  Histogram previous_;  // lifetime-merged histogram at the last sample
  int64_t previous_dropped_ = 0;
  TimePoint last_sample_time_;
  bool first_sample_ = true;
};

class EngineActuator : public Actuator {
 public:
  explicit EngineActuator(StreamEngine* engine) : engine_(engine) {}

  /// Installs the rung-3 implementation (see file comment). The callback
  /// receives the requested shard count and performs the full pause/
  /// deconfigure/ResizeShard/reconfigure/resume sequence, returning the
  /// first refusal it hits.
  void SetResharder(std::function<Status(size_t)> resharder) {
    resharder_ = std::move(resharder);
  }

  bool recovering() const override { return engine_->recovering(); }
  Status SetMaxThreads(int max_running) override {
    return engine_->SetMaxRunningThreads(max_running);
  }
  Status SetBatchSize(size_t batch_size) override {
    return engine_->SetEmitBatchSizeLive(batch_size);
  }
  Status SetShards(size_t shards) override {
    if (!resharder_) {
      return Status::Unimplemented(
          "rung 3 unavailable: no resharder installed "
          "(EngineActuator::SetResharder)");
    }
    return resharder_(shards);
  }
  Status SetShedding(bool enabled) override {
    return engine_->SetOverloadPolicyLive(enabled ? OverloadPolicy::kShedNewest
                                                  : OverloadPolicy::kBlock);
  }

 private:
  StreamEngine* const engine_;
  std::function<Status(size_t)> resharder_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_CONTROL_ENGINE_HOOKS_H_

#include "tuple/schema.h"

namespace flexstream {

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < types_.size(); ++i) {
    if (i) out += ",";
    switch (types_[i]) {
      case Value::Type::kInt64:
        out += "i64";
        break;
      case Value::Type::kDouble:
        out += "f64";
        break;
      case Value::Type::kString:
        out += "str";
        break;
    }
  }
  return out.empty() ? "()" : out;
}

}  // namespace flexstream

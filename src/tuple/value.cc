#include "tuple/value.h"

#include "util/logging.h"

namespace flexstream {

int64_t Value::AsInt64() const {
  DCHECK(is_int64());
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  DCHECK(is_double());
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  DCHECK(is_string());
  return std::get<std::string>(v_);
}

double Value::ToDouble() const {
  switch (type()) {
    case Type::kInt64:
      return static_cast<double>(std::get<int64_t>(v_));
    case Type::kDouble:
      return std::get<double>(v_);
    case Type::kString:
      LOG(FATAL) << "Value::ToDouble on string value";
  }
  return 0.0;
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case Type::kDouble:
      return std::to_string(std::get<double>(v_));
    case Type::kString:
      return std::get<std::string>(v_);
  }
  return "";
}

size_t Value::Hash() const {
  switch (type()) {
    case Type::kInt64:
      return std::hash<int64_t>{}(std::get<int64_t>(v_));
    case Type::kDouble:
      return std::hash<double>{}(std::get<double>(v_));
    case Type::kString:
      return std::hash<std::string>{}(std::get<std::string>(v_));
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace flexstream

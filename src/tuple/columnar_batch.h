// The columnar batch: one contiguous typed vector per attribute.
//
// Where a TupleBatch is a vector of row-wise Tuples (each attribute a
// std::variant, strings individually heap-allocated), a ColumnarBatch
// stores the same run of data tuples column-major: int64 and double
// attributes live in contiguous typed vectors, and string attributes are
// (offset, length) pairs into one per-batch bump-allocated arena — no
// per-value heap. Kernels loop over raw typed pointers; compaction after a
// selection moves 8/16-byte entries instead of whole Tuples; transporting
// a batch across a queue moves a handful of vector headers instead of N
// variant rows.
//
// A ColumnarBatch obeys the same punctuation-split invariant as TupleBatch
// (data tuples only — AppendTuple rejects punctuations) and is always
// convertible back to rows: MaterializeRow / Materialize reproduce the
// exact Tuples that went in, including timestamps and router seq stamps,
// so the row-wise fallback path (DESIGN.md §17) is byte-for-byte exact.

#ifndef FLEXSTREAM_TUPLE_COLUMNAR_BATCH_H_
#define FLEXSTREAM_TUPLE_COLUMNAR_BATCH_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"
#include "util/clock.h"
#include "util/logging.h"

namespace flexstream {

class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  /// Rebinds the batch to `schema`, dropping any rows while keeping the
  /// column storage capacity (the pool's recycling hook).
  void ResetSchema(SchemaPtr schema) {
    Clear();
    if (schema_ != schema) {
      schema_ = std::move(schema);
      cols_.resize(schema_ ? schema_->arity() : 0);
    }
  }

  const SchemaPtr& schema_ptr() const { return schema_; }
  const Schema& schema() const {
    DCHECK(schema_ != nullptr);
    return *schema_;
  }

  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Drops all rows, keeping schema and storage capacity.
  void Clear() {
    rows_ = 0;
    for (Column& c : cols_) {
      c.i64.clear();
      c.f64.clear();
      c.str_off.clear();
      c.str_len.clear();
    }
    ts_.clear();
    seqs_.clear();
    arena_.clear();
  }

  // ---------------------------------------------------------------------
  // Building

  /// Appends one data tuple, scattering its attributes into the typed
  /// columns (strings are copied into the arena). Returns false — leaving
  /// the batch untouched — when the tuple does not match the schema; the
  /// caller then flushes this batch and starts a new one, or falls back to
  /// rows. Punctuations are a caller bug (DCHECK), mirroring
  /// TupleBatch::PushBack.
  bool AppendTuple(const Tuple& tuple) {
    DCHECK(tuple.is_data());
    if (schema_ == nullptr || !schema_->Matches(tuple)) return false;
    for (size_t i = 0; i < cols_.size(); ++i) {
      const Value& v = tuple.at(i);
      switch (schema_->type(i)) {
        case Value::Type::kInt64:
          cols_[i].i64.push_back(v.AsInt64());
          break;
        case Value::Type::kDouble:
          cols_[i].f64.push_back(v.AsDouble());
          break;
        case Value::Type::kString:
          AppendToArena(cols_[i], v.AsString());
          break;
      }
    }
    ts_.push_back(tuple.timestamp());
    if (tuple.seq() != 0 && seqs_.empty()) seqs_.resize(rows_, 0);
    if (!seqs_.empty() || tuple.seq() != 0) seqs_.push_back(tuple.seq());
    ++rows_;
    return true;
  }

  /// Grows every column (and the timestamp vector) to `n` rows, appending
  /// zero / empty-string entries. Builder API for columnar-native sources:
  /// size the batch once, then fill MutableInts / SetString in place.
  void ResizeRows(size_t n) {
    for (size_t i = 0; i < cols_.size(); ++i) {
      switch (schema_->type(i)) {
        case Value::Type::kInt64:
          cols_[i].i64.resize(n, 0);
          break;
        case Value::Type::kDouble:
          cols_[i].f64.resize(n, 0.0);
          break;
        case Value::Type::kString:
          cols_[i].str_off.resize(n, 0);
          cols_[i].str_len.resize(n, 0);
          break;
      }
    }
    ts_.resize(n, 0);
    if (!seqs_.empty()) seqs_.resize(n, 0);
    rows_ = n;
  }

  /// Points string cell (col, row) at a fresh arena copy of `s`.
  void SetString(size_t col, size_t row, std::string_view s) {
    DCHECK(schema_->type(col) == Value::Type::kString);
    DCHECK(row < rows_);
    Column& c = cols_[col];
    c.str_off[row] = static_cast<uint32_t>(arena_.size());
    c.str_len[row] = static_cast<uint32_t>(s.size());
    arena_.insert(arena_.end(), s.begin(), s.end());
  }

  // ---------------------------------------------------------------------
  // Typed access

  const int64_t* Ints(size_t col) const {
    DCHECK(schema_->type(col) == Value::Type::kInt64);
    return cols_[col].i64.data();
  }
  int64_t* MutableInts(size_t col) {
    DCHECK(schema_->type(col) == Value::Type::kInt64);
    return cols_[col].i64.data();
  }
  const double* Doubles(size_t col) const {
    DCHECK(schema_->type(col) == Value::Type::kDouble);
    return cols_[col].f64.data();
  }
  double* MutableDoubles(size_t col) {
    DCHECK(schema_->type(col) == Value::Type::kDouble);
    return cols_[col].f64.data();
  }
  std::string_view StringAt(size_t col, size_t row) const {
    DCHECK(schema_->type(col) == Value::Type::kString);
    const Column& c = cols_[col];
    return std::string_view(arena_.data() + c.str_off[row], c.str_len[row]);
  }

  const AppTime* Timestamps() const { return ts_.data(); }
  AppTime* MutableTimestamps() { return ts_.data(); }

  /// Router seq stamps are kept only when some appended tuple carried one
  /// (seq 0 means "never stamped" — see Tuple::seq()).
  bool has_seqs() const { return !seqs_.empty(); }
  uint64_t SeqAt(size_t row) const { return seqs_.empty() ? 0 : seqs_[row]; }

  /// Drops every row's seq stamp (back to "never stamped"). Kernels that
  /// rebuild rows (Projection) call this to match the row path, which
  /// constructs fresh Tuples with seq 0.
  void ClearSeqs() { seqs_.clear(); }

  // ---------------------------------------------------------------------
  // Row materialization (the fallback contract)

  /// Reconstructs row `i` exactly as appended: values, timestamp, seq.
  Tuple MaterializeRow(size_t row) const {
    DCHECK(row < rows_);
    std::vector<Value> values;
    values.reserve(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) {
      switch (schema_->type(c)) {
        case Value::Type::kInt64:
          values.emplace_back(cols_[c].i64[row]);
          break;
        case Value::Type::kDouble:
          values.emplace_back(cols_[c].f64[row]);
          break;
        case Value::Type::kString:
          values.emplace_back(std::string(StringAt(c, row)));
          break;
      }
    }
    Tuple t(std::move(values), ts_[row]);
    if (!seqs_.empty()) t.set_seq(seqs_[row]);
    return t;
  }

  /// Appends every row to `out` in order.
  void MaterializeInto(TupleBatch* out) const {
    out->reserve(out->size() + rows_);
    for (size_t i = 0; i < rows_; ++i) out->PushBack(MaterializeRow(i));
  }

  TupleBatch Materialize() const {
    TupleBatch out;
    MaterializeInto(&out);
    return out;
  }

  // ---------------------------------------------------------------------
  // Kernel primitives

  /// Keeps exactly the rows listed in `keep` (strictly increasing row
  /// indices), moving survivors down over the gaps — Selection's in-place
  /// compaction. String cells keep pointing at the untouched arena, so
  /// compaction moves 8-byte (offset, length) pairs, never string bytes.
  void CompactRows(const uint32_t* keep, size_t n) {
    DCHECK(n <= rows_);
    if (n == rows_) return;
    for (size_t ci = 0; ci < cols_.size(); ++ci) {
      Column& c = cols_[ci];
      switch (schema_->type(ci)) {
        case Value::Type::kInt64:
          for (size_t i = 0; i < n; ++i) c.i64[i] = c.i64[keep[i]];
          c.i64.resize(n);
          break;
        case Value::Type::kDouble:
          for (size_t i = 0; i < n; ++i) c.f64[i] = c.f64[keep[i]];
          c.f64.resize(n);
          break;
        case Value::Type::kString:
          for (size_t i = 0; i < n; ++i) {
            c.str_off[i] = c.str_off[keep[i]];
            c.str_len[i] = c.str_len[keep[i]];
          }
          c.str_off.resize(n);
          c.str_len.resize(n);
          break;
      }
    }
    for (size_t i = 0; i < n; ++i) ts_[i] = ts_[keep[i]];
    ts_.resize(n);
    if (!seqs_.empty()) {
      for (size_t i = 0; i < n; ++i) seqs_[i] = seqs_[keep[i]];
      seqs_.resize(n);
    }
    rows_ = n;
  }

  /// Rebinds the batch to the attribute subset `attrs` (Projection's
  /// kernel): output column j becomes input column attrs[j]. The first use
  /// of an input column moves it; repeats copy. The arena is shared, so
  /// projected string columns cost two 4-byte vectors per row, not bytes.
  /// `out_schema` must be the projected schema.
  void ProjectColumns(const std::vector<size_t>& attrs, SchemaPtr out_schema) {
    std::vector<Column> out;
    out.reserve(attrs.size());
    std::vector<bool> moved(cols_.size(), false);
    for (size_t a : attrs) {
      DCHECK(a < cols_.size());
      if (!moved[a]) {
        out.push_back(std::move(cols_[a]));
        moved[a] = true;
      } else {
        out.push_back(out[IndexOfFirst(attrs, a)]);
      }
    }
    cols_ = std::move(out);
    schema_ = std::move(out_schema);
  }

  /// Deep-copies `other`'s rows into this batch (fan-out copies). Vector
  /// copy-assignment reuses this batch's recycled storage when capacity
  /// suffices, so a pooled copy allocates nothing in steady state.
  void CopyFrom(const ColumnarBatch& other) {
    schema_ = other.schema_;
    rows_ = other.rows_;
    cols_ = other.cols_;
    ts_ = other.ts_;
    seqs_ = other.seqs_;
    arena_ = other.arena_;
  }

  /// Bytes currently bump-allocated in the string arena (tests/benches).
  size_t arena_bytes() const { return arena_.size(); }

 private:
  struct Column {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    // String cells: (offset, length) into arena_.
    std::vector<uint32_t> str_off;
    std::vector<uint32_t> str_len;
  };

  static size_t IndexOfFirst(const std::vector<size_t>& attrs, size_t a) {
    for (size_t j = 0;; ++j) {
      if (attrs[j] == a) return j;
    }
  }

  void AppendToArena(Column& c, const std::string& s) {
    DCHECK(arena_.size() + s.size() <= UINT32_MAX);
    c.str_off.push_back(static_cast<uint32_t>(arena_.size()));
    c.str_len.push_back(static_cast<uint32_t>(s.size()));
    arena_.insert(arena_.end(), s.begin(), s.end());
  }

  SchemaPtr schema_;
  size_t rows_ = 0;
  std::vector<Column> cols_;
  std::vector<AppTime> ts_;
  std::vector<uint64_t> seqs_;  // empty ⇒ every row's seq is 0
  std::vector<char> arena_;
};

/// Columnar batches travel the graph boxed: moving one across a queue or
/// between operators is a pointer move, and the pool (batch_pool.h)
/// recycles box and column storage together.
using ColumnarBatchPtr = std::unique_ptr<ColumnarBatch>;

}  // namespace flexstream

#endif  // FLEXSTREAM_TUPLE_COLUMNAR_BATCH_H_

#include "tuple/tuple.h"

#include <algorithm>

#include "util/logging.h"

namespace flexstream {

Tuple Tuple::EndOfStream(AppTime timestamp) {
  Tuple t;
  t.kind_ = Kind::kEndOfStream;
  t.timestamp_ = timestamp;
  return t;
}

Tuple Tuple::EpochBarrier(uint64_t epoch) {
  Tuple t;
  t.kind_ = Kind::kEpochBarrier;
  // The epoch number travels in the timestamp slot: barriers carry no
  // payload, and AppTime is wide enough for any epoch counter.
  t.timestamp_ = static_cast<AppTime>(epoch);
  return t;
}

uint64_t Tuple::epoch() const {
  DCHECK(is_barrier());
  return static_cast<uint64_t>(timestamp_);
}

const Value& Tuple::at(size_t i) const {
  DCHECK_LT(i, values_.size());
  return values_[i];
}

Value& Tuple::at(size_t i) {
  DCHECK_LT(i, values_.size());
  return values_[i];
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  DCHECK(left.is_data());
  DCHECK(right.is_data());
  std::vector<Value> values;
  values.reserve(left.arity() + right.arity());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values),
               std::max(left.timestamp_, right.timestamp_));
}

std::string Tuple::ToString() const {
  if (is_eos()) return "<EOS@" + std::to_string(timestamp_) + ">";
  if (is_barrier()) return "<BARRIER#" + std::to_string(timestamp_) + ">";
  std::string s = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) s += ", ";
    s += values_[i].ToString();
  }
  s += ")@";
  s += std::to_string(timestamp_);
  return s;
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace flexstream

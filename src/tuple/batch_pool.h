// Recycling pool for ColumnarBatch storage.
//
// A columnar batch's value is its pre-grown column vectors and arena;
// freeing them at every sink and re-growing them at every source would put
// the allocator right back on the hot path. The pool keeps dead batches on
// a small per-thread free list (no synchronization in steady state) backed
// by a bounded global overflow list, so storage produced on one thread and
// consumed on another still finds its way back to a producer. Batches are
// recycled whole — box and columns together — at batch granularity, so
// even the global list's mutex is touched at most once per batch, not per
// tuple.
//
// Ownership convention: whoever consumes a batch without forwarding it
// (a sink, a materializing fallback, a dropped fan-out copy) releases it.
// Forgetting to release is never a correctness bug — the unique_ptr frees
// the storage — it only forfeits recycling.

#ifndef FLEXSTREAM_TUPLE_BATCH_POOL_H_
#define FLEXSTREAM_TUPLE_BATCH_POOL_H_

#include <cstdint>

#include "tuple/columnar_batch.h"

namespace flexstream {
namespace columnar {

/// A batch bound to `schema`, with recycled column storage when available.
ColumnarBatchPtr AcquireBatch(SchemaPtr schema);

/// Returns a dead batch's storage to the pool. Accepts null (no-op).
void ReleaseBatch(ColumnarBatchPtr batch);

/// Materializes every row and recycles the columnar storage in one step —
/// the row-wise fallback's conversion helper.
TupleBatch MaterializeAndRelease(ColumnarBatchPtr batch);

/// Pool telemetry for tests and benches (process-wide counters).
struct PoolStats {
  uint64_t acquires = 0;
  uint64_t pool_hits = 0;  // acquires served from a free list
  uint64_t releases = 0;
};
PoolStats GetPoolStats();
void ResetPoolStatsForTest();

}  // namespace columnar
}  // namespace flexstream

#endif  // FLEXSTREAM_TUPLE_BATCH_POOL_H_

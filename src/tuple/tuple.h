// The stream element.
//
// A Tuple is either a data element (a row of Values plus an application
// timestamp in microseconds) or an end-of-stream punctuation. EOS tuples
// carry no payload; they implement the "special element which only carries
// this information" that Section 2.2 of the paper introduces to resolve the
// ambiguous hasNext semantics, and they are what finite experiment streams
// use to flush and terminate query graphs.

#ifndef FLEXSTREAM_TUPLE_TUPLE_H_
#define FLEXSTREAM_TUPLE_TUPLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "tuple/value.h"
#include "util/clock.h"

namespace flexstream {

class Tuple {
 public:
  enum class Kind : uint8_t {
    kData = 0,
    /// Punctuation: no further data elements will arrive on this edge.
    kEndOfStream = 1,
    /// Punctuation: every element of checkpoint epoch `epoch()` has been
    /// delivered on this edge (src/recovery/). Rides the normal element
    /// order; carries no payload.
    kEpochBarrier = 2,
  };

  /// An empty data tuple at application time 0.
  Tuple() = default;

  Tuple(std::initializer_list<Value> values, AppTime timestamp = 0)
      : timestamp_(timestamp), values_(values) {}

  Tuple(std::vector<Value> values, AppTime timestamp)
      : timestamp_(timestamp), values_(std::move(values)) {}

  /// Constructs the end-of-stream punctuation. `timestamp` is the logical
  /// time at which the stream ended (windows may flush up to it).
  static Tuple EndOfStream(AppTime timestamp = 0);

  /// Constructs the epoch-barrier punctuation for checkpoint `epoch`
  /// (epochs are 1-based; barrier k separates epoch k from epoch k+1).
  static Tuple EpochBarrier(uint64_t epoch);

  /// Convenience single-attribute constructors used pervasively by the
  /// synthetic workloads.
  static Tuple OfInt(int64_t v, AppTime timestamp = 0) {
    return Tuple({Value(v)}, timestamp);
  }
  static Tuple OfDouble(double v, AppTime timestamp = 0) {
    return Tuple({Value(v)}, timestamp);
  }

  Kind kind() const { return kind_; }
  bool is_data() const { return kind_ == Kind::kData; }
  bool is_eos() const { return kind_ == Kind::kEndOfStream; }
  bool is_barrier() const { return kind_ == Kind::kEpochBarrier; }

  /// The checkpoint epoch this barrier closes. Barrier tuples only.
  uint64_t epoch() const;

  AppTime timestamp() const { return timestamp_; }
  void set_timestamp(AppTime t) { timestamp_ = t; }

  /// Global arrival sequence number, stamped by a sequencing Router at the
  /// split point of a sharded operator (src/api/shard.h) and carried
  /// through the replica so the ordered Merge can restore arrival order.
  /// 0 means "never stamped". Deliberately excluded from operator== and
  /// operator< — the sequence number is routing metadata, not payload, and
  /// differential comparisons must not see it.
  uint64_t seq() const { return seq_; }
  void set_seq(uint64_t seq) { seq_ = seq; }

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const;
  Value& at(size_t i);
  const std::vector<Value>& values() const { return values_; }

  int64_t IntAt(size_t i) const { return at(i).AsInt64(); }
  double DoubleAt(size_t i) const { return at(i).AsDouble(); }
  const std::string& StringAt(size_t i) const { return at(i).AsString(); }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation of two tuples' attributes (used by joins). The result's
  /// timestamp is the max of the inputs' timestamps, following the usual
  /// stream-join convention.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  std::string ToString() const;

  /// Value equality: kind, timestamp and all attributes. EOS tuples compare
  /// equal iff their timestamps match.
  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.kind_ == b.kind_ && a.timestamp_ == b.timestamp_ &&
           a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

  /// Lexicographic order ignoring kind (EOS sorts by timestamp); used by
  /// tests to compare result multisets.
  friend bool operator<(const Tuple& a, const Tuple& b) {
    if (a.timestamp_ != b.timestamp_) return a.timestamp_ < b.timestamp_;
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.values_ < b.values_;
  }

 private:
  Kind kind_ = Kind::kData;
  AppTime timestamp_ = 0;
  uint64_t seq_ = 0;
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

}  // namespace flexstream

#endif  // FLEXSTREAM_TUPLE_TUPLE_H_

// The typed-schema layer for columnar batches.
//
// A Schema is the ordered list of attribute types a stream carries. It is
// fixed at graph-build time for well-typed pipelines (sources declare it,
// StreamEngine::Configure propagates it through schema-preserving
// operators) and travels with every ColumnarBatch so kernels can verify at
// delivery time — cheaply, by shared_ptr identity first — that the typed
// columns they are about to touch really hold what the static declaration
// promised. A mismatch is never an error on the hot path: the batch simply
// materializes to the row-wise fallback (DESIGN.md §17).

#ifndef FLEXSTREAM_TUPLE_SCHEMA_H_
#define FLEXSTREAM_TUPLE_SCHEMA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tuple/tuple.h"
#include "tuple/value.h"

namespace flexstream {

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Value::Type> types) : types_(std::move(types)) {}

  /// The runtime types of a concrete tuple's attributes.
  static Schema InferFrom(const Tuple& tuple) {
    std::vector<Value::Type> types;
    types.reserve(tuple.arity());
    for (const Value& v : tuple.values()) types.push_back(v.type());
    return Schema(std::move(types));
  }

  size_t arity() const { return types_.size(); }
  Value::Type type(size_t i) const { return types_[i]; }
  const std::vector<Value::Type>& types() const { return types_; }

  /// True when `tuple` is a data tuple whose attribute types match exactly.
  bool Matches(const Tuple& tuple) const {
    if (!tuple.is_data() || tuple.arity() != types_.size()) return false;
    for (size_t i = 0; i < types_.size(); ++i) {
      if (tuple.at(i).type() != types_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.types_ == b.types_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Value::Type> types_;
};

/// Schemas are shared immutably between batches, sources and operators so
/// the common "same stream, same schema" check is one pointer compare.
using SchemaPtr = std::shared_ptr<const Schema>;

inline SchemaPtr MakeSchema(std::vector<Value::Type> types) {
  return std::make_shared<const Schema>(std::move(types));
}

}  // namespace flexstream

#endif  // FLEXSTREAM_TUPLE_SCHEMA_H_

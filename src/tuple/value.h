// The attribute value type carried inside stream tuples.

#ifndef FLEXSTREAM_TUPLE_VALUE_H_
#define FLEXSTREAM_TUPLE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace flexstream {

/// A dynamically typed attribute value: 64-bit integer, double, or string.
/// Values are ordered and hashable so they can serve as join and group-by
/// keys. Comparisons between different runtime types are defined by the
/// variant's type order (int64 < double < string) — operators never compare
/// across types in practice, but the total order keeps containers safe.
class Value {
 public:
  enum class Type { kInt64 = 0, kDouble = 1, kString = 2 };

  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}              // NOLINT: implicit by design
  Value(int v) : v_(int64_t{v}) {}         // NOLINT
  Value(double v) : v_(v) {}               // NOLINT
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_int64() const { return type() == Type::kInt64; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_string() const { return type() == Type::kString; }

  /// Accessors require the matching runtime type (checked in debug builds).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric coercion: int64 and double convert; strings are an error.
  double ToDouble() const;

  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.v_ < b.v_;
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace flexstream

#endif  // FLEXSTREAM_TUPLE_VALUE_H_

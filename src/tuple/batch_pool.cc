#include "tuple/batch_pool.h"

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

namespace flexstream {
namespace columnar {
namespace {

// Per-thread free list: enough depth to cover a producer/consumer pair's
// in-flight window without touching the global list.
constexpr size_t kLocalCap = 8;
// Global overflow shared by all threads, bounding worst-case retention.
constexpr size_t kGlobalCap = 256;

std::atomic<uint64_t> g_acquires{0};
std::atomic<uint64_t> g_pool_hits{0};
std::atomic<uint64_t> g_releases{0};

struct GlobalPool {
  std::mutex mu;
  std::vector<ColumnarBatchPtr> free_list;
};

GlobalPool& Global() {
  static GlobalPool* pool = new GlobalPool();
  return *pool;
}

std::vector<ColumnarBatchPtr>& Local() {
  thread_local std::vector<ColumnarBatchPtr> free_list;
  return free_list;
}

}  // namespace

ColumnarBatchPtr AcquireBatch(SchemaPtr schema) {
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  std::vector<ColumnarBatchPtr>& local = Local();
  ColumnarBatchPtr batch;
  if (!local.empty()) {
    batch = std::move(local.back());
    local.pop_back();
  } else {
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    if (!global.free_list.empty()) {
      batch = std::move(global.free_list.back());
      global.free_list.pop_back();
    }
  }
  if (batch != nullptr) {
    g_pool_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    batch = std::make_unique<ColumnarBatch>();
  }
  batch->ResetSchema(std::move(schema));
  return batch;
}

void ReleaseBatch(ColumnarBatchPtr batch) {
  if (batch == nullptr) return;
  g_releases.fetch_add(1, std::memory_order_relaxed);
  batch->Clear();
  std::vector<ColumnarBatchPtr>& local = Local();
  if (local.size() < kLocalCap) {
    local.push_back(std::move(batch));
    return;
  }
  GlobalPool& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  if (global.free_list.size() < kGlobalCap) {
    global.free_list.push_back(std::move(batch));
  }
  // Else: drop on the floor; the unique_ptr frees the storage.
}

TupleBatch MaterializeAndRelease(ColumnarBatchPtr batch) {
  if (batch == nullptr) return TupleBatch();
  TupleBatch rows = batch->Materialize();
  ReleaseBatch(std::move(batch));
  return rows;
}

PoolStats GetPoolStats() {
  PoolStats s;
  s.acquires = g_acquires.load(std::memory_order_relaxed);
  s.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  s.releases = g_releases.load(std::memory_order_relaxed);
  return s;
}

void ResetPoolStatsForTest() {
  g_acquires.store(0, std::memory_order_relaxed);
  g_pool_hits.store(0, std::memory_order_relaxed);
  g_releases.store(0, std::memory_order_relaxed);
}

}  // namespace columnar
}  // namespace flexstream

// A contiguous run of data tuples delivered through the graph as one unit.
//
// Batch-at-a-time execution (DESIGN.md §11) amortizes the per-element
// virtual Receive dispatch and statistics bookkeeping that dominate the
// hot path once the queue itself is lock-free. A TupleBatch is the unit of
// that amortization: Operator::ReceiveBatch(batch, port) is semantically
// identical to calling Receive() once per element, in order, on the same
// port — operators that don't opt in fall back to exactly that loop.

#ifndef FLEXSTREAM_TUPLE_TUPLE_BATCH_H_
#define FLEXSTREAM_TUPLE_TUPLE_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "tuple/tuple.h"
#include "util/logging.h"

namespace flexstream {

/// The punctuation-split invariant: a TupleBatch only ever holds *data*
/// tuples. EOS and epoch-barrier punctuations never enter a batch —
/// producers flush whatever batch they are building and deliver the
/// punctuation through the per-tuple Receive path. That keeps batching
/// invisible to EOS fan-in accounting and Chandy-Lamport barrier
/// alignment: a batch is always entirely on one side of every barrier.
/// PushBack enforces the invariant in debug builds.
class TupleBatch {
 public:
  TupleBatch() = default;

  explicit TupleBatch(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {
#ifndef NDEBUG
    for (const Tuple& tuple : tuples_) DCHECK(tuple.is_data());
#endif
  }

  void PushBack(Tuple&& tuple) {
    DCHECK(tuple.is_data());
    tuples_.push_back(std::move(tuple));
  }
  void PushBack(const Tuple& tuple) {
    DCHECK(tuple.is_data());
    tuples_.push_back(tuple);
  }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  void clear() { tuples_.clear(); }
  void reserve(size_t n) { tuples_.reserve(n); }

  Tuple& operator[](size_t i) { return tuples_[i]; }
  const Tuple& operator[](size_t i) const { return tuples_[i]; }

  std::vector<Tuple>::iterator begin() { return tuples_.begin(); }
  std::vector<Tuple>::iterator end() { return tuples_.end(); }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  /// In-place filter preserving order: keeps exactly the tuples `pred`
  /// accepts, moving survivors down over the gaps (Selection's
  /// batch-native compaction).
  template <typename Pred>
  void Compact(Pred&& pred) {
    auto out = tuples_.begin();
    for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
      if (pred(static_cast<const Tuple&>(*it))) {
        if (out != it) *out = std::move(*it);
        ++out;
      }
    }
    tuples_.erase(out, tuples_.end());
  }

  /// Surrenders the underlying storage (sinks bulk-adopt the vector).
  std::vector<Tuple> TakeTuples() { return std::move(tuples_); }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_TUPLE_TUPLE_BATCH_H_

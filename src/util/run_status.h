// First-failure collector for one engine run.
//
// The runtime must degrade gracefully instead of CHECK-aborting when an
// operator fails at runtime (ISSUE 3; the paper's Section 6 overload
// experiments assume the system stays up under conditions the operators
// cannot sustain). A RunStatus is shared by every node of a configured
// query graph plus the partition workers executing it:
//
//  * an operator that cannot continue calls Operator::Fail(), which
//    reports here and poisons the operator (subsequent data is dropped);
//  * partition run loops poll failed() between batches and exit;
//  * producers blocked on a full bounded queue (QueueOp, kBlock policy)
//    poll failed() in their wait slices and stop blocking;
//  * StreamEngine::WaitUntilFinished*() observes the failure, cancels the
//    remaining workers, and surfaces the first error via RunResult().
//
// Only the *first* failure is kept — later ones are usually cascade noise —
// but every report is counted.

#ifndef FLEXSTREAM_UTIL_RUN_STATUS_H_
#define FLEXSTREAM_UTIL_RUN_STATUS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace flexstream {

class RunStatus {
 public:
  RunStatus() = default;
  RunStatus(const RunStatus&) = delete;
  RunStatus& operator=(const RunStatus&) = delete;

  /// Records a failure originating at `origin` (an operator name). The
  /// first report wins; all reports are counted. Thread-safe.
  void Report(Status status, const std::string& origin);

  /// Lock-free; polled by partition run loops and blocked producers.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// The first reported failure (OK when none), phrased so the failing
  /// operator is named: "operator '<origin>': <message>".
  Status first() const;

  /// Name of the operator that reported first (empty when none).
  std::string origin() const;

  int64_t report_count() const {
    return report_count_.load(std::memory_order_relaxed);
  }

  /// Re-arms for a fresh run (engine re-configuration).
  void Reset();

 private:
  std::atomic<bool> failed_{false};
  std::atomic<int64_t> report_count_{0};
  mutable std::mutex mutex_;
  Status first_;
  std::string origin_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_RUN_STATUS_H_

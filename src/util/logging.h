// Minimal logging and invariant-checking facility.
//
// LOG(level) << ...;   levels: INFO, WARNING, ERROR.
// CHECK(cond) << ...;  aborts with a message when cond is false.
// CHECK_EQ / NE / LT / LE / GT / GE compare and print both operands.
// DCHECK* compile to no-ops in NDEBUG builds.
//
// Log output goes to stderr and is serialized per-message so that
// multi-threaded schedulers produce readable interleavings.

#ifndef FLEXSTREAM_UTIL_LOGGING_H_
#define FLEXSTREAM_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace flexstream {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity that is actually emitted. Defaults to kWarning so that
/// tests and benchmarks stay quiet; benches raise it explicitly when needed.
LogSeverity MinLogLevel();
void SetMinLogLevel(LogSeverity severity);

/// Accumulates one log message and emits it (and aborts for kFatal) in the
/// destructor.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// glog-style helper: `operator&` binds looser than `<<`, so
/// `Voidify() & LOG(FATAL) << ...` voids the whole streamed expression and
/// can appear as a branch of `?:`.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace flexstream

#define FLEXSTREAM_LOG_INFO                                \
  ::flexstream::internal_logging::LogMessage(              \
      ::flexstream::internal_logging::LogSeverity::kInfo,  \
      __FILE__, __LINE__)                                  \
      .stream()
#define FLEXSTREAM_LOG_WARNING                               \
  ::flexstream::internal_logging::LogMessage(                \
      ::flexstream::internal_logging::LogSeverity::kWarning, \
      __FILE__, __LINE__)                                    \
      .stream()
#define FLEXSTREAM_LOG_ERROR                               \
  ::flexstream::internal_logging::LogMessage(              \
      ::flexstream::internal_logging::LogSeverity::kError, \
      __FILE__, __LINE__)                                  \
      .stream()
#define FLEXSTREAM_LOG_FATAL                               \
  ::flexstream::internal_logging::LogMessage(              \
      ::flexstream::internal_logging::LogSeverity::kFatal, \
      __FILE__, __LINE__)                                  \
      .stream()

#define LOG(severity) FLEXSTREAM_LOG_##severity

#define CHECK(cond)                                     \
  (cond) ? (void)0                                      \
         : ::flexstream::internal_logging::Voidify() &  \
               LOG(FATAL) << "CHECK failed: " #cond " "

#define FLEXSTREAM_CHECK_OP(name, op, a, b)                                \
  do {                                                                     \
    auto&& flexstream_check_a = (a);                                       \
    auto&& flexstream_check_b = (b);                                       \
    if (!(flexstream_check_a op flexstream_check_b)) {                     \
      LOG(FATAL) << "CHECK_" #name " failed: " #a " (" << flexstream_check_a \
                 << ") " #op " " #b " (" << flexstream_check_b << ") ";    \
    }                                                                      \
  } while (false)

#define CHECK_EQ(a, b) FLEXSTREAM_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) FLEXSTREAM_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) FLEXSTREAM_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) FLEXSTREAM_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) FLEXSTREAM_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) FLEXSTREAM_CHECK_OP(GE, >=, a, b)

#define CHECK_OK(expr)                                            \
  do {                                                            \
    const ::flexstream::Status& flexstream_check_status = (expr); \
    if (!flexstream_check_status.ok()) {                          \
      LOG(FATAL) << "CHECK_OK failed: "                           \
                 << flexstream_check_status.ToString() << " ";    \
    }                                                             \
  } while (false)

#ifdef NDEBUG
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) \
  while (false) CHECK_NE(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_GT(a, b) \
  while (false) CHECK_GT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // FLEXSTREAM_UTIL_LOGGING_H_

// Time vocabulary used throughout flexstream.
//
// Two distinct notions of time exist in a stream system and must not be
// mixed up:
//  * Wall time (steady_clock) — used by schedulers, rate-controlled sources
//    and benchmarks to pace and measure real execution.
//  * Application time — the logical timestamp carried inside each Tuple,
//    expressed in microseconds. Window operators use application time so
//    that experiments are deterministic and can be run faster than real
//    time (see DESIGN.md, "Substitutions").

#ifndef FLEXSTREAM_UTIL_CLOCK_H_
#define FLEXSTREAM_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace flexstream {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = SteadyClock::duration;

/// Application time: microseconds on a logical stream timeline.
using AppTime = int64_t;

inline constexpr AppTime kMicrosPerSecond = 1'000'000;
inline constexpr AppTime kMicrosPerMinute = 60 * kMicrosPerSecond;

inline TimePoint Now() { return SteadyClock::now(); }

inline double ToSeconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

inline double ToMillis(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

inline int64_t ToMicros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

inline Duration FromMicros(int64_t micros) {
  return std::chrono::microseconds(micros);
}

inline Duration FromSecondsD(double seconds) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(seconds));
}

/// Sleeps until the given deadline. Short remaining waits spin to keep
/// rate-controlled sources accurate at high rates.
void SleepUntil(TimePoint deadline);

/// A restartable timer over the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  Duration Elapsed() const { return Now() - start_; }
  double ElapsedSeconds() const { return ToSeconds(Elapsed()); }
  double ElapsedMillis() const { return ToMillis(Elapsed()); }
  int64_t ElapsedMicros() const { return ToMicros(Elapsed()); }

 private:
  TimePoint start_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_CLOCK_H_

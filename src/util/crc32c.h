// CRC32C (Castagnoli) — the checksum guarding every durable checkpoint
// record and file (src/recovery/snapshot_store.h). Software table-driven
// implementation; the polynomial matches SSE4.2 crc32 hardware so files
// stay verifiable by standard tooling.

#ifndef FLEXSTREAM_UTIL_CRC32C_H_
#define FLEXSTREAM_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace flexstream {

/// Extends `crc` (a previous Crc32c result, or 0 to start) over `n` bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_CRC32C_H_

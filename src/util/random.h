// Deterministic random number generation for workloads and tests.
//
// A thin wrapper around xoshiro256** plus the distributions the paper's
// evaluation needs: uniform integers/doubles, exponential inter-arrival
// times (Poisson arrival processes, Section 6.2), Poisson counts, and Zipf
// keys for skewed example workloads.

#ifndef FLEXSTREAM_UTIL_RANDOM_H_
#define FLEXSTREAM_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace flexstream {

/// xoshiro256** seeded via splitmix64. Deterministic for a given seed,
/// fast, and independent of the standard library's unspecified engines.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextU64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double UniformDouble();

  /// Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0). The
  /// inter-arrival time of a Poisson process with rate 1/mean.
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int64_t Poisson(double mean);

  /// Zipf-distributed value in [1, n] with exponent s, via inverse-CDF over
  /// a lazily built table (rebuilt when (n, s) changes).
  int64_t Zipf(int64_t n, double s);

 private:
  uint64_t s_[4];
  // Cached Zipf CDF for the last (n, s) pair.
  int64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_RANDOM_H_

// Calibrated CPU-burning work units.
//
// The paper's evaluation (Section 6.6) uses operators with precisely chosen
// processing costs (2.7 us projection, 530 ns selection, a 2 s "complex
// predicate evaluation"). To reproduce those experiments we need a way to
// make an operator consume a given amount of CPU time without sleeping —
// a sleeping operator would release the core and hide exactly the stalls
// the paper studies. BusyWork burns cycles in a loop whose per-iteration
// cost is calibrated once per process.

#ifndef FLEXSTREAM_UTIL_BUSY_WORK_H_
#define FLEXSTREAM_UTIL_BUSY_WORK_H_

#include <cstdint>

#include "util/clock.h"

namespace flexstream {

/// Burns approximately `iterations` units of the calibration loop.
/// The loop body is opaque to the optimizer.
void BurnIterations(uint64_t iterations);

/// Returns the calibrated number of loop iterations per microsecond of CPU
/// time. Calibrated lazily on first use; thread-safe.
double IterationsPerMicro();

/// Burns approximately `micros` microseconds of CPU time. For costs above
/// ~100 us the burn re-checks the clock so accuracy does not depend on the
/// calibration staying valid under frequency scaling.
void BurnMicros(double micros);

/// Burns CPU until the steady clock reaches `deadline`.
void BurnUntil(TimePoint deadline);

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_BUSY_WORK_H_

#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace flexstream {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Int(int64_t value) { return std::to_string(value); }

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace flexstream

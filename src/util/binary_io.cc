#include "util/binary_io.h"

#include <cstring>

namespace flexstream {

void BinaryWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void BinaryWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

void BinaryWriter::Value(const flexstream::Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case Value::Type::kInt64:
      I64(v.AsInt64());
      break;
    case Value::Type::kDouble:
      F64(v.AsDouble());
      break;
    case Value::Type::kString:
      Str(v.AsString());
      break;
  }
}

void BinaryWriter::Tuple(const flexstream::Tuple& t) {
  U8(static_cast<uint8_t>(t.kind()));
  I64(t.timestamp());
  U64(t.seq());
  U32(static_cast<uint32_t>(t.arity()));
  for (const auto& v : t.values()) Value(v);
}

Status BinaryReader::Take(size_t n, const char** p) {
  if (data_.size() - pos_ < n) {
    return Status::OutOfRange("binary decode past end of input");
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return Status::Ok();
}

Status BinaryReader::U8(uint8_t* v) {
  const char* p;
  Status s = Take(1, &p);
  if (!s.ok()) return s;
  *v = static_cast<uint8_t>(*p);
  return Status::Ok();
}

Status BinaryReader::U32(uint32_t* v) {
  const char* p;
  Status s = Take(4, &p);
  if (!s.ok()) return s;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return Status::Ok();
}

Status BinaryReader::U64(uint64_t* v) {
  const char* p;
  Status s = Take(8, &p);
  if (!s.ok()) return s;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return Status::Ok();
}

Status BinaryReader::I64(int64_t* v) {
  uint64_t bits;
  Status s = U64(&bits);
  if (!s.ok()) return s;
  *v = static_cast<int64_t>(bits);
  return Status::Ok();
}

Status BinaryReader::F64(double* v) {
  uint64_t bits;
  Status s = U64(&bits);
  if (!s.ok()) return s;
  std::memcpy(v, &bits, sizeof(*v));
  return Status::Ok();
}

Status BinaryReader::Str(std::string* out) {
  uint32_t len;
  Status s = U32(&len);
  if (!s.ok()) return s;
  const char* p;
  s = Take(len, &p);
  if (!s.ok()) return s;
  out->assign(p, len);
  return Status::Ok();
}

Status BinaryReader::Value(flexstream::Value* v) {
  uint8_t tag;
  Status s = U8(&tag);
  if (!s.ok()) return s;
  switch (static_cast<Value::Type>(tag)) {
    case Value::Type::kInt64: {
      int64_t i;
      s = I64(&i);
      if (!s.ok()) return s;
      *v = flexstream::Value(i);
      return Status::Ok();
    }
    case Value::Type::kDouble: {
      double d;
      s = F64(&d);
      if (!s.ok()) return s;
      *v = flexstream::Value(d);
      return Status::Ok();
    }
    case Value::Type::kString: {
      std::string str;
      s = Str(&str);
      if (!s.ok()) return s;
      *v = flexstream::Value(std::move(str));
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown Value type tag " +
                                 std::to_string(tag));
}

Status BinaryReader::Tuple(flexstream::Tuple* t) {
  uint8_t kind;
  int64_t timestamp;
  uint64_t seq;
  uint32_t arity;
  Status s = U8(&kind);
  if (s.ok()) s = I64(&timestamp);
  if (s.ok()) s = U64(&seq);
  if (s.ok()) s = U32(&arity);
  if (!s.ok()) return s;
  switch (static_cast<Tuple::Kind>(kind)) {
    case Tuple::Kind::kData: {
      // Every Value costs at least its one-byte type tag, so an arity
      // beyond the remaining input is corrupt — reject it before
      // reserve() turns a garbage count into a std::length_error.
      if (arity > remaining()) {
        return Status::InvalidArgument(
            "tuple arity " + std::to_string(arity) +
            " exceeds the " + std::to_string(remaining()) +
            " bytes remaining");
      }
      std::vector<flexstream::Value> values;
      values.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        flexstream::Value v;
        s = Value(&v);
        if (!s.ok()) return s;
        values.push_back(std::move(v));
      }
      *t = flexstream::Tuple(std::move(values), timestamp);
      t->set_seq(seq);
      return Status::Ok();
    }
    case Tuple::Kind::kEndOfStream:
      if (arity != 0) return Status::InvalidArgument("EOS tuple with payload");
      *t = Tuple::EndOfStream(timestamp);
      t->set_seq(seq);
      return Status::Ok();
    case Tuple::Kind::kEpochBarrier:
      if (arity != 0) {
        return Status::InvalidArgument("barrier tuple with payload");
      }
      *t = Tuple::EpochBarrier(static_cast<uint64_t>(timestamp));
      t->set_seq(seq);
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown Tuple kind tag " +
                                 std::to_string(kind));
}

}  // namespace flexstream

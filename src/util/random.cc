#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace flexstream {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  DCHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless bounded generation with rejection.
  for (;;) {
    const uint64_t x = NextU64();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const uint64_t low = static_cast<uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DCHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double mean) {
  DCHECK_GT(mean, 0.0);
  // Avoid log(0).
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int64_t Rng::Poisson(double mean) {
  DCHECK_GE(mean, 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double product = UniformDouble();
    while (product > limit) {
      ++k;
      product *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  // Box-Muller transform.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double value = mean + std::sqrt(mean) * z + 0.5;
  return value < 0.0 ? 0 : static_cast<int64_t>(value);
}

int64_t Rng::Zipf(int64_t n, double s) {
  DCHECK_GT(n, 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double sum = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), s);
      zipf_cdf_[static_cast<size_t>(i - 1)] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
  }
  const double u = UniformDouble();
  // Binary search for the first CDF entry >= u.
  int64_t lo = 0;
  int64_t hi = n - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (zipf_cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace flexstream

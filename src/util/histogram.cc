#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/binary_io.h"

namespace flexstream {

Histogram::Histogram() = default;

int Histogram::BucketFor(double value) {
  if (!(value >= 1.0)) return 0;  // <1 (and NaN) in the underflow bucket
  const double log_value = std::log10(value);
  const int bucket =
      1 + static_cast<int>(log_value * kBucketsPerDecade);
  return std::min(bucket, kBucketCount - 1);
}

double Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0.0;
  return std::pow(10.0, static_cast<double>(bucket - 1) /
                            kBucketsPerDecade);
}

void Histogram::Add(double value) {
  ++buckets_[static_cast<size_t>(BucketFor(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  Histogram delta;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    delta.buckets_[i] = std::max<int64_t>(0, buckets_[i] - earlier.buckets_[i]);
    delta.count_ += delta.buckets_[i];
  }
  if (delta.count_ == 0) return delta;
  delta.sum_ = std::max(0.0, sum_ - earlier.sum_);
  // Extrema of the window are not recoverable from bucket counts; use the
  // bounds of the first/last surviving bucket, tightened by the lifetime
  // extrema (a window sample can never undercut the lifetime min or exceed
  // the lifetime max).
  for (int b = 0; b < kBucketCount; ++b) {
    if (delta.buckets_[static_cast<size_t>(b)] == 0) continue;
    delta.min_ = std::max(BucketLowerBound(b), min_);
    break;
  }
  for (int b = kBucketCount - 1; b >= 0; --b) {
    if (delta.buckets_[static_cast<size_t>(b)] == 0) continue;
    delta.max_ = std::min(BucketLowerBound(b + 1), max_);
    break;
  }
  delta.max_ = std::max(delta.max_, delta.min_);
  return delta;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_ - 1);
  int64_t cumulative = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    const int64_t in_bucket = buckets_[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) > target) {
      // Interpolate within the bucket.
      const double lo = std::max(BucketLowerBound(b), min_);
      const double hi = std::min(BucketLowerBound(b + 1), max_);
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + frac * std::max(0.0, hi - lo);
    }
    cumulative += in_bucket;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "count=%lld mean=%.1f p50=%.1f p95=%.1f p99=%.1f p999=%.1f max=%.1f",
      static_cast<long long>(count_), mean(), Percentile(0.50),
      Percentile(0.95), Percentile(0.99), Percentile(0.999), max());
  return buf;
}

std::string Histogram::PercentilesSummary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "p50=%.0f p95=%.0f p99=%.0f p999=%.0f",
                Percentile(0.50), Percentile(0.95), Percentile(0.99),
                Percentile(0.999));
  return buf;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void Histogram::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  uint32_t nonzero = 0;
  for (int64_t b : buckets_) {
    if (b != 0) ++nonzero;
  }
  w.U32(nonzero);
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    w.U32(static_cast<uint32_t>(i));
    w.I64(buckets_[i]);
  }
  w.I64(count_);
  w.F64(sum_);
  w.F64(min_);
  w.F64(max_);
}

Status Histogram::DecodeFrom(BinaryReader* reader, Histogram* out) {
  Histogram h;
  uint32_t nonzero = 0;
  Status s = reader->U32(&nonzero);
  if (!s.ok()) return s;
  if (nonzero > static_cast<uint32_t>(kBucketCount)) {
    return Status::InvalidArgument("histogram bucket count out of range");
  }
  for (uint32_t i = 0; i < nonzero; ++i) {
    uint32_t index = 0;
    int64_t value = 0;
    s = reader->U32(&index);
    if (s.ok()) s = reader->I64(&value);
    if (!s.ok()) return s;
    if (index >= static_cast<uint32_t>(kBucketCount)) {
      return Status::InvalidArgument("histogram bucket index out of range");
    }
    h.buckets_[index] = value;
  }
  s = reader->I64(&h.count_);
  if (s.ok()) s = reader->F64(&h.sum_);
  if (s.ok()) s = reader->F64(&h.min_);
  if (s.ok()) s = reader->F64(&h.max_);
  if (!s.ok()) return s;
  *out = h;
  return Status::Ok();
}

}  // namespace flexstream

// A bounded lock-free single-producer/single-consumer ring buffer.
//
// Used as the fast path inside QueueOp when a decoupling queue is known to
// have exactly one producing partition and one consuming partition — the
// common case after stall-avoiding placement, where each queue sits on one
// inter-partition edge.

#ifndef FLEXSTREAM_UTIL_SPSC_RING_H_
#define FLEXSTREAM_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/logging.h"

namespace flexstream {

/// Fixed-capacity SPSC queue. Capacity is rounded up to a power of two.
/// TryPush/TryPop never block; the caller decides how to handle a full or
/// empty ring (QueueOp falls back to an overflow list on the producer side).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Returns false when the ring is full.
  bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Returns nullopt when the ring is empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Racy size estimate; exact when called from the producer or consumer
  /// while the other side is quiescent.
  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer-written / consumer-written indices on separate cache lines.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_SPSC_RING_H_

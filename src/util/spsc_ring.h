// A bounded lock-free single-producer/single-consumer ring buffer.
//
// Used as the fast path inside QueueOp when a decoupling queue is known to
// have exactly one producing partition and one consuming partition — the
// common case after stall-avoiding placement, where each queue sits on one
// inter-partition edge.

#ifndef FLEXSTREAM_UTIL_SPSC_RING_H_
#define FLEXSTREAM_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/logging.h"

namespace flexstream {

/// Fixed-capacity SPSC queue. Capacity is rounded up to a power of two.
/// TryPush/TryPop never block; the caller decides how to handle a full or
/// empty ring (QueueOp spills to its mutex-protected overflow deque on the
/// producer side).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Returns false when the ring is full.
  bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      // Only now pay the cross-core read of the consumer's index.
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Returns nullopt when the ring is empty. The vacated slot is reset to a
  /// default-constructed T so a popped element's heap payload (e.g. a
  /// Tuple's values vector) is released immediately instead of staying
  /// pinned until the slot is overwritten by a later push.
  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (!ConsumerSees(tail)) return std::nullopt;
    T value = std::move(slots_[tail & mask_]);
    slots_[tail & mask_] = T();
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Producer-side push that skips the full check and the by-value
  /// parameter copy of TryPush. Precondition: the caller just observed
  /// !FullApprox() — which is producer-exact, so the slot is free.
  void PushUnchecked(T&& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    DCHECK(head - cached_tail_ <= mask_);
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
  }

  /// Producer-side: free slots available right now, refreshing the cached
  /// consumer index only when fewer than `want` appear free. Like
  /// FullApprox, the answer is producer-exact: only the consumer frees
  /// space, so the count can grow but never shrink before the producer's
  /// next push.
  size_t FreeForProducer(size_t want) const {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t free = capacity() - (head - cached_tail_);
    if (free < want) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = capacity() - (head - cached_tail_);
    }
    return free;
  }

  /// Producer-side bulk push: fills `n` consecutive slots with `make(i)`
  /// for i in [0, n) and publishes them all with ONE release store of the
  /// head index — the per-element store of PushUnchecked amortized to once
  /// per run. Precondition: FreeForProducer(n) just returned >= n.
  template <typename MakeFn>
  void PushBulkUnchecked(size_t n, MakeFn&& make) {
    const size_t head = head_.load(std::memory_order_relaxed);
    DCHECK(capacity() - (head - cached_tail_) >= n);
    for (size_t i = 0; i < n; ++i) {
      slots_[(head + i) & mask_] = make(i);
    }
    head_.store(head + n, std::memory_order_release);
  }

  /// Consumer-side peek at the element `offset` slots past the front — the
  /// random-access companion of FrontMutable for bulk drains. Precondition:
  /// offset < AvailableToConsumer() (the slot was observed). The pointer
  /// stays valid until the consumer pops past it.
  T* AtFromFront(size_t offset) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    return &slots_[(tail + offset) & mask_];
  }

  /// Consumer-side bulk pop: releases the first `n` slots with ONE release
  /// store of the tail index, resetting each vacated slot to a
  /// default-constructed T (same payload-release guarantee as PopFront).
  /// Precondition: n <= AvailableToConsumer().
  void PopFrontBulk(size_t n) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = T();
    }
    tail_.store(tail + n, std::memory_order_release);
  }

  /// Consumer-side peek at the oldest element, or nullptr when empty. The
  /// pointer stays valid until the consumer pops: the producer never
  /// rewrites a slot while head - tail <= mask_. Must only be called from
  /// the consumer thread.
  const T* Front() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (!ConsumerSees(tail)) return nullptr;
    return &slots_[tail & mask_];
  }

  /// Mutable peek: lets the consumer move the element's payload out in
  /// place (the producer cannot rewrite the slot until PopFront advances
  /// the tail). Consumer-side.
  T* FrontMutable() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (!ConsumerSees(tail)) return nullptr;
    return &slots_[tail & mask_];
  }

  /// Drops the front element, resetting its slot to a default-constructed
  /// T (same payload-release guarantee as TryPop). Precondition: the ring
  /// is non-empty, e.g. FrontMutable() just returned non-null.
  /// Consumer-side.
  void PopFront() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    DCHECK(ConsumerSees(tail));
    slots_[tail & mask_] = T();
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Pops the front element into `out`. Returns false when empty.
  /// Consumer-side.
  bool PopInto(T* out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (!ConsumerSees(tail)) return false;
    *out = std::move(slots_[tail & mask_]);
    slots_[tail & mask_] = T();
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side: number of elements known to be present, refreshing the
  /// cached producer index only when the cache reads empty. The count may
  /// understate the true size (the cache is stale) but never overstates
  /// it, so the consumer may pop exactly this many elements unchecked.
  size_t AvailableToConsumer() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
    }
    return cached_head_ - tail;
  }

  /// Producer-side: true when a TryPush would fail right now. Exact for
  /// the producer — only the consumer frees space, so a not-full answer
  /// cannot be invalidated before the producer's next push. Callers use
  /// this to avoid TryPush's pass-by-value consuming an item on failure.
  bool FullApprox() const {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ <= mask_) return false;
    cached_tail_ = tail_.load(std::memory_order_acquire);
    return head - cached_tail_ > mask_;
  }

  /// Racy size estimate; exact when called from the producer or consumer
  /// while the other side is quiescent.
  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  size_t capacity() const { return mask_ + 1; }

 private:
  /// Consumer-side visibility check for slot `tail`, refreshing the cached
  /// producer index only when it claims the ring is empty. Elements below
  /// `cached_head_` were observed by an acquire load of head_, so their
  /// slots — and everything else the producer published before them, such
  /// as overflow spills — are visible without another cross-core read.
  bool ConsumerSees(size_t tail) const {
    if (tail != cached_head_) return true;
    cached_head_ = head_.load(std::memory_order_acquire);
    return tail != cached_head_;
  }

  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer-written / consumer-written indices on separate cache lines,
  // each paired with that side's private cache of the *other* side's
  // index. The caches turn the per-element cross-core acquire load into a
  // once-per-refill/once-per-drain event (see TryPush / ConsumerSees).
  alignas(64) std::atomic<size_t> head_{0};
  mutable size_t cached_tail_ = 0;
  alignas(64) std::atomic<size_t> tail_{0};
  mutable size_t cached_head_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_SPSC_RING_H_

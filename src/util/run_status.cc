#include "util/run_status.h"

#include "util/logging.h"

namespace flexstream {

void RunStatus::Report(Status status, const std::string& origin) {
  CHECK(!status.ok()) << "reporting an OK status as a failure";
  report_count_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_.ok()) return;  // first failure wins
    first_ = std::move(status);
    origin_ = origin;
  }
  // Publish after the payload is in place: failed() readers that observe
  // true will see the populated first_/origin_ under the mutex.
  failed_.store(true, std::memory_order_release);
}

Status RunStatus::first() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_.ok()) return Status::Ok();
  return Status(first_.code(),
                "operator '" + origin_ + "': " + first_.message());
}

std::string RunStatus::origin() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return origin_;
}

void RunStatus::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  first_ = Status::Ok();
  origin_.clear();
  report_count_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_release);
}

}  // namespace flexstream

// Plain-text table and CSV emission for benchmark harnesses.
//
// Every figure-reproduction bench prints (a) a human-readable aligned table
// to stdout mirroring the rows/series the paper reports and (b) optionally
// the same data as CSV for plotting.

#ifndef FLEXSTREAM_UTIL_TABLE_H_
#define FLEXSTREAM_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace flexstream {

/// A simple column-aligned table. All rows must have the same number of
/// cells as the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; string cells are used verbatim.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision (default 3 digits).
  static std::string Num(double value, int precision = 3);
  static std::string Int(int64_t value);

  /// Writes an aligned, pipe-separated table.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting beyond commas/newlines needed by
  /// our numeric content).
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_TABLE_H_

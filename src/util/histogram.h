// A log-bucketed histogram for latency measurements.
//
// Values (microseconds, typically) are counted in buckets whose width
// grows geometrically, giving ~4% relative resolution over nine decades
// with fixed memory. Supports mean, percentiles, min/max, and merging.

#ifndef FLEXSTREAM_UTIL_HISTOGRAM_H_
#define FLEXSTREAM_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace flexstream {

class BinaryReader;

class Histogram {
 public:
  Histogram();

  /// Records one sample (negative samples count into the first bucket).
  void Add(double value);

  void Merge(const Histogram& other);

  /// The histogram of samples recorded *after* `earlier` was snapshotted,
  /// assuming `earlier` is a prefix of this histogram (same instance,
  /// snapshotted twice). Per-bucket subtraction, clamped at zero so a
  /// mismatched pair degrades to an empty/short delta instead of
  /// underflowing. min/max are reconstructed from the surviving buckets'
  /// bounds (the exact extrema of the window are not recoverable), so the
  /// delta's percentiles are bucket-accurate (~4%) like everything else.
  /// The SLO controller uses this for per-control-interval percentiles.
  Histogram DeltaSince(const Histogram& earlier) const;

  int64_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;

  /// Value at quantile q in [0, 1], interpolated within the bucket.
  /// Returns 0 for an empty histogram.
  double Percentile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... p999=... max=..."
  std::string Summary() const;

  /// "p50=... p95=... p99=... p999=..." — the tail-latency quartet every
  /// stats table and watchdog snapshot reports. Values in the histogram's
  /// native unit (microseconds throughout the engine), printed with no
  /// decimals.
  std::string PercentilesSummary() const;

  void Reset();

  /// Exact structural equality (buckets, count, sum, min, max). Two
  /// histograms built by merging the same samples in any grouping compare
  /// equal — the property the merge tests assert.
  friend bool operator==(const Histogram& a, const Histogram& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ && a.min_ == b.min_ &&
           a.max_ == b.max_ && a.buckets_ == b.buckets_;
  }
  friend bool operator!=(const Histogram& a, const Histogram& b) {
    return !(a == b);
  }

  /// Largest value that still lands in a finite bucket; anything above
  /// falls into the shared overflow bucket (tests pin this behavior).
  static double MaxTrackable() { return 1e9; }

  /// Durable-checkpoint serialization (util/binary_io.h): the exact
  /// internal state — bucket counts, count, sum, min, max — so a decoded
  /// histogram compares operator== to the original. Non-empty buckets are
  /// run-length indexed (most of the 290 buckets are zero in practice).
  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(BinaryReader* reader, Histogram* out);

 private:
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kDecades = 9;  // 1 us .. 1e9 us
  static constexpr int kBucketCount = kBucketsPerDecade * kDecades + 2;

  static int BucketFor(double value);
  static double BucketLowerBound(int bucket);

  std::array<int64_t, kBucketCount> buckets_{};
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_HISTOGRAM_H_

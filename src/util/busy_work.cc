#include "util/busy_work.h"

#include <atomic>
#include <mutex>

namespace flexstream {
namespace {

// Sink that keeps the burn loop observable so it is not optimized away.
std::atomic<uint64_t> g_burn_sink{0};

double CalibrateIterationsPerMicro() {
  // Warm up, then time a fixed iteration count a few times and take the
  // fastest run (least disturbed by scheduling noise).
  constexpr uint64_t kProbe = 2'000'000;
  BurnIterations(kProbe / 10);
  double best = 0.0;
  for (int round = 0; round < 3; ++round) {
    const TimePoint start = Now();
    BurnIterations(kProbe);
    const int64_t micros = ToMicros(Now() - start);
    if (micros <= 0) continue;
    const double rate = static_cast<double>(kProbe) / micros;
    if (rate > best) best = rate;
  }
  return best > 0.0 ? best : 1000.0;  // fallback: ~1 iteration/ns
}

}  // namespace

void BurnIterations(uint64_t iterations) {
  uint64_t acc = g_burn_sink.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < iterations; ++i) {
    // A cheap mix that the optimizer cannot collapse because acc escapes.
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  g_burn_sink.store(acc, std::memory_order_relaxed);
}

double IterationsPerMicro() {
  static std::once_flag once;
  static double rate = 0.0;
  std::call_once(once, [] { rate = CalibrateIterationsPerMicro(); });
  return rate;
}

void BurnMicros(double micros) {
  if (micros <= 0.0) return;
  if (micros <= 100.0) {
    BurnIterations(static_cast<uint64_t>(micros * IterationsPerMicro()));
    return;
  }
  BurnUntil(Now() + FromMicros(static_cast<int64_t>(micros)));
}

void BurnUntil(TimePoint deadline) {
  // Burn in ~20 us slices, re-checking the clock between slices.
  const uint64_t slice =
      static_cast<uint64_t>(20.0 * IterationsPerMicro());
  while (Now() < deadline) {
    BurnIterations(slice);
  }
}

}  // namespace flexstream

// Lightweight error-handling vocabulary for flexstream.
//
// The library does not use exceptions (following the Google C++ style this
// project adopts). Fallible operations return a Status or a Result<T>;
// programming errors are caught by the CHECK macros in util/logging.h.

#ifndef FLEXSTREAM_UTIL_STATUS_H_
#define FLEXSTREAM_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace flexstream {

/// Machine-readable error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error. The value is only accessible when ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  // Ref-qualified: on a temporary Result, `.status()` must return by
  // value — a reference into the temporary dangles as soon as the
  // full-expression ends (e.g. `const Status& s = F().status();`).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Requires ok(). The CHECK lives in the caller's hands; accessing the
  /// value of a failed Result is a programming error.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }

  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_STATUS_H_

// Canonical binary encoding for durable checkpoints.
//
// The snapshot store (src/recovery/snapshot_store.h) persists operator
// state with these primitives. The encoding is deliberately boring and
// deterministic: little-endian fixed-width integers, IEEE-754 doubles by
// bit pattern, length-prefixed strings. Determinism is a format guarantee,
// not an accident — operators must emit hash-map contents in sorted key
// order so encode(decode(bytes)) == bytes, the property the byte-exact
// round-trip tests pin (tests/state_serde_test.cc).
//
// BinaryReader is bounds-checked and Status-returning: a torn or corrupted
// file must surface as a clean decode error, never as UB.

#ifndef FLEXSTREAM_UTIL_BINARY_IO_H_
#define FLEXSTREAM_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "tuple/tuple.h"
#include "tuple/value.h"
#include "util/status.h"

namespace flexstream {

/// Appends fixed-width little-endian primitives to a backing string.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern — exact, including -0.0 and NaN payloads.
  void F64(double v);
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s);

  void Value(const flexstream::Value& v);
  /// kind + timestamp + seq + values. seq is routing metadata excluded
  /// from Tuple::operator==, but buffered join/window state carries it
  /// through sharded replicas, so durable state must preserve it.
  void Tuple(const flexstream::Tuple& t);

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

/// Bounds-checked reads over an immutable byte view. Every method returns
/// OutOfRange once the input is exhausted and InvalidArgument on malformed
/// content; after an error the reader is left positioned at the failure.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Str(std::string* s);

  Status Value(flexstream::Value* v);
  Status Tuple(flexstream::Tuple* t);

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Take(size_t n, const char** p);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_BINARY_IO_H_

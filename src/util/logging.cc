#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flexstream {
namespace internal_logging {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogSeverity::kWarning)};

std::mutex& OutputMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity MinLogLevel() {
  return static_cast<LogSeverity>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogSeverity severity) {
  g_min_level.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityTag(severity) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogLevel() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace flexstream

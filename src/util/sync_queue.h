// An unbounded mutex-protected multi-producer/multi-consumer queue with
// close semantics and blocking pops.
//
// This is the general-purpose channel underneath QueueOp (decoupling
// queues can in general have multiple upstream producers — e.g., after a
// union — and are drained by whichever partition thread the scheduler
// assigns) and is also used for control messages.

#ifndef FLEXSTREAM_UTIL_SYNC_QUEUE_H_
#define FLEXSTREAM_UTIL_SYNC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace flexstream {

template <typename T>
class SyncQueue {
 public:
  SyncQueue() = default;
  SyncQueue(const SyncQueue&) = delete;
  SyncQueue& operator=(const SyncQueue&) = delete;

  /// Enqueues a value. Returns false (dropping the value) if the queue has
  /// been closed.
  bool Push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when empty (regardless of closed state).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Blocking pop; returns nullopt only when the queue is closed *and*
  /// drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// After Close, pushes are rejected; pending items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_UTIL_SYNC_QUEUE_H_

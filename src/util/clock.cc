#include "util/clock.h"

namespace flexstream {

void SleepUntil(TimePoint deadline) {
  // sleep_for on Linux typically overshoots by ~50us; sleep for most of the
  // interval and spin for the tail so high-rate sources stay precise.
  constexpr auto kSpinWindow = std::chrono::microseconds(100);
  for (;;) {
    const TimePoint now = Now();
    if (now >= deadline) return;
    const Duration remaining = deadline - now;
    if (remaining > kSpinWindow) {
      std::this_thread::sleep_for(remaining - kSpinWindow);
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace flexstream

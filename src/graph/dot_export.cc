#include "graph/dot_export.h"

#include <sstream>

#include "graph/query_graph.h"
#include "operators/operator.h"
#include "placement/partitioning.h"

namespace flexstream {
namespace {

const char* ShapeFor(Node::Kind kind) {
  switch (kind) {
    case Node::Kind::kSource:
      return "house";
    case Node::Kind::kQueue:
      return "record";
    case Node::Kind::kSink:
      return "doublecircle";
    case Node::Kind::kOperator:
      return "box";
  }
  return "box";
}

// A qualitative palette that stays readable in black-on-color.
constexpr const char* kPalette[] = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
};

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void EmitNode(std::ostringstream& os, const Node* node,
              const std::string& extra) {
  os << "  n" << node->id() << " [label=\"" << Escape(node->name())
     << "\", shape=" << ShapeFor(node->kind());
  if (!extra.empty()) os << ", " << extra;
  os << "];\n";
}

void EmitEdges(std::ostringstream& os, const QueryGraph& graph) {
  for (const Node* node : graph.nodes()) {
    for (const auto& edge : node->outputs()) {
      const Node* target = static_cast<const Node*>(edge.target);
      os << "  n" << node->id() << " -> n" << target->id();
      if (edge.port != 0) os << " [label=\"p" << edge.port << "\"]";
      os << ";\n";
    }
  }
}

}  // namespace

std::string ToDot(const QueryGraph& graph) {
  std::ostringstream os;
  os << "digraph query {\n  rankdir=BT;\n";
  for (const Node* node : graph.nodes()) {
    if (node->fan_in() == 0 && node->fan_out() == 0 && !node->is_source()) {
      continue;  // disconnected husk
    }
    EmitNode(os, node, "");
  }
  EmitEdges(os, graph);
  os << "}\n";
  return os.str();
}

std::string ToDot(const QueryGraph& graph,
                  const Partitioning& partitioning) {
  std::ostringstream os;
  os << "digraph query {\n  rankdir=BT;\n";
  constexpr size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
  for (size_t id = 0; id < partitioning.group_count(); ++id) {
    os << "  subgraph cluster_p" << id << " {\n"
       << "    label=\"P" << id << "\";\n    style=filled;\n"
       << "    color=\"" << kPalette[id % kPaletteSize] << "\";\n";
    for (const Node* node : partitioning.group(id)) {
      std::ostringstream inner;
      EmitNode(inner, node, "style=filled, fillcolor=white");
      os << "  " << inner.str();
    }
    os << "  }\n";
  }
  for (const Node* node : graph.nodes()) {
    if (partitioning.GroupOf(node) >= 0) continue;
    if (node->fan_in() == 0 && node->fan_out() == 0 && !node->is_source()) {
      continue;
    }
    EmitNode(os, node, "");
  }
  EmitEdges(os, graph);
  os << "}\n";
  return os.str();
}

}  // namespace flexstream

// Random query-graph generation for the Figure 11 study.
//
// Section 6.7 tests the VO-construction algorithms "by running them on
// random DAGs, varying the number of nodes from 10 to 1000". The
// generator builds layered DAGs of passive operator nodes with synthetic
// cost/selectivity metadata; inter-arrival times d(v) are then derived by
// rate propagation (stats/capacity.h), so the capacity model has
// consistent inputs.
//
// Nodes are generic Operators whose Process is never called — Figure 11
// is a pure planning study; nothing is executed.

#ifndef FLEXSTREAM_GRAPH_RANDOM_DAG_H_
#define FLEXSTREAM_GRAPH_RANDOM_DAG_H_

#include <memory>
#include <string>

#include "graph/query_graph.h"
#include "operators/operator.h"
#include "util/random.h"

namespace flexstream {

struct RandomDagOptions {
  int node_count = 100;
  /// Number of source nodes (roots). Must be >= 1 and <= node_count.
  int source_count = 4;
  /// Max producers per non-source node (1 = tree, 2 allows joins).
  int max_fan_in = 2;
  /// Probability that a non-source node takes a second producer.
  double second_input_probability = 0.15;

  /// Source rates (elements/second), uniform in [min, max].
  double min_source_rate = 100.0;
  double max_source_rate = 10000.0;

  /// Operator cost (microseconds): log-uniform in [min, max] so the graph
  /// mixes cheap and expensive operators as Section 4.2.1 argues real
  /// query graphs do.
  double min_cost_micros = 0.5;
  double max_cost_micros = 5000.0;

  /// Selectivity: uniform in [min, max].
  double min_selectivity = 0.1;
  double max_selectivity = 1.0;

  /// When true, the i-th generated operator (i < source_count) takes
  /// source i as its first producer, so every source feeds the graph.
  /// The planning studies keep the historical behavior (false: a source
  /// may stay unused); executable harness graphs turn this on so every
  /// generated source actually drives work. Requires
  /// node_count >= 2 * source_count.
  bool connect_all_sources = false;
};

/// A no-op operator carrying only metadata (used as the generic node type
/// of random planning graphs).
class PassiveOp : public Operator {
 public:
  PassiveOp(std::string name, int input_arity)
      : Operator(Kind::kOperator, std::move(name), input_arity) {}

 protected:
  void Process(const Tuple& tuple, int port) override;
};

/// Generates a connected random DAG with metadata (cost, selectivity,
/// propagated inter-arrival). Deterministic for a given rng state.
std::unique_ptr<QueryGraph> GenerateRandomDag(const RandomDagOptions& options,
                                              Rng* rng);

}  // namespace flexstream

#endif  // FLEXSTREAM_GRAPH_RANDOM_DAG_H_

// Query graph nodes.
//
// Following Section 2.1 of the paper, a query graph is a DAG whose nodes
// are sources, operators and sinks, with edges representing data flow.
// Queues are modeled as ordinary operators (Section 2.4) so that placing or
// removing them is a topology change, not a semantic one.
//
// Node carries (a) the topology links maintained by QueryGraph, (b) the
// measured runtime statistics (stats/op_stats.h), and (c) optional metadata
// overrides for c(v), d(v) and selectivity used when experiments inject
// synthetic values instead of measuring (Section 5.1.3, "Parameter").

#ifndef FLEXSTREAM_GRAPH_NODE_H_
#define FLEXSTREAM_GRAPH_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/op_stats.h"

namespace flexstream {

class Operator;
class QueryGraph;

class Node {
 public:
  using Id = uint32_t;

  enum class Kind {
    kSource = 0,
    kOperator = 1,
    kQueue = 2,
    kSink = 3,
  };

  /// Variadic input arity (any number of incoming edges on port 0).
  static constexpr int kVariadicArity = -1;

  Node(Kind kind, std::string name, int input_arity);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Id id() const { return id_; }
  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  QueryGraph* graph() const { return graph_; }

  bool is_source() const { return kind_ == Kind::kSource; }
  bool is_queue() const { return kind_ == Kind::kQueue; }
  bool is_sink() const { return kind_ == Kind::kSink; }

  /// Number of declared input ports, or kVariadicArity.
  int input_arity() const { return input_arity_; }

  // --- Topology (maintained exclusively by QueryGraph) ------------------

  struct OutEdge {
    Operator* target;
    int port;
  };
  struct InEdge {
    Node* source;
    int port;
  };

  const std::vector<OutEdge>& outputs() const { return outputs_; }
  const std::vector<InEdge>& inputs() const { return inputs_; }
  size_t fan_out() const { return outputs_.size(); }
  size_t fan_in() const { return inputs_.size(); }

  // --- Capacity metadata (Section 5.1.2) --------------------------------

  /// c(v): average per-element processing cost in microseconds. Uses the
  /// injected metadata value when set, else the measured statistic.
  double CostMicros() const;
  void SetCostMicros(double micros);
  bool has_cost_override() const { return has_cost_override_; }

  /// d(v): average inter-arrival time of input elements in microseconds
  /// (reciprocal of the input rate). Injected or measured.
  double InterarrivalMicros() const;
  void SetInterarrivalMicros(double micros);
  bool has_interarrival_override() const { return has_interarrival_override_; }

  /// Output elements per input element. Injected or measured.
  double Selectivity() const;
  void SetSelectivity(double selectivity);
  bool has_selectivity_override() const { return has_selectivity_override_; }

  /// Clears all metadata overrides (fall back to measured statistics).
  void ClearOverrides();

  OpStats& stats() { return stats_; }
  const OpStats& stats() const { return stats_; }

  /// Resets the node's processing state (operator windows, EOS counters,
  /// queue contents) so the graph can be re-run. Statistics are preserved;
  /// call stats().Reset() separately if desired.
  virtual void Reset() {}

  std::string DebugString() const;

 private:
  friend class QueryGraph;

  Kind kind_;
  std::string name_;
  int input_arity_;
  Id id_ = 0;
  QueryGraph* graph_ = nullptr;

  std::vector<OutEdge> outputs_;
  std::vector<InEdge> inputs_;

  OpStats stats_;
  double cost_override_ = 0.0;
  double interarrival_override_ = 0.0;
  double selectivity_override_ = 1.0;
  bool has_cost_override_ = false;
  bool has_interarrival_override_ = false;
  bool has_selectivity_override_ = false;
};

/// Human-readable kind name ("source", "operator", "queue", "sink").
const char* NodeKindToString(Node::Kind kind);

}  // namespace flexstream

#endif  // FLEXSTREAM_GRAPH_NODE_H_

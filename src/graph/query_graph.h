// The query graph: a DAG of sources, operators, queues and sinks
// (Section 2.1). QueryGraph owns every node and is the only component
// allowed to mutate topology. All topology mutations must happen while no
// thread is executing the graph; the schedulers in core/ pause processing
// around runtime re-partitioning exactly as Section 5.1.3 describes
// ("inserting and removing queues can be done during runtime by
// interrupting the processing of the graph shortly").

#ifndef FLEXSTREAM_GRAPH_QUERY_GRAPH_H_
#define FLEXSTREAM_GRAPH_QUERY_GRAPH_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/node.h"
#include "util/status.h"

namespace flexstream {

class Operator;

class QueryGraph {
 public:
  QueryGraph() = default;
  QueryGraph(const QueryGraph&) = delete;
  QueryGraph& operator=(const QueryGraph&) = delete;
  ~QueryGraph();

  /// Constructs a node of type T in the graph and returns a non-owning
  /// pointer. The graph keeps ownership for its lifetime (nodes are never
  /// destroyed individually; SpliceOut only detaches topology).
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* ptr = node.get();
    Register(std::move(node));
    return ptr;
  }

  /// Adopts an externally constructed node (e.g. an Operator::CloneFresh
  /// replica made by ShardOperator) into the graph, which takes ownership.
  /// Returns the non-owning pointer, like Add.
  template <typename T>
  T* Adopt(std::unique_ptr<T> node) {
    T* ptr = node.get();
    Register(std::move(node));
    return ptr;
  }

  /// Adds the edge from -> to on the given input port of `to`.
  /// Fails if the port is out of range for the target's arity, if the edge
  /// already exists, or if adding it would create a cycle.
  Status Connect(Node* from, Operator* to, int port = 0);

  /// Removes the edge from -> to on `port`. Fails if no such edge exists.
  Status Disconnect(Node* from, Operator* to, int port = 0);

  /// Replaces the edge from -> to (on whatever port it uses) with
  /// from -> mid -> to, preserving the original target port. `mid` must
  /// currently be disconnected. This is how decoupling queues are placed.
  Status InsertBetween(Node* from, Operator* mid, Operator* to);

  /// Removes a single-input pass-through node (typically a queue) from the
  /// topology, reconnecting its producer directly to its consumers. The
  /// node stays owned by the graph but becomes disconnected. Callers must
  /// drain queues first (Section 5.1.3: "to remove a queue all remaining
  /// elements in the queue must be entirely processed before").
  Status SpliceOut(Operator* mid);

  const std::vector<Node*>& nodes() const { return node_ptrs_; }
  size_t node_count() const { return node_ptrs_.size(); }

  /// Nodes with no incoming edges, excluding disconnected non-source nodes.
  std::vector<Node*> Sources() const;
  /// Nodes with no outgoing edges, excluding disconnected non-sink nodes.
  std::vector<Node*> Sinks() const;
  /// All queue nodes currently wired into the topology.
  std::vector<Node*> Queues() const;

  /// Checks structural invariants: acyclic, every connected non-source node
  /// reachable from a source, edge lists mutually consistent.
  Status Validate() const;

  /// Topological order over all connected nodes (sources first).
  /// Fails on a cyclic graph.
  Result<std::vector<Node*>> TopologicalOrder() const;

  /// True if `to` is reachable from `from` via outgoing edges.
  bool Reachable(const Node* from, const Node* to) const;

  /// Calls Reset() on every node (clears operator state so the graph can
  /// be executed again).
  void ResetAll();

  /// Multi-line description of the topology for debugging.
  std::string DebugString() const;

 private:
  void Register(std::unique_ptr<Node> node);
  bool WouldCreateCycle(const Node* from, const Node* to) const;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Node*> node_ptrs_;
  Node::Id next_id_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_GRAPH_QUERY_GRAPH_H_

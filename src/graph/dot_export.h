// Graphviz DOT export of query graphs and partitionings.
//
// Renders the topology (sources as house shapes, queues as records,
// sinks as double circles) and, when a Partitioning is supplied, colors
// each virtual operator's nodes by partition — the visual counterpart of
// the paper's Figures 3 and 4.

#ifndef FLEXSTREAM_GRAPH_DOT_EXPORT_H_
#define FLEXSTREAM_GRAPH_DOT_EXPORT_H_

#include <string>

namespace flexstream {

class QueryGraph;
class Partitioning;

/// DOT source for the graph alone.
std::string ToDot(const QueryGraph& graph);

/// DOT source with nodes clustered/colored by partition; nodes outside
/// every partition (e.g. queues) are drawn unclustered.
std::string ToDot(const QueryGraph& graph, const Partitioning& partitioning);

}  // namespace flexstream

#endif  // FLEXSTREAM_GRAPH_DOT_EXPORT_H_

#include "graph/node.h"

#include "util/logging.h"

namespace flexstream {

Node::Node(Kind kind, std::string name, int input_arity)
    : kind_(kind), name_(std::move(name)), input_arity_(input_arity) {
  CHECK(input_arity >= 0 || input_arity == kVariadicArity)
      << "invalid arity " << input_arity;
}

Node::~Node() = default;

double Node::CostMicros() const {
  return has_cost_override_ ? cost_override_ : stats_.CostMicros();
}

void Node::SetCostMicros(double micros) {
  cost_override_ = micros;
  has_cost_override_ = true;
}

double Node::InterarrivalMicros() const {
  return has_interarrival_override_ ? interarrival_override_
                                    : stats_.InterarrivalMicros();
}

void Node::SetInterarrivalMicros(double micros) {
  interarrival_override_ = micros;
  has_interarrival_override_ = true;
}

double Node::Selectivity() const {
  return has_selectivity_override_ ? selectivity_override_
                                   : stats_.Selectivity();
}

void Node::SetSelectivity(double selectivity) {
  selectivity_override_ = selectivity;
  has_selectivity_override_ = true;
}

void Node::ClearOverrides() {
  has_cost_override_ = false;
  has_interarrival_override_ = false;
  has_selectivity_override_ = false;
}

std::string Node::DebugString() const {
  return std::string(NodeKindToString(kind_)) + " #" + std::to_string(id_) +
         " \"" + name_ + "\"";
}

const char* NodeKindToString(Node::Kind kind) {
  switch (kind) {
    case Node::Kind::kSource:
      return "source";
    case Node::Kind::kOperator:
      return "operator";
    case Node::Kind::kQueue:
      return "queue";
    case Node::Kind::kSink:
      return "sink";
  }
  return "unknown";
}

}  // namespace flexstream

#include "graph/random_dag.h"

#include <cmath>

#include "operators/source.h"
#include "stats/capacity.h"
#include "util/logging.h"

namespace flexstream {

void PassiveOp::Process(const Tuple& tuple, int port) {
  (void)tuple;
  (void)port;
  LOG(FATAL) << "PassiveOp is metadata-only and must not be executed";
}

std::unique_ptr<QueryGraph> GenerateRandomDag(const RandomDagOptions& options,
                                              Rng* rng) {
  CHECK_GE(options.source_count, 1);
  CHECK_GE(options.node_count, options.source_count);
  CHECK_GE(options.max_fan_in, 1);
  auto graph = std::make_unique<QueryGraph>();

  std::vector<Node*> nodes;
  nodes.reserve(static_cast<size_t>(options.node_count));
  for (int i = 0; i < options.source_count; ++i) {
    Source* src = graph->Add<Source>("src" + std::to_string(i));
    const double rate =
        rng->UniformDouble(options.min_source_rate, options.max_source_rate);
    src->SetInterarrivalMicros(1e6 / rate);
    src->SetCostMicros(0.0);
    src->SetSelectivity(1.0);
    nodes.push_back(src);
  }
  const double ln_min = std::log(options.min_cost_micros);
  const double ln_max = std::log(options.max_cost_micros);
  for (int i = options.source_count; i < options.node_count; ++i) {
    PassiveOp* op = graph->Add<PassiveOp>("op" + std::to_string(i),
                                          options.max_fan_in);
    op->SetCostMicros(std::exp(rng->UniformDouble(ln_min, ln_max)));
    op->SetSelectivity(rng->UniformDouble(options.min_selectivity,
                                          options.max_selectivity));
    // First producer: any earlier node (keeps the graph acyclic and every
    // non-source node reachable from a source). With connect_all_sources,
    // the first source_count operators adopt the sources pairwise so no
    // source is left without a consumer.
    const int op_index = i - options.source_count;
    Node* producer =
        (options.connect_all_sources && op_index < options.source_count)
            ? nodes[static_cast<size_t>(op_index)]
            : nodes[static_cast<size_t>(
                  rng->NextU64(static_cast<uint64_t>(nodes.size())))];
    CHECK_OK(graph->Connect(producer, op, 0));
    if (options.max_fan_in >= 2 &&
        rng->Bernoulli(options.second_input_probability)) {
      Node* second = nodes[static_cast<size_t>(
          rng->NextU64(static_cast<uint64_t>(nodes.size())))];
      if (second != producer) {
        CHECK_OK(graph->Connect(second, op, 1));
      }
    }
    nodes.push_back(op);
  }
  CHECK_OK(PropagateRates(graph.get()));
  CHECK_OK(graph->Validate());
  return graph;
}

}  // namespace flexstream

#include "graph/query_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "operators/operator.h"
#include "util/logging.h"

namespace flexstream {

QueryGraph::~QueryGraph() = default;

void QueryGraph::Register(std::unique_ptr<Node> node) {
  node->graph_ = this;
  node->id_ = next_id_++;
  node_ptrs_.push_back(node.get());
  nodes_.push_back(std::move(node));
}

Status QueryGraph::Connect(Node* from, Operator* to, int port) {
  Node* to_node = static_cast<Node*>(to);
  CHECK(from != nullptr && to != nullptr);
  CHECK(from->graph_ == this) << from->DebugString() << " not in this graph";
  CHECK(to_node->graph_ == this);
  if (from == to_node) {
    return Status::InvalidArgument("self-loop on " + from->DebugString());
  }
  if (to_node->is_source()) {
    return Status::InvalidArgument("cannot connect into a source: " +
                                   to_node->DebugString());
  }
  if (from->is_sink()) {
    return Status::InvalidArgument("cannot connect out of a sink: " +
                                   from->DebugString());
  }
  const int arity = to_node->input_arity();
  if (arity != Node::kVariadicArity && (port < 0 || port >= arity)) {
    return Status::OutOfRange("port " + std::to_string(port) +
                              " out of range for " + to_node->DebugString());
  }
  if (arity == Node::kVariadicArity && port != 0) {
    return Status::OutOfRange("variadic-arity nodes use port 0 only");
  }
  for (const auto& edge : from->outputs_) {
    if (edge.target == to && edge.port == port) {
      return Status::AlreadyExists("edge already exists: " +
                                   from->DebugString() + " -> " +
                                   to_node->DebugString());
    }
  }
  // Fixed-arity operators take at most one producer per port; queues and
  // variadic operators merge any number of producers.
  if (arity != Node::kVariadicArity && !to_node->is_queue()) {
    for (const auto& edge : to_node->inputs_) {
      if (edge.port == port) {
        return Status::AlreadyExists(
            "port " + std::to_string(port) + " of " + to_node->DebugString() +
            " already has a producer");
      }
    }
  }
  if (WouldCreateCycle(from, to_node)) {
    return Status::InvalidArgument("edge would create a cycle: " +
                                   from->DebugString() + " -> " +
                                   to_node->DebugString());
  }
  from->outputs_.push_back({to, port});
  to_node->inputs_.push_back({from, port});
  return Status::Ok();
}

Status QueryGraph::Disconnect(Node* from, Operator* to, int port) {
  Node* to_node = static_cast<Node*>(to);
  auto out_it = std::find_if(
      from->outputs_.begin(), from->outputs_.end(),
      [&](const Node::OutEdge& e) { return e.target == to && e.port == port; });
  if (out_it == from->outputs_.end()) {
    return Status::NotFound("no edge " + from->DebugString() + " -> " +
                            to_node->DebugString() + " on port " +
                            std::to_string(port));
  }
  auto in_it = std::find_if(
      to_node->inputs_.begin(), to_node->inputs_.end(),
      [&](const Node::InEdge& e) { return e.source == from && e.port == port; });
  CHECK(in_it != to_node->inputs_.end()) << "inconsistent edge lists";
  from->outputs_.erase(out_it);
  to_node->inputs_.erase(in_it);
  return Status::Ok();
}

Status QueryGraph::InsertBetween(Node* from, Operator* mid, Operator* to) {
  Node* mid_node = static_cast<Node*>(mid);
  Node* to_node = static_cast<Node*>(to);
  if (mid_node->fan_in() != 0 || mid_node->fan_out() != 0) {
    return Status::FailedPrecondition("middle node must be disconnected: " +
                                      mid_node->DebugString());
  }
  auto out_it = std::find_if(
      from->outputs_.begin(), from->outputs_.end(),
      [&](const Node::OutEdge& e) { return e.target == to; });
  if (out_it == from->outputs_.end()) {
    return Status::NotFound("no edge " + from->DebugString() + " -> " +
                            to_node->DebugString());
  }
  const int port = out_it->port;
  Status s = Disconnect(from, to, port);
  if (!s.ok()) return s;
  s = Connect(from, mid, 0);
  if (!s.ok()) return s;
  return Connect(mid_node, to, port);
}

Status QueryGraph::SpliceOut(Operator* mid) {
  Node* mid_node = static_cast<Node*>(mid);
  if (mid_node->fan_in() != 1) {
    return Status::FailedPrecondition(
        "can only splice out single-input nodes: " + mid_node->DebugString());
  }
  Node* producer = mid_node->inputs_[0].source;
  // Copy: Disconnect mutates the lists we iterate.
  const std::vector<Node::OutEdge> outs = mid_node->outputs_;
  Status s = Disconnect(producer, mid, mid_node->inputs_[0].port);
  if (!s.ok()) return s;
  for (const auto& edge : outs) {
    s = Disconnect(mid_node, edge.target, edge.port);
    if (!s.ok()) return s;
    s = Connect(producer, edge.target, edge.port);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::vector<Node*> QueryGraph::Sources() const {
  std::vector<Node*> result;
  for (Node* n : node_ptrs_) {
    if (n->is_source()) result.push_back(n);
  }
  return result;
}

std::vector<Node*> QueryGraph::Sinks() const {
  std::vector<Node*> result;
  for (Node* n : node_ptrs_) {
    if (n->is_sink()) result.push_back(n);
  }
  return result;
}

std::vector<Node*> QueryGraph::Queues() const {
  std::vector<Node*> result;
  for (Node* n : node_ptrs_) {
    if (n->is_queue() && n->fan_in() > 0) result.push_back(n);
  }
  return result;
}

bool QueryGraph::WouldCreateCycle(const Node* from, const Node* to) const {
  // Adding from -> to creates a cycle iff `from` is reachable from `to`.
  return Reachable(to, from);
}

bool QueryGraph::Reachable(const Node* from, const Node* to) const {
  if (from == to) return true;
  std::unordered_set<const Node*> visited;
  std::deque<const Node*> frontier{from};
  while (!frontier.empty()) {
    const Node* n = frontier.front();
    frontier.pop_front();
    if (!visited.insert(n).second) continue;
    for (const auto& edge : n->outputs()) {
      const Node* t = static_cast<const Node*>(edge.target);
      if (t == to) return true;
      frontier.push_back(t);
    }
  }
  return false;
}

Status QueryGraph::Validate() const {
  // Edge-list consistency.
  for (const Node* n : node_ptrs_) {
    for (const auto& out : n->outputs()) {
      const Node* t = static_cast<const Node*>(out.target);
      const auto& ins = t->inputs();
      const bool found =
          std::any_of(ins.begin(), ins.end(), [&](const Node::InEdge& e) {
            return e.source == n && e.port == out.port;
          });
      if (!found) {
        return Status::Internal("dangling edge " + n->DebugString() + " -> " +
                                t->DebugString());
      }
    }
    for (const auto& in : n->inputs()) {
      const auto& outs = in.source->outputs();
      const bool found =
          std::any_of(outs.begin(), outs.end(), [&](const Node::OutEdge& e) {
            return static_cast<const Node*>(e.target) == n &&
                   e.port == in.port;
          });
      if (!found) {
        return Status::Internal("dangling back-edge into " + n->DebugString());
      }
    }
  }
  // Acyclicity.
  Result<std::vector<Node*>> order = TopologicalOrder();
  if (!order.ok()) return order.status();
  // Every connected non-source node must be reachable from some source.
  std::unordered_set<const Node*> reachable;
  std::deque<const Node*> frontier;
  for (const Node* n : node_ptrs_) {
    if (n->fan_in() == 0) {
      frontier.push_back(n);
      reachable.insert(n);
    }
  }
  while (!frontier.empty()) {
    const Node* n = frontier.front();
    frontier.pop_front();
    for (const auto& edge : n->outputs()) {
      const Node* t = static_cast<const Node*>(edge.target);
      if (reachable.insert(t).second) frontier.push_back(t);
    }
  }
  for (const Node* n : node_ptrs_) {
    if ((n->fan_in() > 0 || n->fan_out() > 0) && !reachable.count(n)) {
      return Status::Internal("node not reachable from any root: " +
                              n->DebugString());
    }
  }
  return Status::Ok();
}

Result<std::vector<Node*>> QueryGraph::TopologicalOrder() const {
  std::unordered_map<const Node*, size_t> indegree;
  indegree.reserve(node_ptrs_.size());
  for (const Node* n : node_ptrs_) indegree[n] = n->fan_in();
  std::deque<Node*> ready;
  for (Node* n : node_ptrs_) {
    if (n->fan_in() == 0) ready.push_back(n);
  }
  std::vector<Node*> order;
  order.reserve(node_ptrs_.size());
  while (!ready.empty()) {
    Node* n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const auto& edge : n->outputs()) {
      Node* t = static_cast<Node*>(edge.target);
      if (--indegree[t] == 0) ready.push_back(t);
    }
  }
  if (order.size() != node_ptrs_.size()) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return order;
}

void QueryGraph::ResetAll() {
  for (Node* n : node_ptrs_) n->Reset();
}

std::string QueryGraph::DebugString() const {
  std::ostringstream os;
  os << "QueryGraph{" << node_ptrs_.size() << " nodes\n";
  for (const Node* n : node_ptrs_) {
    os << "  " << n->DebugString();
    if (!n->outputs().empty()) {
      os << " ->";
      for (const auto& edge : n->outputs()) {
        const Node* t = static_cast<const Node*>(edge.target);
        os << " #" << t->id() << ":" << edge.port;
      }
    }
    os << "\n";
  }
  os << "}";
  return os.str();
}

}  // namespace flexstream

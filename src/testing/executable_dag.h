// Executable random query graphs for the differential correctness harness.
//
// graph/random_dag.h generates metadata-only planning DAGs (PassiveOp
// nodes whose Process must never run). The differential harness needs the
// same randomized topologies *executable*: BuildExecutableDag maps a
// generated metadata DAG node-for-node onto deterministic operators —
// threshold/modulo Selections whose pass rate matches the node's
// selectivity metadata, domain-preserving Maps, and UnionOps for fan-in
// nodes — and attaches a CollectingSink to every dangling endpoint. Each
// operator gets a deterministic synthetic CPU burn
// (Operator::SetSimulatedCostMicros) derived from the metadata cost, so
// scheduled executions exhibit realistic interleavings.
//
// Everything is a pure function of (options, seed): the same seed yields
// the same topology, the same operator logic, and (via FeedSources) the
// same input stream — the reproducibility the harness's replay files rely
// on.

#ifndef FLEXSTREAM_TESTING_EXECUTABLE_DAG_H_
#define FLEXSTREAM_TESTING_EXECUTABLE_DAG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/query_graph.h"
#include "graph/random_dag.h"
#include "operators/sink.h"
#include "operators/source.h"

namespace flexstream {

/// Value domain of generated tuples: integer attribute 0 in [0, domain).
/// Threshold selections use it to turn a selectivity into an exact
/// predicate; maps are built to preserve it.
inline constexpr int64_t kExecutableDagValueDomain = 1000;

struct ExecutableDagOptions {
  /// Topology + metadata generation (graph/random_dag.h). Executable
  /// graphs default to small sizes and guaranteed source connectivity.
  RandomDagOptions dag;
  /// Per-element synthetic CPU burn is min(metadata cost, this cap), so a
  /// metadata cost drawn in milliseconds cannot make a test run minutes.
  double max_burn_micros = 3.0;

  ExecutableDagOptions() {
    dag.node_count = 16;
    dag.source_count = 2;
    dag.connect_all_sources = true;
    dag.min_cost_micros = 0.2;
    dag.max_cost_micros = 50.0;
  }
};

struct ExecutableDag {
  std::unique_ptr<QueryGraph> graph;
  /// In generation order; FeedSources drives them.
  std::vector<Source*> sources;
  /// One per dangling endpoint, in deterministic construction order.
  std::vector<CollectingSink*> sinks;
  /// Per sink: true when every ancestor has fan-in <= 1 (a pure chain
  /// from a single source), in which case any correct scheduler must
  /// reproduce the golden run's *exact output sequence*, not just its
  /// multiset (queues are FIFO and partitions are single-threaded).
  std::vector<bool> order_checked;
};

/// Deterministically builds an executable graph for (options, seed).
ExecutableDag BuildExecutableDag(const ExecutableDagOptions& options,
                                 uint64_t seed);

/// Pushes `count` data elements with unique increasing timestamps and
/// values uniform in [0, kExecutableDagValueDomain), interleaved across
/// the sources by a seeded RNG, then closes every source. Deterministic
/// for (dag, seed, count). Must be called from a single thread.
void FeedSources(const ExecutableDag& dag, uint64_t seed, int count);

/// Pushes only the first `limit` elements of the exact stream
/// FeedSources(dag, seed, count) would produce, without closing any
/// source. The element sequence is a pure function of (dag, seed), so a
/// prefix feed followed later by a full FeedSources re-drive replays the
/// identical stream — the cold-restart differential drives a run partway,
/// kills the process-equivalent, then re-feeds from scratch against
/// sources armed to skip their committed prefix.
void FeedSourcesPrefix(const ExecutableDag& dag, uint64_t seed, int limit);

}  // namespace flexstream

#endif  // FLEXSTREAM_TESTING_EXECUTABLE_DAG_H_

#include "testing/differential.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "api/shard.h"
#include "control/engine_hooks.h"
#include "control/slo_controller.h"
#include "graph/dot_export.h"
#include "operators/map_op.h"
#include "operators/selection.h"
#include "sched/strategy.h"
#include "util/logging.h"

namespace flexstream {
namespace {

constexpr auto kRunTimeout = std::chrono::seconds(120);

/// Deterministic metrics fake for the slo_controller axis: four breach
/// samples (p99 at 4x the target), four calm samples (p99 at a tenth),
/// repeating. With alpha = 1 and single-interval de-escalation this walks
/// the controller up and back down rungs 1-2 continuously for the whole
/// run, so live actuations land at arbitrary points of the stream.
class SquareWaveProbe : public MetricsProbe {
 public:
  explicit SquareWaveProbe(double target_p99) : target_p99_(target_p99) {}

  ControlMetrics Sample() override {
    ControlMetrics m;
    m.interval_count = 100;
    m.interval_p99_micros =
        (tick_++ / 4) % 2 == 0 ? target_p99_ * 4.0 : target_p99_ * 0.1;
    return m;
  }

 private:
  const double target_p99_;
  int64_t tick_ = 0;
};

const char* TestFaultToString(QueueOp::TestFault fault) {
  switch (fault) {
    case QueueOp::TestFault::kNone:
      return "none";
    case QueueOp::TestFault::kReorderDrainBatch:
      return "reorder-drain-batch";
  }
  return "unknown";
}

bool TestFaultFromString(const std::string& name, QueueOp::TestFault* fault) {
  for (QueueOp::TestFault candidate :
       {QueueOp::TestFault::kNone, QueueOp::TestFault::kReorderDrainBatch}) {
    if (name == TestFaultToString(candidate)) {
      *fault = candidate;
      return true;
    }
  }
  return false;
}

ExecutableDagOptions DagOptionsForSpec(const DiffSpec& spec) {
  ExecutableDagOptions options;
  options.dag.node_count = spec.node_count;
  options.dag.source_count = spec.source_count;
  options.dag.second_input_probability = spec.second_input_probability;
  options.max_burn_micros = spec.max_burn_micros;
  return options;
}

EngineOptions EngineOptionsForConfig(const DiffConfig& config) {
  EngineOptions options;
  options.mode = config.mode;
  options.strategy = config.strategy;
  options.placement = config.placement;
  options.queue_path = config.queue_path;
  options.queue_ring_capacity = config.ring_capacity;
  options.queue_max_elements = config.queue_max_elements;
  options.overload_policy = config.overload_policy;
  options.checkpoint_epoch_interval = config.checkpoint_epoch_interval;
  options.emit_batch_size = config.emit_batch_size;
  options.columnar = config.columnar;
  if (config.watchdog) {
    // Comfortably above the partitions' 100ms idle-poll failsafe, so a
    // chaos-suppressed wakeup recovered by the poll never reads as a stall.
    options.ts.watchdog_interval = std::chrono::milliseconds(500);
  }
  return options;
}

ChaosOptions ChaosOptionsForConfig(const DiffConfig& config) {
  ChaosOptions chaos;
  chaos.seed = config.chaos_seed;
  chaos.transient_rate = config.chaos_transient_rate;
  chaos.delay_rate = config.chaos_delay_rate;
  chaos.delay_micros = 30.0;
  chaos.suppress_every_n_wakeups = config.chaos_suppress_every_n;
  chaos.kill_operator = config.chaos_kill_operator;
  chaos.kill_after = config.chaos_kill_after;
  chaos.kills = config.chaos_kills;
  return chaos;
}

std::string DescribeSpec(const DiffSpec& spec) {
  std::ostringstream os;
  os << "seed=" << spec.seed << " nodes=" << spec.node_count
     << " sources=" << spec.source_count << " feed=" << spec.feed_count;
  return os.str();
}

std::string FirstDifference(const std::vector<Tuple>& want,
                            const std::vector<Tuple>& got) {
  const size_t n = std::min(want.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    if (want[i] != got[i]) {
      std::ostringstream os;
      os << "index " << i << ": golden " << want[i] << " vs candidate "
         << got[i];
      return os.str();
    }
  }
  std::ostringstream os;
  os << "size " << want.size() << " vs " << got.size();
  return os.str();
}

std::string ResolveArtifactDir(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("FLEXSTREAM_DIFF_ARTIFACT_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "diff_failures";
}

/// Writes DOT + replay artifacts for a failure; best-effort (artifact I/O
/// must never turn a real mismatch into a crash).
void DumpArtifacts(const DiffSpec& spec, const DiffConfig& config,
                   const std::string& dir, DiffFailure* failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    LOG(WARNING) << "cannot create artifact dir " << dir << ": "
                 << ec.message();
    return;
  }
  std::ostringstream base;
  base << "seed" << spec.seed << "_" << config.Name();
  const std::filesystem::path dot_path =
      std::filesystem::path(dir) / (base.str() + ".dot");
  const std::filesystem::path replay_path =
      std::filesystem::path(dir) / (base.str() + ".replay");

  ExecutableDag dag = BuildDagForSpec(spec);
  if (std::ofstream dot(dot_path); dot) {
    dot << ToDot(*dag.graph);
    failure->dot_path = dot_path.string();
  }
  if (std::ofstream replay(replay_path); replay) {
    replay << FormatReplay(spec, config);
    failure->replay_path = replay_path.string();
  }
}

}  // namespace

std::string DiffConfig::Name() const {
  std::ostringstream os;
  os << ExecutionModeToString(mode);
  if (mode == ExecutionMode::kGts || mode == ExecutionMode::kOts ||
      mode == ExecutionMode::kHmts) {
    os << "+" << StrategyKindToString(strategy);
  }
  if (mode == ExecutionMode::kHmts) {
    os << "+" << PlacementKindToString(placement);
  }
  if (queue_path != QueuePathMode::kAuto) {
    os << "+" << QueuePathModeToString(queue_path);
  }
  if (ring_capacity != QueueOp::kDefaultRingCapacity) {
    os << "+ring" << ring_capacity;
  }
  if (feed_before_start) os << "+burst";
  if (fault != QueueOp::TestFault::kNone) {
    os << "+fault:" << TestFaultToString(fault);
  }
  if (queue_max_elements != 0) {
    os << "+bound" << queue_max_elements << ":"
       << OverloadPolicyToString(overload_policy);
  }
  if (chaos_transient_rate > 0.0) os << "+chaos-t" << chaos_transient_rate;
  if (chaos_delay_rate > 0.0) os << "+chaos-d" << chaos_delay_rate;
  if (chaos_suppress_every_n > 0) {
    os << "+chaos-w" << chaos_suppress_every_n;
  }
  if (checkpoint_epoch_interval > 0) os << "+ckpt" << checkpoint_epoch_interval;
  if (!chaos_kill_operator.empty()) {
    os << "+kill:" << chaos_kill_operator << "@" << chaos_kill_after << "x"
       << chaos_kills;
  }
  if (watchdog) os << "+watchdog";
  if (emit_batch_size > 1) os << "+batch" << emit_batch_size;
  if (columnar) os << "+col";
  if (shard_count > 0) {
    os << "+shard" << shard_count << (shard_unordered ? "u" : "o");
    if (kill_shard_replica >= 0) os << "+killrep" << kill_shard_replica;
  }
  if (cold_restarts > 0) os << "+cold" << cold_restarts;
  if (!disk_fault.empty()) os << "+disk:" << disk_fault;
  if (slo_controller) os << "+sloctl";
  return os.str();
}

DiffConfig GoldenConfig() {
  DiffConfig config;
  config.mode = ExecutionMode::kSourceDriven;
  return config;
}

std::vector<DiffConfig> DefaultConfigMatrix() {
  std::vector<DiffConfig> configs;
  auto add = [&configs](ExecutionMode mode, StrategyKind strategy,
                        PlacementKind placement, QueuePathMode queue_path,
                        size_t ring, bool burst) {
    DiffConfig config;
    config.mode = mode;
    config.strategy = strategy;
    config.placement = placement;
    config.queue_path = queue_path;
    config.ring_capacity = ring;
    config.feed_before_start = burst;
    configs.push_back(config);
  };
  const size_t kRing = QueueOp::kDefaultRingCapacity;
  const auto kStall = PlacementKind::kStallAvoiding;

  // Single-threaded DI with a queue per source.
  add(ExecutionMode::kDirect, StrategyKind::kFifo, kStall,
      QueuePathMode::kAuto, kRing, false);

  // GTS: every strategy, down both queue paths.
  for (StrategyKind strategy :
       {StrategyKind::kFifo, StrategyKind::kRoundRobin, StrategyKind::kChain,
        StrategyKind::kSegment}) {
    add(ExecutionMode::kGts, strategy, kStall, QueuePathMode::kAuto, kRing,
        false);
    add(ExecutionMode::kGts, strategy, kStall, QueuePathMode::kForceMpsc,
        kRing, false);
  }
  // GTS with a tiny ring: every enqueue run exercises spillover and the
  // seq-merge drain; plus the burst-arrival variant.
  add(ExecutionMode::kGts, StrategyKind::kFifo, kStall, QueuePathMode::kAuto,
      2, false);
  add(ExecutionMode::kGts, StrategyKind::kFifo, kStall, QueuePathMode::kAuto,
      kRing, true);

  // OTS: strategy is irrelevant (one thread per queue) — vary the paths.
  add(ExecutionMode::kOts, StrategyKind::kFifo, kStall, QueuePathMode::kAuto,
      kRing, false);
  add(ExecutionMode::kOts, StrategyKind::kFifo, kStall,
      QueuePathMode::kForceMpsc, kRing, false);
  add(ExecutionMode::kOts, StrategyKind::kFifo, kStall, QueuePathMode::kAuto,
      2, false);
  add(ExecutionMode::kOts, StrategyKind::kFifo, kStall, QueuePathMode::kAuto,
      kRing, true);

  // HMTS: every strategy under the stall-avoiding placement (auto + tiny
  // ring), then the alternative placement algorithms.
  for (StrategyKind strategy :
       {StrategyKind::kFifo, StrategyKind::kRoundRobin, StrategyKind::kChain,
        StrategyKind::kSegment}) {
    add(ExecutionMode::kHmts, strategy, kStall, QueuePathMode::kAuto, kRing,
        false);
    add(ExecutionMode::kHmts, strategy, kStall, QueuePathMode::kAuto, 2,
        false);
  }
  add(ExecutionMode::kHmts, StrategyKind::kFifo, kStall,
      QueuePathMode::kForceMpsc, kRing, false);
  add(ExecutionMode::kHmts, StrategyKind::kFifo, kStall, QueuePathMode::kAuto,
      kRing, true);
  add(ExecutionMode::kHmts, StrategyKind::kFifo, PlacementKind::kChain,
      QueuePathMode::kAuto, kRing, false);
  add(ExecutionMode::kHmts, StrategyKind::kFifo, PlacementKind::kSegment,
      QueuePathMode::kAuto, kRing, false);

  // Batch delivery axis: sources bundle elements into TupleBatches and
  // queues hand each drained run downstream as one ReceiveBatch call.
  // Results must stay byte-identical to per-tuple execution for every
  // batch size, down both queue paths, through spillover, and under
  // burst arrival (where whole-stream batches pile into the queues).
  auto add_batch = [&configs](ExecutionMode mode, QueuePathMode queue_path,
                              size_t ring, bool burst, size_t batch) {
    DiffConfig config;
    config.mode = mode;
    config.queue_path = queue_path;
    config.ring_capacity = ring;
    config.feed_before_start = burst;
    config.emit_batch_size = batch;
    configs.push_back(config);
  };
  for (size_t batch : {size_t{8}, size_t{64}}) {
    add_batch(ExecutionMode::kDirect, QueuePathMode::kAuto, kRing, false,
              batch);
    add_batch(ExecutionMode::kGts, QueuePathMode::kAuto, kRing, false, batch);
    add_batch(ExecutionMode::kGts, QueuePathMode::kForceMpsc, kRing, false,
              batch);
    // Tiny ring: every batch enqueue overflows into the spillover deque,
    // so drains exercise the seq-merge path with batch delivery on.
    add_batch(ExecutionMode::kGts, QueuePathMode::kAuto, 2, false, batch);
    add_batch(ExecutionMode::kOts, QueuePathMode::kAuto, kRing, false, batch);
    add_batch(ExecutionMode::kHmts, QueuePathMode::kAuto, kRing, false, batch);
  }
  add_batch(ExecutionMode::kHmts, QueuePathMode::kForceMpsc, kRing, false, 64);
  add_batch(ExecutionMode::kGts, QueuePathMode::kAuto, kRing, true, 64);

  // Columnar axis (DESIGN.md §17): the same topologies with the typed
  // columnar layer on — sources scatter accumulated elements into
  // ColumnarBatches, typed kernels run vectorized with in-place
  // compaction, queues box whole batches, and fallback boundaries
  // materialize back to rows. Representation must never change results:
  // byte-identical to the row-wise path everywhere.
  auto add_col = [&configs](ExecutionMode mode, QueuePathMode queue_path,
                            size_t ring, bool burst, size_t batch) {
    DiffConfig config;
    config.mode = mode;
    config.queue_path = queue_path;
    config.ring_capacity = ring;
    config.feed_before_start = burst;
    config.emit_batch_size = batch;
    config.columnar = true;
    configs.push_back(config);
  };
  for (size_t batch : {size_t{8}, size_t{64}}) {
    add_col(ExecutionMode::kDirect, QueuePathMode::kAuto, kRing, false, batch);
    add_col(ExecutionMode::kGts, QueuePathMode::kAuto, kRing, false, batch);
    add_col(ExecutionMode::kHmts, QueuePathMode::kAuto, kRing, false, batch);
  }
  add_col(ExecutionMode::kGts, QueuePathMode::kForceMpsc, kRing, false, 64);
  // Tiny ring: every boxed batch lands in the spillover deque, so drains
  // exercise the seq-merge path with boxed items in flight.
  add_col(ExecutionMode::kGts, QueuePathMode::kAuto, 2, false, 64);
  add_col(ExecutionMode::kOts, QueuePathMode::kAuto, kRing, false, 64);
  add_col(ExecutionMode::kGts, QueuePathMode::kAuto, kRing, true, 64);

  // Elastic control axis: the SLO controller escalates/de-escalates
  // rungs 1-2 live throughout the run. kHmts exercises real thread-pool
  // resizes + batch flips; kGts structurally refuses the thread lever
  // (retiring it) and actuates batch only. Results must stay identical.
  {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.slo_controller = true;
    configs.push_back(config);
    config.mode = ExecutionMode::kGts;
    configs.push_back(config);
  }
  return configs;
}

std::vector<DiffConfig> ChaosConfigMatrix() {
  std::vector<DiffConfig> configs;
  // Full chaos cocktail — transient faults, delays, lost wakeups — across
  // every architecture x strategy. All of it must be absorbed without any
  // result deviation: retries succeed, the idle-poll failsafe recovers
  // wakeups, delays only stretch interleavings.
  for (ExecutionMode mode :
       {ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    for (StrategyKind strategy :
         {StrategyKind::kFifo, StrategyKind::kRoundRobin,
          StrategyKind::kChain, StrategyKind::kSegment}) {
      // OTS ignores the level-2 strategy (one queue per partition); one
      // representative is enough.
      if (mode == ExecutionMode::kOts && strategy != StrategyKind::kFifo) {
        continue;
      }
      DiffConfig config;
      config.mode = mode;
      config.strategy = strategy;
      config.chaos_transient_rate = 0.02;
      config.chaos_delay_rate = 0.01;
      config.chaos_suppress_every_n = 7;
      config.watchdog = mode == ExecutionMode::kHmts;
      configs.push_back(config);
    }
  }
  // Bounded queues under chaos: kBlock must deliver everything (exact
  // match); the shed policies may only lose what their drop counters
  // declare (sub-multiset compare).
  for (OverloadPolicy policy :
       {OverloadPolicy::kBlock, OverloadPolicy::kShedNewest,
        OverloadPolicy::kShedOldest}) {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.queue_max_elements = 8;
    config.overload_policy = policy;
    config.chaos_transient_rate = 0.01;
    config.watchdog = true;
    configs.push_back(config);
  }
  // Batch delivery under chaos: transient faults make batches dissolve to
  // the per-tuple fallback at the hooked operators while bounded kShedNewest
  // queues shed per element — drop counters must still account for every
  // missing tuple exactly.
  {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.emit_batch_size = 64;
    config.queue_max_elements = 8;
    config.overload_policy = OverloadPolicy::kShedNewest;
    config.chaos_transient_rate = 0.02;
    config.watchdog = true;
    configs.push_back(config);
  }
  // Columnar under chaos: fault hooks arm the columnar fallback gate on
  // every hooked operator, so batches materialize to rows there while
  // untouched stretches stay columnar; bounded shed queues materialize at
  // the door. Drop counters must still account for every missing tuple.
  {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.emit_batch_size = 64;
    config.columnar = true;
    config.chaos_transient_rate = 0.02;
    config.chaos_delay_rate = 0.01;
    config.chaos_suppress_every_n = 7;
    config.watchdog = true;
    configs.push_back(config);
  }
  {
    DiffConfig config;
    config.mode = ExecutionMode::kGts;
    config.emit_batch_size = 64;
    config.columnar = true;
    config.queue_max_elements = 8;
    config.overload_policy = OverloadPolicy::kShedNewest;
    config.chaos_transient_rate = 0.02;
    configs.push_back(config);
  }
  // Controller x chaos: live rung-1/2 actuation while transient faults,
  // delays, and lost wakeups fire. Elasticity and fault absorption must
  // compose without any result deviation (and no watchdog stalls).
  {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.slo_controller = true;
    config.chaos_transient_rate = 0.02;
    config.chaos_delay_rate = 0.01;
    config.chaos_suppress_every_n = 7;
    config.watchdog = true;
    configs.push_back(config);
  }
  return configs;
}

std::vector<DiffConfig> RecoveryConfigMatrix(const std::string& kill_operator,
                                             int64_t kill_after) {
  std::vector<DiffConfig> configs;
  auto add = [&](ExecutionMode mode, StrategyKind strategy) -> DiffConfig& {
    DiffConfig config;
    config.mode = mode;
    config.strategy = strategy;
    config.checkpoint_epoch_interval = 50;
    config.chaos_kill_operator = kill_operator;
    config.chaos_kill_after = kill_after;
    configs.push_back(config);
    return configs.back();
  };
  // Every scheduled architecture absorbs the kill; FIFO and Chain cover
  // the two scheduling families (arrival-ordered vs priority).
  for (ExecutionMode mode :
       {ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    for (StrategyKind strategy : {StrategyKind::kFifo, StrategyKind::kChain}) {
      if (mode == ExecutionMode::kOts && strategy != StrategyKind::kFifo) {
        continue;  // OTS ignores the level-2 strategy
      }
      add(mode, strategy);
    }
  }
  // Single-threaded DI with source queues.
  add(ExecutionMode::kDirect, StrategyKind::kFifo);
  // Both cross-thread queue paths must replay identically.
  add(ExecutionMode::kGts, StrategyKind::kFifo).queue_path =
      QueuePathMode::kForceMpsc;
  // Bounded kBlock queues: backpressure + recovery, still exact (kBlock
  // never sheds, so the exact oracle applies).
  {
    DiffConfig& config = add(ExecutionMode::kHmts, StrategyKind::kFifo);
    config.queue_max_elements = 64;
    config.overload_policy = OverloadPolicy::kBlock;
  }
  // Double kill: the operator dies again right after the first recovery's
  // replay; two rewinds must still converge to golden.
  add(ExecutionMode::kHmts, StrategyKind::kFifo).chaos_kills = 2;
  // Batch delivery + kill/revive: batches split at every epoch barrier and
  // dissolve at fault-hooked operators, so rewind + replay must restore
  // exactly the same committed prefix as the per-tuple path.
  add(ExecutionMode::kHmts, StrategyKind::kFifo).emit_batch_size = 64;
  add(ExecutionMode::kGts, StrategyKind::kFifo).emit_batch_size = 8;
  // Columnar + kill/revive: armed epoch-alignment state forces the row
  // fallback at epoch-participating operators (the PR 5 unbundling
  // contract), so rewind + replay must restore exactly the same committed
  // prefix as the per-tuple path.
  {
    DiffConfig& config = add(ExecutionMode::kHmts, StrategyKind::kFifo);
    config.emit_batch_size = 64;
    config.columnar = true;
  }
  {
    DiffConfig& config = add(ExecutionMode::kGts, StrategyKind::kFifo);
    config.emit_batch_size = 8;
    config.columnar = true;
  }
  return configs;
}

ExecutableDag BuildDagForSpec(const DiffSpec& spec) {
  return BuildExecutableDag(DagOptionsForSpec(spec), spec.seed);
}

std::vector<DiffConfig> ShardConfigMatrix() {
  std::vector<DiffConfig> configs;
  // Ordered sharding across every scheduled architecture, both shard
  // widths, per-tuple and batch delivery. The exact-sequence oracle stays
  // fully armed: the sequencing Router + kSequence merge must reproduce
  // the unsharded golden output byte-for-byte.
  for (ExecutionMode mode :
       {ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    for (int shards : {2, 4}) {
      for (size_t batch : {size_t{1}, size_t{64}}) {
        DiffConfig config;
        config.mode = mode;
        config.shard_count = shards;
        config.emit_batch_size = batch;
        configs.push_back(config);
      }
    }
  }
  // Columnar sharding: replica emit-seq stamping forces the row fallback
  // inside replicas while the rest of the pipeline stays columnar; the
  // sequencing Router + ordered merge must still reproduce the unsharded
  // golden byte-for-byte.
  for (ExecutionMode mode : {ExecutionMode::kGts, ExecutionMode::kHmts}) {
    DiffConfig config;
    config.mode = mode;
    config.shard_count = 2;
    config.emit_batch_size = 64;
    config.columnar = true;
    configs.push_back(config);
  }
  // Arrival-order merge: no buffering, nondeterministic interleaving — all
  // sinks demote to the multiset oracle.
  for (int shards : {2, 4}) {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.shard_count = shards;
    config.shard_unordered = true;
    configs.push_back(config);
  }
  // Kill one replica mid-run under checkpointing: epoch rewind + replay
  // must restore the sharded pipeline to an exact golden match.
  {
    DiffConfig config;
    config.mode = ExecutionMode::kHmts;
    config.shard_count = 2;
    config.checkpoint_epoch_interval = 50;
    config.kill_shard_replica = 1;
    config.chaos_kill_after = 40;
    configs.push_back(config);
  }
  return configs;
}

std::vector<DiffConfig> DurabilityConfigMatrix() {
  std::vector<DiffConfig> configs;
  auto add = [&](ExecutionMode mode) -> DiffConfig& {
    DiffConfig config;
    config.mode = mode;
    config.checkpoint_epoch_interval = 50;
    config.cold_restarts = 1;
    configs.push_back(config);
    return configs.back();
  };
  // One process death + disk restore under every architecture. kDirect
  // and the scheduled modes all share the same durable protocol; the
  // restored graph must resume to an exact golden match.
  add(ExecutionMode::kGts);
  add(ExecutionMode::kOts);
  add(ExecutionMode::kHmts);
  add(ExecutionMode::kDirect);
  // Both cross-thread queue paths must restore identically.
  add(ExecutionMode::kGts).queue_path = QueuePathMode::kForceMpsc;
  // Batch delivery: barriers still split batches, so the durable cursors
  // land on the same element boundaries as the per-tuple path.
  add(ExecutionMode::kHmts).emit_batch_size = 64;
  // Columnar + cold restart: columnar engages between barriers while the
  // durable cursors land on identical element boundaries; every
  // incarnation must restore to an exact golden match.
  {
    DiffConfig& config = add(ExecutionMode::kHmts);
    config.emit_batch_size = 64;
    config.columnar = true;
  }
  // Two process deaths: the second incarnation restores, makes fresh
  // progress, persists new epochs, dies again — and the third must
  // restore from epochs written *after* a restore.
  add(ExecutionMode::kHmts).cold_restarts = 2;
  // Disk-fault sweep: each fault forces ColdRestart down the fallback
  // path (previous intact epoch, or a fresh start when nothing survived).
  for (const char* fault :
       {"torn-write", "corrupt-epoch", "enospc", "fsync-fail"}) {
    add(ExecutionMode::kHmts).disk_fault = fault;
  }
  return configs;
}

namespace {

/// One on-disk checkpoint directory per cold-restart scenario, unique
/// across concurrent test processes and scenarios within one process.
std::string MakeScenarioCheckpointDir() {
  static std::atomic<uint64_t> counter{0};
  std::ostringstream name;
  name << "flexstream_diff_ckpt_" << ::getpid() << "_"
       << counter.fetch_add(1, std::memory_order_relaxed);
  return (std::filesystem::temp_directory_path() / name.str()).string();
}

ChaosOptions DiskChaosForFault(const std::string& fault) {
  ChaosOptions chaos;
  if (fault == "torn-write") {
    chaos.disk_torn_write_epoch = 2;
  } else if (fault == "corrupt-epoch") {
    chaos.disk_corrupt_epoch = 2;
  } else if (fault == "enospc") {
    // Large enough that early epochs usually persist, small enough that
    // the budget exhausts mid-run; either way the fallback must hold.
    chaos.disk_enospc_after_bytes = 128 * 1024;
  } else if (fault == "fsync-fail") {
    chaos.disk_fsync_fail_epoch = 2;
  } else {
    CHECK(fault.empty()) << "unknown disk_fault '" << fault << "'";
  }
  return chaos;
}

/// Cold-restart scenario: `cold_restarts + 1` engine incarnations over one
/// durable checkpoint directory. Non-final incarnations feed a growing
/// prefix of the seeded stream, wait for a fresh durable commit, and are
/// destroyed without closing the sources — engine, graph, and every bit of
/// volatile state are gone, exactly what a process death leaves behind.
/// The final incarnation restores from disk, re-drives the full input
/// (sources swallow the committed prefix via their durable cursors), runs
/// to EOS, and reports its sink outputs for the golden compare.
SinkOutputs RunWithColdRestarts(const DiffSpec& spec,
                                const DiffConfig& config) {
  CHECK(config.checkpoint_epoch_interval > 0)
      << "cold_restarts requires checkpointing";
  CHECK(config.shard_count == 0) << "cold_restarts x shard not supported";
  CHECK(!config.chaos_enabled()) << "cold_restarts x op chaos not supported";

  const std::string dir = MakeScenarioCheckpointDir();
  // One faulty env spans every incarnation so cumulative budgets (ENOSPC)
  // and epoch-keyed faults behave like a real disk across restarts.
  const ChaosOptions disk_chaos = DiskChaosForFault(config.disk_fault);
  std::unique_ptr<FaultyStorageEnv> faulty_env;
  if (disk_chaos.any_disk_chaos()) {
    faulty_env =
        std::make_unique<FaultyStorageEnv>(LocalStorageEnv(), disk_chaos);
  }

  SinkOutputs out;
  const int phases = config.cold_restarts + 1;
  for (int phase = 0; phase < phases; ++phase) {
    ExecutableDag dag = BuildDagForSpec(spec);
    StreamEngine engine(dag.graph.get());
    EngineOptions options = EngineOptionsForConfig(config);
    options.durable_checkpoint_dir = dir;
    options.storage_env = faulty_env.get();
    CHECK_OK(engine.Configure(options));
    uint64_t restored = 0;
    if (phase > 0) {
      Result<uint64_t> r = engine.ColdRestart();
      CHECK_OK(r.status());
      restored = *r;
    }
    CHECK_OK(engine.Start());
    if (phase + 1 < phases) {
      // Feed a prefix of the stream, no Close: the sources stay open when
      // this incarnation dies, like a producer that outlives the crash.
      FeedSourcesPrefix(dag, spec.seed,
                        spec.feed_count * (phase + 1) / phases);
      // Best-effort wait for one *new* durable commit so the restart has
      // fresh state to restore. Result identity does not depend on how
      // far the commit got — a restore from any epoch (even a fresh
      // start) replays to the same answer — so a timeout just proceeds.
      const TimePoint deadline = Now() + std::chrono::seconds(10);
      while (engine.recovery()->coordinator().committed_epoch() <=
                 restored &&
             Now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Grace for the commit listener's store write to land; killing
      // inside the write window is also legal (that is what the CRC
      // protocol is for), just less interesting as the common case.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      engine.Stop();
      continue;  // engine + graph destroyed: the "process" is dead
    }
    // Final incarnation: full deterministic re-drive + EOS. The sources
    // swallow their committed prefix and re-deliver the suffix.
    out.order_checked = dag.order_checked;
    FeedSources(dag, spec.seed, spec.feed_count);
    out.completed = engine.WaitUntilFinishedFor(kRunTimeout);
    engine.Stop();
    out.dropped = engine.DroppedElements();
    out.run_result = engine.RunResult();
    if (const RecoveryManager* recovery = engine.recovery()) {
      out.recoveries = recovery->completed_recoveries();
      out.committed_epoch = recovery->coordinator().committed_epoch();
      out.replayed_elements = recovery->replayed_elements();
    }
    for (CollectingSink* sink : dag.sinks) {
      out.per_sink.push_back(sink->TakeResults());
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return out;
}

}  // namespace

SinkOutputs RunUnderConfig(const DiffSpec& spec, const DiffConfig& config) {
  if (config.cold_restarts > 0) return RunWithColdRestarts(spec, config);
  ExecutableDag dag = BuildDagForSpec(spec);
  SinkOutputs out;
  out.order_checked = dag.order_checked;

  if (config.mode == ExecutionMode::kSourceDriven) {
    // Queue-free DI: the feeding thread executes the whole graph.
    FeedSources(dag, spec.seed, spec.feed_count);
    for (CollectingSink* sink : dag.sinks) {
      out.per_sink.push_back(sink->TakeResults());
    }
    return out;
  }

  std::string shard_target;
  if (config.shard_count > 0) {
    // Rewrite before the engine sees the graph: split the first
    // Selection/Map (graph order) into key-partitioned replicas behind a
    // sequencing Router, re-merged downstream (api/shard.h). The golden
    // run stays unsharded, so the comparison checks the rewrite itself.
    Operator* target = nullptr;
    for (Node* node : dag.graph->nodes()) {
      if (auto* selection = dynamic_cast<Selection*>(node)) {
        target = selection;
        break;
      }
      if (auto* map = dynamic_cast<MapOp*>(node)) {
        target = map;
        break;
      }
    }
    CHECK(target != nullptr) << "spec graph has no shardable operator";
    shard_target = target->name();
    ShardOptions shard;
    shard.shards = static_cast<size_t>(config.shard_count);
    shard.key_attrs = {0};
    shard.ordered = !config.shard_unordered;
    CHECK_OK(ShardOperator(dag.graph.get(), target, shard).status());
    if (config.shard_unordered) {
      // Replica outputs interleave nondeterministically through the
      // arrival-order merge; no downstream sink keeps a guaranteed
      // sequence.
      out.order_checked.assign(out.order_checked.size(), false);
    }
  }

  StreamEngine engine(dag.graph.get());
  CHECK_OK(engine.Configure(EngineOptionsForConfig(config)));
  if (config.fault != QueueOp::TestFault::kNone) {
    for (QueueOp* queue : engine.queues()) queue->SetTestFault(config.fault);
  }
  ChaosOptions chaos_options = ChaosOptionsForConfig(config);
  if (config.kill_shard_replica >= 0) {
    // Replica names only exist after the rewrite above.
    CHECK(config.shard_count > config.kill_shard_replica)
        << "kill_shard_replica requires shard_count > replica index";
    chaos_options.kill_operator =
        shard_target + ".shard" + std::to_string(config.kill_shard_replica);
  }
  ChaosInjector chaos(chaos_options);
  if (config.chaos_enabled()) {
    chaos.Arm(dag.graph.get(), engine.queues());
  }
  // SLO-controller axis: a live controller fed by the square-wave fake
  // escalates and de-escalates rungs 1-2 against this engine throughout
  // the run. Shedding/resharding disabled — results must stay identical.
  std::unique_ptr<EngineActuator> slo_actuator;
  std::unique_ptr<SquareWaveProbe> slo_probe;
  std::unique_ptr<SloController> slo;
  if (config.slo_controller) {
    SloOptions slo_options;
    slo_options.target_p99_micros = 10'000.0;
    slo_options.control_interval = std::chrono::milliseconds(2);
    slo_options.ewma_alpha = 1.0;
    slo_options.deescalate_fraction = 0.5;
    slo_options.deescalate_intervals = 1;
    slo_options.min_dwell = Duration::zero();
    slo_options.base_threads = 1;
    slo_options.max_threads = 3;
    slo_options.base_batch_size = std::max<size_t>(1, config.emit_batch_size);
    slo_options.max_batch_size = 32;
    slo_options.allow_reshard = false;
    slo_options.allow_shedding = false;
    slo_actuator = std::make_unique<EngineActuator>(&engine);
    slo_probe =
        std::make_unique<SquareWaveProbe>(slo_options.target_p99_micros);
    slo = std::make_unique<SloController>(slo_options, slo_probe.get(),
                                          slo_actuator.get());
    slo->Start();
  }
  if (config.feed_before_start) {
    // Queues absorb the whole stream before any worker runs, so the first
    // drains see large batches.
    FeedSources(dag, spec.seed, spec.feed_count);
    CHECK_OK(engine.Start());
  } else {
    CHECK_OK(engine.Start());
    FeedSources(dag, spec.seed, spec.feed_count);
  }
  out.completed = engine.WaitUntilFinishedFor(kRunTimeout);
  if (slo != nullptr) slo->Stop();
  engine.Stop();
  out.dropped = engine.DroppedElements();
  out.run_result = engine.RunResult();
  if (const RecoveryManager* recovery = engine.recovery()) {
    out.recoveries = recovery->completed_recoveries();
    out.committed_epoch = recovery->coordinator().committed_epoch();
    out.replayed_elements = recovery->replayed_elements();
  }
  if (engine.hmts() != nullptr) {
    out.watchdog_stalls = engine.hmts()->thread_scheduler().stall_events();
  }
  for (Node* node : dag.graph->nodes()) {
    if (const Operator* op = dynamic_cast<const Operator*>(node)) {
      out.fault_retries += op->fault_retries();
    }
  }
  chaos.Disarm();
  for (CollectingSink* sink : dag.sinks) {
    out.per_sink.push_back(sink->TakeResults());
  }
  return out;
}

namespace {

/// True when `got` is a subsequence of `want` (order preserved, elements
/// possibly missing).
bool IsSubsequence(const std::vector<Tuple>& want,
                   const std::vector<Tuple>& got) {
  size_t gi = 0;
  for (size_t wi = 0; wi < want.size() && gi < got.size(); ++wi) {
    if (want[wi] == got[gi]) ++gi;
  }
  return gi == got.size();
}

}  // namespace

std::string CompareOutputs(const SinkOutputs& golden,
                           const SinkOutputs& candidate) {
  if (!candidate.completed) {
    return "candidate run timed out before draining to EOS";
  }
  if (!candidate.run_result.ok()) {
    return "candidate run failed: " + candidate.run_result.message();
  }
  CHECK_EQ(golden.per_sink.size(), candidate.per_sink.size());
  // Declared load shedding relaxes the oracle: outputs must be explainable
  // as "golden minus shed elements" — never reordered, duplicated, or
  // invented. With zero sheds the comparison stays exact, shed policy or
  // not.
  const bool shed = candidate.dropped > 0;
  for (size_t i = 0; i < golden.per_sink.size(); ++i) {
    const std::vector<Tuple>& want = golden.per_sink[i];
    const std::vector<Tuple>& got = candidate.per_sink[i];
    // A candidate may demote a sink to multiset compare (e.g. an
    // arrival-order shard merge interleaves replicas nondeterministically);
    // otherwise golden's flags decide.
    const bool ordered =
        i < golden.order_checked.size() && golden.order_checked[i] &&
        (i >= candidate.order_checked.size() || candidate.order_checked[i]);
    if (ordered) {
      if (shed ? !IsSubsequence(want, got) : want != got) {
        std::ostringstream os;
        os << "sink " << i << ": "
           << (shed ? "not a subsequence of golden under declared sheds "
                    : "sequence mismatch on order-preserving pipeline ")
           << "(" << FirstDifference(want, got) << ")";
        return os.str();
      }
      continue;
    }
    std::vector<Tuple> want_sorted = want;
    std::vector<Tuple> got_sorted = got;
    std::sort(want_sorted.begin(), want_sorted.end());
    std::sort(got_sorted.begin(), got_sorted.end());
    if (shed) {
      if (!std::includes(want_sorted.begin(), want_sorted.end(),
                         got_sorted.begin(), got_sorted.end())) {
        std::ostringstream os;
        os << "sink " << i << ": output is not a sub-multiset of golden "
           << "under declared sheds ("
           << FirstDifference(want_sorted, got_sorted) << ")";
        return os.str();
      }
      continue;
    }
    if (want_sorted != got_sorted) {
      std::ostringstream os;
      os << "sink " << i << ": multiset mismatch ("
         << FirstDifference(want_sorted, got_sorted) << ")";
      return os.str();
    }
  }
  return "";
}

namespace {

/// Runs candidate vs golden once; non-empty on mismatch.
std::string RunOnce(const DiffSpec& spec, const DiffConfig& config) {
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());
  const SinkOutputs candidate = RunUnderConfig(spec, config);
  return CompareOutputs(golden, candidate);
}

/// True when any of `retries` attempts mismatches (thread schedules vary,
/// so a shrunk scenario may need several runs to re-trigger).
bool StillFails(const DiffSpec& spec, const DiffConfig& config, int retries,
                std::string* message) {
  for (int attempt = 0; attempt < std::max(retries, 1); ++attempt) {
    std::string mismatch = RunOnce(spec, config);
    if (!mismatch.empty()) {
      *message = std::move(mismatch);
      return true;
    }
  }
  return false;
}

}  // namespace

DiffSpec ShrinkFailingSpec(const DiffSpec& spec, const DiffConfig& config,
                           int retries) {
  DiffSpec best = spec;
  const int min_nodes = spec.source_count + 2;
  const int min_feed = 16;
  bool progressed = true;
  std::string message;
  while (progressed) {
    progressed = false;
    if (best.node_count / 2 >= min_nodes) {
      DiffSpec candidate = best;
      candidate.node_count /= 2;
      if (StillFails(candidate, config, retries, &message)) {
        best = candidate;
        progressed = true;
        continue;
      }
    }
    if (best.feed_count / 2 >= min_feed) {
      DiffSpec candidate = best;
      candidate.feed_count /= 2;
      if (StillFails(candidate, config, retries, &message)) {
        best = candidate;
        progressed = true;
      }
    }
  }
  return best;
}

DiffReport RunDifferential(const DiffSpec& spec,
                           const std::vector<DiffConfig>& configs,
                           const DiffRunOptions& options) {
  DiffReport report;
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());
  for (const DiffConfig& config : configs) {
    ++report.configs_run;
    const SinkOutputs candidate = RunUnderConfig(spec, config);
    std::string mismatch = CompareOutputs(golden, candidate);
    if (mismatch.empty()) continue;

    DiffFailure failure;
    failure.spec = options.shrink
                       ? ShrinkFailingSpec(spec, config, options.shrink_retries)
                       : spec;
    failure.config = config;
    failure.message = mismatch;
    DumpArtifacts(failure.spec, config, ResolveArtifactDir(options.artifact_dir),
                  &failure);
    LOG(ERROR) << "differential mismatch [" << config.Name() << " | "
               << DescribeSpec(failure.spec) << "]: " << mismatch
               << (failure.replay_path.empty()
                       ? ""
                       : " (replay: " + failure.replay_path + ")");
    report.failures.push_back(std::move(failure));
    report.ok = false;
  }
  return report;
}

std::string FormatReplay(const DiffSpec& spec, const DiffConfig& config) {
  std::ostringstream os;
  os << "# flexstream differential replay\n"
     << "# re-run with: FLEXSTREAM_DIFF_REPLAY=<this file> "
     << "flexstream_differential_test\n"
     << "seed=" << spec.seed << "\n"
     << "node_count=" << spec.node_count << "\n"
     << "source_count=" << spec.source_count << "\n"
     << "second_input_probability=" << spec.second_input_probability << "\n"
     << "feed_count=" << spec.feed_count << "\n"
     << "max_burn_micros=" << spec.max_burn_micros << "\n"
     << "mode=" << ExecutionModeToString(config.mode) << "\n"
     << "strategy=" << StrategyKindToString(config.strategy) << "\n"
     << "placement=" << PlacementKindToString(config.placement) << "\n"
     << "queue_path=" << QueuePathModeToString(config.queue_path) << "\n"
     << "ring_capacity=" << config.ring_capacity << "\n"
     << "feed_before_start=" << (config.feed_before_start ? 1 : 0) << "\n"
     << "fault=" << TestFaultToString(config.fault) << "\n"
     << "queue_max_elements=" << config.queue_max_elements << "\n"
     << "overload_policy=" << OverloadPolicyToString(config.overload_policy)
     << "\n"
     << "chaos_transient_rate=" << config.chaos_transient_rate << "\n"
     << "chaos_delay_rate=" << config.chaos_delay_rate << "\n"
     << "chaos_suppress_every_n=" << config.chaos_suppress_every_n << "\n"
     << "chaos_seed=" << config.chaos_seed << "\n"
     << "checkpoint_epoch_interval=" << config.checkpoint_epoch_interval
     << "\n"
     << "chaos_kill_operator=" << config.chaos_kill_operator << "\n"
     << "chaos_kill_after=" << config.chaos_kill_after << "\n"
     << "chaos_kills=" << config.chaos_kills << "\n"
     << "watchdog=" << (config.watchdog ? 1 : 0) << "\n"
     << "emit_batch_size=" << config.emit_batch_size << "\n"
     << "columnar=" << (config.columnar ? 1 : 0) << "\n"
     << "shard_count=" << config.shard_count << "\n"
     << "shard_unordered=" << (config.shard_unordered ? 1 : 0) << "\n"
     << "kill_shard_replica=" << config.kill_shard_replica << "\n"
     << "cold_restarts=" << config.cold_restarts << "\n"
     << "disk_fault=" << config.disk_fault << "\n"
     << "slo_controller=" << (config.slo_controller ? 1 : 0) << "\n";
  return os.str();
}

bool ParseReplay(const std::string& text, DiffSpec* spec, DiffConfig* config,
                 std::string* error) {
  *spec = DiffSpec();
  *config = DiffConfig();
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto fail = [error, &line_no](const std::string& why) {
    if (error != nullptr) {
      *error = "replay line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key=value");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "seed") {
        spec->seed = std::stoull(value);
      } else if (key == "node_count") {
        spec->node_count = std::stoi(value);
      } else if (key == "source_count") {
        spec->source_count = std::stoi(value);
      } else if (key == "second_input_probability") {
        spec->second_input_probability = std::stod(value);
      } else if (key == "feed_count") {
        spec->feed_count = std::stoi(value);
      } else if (key == "max_burn_micros") {
        spec->max_burn_micros = std::stod(value);
      } else if (key == "mode") {
        if (!ExecutionModeFromString(value, &config->mode)) {
          return fail("unknown mode '" + value + "'");
        }
      } else if (key == "strategy") {
        if (!StrategyKindFromString(value, &config->strategy)) {
          return fail("unknown strategy '" + value + "'");
        }
      } else if (key == "placement") {
        if (!PlacementKindFromString(value, &config->placement)) {
          return fail("unknown placement '" + value + "'");
        }
      } else if (key == "queue_path") {
        if (!QueuePathModeFromString(value, &config->queue_path)) {
          return fail("unknown queue_path '" + value + "'");
        }
      } else if (key == "ring_capacity") {
        config->ring_capacity = std::stoull(value);
      } else if (key == "feed_before_start") {
        config->feed_before_start = std::stoi(value) != 0;
      } else if (key == "fault") {
        if (!TestFaultFromString(value, &config->fault)) {
          return fail("unknown fault '" + value + "'");
        }
      } else if (key == "queue_max_elements") {
        config->queue_max_elements = std::stoull(value);
      } else if (key == "overload_policy") {
        if (!OverloadPolicyFromString(value, &config->overload_policy)) {
          return fail("unknown overload_policy '" + value + "'");
        }
      } else if (key == "chaos_transient_rate") {
        config->chaos_transient_rate = std::stod(value);
      } else if (key == "chaos_delay_rate") {
        config->chaos_delay_rate = std::stod(value);
      } else if (key == "chaos_suppress_every_n") {
        config->chaos_suppress_every_n = std::stoi(value);
      } else if (key == "chaos_seed") {
        config->chaos_seed = std::stoull(value);
      } else if (key == "checkpoint_epoch_interval") {
        config->checkpoint_epoch_interval = std::stoull(value);
      } else if (key == "chaos_kill_operator") {
        config->chaos_kill_operator = value;
      } else if (key == "chaos_kill_after") {
        config->chaos_kill_after = std::stoll(value);
      } else if (key == "chaos_kills") {
        config->chaos_kills = std::stoi(value);
      } else if (key == "watchdog") {
        config->watchdog = std::stoi(value) != 0;
      } else if (key == "emit_batch_size") {
        config->emit_batch_size = std::stoull(value);
      } else if (key == "columnar") {
        config->columnar = std::stoi(value) != 0;
      } else if (key == "shard_count") {
        config->shard_count = std::stoi(value);
      } else if (key == "shard_unordered") {
        config->shard_unordered = std::stoi(value) != 0;
      } else if (key == "kill_shard_replica") {
        config->kill_shard_replica = std::stoi(value);
      } else if (key == "cold_restarts") {
        config->cold_restarts = std::stoi(value);
      } else if (key == "disk_fault") {
        config->disk_fault = value;
      } else if (key == "slo_controller") {
        config->slo_controller = std::stoi(value) != 0;
      } else {
        return fail("unknown key '" + key + "'");
      }
    } catch (const std::exception& e) {
      return fail("cannot parse value '" + value + "': " + e.what());
    }
  }
  if (spec->node_count < spec->source_count + 1 || spec->source_count < 1 ||
      spec->feed_count < 1) {
    line_no = 0;
    return fail("inconsistent spec values");
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace flexstream

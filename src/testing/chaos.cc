#include "testing/chaos.h"

#include <algorithm>
#include <functional>
#include <random>
#include <utility>

#include "util/busy_work.h"
#include "util/logging.h"
#include "util/status.h"

namespace flexstream {
namespace {

/// Per-operator fault-decision state. Owned by the installed hook; touched
/// only by the thread currently delivering to that operator (non-queue
/// operators are single-threaded per the threading contract, and
/// source-driven mode serializes Receive).
struct OpChaosState {
  std::mt19937_64 rng;
  std::uniform_real_distribution<double> unit{0.0, 1.0};
  // Verdict for the element currently being retried: how many more
  // transient failures to report before letting it proceed.
  int pending_transients = 0;
  int64_t deliveries = 0;
  // Kill/revive: how many kills this operator has already suffered.
  // Persists across recovery restores (the hook survives Operator::Reset),
  // which is exactly what makes the operator "revive" healthy.
  int kills_done = 0;
};

}  // namespace

void ChaosInjector::Arm(QueryGraph* graph,
                        const std::vector<QueueOp*>& queues) {
  CHECK(hooked_.empty() && suppressed_queues_.empty())
      << "ChaosInjector armed twice";
  if (options_.any_operator_chaos()) {
    for (Node* node : graph->nodes()) {
      if (node->is_source() || node->is_sink() || node->is_queue()) continue;
      Operator* op = dynamic_cast<Operator*>(node);
      if (op == nullptr) continue;

      const bool permanent_target =
          op->name() == options_.permanent_fail_operator;
      const bool kill_target =
          !options_.kill_operator.empty() &&
          op->name() == options_.kill_operator;
      auto state = std::make_shared<OpChaosState>();
      state->rng.seed(options_.seed ^
                      std::hash<std::string>{}(op->name()));
      const ChaosOptions opts = options_;
      auto transients = transients_;
      auto permanents = permanents_;
      auto delays = delays_;

      op->SetFaultHook([state, opts, permanent_target, kill_target,
                        transients, permanents,
                        delays](const Operator& /*op*/,
                                const Tuple& /*tuple*/, int /*port*/,
                                int attempt) -> FaultAction {
        if (attempt > 0) {
          // Retry of the element we already judged: keep failing until the
          // drawn transient count is spent.
          if (state->pending_transients > 0) {
            --state->pending_transients;
            transients->fetch_add(1, std::memory_order_relaxed);
            return FaultAction::kTransientFailure;
          }
          return FaultAction::kProceed;
        }
        const int64_t delivery = state->deliveries++;
        if (permanent_target && delivery >= opts.permanent_after) {
          permanents->fetch_add(1, std::memory_order_relaxed);
          return FaultAction::kPermanentFailure;
        }
        if (kill_target && delivery >= opts.kill_after &&
            state->kills_done < opts.kills) {
          ++state->kills_done;
          permanents->fetch_add(1, std::memory_order_relaxed);
          return FaultAction::kPermanentFailure;
        }
        if (opts.delay_rate > 0.0 &&
            state->unit(state->rng) < opts.delay_rate) {
          delays->fetch_add(1, std::memory_order_relaxed);
          BurnMicros(opts.delay_micros);
        }
        if (opts.transient_rate > 0.0 &&
            state->unit(state->rng) < opts.transient_rate) {
          // Fail this attempt and 0–2 more; always well under the
          // operator's retry budget, so a transient never escalates.
          state->pending_transients =
              static_cast<int>(state->rng() % 3);
          transients->fetch_add(1, std::memory_order_relaxed);
          return FaultAction::kTransientFailure;
        }
        return FaultAction::kProceed;
      });
      hooked_.push_back(op);
    }
  }
  if (options_.suppress_every_n_wakeups > 0) {
    const int n = options_.suppress_every_n_wakeups;
    for (QueueOp* queue : queues) {
      auto counter = std::make_shared<std::atomic<int64_t>>(0);
      auto suppressed = suppressed_;
      queue->SetWakeupSuppressor([counter, suppressed, n]() -> bool {
        const int64_t k =
            counter->fetch_add(1, std::memory_order_relaxed) + 1;
        if (k % n != 0) return false;
        suppressed->fetch_add(1, std::memory_order_relaxed);
        return true;
      });
      suppressed_queues_.push_back(queue);
    }
  }
}

void ChaosInjector::Disarm() {
  for (Operator* op : hooked_) op->SetFaultHook(nullptr);
  hooked_.clear();
  for (QueueOp* queue : suppressed_queues_) {
    queue->SetWakeupSuppressor(nullptr);
  }
  suppressed_queues_.clear();
}

namespace {

/// Epoch number from an "epoch_<N>.ckpt[.tmp]" basename anywhere in
/// `path`; 0 when the path is not an epoch file (manifest, tmp junk).
uint64_t EpochFromPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  constexpr char kPrefix[] = "epoch_";
  if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return 0;
  uint64_t value = 0;
  bool any = false;
  for (size_t i = sizeof(kPrefix) - 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    any = true;
  }
  return any ? value : 0;
}

}  // namespace

/// Wraps a base WritableFile to inject the write-path faults. The torn
/// write buffers everything and persists only a prefix at Close — the file
/// "successfully" written by the protocol is short on disk, exactly what a
/// lying fsync plus power loss produces.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base, FaultyStorageEnv* env,
                     uint64_t epoch)
      : base_(std::move(base)), env_(env), epoch_(epoch) {}

  Status Append(std::string_view data) override {
    const ChaosOptions& opts = env_->options_;
    if (opts.disk_enospc_after_bytes > 0) {
      const uint64_t before = env_->bytes_written_.fetch_add(
          data.size(), std::memory_order_relaxed);
      if (before + data.size() > opts.disk_enospc_after_bytes) {
        env_->enospc_failures_.fetch_add(1, std::memory_order_relaxed);
        return Status::Internal("no space left on device (injected)");
      }
    }
    if (torn()) {
      buffered_.append(data.data(), data.size());
      return Status::Ok();  // lies, like the hardware does
    }
    return base_->Append(data);
  }

  Status Sync() override {
    const ChaosOptions& opts = env_->options_;
    if (opts.disk_fsync_fail_epoch > 0 && epoch_ == opts.disk_fsync_fail_epoch) {
      env_->fsync_failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Internal("fsync failed (injected)");
    }
    if (torn()) return Status::Ok();  // reports durable; tail never lands
    return base_->Sync();
  }

  Status Close() override {
    if (torn() && !buffered_.empty()) {
      // Persist roughly the first third — enough for the header to look
      // plausible, short of the footer CRC.
      const size_t keep = std::max<size_t>(1, buffered_.size() / 3);
      Status s = base_->Append(std::string_view(buffered_).substr(0, keep));
      buffered_.clear();
      env_->torn_writes_.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok()) return s;
    }
    return base_->Close();
  }

 private:
  bool torn() const {
    return env_->options_.disk_torn_write_epoch > 0 &&
           epoch_ == env_->options_.disk_torn_write_epoch;
  }

  std::unique_ptr<WritableFile> base_;
  FaultyStorageEnv* const env_;
  const uint64_t epoch_;
  std::string buffered_;
};

FaultyStorageEnv::FaultyStorageEnv(StorageEnv* base,
                                   const ChaosOptions& options)
    : base_(base != nullptr ? base : LocalStorageEnv()), options_(options) {}

Result<std::unique_ptr<WritableFile>> FaultyStorageEnv::NewWritableFile(
    const std::string& path) {
  auto file = base_->NewWritableFile(path);
  if (!file.ok()) return std::move(file).status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultyWritableFile>(
      std::move(*file), this, EpochFromPath(path)));
}

Result<std::string> FaultyStorageEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultyStorageEnv::Rename(const std::string& from,
                                const std::string& to) {
  Status s = base_->Rename(from, to);
  if (!s.ok()) return s;
  // At-rest corruption: flip one bit in the middle of the freshly renamed
  // epoch file, bypassing the write protocol entirely.
  if (options_.disk_corrupt_epoch > 0 &&
      EpochFromPath(to) == options_.disk_corrupt_epoch) {
    auto bytes = base_->ReadFileToString(to);
    if (bytes.ok() && !bytes->empty()) {
      std::string mutated = std::move(*bytes);
      mutated[mutated.size() / 2] = static_cast<char>(
          static_cast<unsigned char>(mutated[mutated.size() / 2]) ^ 0x20u);
      auto file = base_->NewWritableFile(to);
      if (file.ok()) {
        (void)(*file)->Append(mutated);
        (void)(*file)->Sync();
        (void)(*file)->Close();
        corruptions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return s;
}

Status FaultyStorageEnv::SyncDir(const std::string& dir) {
  return base_->SyncDir(dir);
}

Result<std::vector<std::string>> FaultyStorageEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultyStorageEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultyStorageEnv::CreateDirs(const std::string& dir) {
  return base_->CreateDirs(dir);
}

bool FaultyStorageEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace flexstream

#include "testing/chaos.h"

#include <functional>
#include <random>

#include "util/busy_work.h"
#include "util/logging.h"
#include "util/status.h"

namespace flexstream {
namespace {

/// Per-operator fault-decision state. Owned by the installed hook; touched
/// only by the thread currently delivering to that operator (non-queue
/// operators are single-threaded per the threading contract, and
/// source-driven mode serializes Receive).
struct OpChaosState {
  std::mt19937_64 rng;
  std::uniform_real_distribution<double> unit{0.0, 1.0};
  // Verdict for the element currently being retried: how many more
  // transient failures to report before letting it proceed.
  int pending_transients = 0;
  int64_t deliveries = 0;
  // Kill/revive: how many kills this operator has already suffered.
  // Persists across recovery restores (the hook survives Operator::Reset),
  // which is exactly what makes the operator "revive" healthy.
  int kills_done = 0;
};

}  // namespace

void ChaosInjector::Arm(QueryGraph* graph,
                        const std::vector<QueueOp*>& queues) {
  CHECK(hooked_.empty() && suppressed_queues_.empty())
      << "ChaosInjector armed twice";
  if (options_.any_operator_chaos()) {
    for (Node* node : graph->nodes()) {
      if (node->is_source() || node->is_sink() || node->is_queue()) continue;
      Operator* op = dynamic_cast<Operator*>(node);
      if (op == nullptr) continue;

      const bool permanent_target =
          op->name() == options_.permanent_fail_operator;
      const bool kill_target =
          !options_.kill_operator.empty() &&
          op->name() == options_.kill_operator;
      auto state = std::make_shared<OpChaosState>();
      state->rng.seed(options_.seed ^
                      std::hash<std::string>{}(op->name()));
      const ChaosOptions opts = options_;
      auto transients = transients_;
      auto permanents = permanents_;
      auto delays = delays_;

      op->SetFaultHook([state, opts, permanent_target, kill_target,
                        transients, permanents,
                        delays](const Operator& /*op*/,
                                const Tuple& /*tuple*/, int /*port*/,
                                int attempt) -> FaultAction {
        if (attempt > 0) {
          // Retry of the element we already judged: keep failing until the
          // drawn transient count is spent.
          if (state->pending_transients > 0) {
            --state->pending_transients;
            transients->fetch_add(1, std::memory_order_relaxed);
            return FaultAction::kTransientFailure;
          }
          return FaultAction::kProceed;
        }
        const int64_t delivery = state->deliveries++;
        if (permanent_target && delivery >= opts.permanent_after) {
          permanents->fetch_add(1, std::memory_order_relaxed);
          return FaultAction::kPermanentFailure;
        }
        if (kill_target && delivery >= opts.kill_after &&
            state->kills_done < opts.kills) {
          ++state->kills_done;
          permanents->fetch_add(1, std::memory_order_relaxed);
          return FaultAction::kPermanentFailure;
        }
        if (opts.delay_rate > 0.0 &&
            state->unit(state->rng) < opts.delay_rate) {
          delays->fetch_add(1, std::memory_order_relaxed);
          BurnMicros(opts.delay_micros);
        }
        if (opts.transient_rate > 0.0 &&
            state->unit(state->rng) < opts.transient_rate) {
          // Fail this attempt and 0–2 more; always well under the
          // operator's retry budget, so a transient never escalates.
          state->pending_transients =
              static_cast<int>(state->rng() % 3);
          transients->fetch_add(1, std::memory_order_relaxed);
          return FaultAction::kTransientFailure;
        }
        return FaultAction::kProceed;
      });
      hooked_.push_back(op);
    }
  }
  if (options_.suppress_every_n_wakeups > 0) {
    const int n = options_.suppress_every_n_wakeups;
    for (QueueOp* queue : queues) {
      auto counter = std::make_shared<std::atomic<int64_t>>(0);
      auto suppressed = suppressed_;
      queue->SetWakeupSuppressor([counter, suppressed, n]() -> bool {
        const int64_t k =
            counter->fetch_add(1, std::memory_order_relaxed) + 1;
        if (k % n != 0) return false;
        suppressed->fetch_add(1, std::memory_order_relaxed);
        return true;
      });
      suppressed_queues_.push_back(queue);
    }
  }
}

void ChaosInjector::Disarm() {
  for (Operator* op : hooked_) op->SetFaultHook(nullptr);
  hooked_.clear();
  for (QueueOp* queue : suppressed_queues_) {
    queue->SetWakeupSuppressor(nullptr);
  }
  suppressed_queues_.clear();
}

}  // namespace flexstream

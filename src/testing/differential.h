// Differential correctness harness: scheduler-oblivious result checking.
//
// The paper's core semantic claim (Sections 3-4) is that scheduling
// architecture — GTS, OTS, HMTS under any level-2 strategy — changes
// performance but never results. This harness machine-checks that claim:
// one seeded random executable graph (testing/executable_dag.h) is run to
// completion under a matrix of execution configurations, and every
// configuration's per-sink output is compared against a single-threaded
// direct-interoperability golden run:
//
//  * every sink: the sorted multiset of output tuples must be identical
//    (the schedule-independent notion of equality for merged streams);
//  * sinks whose upstream is a pure chain from one source: the *exact
//    output sequence* must match (FIFO queues and single-threaded
//    partitions make any deviation a reordering bug).
//
// On a mismatch the harness shrinks the scenario (fewer nodes, fewer
// elements) while the failure reproduces, then dumps the failing graph as
// DOT plus a replay file; FLEXSTREAM_DIFF_REPLAY=<file> re-runs exactly
// that scenario (see tests/harness/flexstream_differential_test.cc).

#ifndef FLEXSTREAM_TESTING_DIFFERENTIAL_H_
#define FLEXSTREAM_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/stream_engine.h"
#include "testing/chaos.h"
#include "testing/executable_dag.h"

namespace flexstream {

/// A reproducible differential scenario: every RNG involved (topology,
/// operator choice, input stream) derives from `seed`.
struct DiffSpec {
  uint64_t seed = 1;
  int node_count = 16;
  int source_count = 2;
  /// Probability that a non-source node takes a second producer; 0 yields
  /// a tree, where every sink is sequence-checked.
  double second_input_probability = 0.15;
  /// Data elements fed across all sources.
  int feed_count = 600;
  /// Cap on the per-element synthetic CPU burn (microseconds).
  double max_burn_micros = 3.0;
};

/// One execution configuration of the matrix.
struct DiffConfig {
  ExecutionMode mode = ExecutionMode::kGts;
  StrategyKind strategy = StrategyKind::kFifo;
  PlacementKind placement = PlacementKind::kStallAvoiding;
  QueuePathMode queue_path = QueuePathMode::kAuto;
  size_t ring_capacity = QueueOp::kDefaultRingCapacity;
  /// Feed every element (and EOS) before starting the workers: queues
  /// absorb the whole stream, so the first drains run with full batches
  /// (burst arrival). The default feeds concurrently with execution.
  bool feed_before_start = false;
  /// Mutation testing only: injected into every placed queue after
  /// Configure. The harness must *fail* under any non-kNone fault.
  QueueOp::TestFault fault = QueueOp::TestFault::kNone;

  // -- Robustness dimensions (ISSUE 3) ------------------------------------

  /// Hard element budget per placed queue; 0 = unbounded. With kBlock the
  /// run must still match golden exactly (backpressure, no loss); with a
  /// shed policy the candidate's output must be a sub-multiset of golden
  /// and the queues' drop counters must account for the difference.
  size_t queue_max_elements = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;

  /// Seeded chaos injected after Configure (see testing/chaos.h):
  /// transient operator failures (absorbed by retry — results must stay
  /// identical), per-element delays, and lost queue wakeups (recovered by
  /// the idle-poll failsafe).
  double chaos_transient_rate = 0.0;
  double chaos_delay_rate = 0.0;
  int chaos_suppress_every_n = 0;
  uint64_t chaos_seed = 1;

  /// Enables the ThreadScheduler no-progress watchdog (kHmts only); chaos
  /// runs assert it stays clean (stall_events == 0).
  bool watchdog = false;

  /// Batch execution path (EngineOptions::emit_batch_size): sources bundle
  /// this many elements into one TupleBatch and queues deliver drained
  /// runs as single ReceiveBatch calls. Any size must leave results
  /// byte-identical to per-tuple execution — batching changes delivery
  /// granularity, never semantics.
  size_t emit_batch_size = 1;

  /// Columnar batch layer (EngineOptions::columnar, DESIGN.md §17):
  /// sources scatter accumulated elements into typed ColumnarBatches and
  /// columnar-native operators run vectorized kernels, materializing back
  /// to rows at the fallback boundary. Meaningful only with
  /// emit_batch_size > 1. Results must stay byte-identical to the row-wise
  /// path — columnar changes representation, never semantics.
  bool columnar = false;

  // -- Checkpoint/recovery dimensions (ISSUE 4) ---------------------------

  /// Elements per source between epoch barriers; 0 disables checkpointing.
  uint64_t checkpoint_epoch_interval = 0;
  /// Kill/revive chaos (see ChaosOptions::kill_operator): the named
  /// operator dies on its `chaos_kill_after`-th delivery, `chaos_kills`
  /// times; each death must be absorbed by epoch rewind + replay with the
  /// final output matching golden exactly.
  std::string chaos_kill_operator;
  int64_t chaos_kill_after = 0;
  int chaos_kills = 1;

  // -- Key-partitioned sharding dimensions (ISSUE 6, DESIGN.md §13) -------

  /// When > 0, RunUnderConfig rewrites the spec's graph after building it:
  /// the first Selection/Map in graph order is split into this many
  /// key-partitioned replicas behind a sequencing Router and re-merged
  /// (api/shard.h). The ordered merge keeps every exact-sequence oracle
  /// applicable; the golden run stays unsharded, so the comparison checks
  /// the split/merge rewrite itself.
  int shard_count = 0;
  /// Arrival-order merge instead of the sequence-restoring one: replica
  /// outputs interleave nondeterministically, so every sink demotes to the
  /// multiset oracle. Requires shard_count > 0.
  bool shard_unordered = false;
  /// Kill/revive chaos aimed at one shard replica (resolved to
  /// "<target>.shard<i>" after the rewrite, since the replica names do not
  /// exist before it). Requires shard_count > i and a checkpoint interval.
  /// -1 = disabled.
  int kill_shard_replica = -1;

  // -- Durable checkpoint / cold-restart dimensions (DESIGN.md §16) -------

  /// When > 0, RunUnderConfig runs the scenario as `cold_restarts + 1`
  /// engine *incarnations* sharing one on-disk checkpoint directory: each
  /// non-final incarnation feeds a prefix of the input, waits for a
  /// durable epoch commit, then tears the engine and graph down without
  /// closing the sources (the in-process equivalent of a process death —
  /// all volatile state is gone, only the store survives). Every later
  /// incarnation rebuilds the graph from scratch, ColdRestart()s from the
  /// newest intact on-disk epoch, and re-drives the full deterministic
  /// input (sources swallow their committed prefix via the durable
  /// cursors); the final incarnation runs to EOS and must match golden
  /// exactly. Requires checkpoint_epoch_interval > 0.
  int cold_restarts = 0;
  /// Disk fault injected into the durable store for the whole scenario
  /// (one FaultyStorageEnv spans every incarnation, so byte budgets
  /// accumulate across restarts): "" = none, "torn-write",
  /// "corrupt-epoch", "enospc", "fsync-fail". Corrupted or unpersisted
  /// epochs force ColdRestart to fall back to an earlier intact epoch (or
  /// a fresh start) — the final output must still match golden exactly.
  /// Requires cold_restarts > 0.
  std::string disk_fault;

  // -- Closed-loop SLO control dimension (ISSUE 8, DESIGN.md §15) ---------

  /// Attaches an SloController to the engine for the duration of the run,
  /// fed by a deterministic square-wave metrics fake that alternates
  /// breach and calm phases every few control intervals (2ms apart). The
  /// controller repeatedly escalates and de-escalates rungs 1-2 — live
  /// thread-pool resizes (kHmts; structurally refused elsewhere, which
  /// exercises the lever-retirement path) and live emit-batch-size
  /// changes — against the *real* engine mid-run. Shedding and resharding
  /// stay disabled, so the run must remain result-identical to golden:
  /// elastic actuation is invisible to semantics.
  bool slo_controller = false;

  bool chaos_enabled() const {
    return chaos_transient_rate > 0.0 || chaos_delay_rate > 0.0 ||
           chaos_suppress_every_n > 0 || !chaos_kill_operator.empty() ||
           kill_shard_replica >= 0;
  }

  /// "gts+chain+auto" style identifier (placement only for HMTS, ring
  /// capacity only when non-default, "+burst"/"+fault:..."/"+bound..."/
  /// "+chaos..."/"+batchN" when set).
  std::string Name() const;
};

/// The golden configuration: single-threaded, queue-free DI execution.
DiffConfig GoldenConfig();

/// The standard matrix: {GTS, OTS, HMTS} crossed with the level-2
/// strategies (FIFO, round-robin, Chain, Segment where applicable), the
/// SPSC-ring vs forced-MPSC queue paths, a tiny-ring spillover variant,
/// burst arrival, and the HMTS placement algorithms; plus single-threaded
/// kDirect; plus the batch-delivery axis (emit_batch_size in {8, 64})
/// crossed with the queue-path variants. ~35 configurations.
std::vector<DiffConfig> DefaultConfigMatrix();

/// Per-sink outputs of one run, in sink construction order.
struct SinkOutputs {
  std::vector<std::vector<Tuple>> per_sink;
  /// Mirrors ExecutableDag::order_checked.
  std::vector<bool> order_checked;
  /// False when the run timed out instead of draining to EOS.
  bool completed = true;
  /// Elements shed by bounded queues during the run (0 when unbounded or
  /// under kBlock).
  int64_t dropped = 0;
  /// Transient-fault retries absorbed across all operators.
  int64_t fault_retries = 0;
  /// Watchdog stall events observed (0 on a deadlock-free run).
  int64_t watchdog_stalls = 0;
  /// The engine's RunResult() — Ok on a healthy run.
  Status run_result = Status::Ok();
  /// Recovery accounting (checkpoint_epoch_interval > 0 only).
  int recoveries = 0;
  uint64_t committed_epoch = 0;
  int64_t replayed_elements = 0;
};

/// Builds the spec's graph and runs it to completion under `config`.
SinkOutputs RunUnderConfig(const DiffSpec& spec, const DiffConfig& config);

/// Empty string when candidate matches golden (multiset per sink, exact
/// sequence for order-checked sinks); otherwise a human-readable
/// description of the first difference. A candidate with dropped > 0
/// (declared load shedding) is compared modulo sheds: each sink's output
/// must be a sub-multiset of golden's (order-checked sinks: a
/// subsequence), so every shortfall is attributable to a declared shed;
/// with dropped == 0 the comparison is exact as before.
std::string CompareOutputs(const SinkOutputs& golden,
                           const SinkOutputs& candidate);

/// The chaos sweep matrix: {GTS, OTS, HMTS} x {FIFO, RR, Chain, Segment}
/// under transient faults + delays + lost wakeups, plus bounded-queue
/// variants for each overload policy. Used by check-chaos.
std::vector<DiffConfig> ChaosConfigMatrix();

/// The kill/revive recovery sweep (check-recovery): checkpointing armed,
/// `kill_operator` dies on its `kill_after`-th delivery, and the run must
/// recover via epoch rewind + replay and still match golden *exactly* —
/// the CollectingSink truncate-on-restore gives exact epoch+sequence
/// dedup, so no relaxed compare is needed. Covers {GTS, OTS, HMTS} x
/// {FIFO, Chain}, kDirect, the forced-MPSC queue path, bounded kBlock
/// queues, and a double-kill variant. All queues stay unbounded or
/// kBlock so nothing is shed and the exact oracle applies.
std::vector<DiffConfig> RecoveryConfigMatrix(const std::string& kill_operator,
                                             int64_t kill_after);

/// The sharding sweep (check-shard): the first Selection/Map of the spec's
/// graph rewritten into {2, 4} key-partitioned replicas, across
/// {GTS, OTS, HMTS} x batch {1, 64} with the ordered merge (every
/// exact-sequence oracle stays armed), two arrival-order variants
/// (multiset compare), and one checkpointed kill-one-replica recovery
/// configuration.
std::vector<DiffConfig> ShardConfigMatrix();

/// The durable-checkpoint sweep (check-durability): cold restarts across
/// {GTS, OTS, HMTS, kDirect}, the forced-MPSC queue path, batch delivery,
/// a double-restart variant (two process deaths, two disk restores), and
/// one configuration per injected disk fault (torn write, at-rest
/// corruption, ENOSPC, fsync failure — each must degrade to an earlier
/// intact epoch or a fresh start, never to a wrong answer). Every
/// configuration must match golden *exactly* after the final restart.
std::vector<DiffConfig> DurabilityConfigMatrix();

struct DiffFailure {
  DiffSpec spec;  // shrunk when shrinking was enabled
  DiffConfig config;
  std::string message;
  /// Artifact paths; empty when dumping was disabled or failed.
  std::string dot_path;
  std::string replay_path;
};

struct DiffReport {
  bool ok = true;
  std::vector<DiffFailure> failures;
  /// Configurations compared (for coverage accounting).
  size_t configs_run = 0;
};

struct DiffRunOptions {
  bool shrink = true;
  /// Re-runs per shrink candidate; a candidate counts as failing if any
  /// attempt mismatches (thread schedules vary between attempts).
  int shrink_retries = 2;
  /// Where DOT + replay artifacts land. Empty: $FLEXSTREAM_DIFF_ARTIFACT_DIR,
  /// falling back to "diff_failures" under the current directory.
  std::string artifact_dir;
};

/// Runs golden once, then every configuration; shrinks and dumps each
/// failure per `options`.
DiffReport RunDifferential(const DiffSpec& spec,
                           const std::vector<DiffConfig>& configs,
                           const DiffRunOptions& options = {});

/// Shrinks a failing (spec, config): repeatedly halves node and feed
/// counts while the mismatch still reproduces within `retries` attempts.
DiffSpec ShrinkFailingSpec(const DiffSpec& spec, const DiffConfig& config,
                           int retries);

/// Replay files: a commented key=value rendering of (spec, config).
std::string FormatReplay(const DiffSpec& spec, const DiffConfig& config);
bool ParseReplay(const std::string& text, DiffSpec* spec, DiffConfig* config,
                 std::string* error);

/// Builds the spec's ExecutableDag (used for DOT dumps and inspection).
ExecutableDag BuildDagForSpec(const DiffSpec& spec);

}  // namespace flexstream

#endif  // FLEXSTREAM_TESTING_DIFFERENTIAL_H_

#include "testing/executable_dag.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "api/query_builder.h"
#include "util/logging.h"
#include "util/random.h"

namespace flexstream {
namespace {

/// True when every ancestor of `node` (inclusive) has at most one input
/// edge — the output sequence of such a node is fully determined by its
/// single source's push order under any correct scheduler.
bool IsPureChainFromOneSource(const Node* node) {
  const Node* current = node;
  while (!current->is_source()) {
    if (current->fan_in() != 1) return false;
    current = current->inputs()[0].source;
  }
  return true;
}

}  // namespace

ExecutableDag BuildExecutableDag(const ExecutableDagOptions& options,
                                 uint64_t seed) {
  Rng rng(seed);
  std::unique_ptr<QueryGraph> meta = GenerateRandomDag(options.dag, &rng);

  ExecutableDag out;
  out.graph = std::make_unique<QueryGraph>();
  QueryBuilder qb(out.graph.get());

  // Map every metadata node onto an executable endpoint, in generation
  // order (producers always precede consumers).
  std::unordered_map<const Node*, Node*> mapped;
  for (Node* node : meta->nodes()) {
    if (node->is_source()) {
      Source* src = qb.AddSource(node->name());
      src->SetInterarrivalMicros(node->InterarrivalMicros());
      src->SetCostMicros(0.0);
      src->SetSelectivity(1.0);
      // Feed pushes single-int tuples; declaring the schema lets columnar
      // differential configs scatter straight into typed batches.
      src->DeclareOutputSchema(MakeSchema({Value::Type::kInt64}));
      mapped[node] = src;
      out.sources.push_back(src);
      continue;
    }
    std::vector<Node*> producers;
    producers.reserve(node->fan_in());
    for (const auto& edge : node->inputs()) {
      producers.push_back(mapped.at(edge.source));
    }
    CHECK(!producers.empty()) << node->DebugString();

    // Fan-in nodes merge through a bag union first (order across inputs is
    // scheduler-dependent, which is exactly what multiset comparison
    // absorbs); the node's own logic then applies to the merged stream.
    Node* upstream = producers[0];
    if (producers.size() >= 2) {
      UnionOp* merge = qb.Union(producers, node->name() + "_merge");
      merge->SetCostMicros(0.2);
      merge->SetSelectivity(1.0);
      upstream = merge;
    }

    const double burn = std::min(node->CostMicros(), options.max_burn_micros);
    Operator* op = nullptr;
    switch (rng.NextU64(3)) {
      case 0: {
        // Threshold filter matching the metadata selectivity over the
        // uniform value domain.
        const int64_t threshold = std::clamp<int64_t>(
            std::llround(node->Selectivity() * kExecutableDagValueDomain), 1,
            kExecutableDagValueDomain);
        Selection* sel = qb.Select(upstream, node->name(),
                                   Selection::ColumnIntLessThan(threshold));
        sel->SetSelectivity(static_cast<double>(threshold) /
                            kExecutableDagValueDomain);
        op = sel;
        break;
      }
      case 1: {
        // Deterministic domain-preserving transform (31 is coprime with
        // the domain, so uniformity — which downstream thresholds rely
        // on — is preserved).
        MapOp* map = qb.Map(
            upstream, node->name(),
            Int64ColumnMap{0, [](int64_t v) {
                             return (v * 31 + 17) % kExecutableDagValueDomain;
                           }});
        map->SetSelectivity(1.0);
        op = map;
        break;
      }
      default: {
        // Modulo filter: keeps values not divisible by `mod`.
        const int64_t mod = 2 + static_cast<int64_t>(rng.NextU64(5));
        Selection* sel = qb.Select(
            upstream, node->name(),
            Int64ColumnPredicate{0, [mod](int64_t v) { return v % mod != 0; }});
        sel->SetSelectivity(static_cast<double>(mod - 1) /
                            static_cast<double>(mod));
        op = sel;
        break;
      }
    }
    op->SetCostMicros(node->CostMicros());
    op->SetSimulatedCostMicros(burn);
    mapped[node] = op;
  }

  // Every dangling endpoint — including a source no operator adopted —
  // feeds a collecting sink so no generated work is unobserved.
  int sink_id = 0;
  for (Node* node : meta->nodes()) {
    Node* endpoint = mapped.at(node);
    if (endpoint->fan_out() == 0) {
      out.sinks.push_back(
          qb.CollectSink(endpoint, "sink" + std::to_string(sink_id++)));
    }
  }
  for (const CollectingSink* sink : out.sinks) {
    out.order_checked.push_back(IsPureChainFromOneSource(sink));
  }
  CHECK_OK(out.graph->Validate());
  return out;
}

namespace {

/// Pushes the first `limit` elements of the seeded stream. The per-element
/// RNG draws make the sequence a pure function of (dag, seed) — any prefix
/// of it matches the corresponding prefix of the full feed.
void PushSeededStream(const ExecutableDag& dag, uint64_t seed, int limit) {
  CHECK(!dag.sources.empty());
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  for (int i = 0; i < limit; ++i) {
    Source* src = dag.sources[static_cast<size_t>(
        rng.NextU64(static_cast<uint64_t>(dag.sources.size())))];
    src->Push(Tuple::OfInt(rng.UniformInt(0, kExecutableDagValueDomain - 1),
                           /*timestamp=*/i));
  }
}

}  // namespace

void FeedSources(const ExecutableDag& dag, uint64_t seed, int count) {
  PushSeededStream(dag, seed, count);
  for (Source* src : dag.sources) src->Close(count);
}

void FeedSourcesPrefix(const ExecutableDag& dag, uint64_t seed, int limit) {
  PushSeededStream(dag, seed, limit);
}

}  // namespace flexstream

// Deterministic fault injection for robustness testing.
//
// A ChaosInjector arms a configured query graph with seeded, reproducible
// failure modes and records exactly what it injected, so tests can assert
// both "the system survived" and "the system survived *something*":
//
//  * transient operator failures — an operator's delivery fails for a few
//    attempts, then succeeds; the Operator retry/backoff loop must absorb
//    it with zero effect on results.
//  * permanent operator failures — a targeted operator fails for good on
//    its Nth delivery; the failure must surface through the engine's
//    RunStatus/RunResult() as a non-OK status naming the operator, and the
//    run must wind down cleanly (no deadlock, no leaked threads).
//  * per-element delays — a busy-wait burn before processing, stretching
//    interleavings without changing semantics.
//  * lost wakeups — every Nth queue enqueue notification is swallowed; the
//    partitions' idle-poll failsafe (and the watchdog) must recover.
//
// Determinism: every decision is drawn from a per-operator mt19937_64
// seeded with `seed ^ hash(operator name)`, advanced once per delivered
// element. For a fixed feed, an operator's decision sequence therefore
// depends only on its own delivery order — which the FIFO contract fixes —
// not on cross-thread interleavings.
//
// Hooks are installed on all non-source, non-sink, non-queue operators
// (sources are driven by the test itself; sinks are the observation
// points; queues fail by overload policy instead). Wakeup suppressors go
// on the queues. Arm/Disarm only while the graph is quiescent.

#ifndef FLEXSTREAM_TESTING_CHAOS_H_
#define FLEXSTREAM_TESTING_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/query_graph.h"
#include "operators/operator.h"
#include "queue/queue_op.h"
#include "recovery/storage_env.h"

namespace flexstream {

struct ChaosOptions {
  /// Seed for every per-operator RNG. Same seed + same feed = same faults.
  uint64_t seed = 1;

  /// Probability (per delivered element) that the delivery transiently
  /// fails; the hook then reports kTransientFailure for 1–3 attempts
  /// (drawn from the same RNG) before letting the element through.
  double transient_rate = 0.0;

  /// Probability (per delivered element) of a busy-wait delay of
  /// `delay_micros` before processing.
  double delay_rate = 0.0;
  double delay_micros = 50.0;

  /// When nonempty: the operator with this name fails *permanently* on its
  /// `permanent_after`-th delivered element (0-based). Targeted rather
  /// than probabilistic so tests can pin where the poison starts.
  std::string permanent_fail_operator;
  int64_t permanent_after = 0;

  /// When > 0, every Nth enqueue notification per queue is swallowed
  /// (lost wakeup).
  int suppress_every_n_wakeups = 0;

  /// Kill/revive: the operator with this name fails permanently on its
  /// `kill_after`-th delivered element — but only `kills` times over the
  /// whole run. Unlike permanent_fail_operator (which keeps the operator
  /// poisoned forever), a killed operator behaves healthily again once the
  /// engine restores and replays, letting recovery tests distinguish
  /// "crashed once, recovered" from "permanently broken, abort". The kill
  /// state survives the recovery Reset because fault hooks do.
  std::string kill_operator;
  int64_t kill_after = 0;
  int kills = 1;

  // -- Disk faults (durable checkpoint store; see FaultyStorageEnv) --------

  /// When > 0: the write of checkpoint epoch N silently persists only a
  /// prefix of its bytes (the fsync "succeeded" but the tail never hit the
  /// platter). The store's CRC validation must detect the torn file on
  /// load and fall back to the previous intact epoch.
  uint64_t disk_torn_write_epoch = 0;
  /// When > 0: one byte of epoch N's file is bit-flipped after its rename
  /// completes (at-rest corruption).
  uint64_t disk_corrupt_epoch = 0;
  /// When > 0: Appends fail with an ENOSPC-style error once this many
  /// bytes have been written through the env (cumulative, all files).
  uint64_t disk_enospc_after_bytes = 0;
  /// When > 0: Sync on epoch N's file fails.
  uint64_t disk_fsync_fail_epoch = 0;

  bool any_operator_chaos() const {
    return transient_rate > 0.0 || delay_rate > 0.0 ||
           !permanent_fail_operator.empty() || !kill_operator.empty();
  }

  bool any_disk_chaos() const {
    return disk_torn_write_epoch > 0 || disk_corrupt_epoch > 0 ||
           disk_enospc_after_bytes > 0 || disk_fsync_fail_epoch > 0;
  }
};

class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosOptions options) : options_(options) {}
  ~ChaosInjector() { Disarm(); }

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Installs fault hooks on every eligible operator of `graph` and wakeup
  /// suppressors on `queues`. Call after the engine is configured (queues
  /// placed) and before it starts.
  void Arm(QueryGraph* graph, const std::vector<QueueOp*>& queues);

  /// Removes every installed hook/suppressor. Idempotent; called by the
  /// destructor. Only while quiescent.
  void Disarm();

  const ChaosOptions& options() const { return options_; }

  /// What actually got injected (for assertions: a chaos run that injected
  /// nothing proves nothing).
  int64_t transient_injections() const {
    return transients_->load(std::memory_order_relaxed);
  }
  int64_t permanent_injections() const {
    return permanents_->load(std::memory_order_relaxed);
  }
  int64_t delays_injected() const {
    return delays_->load(std::memory_order_relaxed);
  }
  int64_t wakeups_suppressed() const {
    return suppressed_->load(std::memory_order_relaxed);
  }

 private:
  ChaosOptions options_;
  std::vector<Operator*> hooked_;
  std::vector<QueueOp*> suppressed_queues_;

  // Shared with the installed hooks (which may outlive member mutation
  // only until Disarm, but shared_ptr keeps teardown order a non-issue).
  std::shared_ptr<std::atomic<int64_t>> transients_ =
      std::make_shared<std::atomic<int64_t>>(0);
  std::shared_ptr<std::atomic<int64_t>> permanents_ =
      std::make_shared<std::atomic<int64_t>>(0);
  std::shared_ptr<std::atomic<int64_t>> delays_ =
      std::make_shared<std::atomic<int64_t>>(0);
  std::shared_ptr<std::atomic<int64_t>> suppressed_ =
      std::make_shared<std::atomic<int64_t>>(0);
};

/// A StorageEnv decorator that injects the ChaosOptions disk faults into
/// the durable checkpoint store deterministically: faults are keyed off
/// the epoch number parsed from the file name ("epoch_<N>.ckpt[.tmp]"),
/// never off timing. Pass it as EngineOptions::storage_env (or
/// SnapshotStore::Options::env) over LocalStorageEnv or any other base.
class FaultyStorageEnv : public StorageEnv {
 public:
  FaultyStorageEnv(StorageEnv* base, const ChaosOptions& options);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;
  bool FileExists(const std::string& path) override;

  // What actually got injected (a fault sweep that injected nothing proves
  // nothing).
  int64_t torn_writes() const {
    return torn_writes_.load(std::memory_order_relaxed);
  }
  int64_t corruptions() const {
    return corruptions_.load(std::memory_order_relaxed);
  }
  int64_t enospc_failures() const {
    return enospc_failures_.load(std::memory_order_relaxed);
  }
  int64_t fsync_failures() const {
    return fsync_failures_.load(std::memory_order_relaxed);
  }

 private:
  friend class FaultyWritableFile;

  StorageEnv* const base_;
  const ChaosOptions options_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<int64_t> torn_writes_{0};
  std::atomic<int64_t> corruptions_{0};
  std::atomic<int64_t> enospc_failures_{0};
  std::atomic<int64_t> fsync_failures_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_TESTING_CHAOS_H_

#include "recovery/storage_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace flexstream {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " '" + path + "': " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    while (!data.empty()) {
      const ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::Ok();
  }

 private:
  int fd_;
  const std::string path_;
};

class PosixStorageEnv : public StorageEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Errno("open", path);
    }
    std::string out;
    char buf[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Errno("read", path);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
    return Status::Ok();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open dir", dir);
    Status s = Status::Ok();
    if (::fsync(fd) != 0) s = Errno("fsync dir", dir);
    ::close(fd);
    return s;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) {
      return Status::Internal("list '" + dir + "': " + ec.message());
    }
    return names;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink", path);
    }
    return Status::Ok();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::Internal("mkdir '" + dir + "': " + ec.message());
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

StorageEnv* LocalStorageEnv() {
  static PosixStorageEnv* env = new PosixStorageEnv();
  return env;
}

}  // namespace flexstream

// Per-source bounded replay buffer.
//
// Records everything a checkpoint-armed source pushes (tagged with the
// epoch it belongs to) so that after a failure the engine can rewind to
// the last committed epoch and re-push exactly the uncommitted suffix.
// Entries up to and including epoch E are dropped when E commits — steady
// state memory is bounded by the input between two commits. The buffer
// also has a hard element cap: overflowing it marks the buffer truncated,
// which disqualifies recovery (the recovery manager falls back to the
// abort path) rather than silently replaying an incomplete stream.
//
// Thread-safety: OnPush/OnClose run in the source's driving thread,
// TrimThrough in whichever thread commits an epoch, Replay in the
// recovery thread — all serialized on one mutex.

#ifndef FLEXSTREAM_RECOVERY_REPLAY_BUFFER_H_
#define FLEXSTREAM_RECOVERY_REPLAY_BUFFER_H_

#include <cstdint>
#include <deque>
#include <mutex>

#include "operators/source.h"
#include "tuple/tuple.h"

namespace flexstream {

class ReplayBuffer : public Source::PushObserver {
 public:
  ReplayBuffer(Source* source, size_t max_elements);

  // Source::PushObserver (driving thread):
  void OnPush(const Tuple& tuple, uint64_t epoch) override;
  void OnClose(AppTime timestamp) override;

  /// Drops every entry belonging to epoch <= `epoch` (epoch commit).
  void TrimThrough(uint64_t epoch);

  /// Re-pushes every retained entry (and the recorded Close, if any) into
  /// the source. Caller must hold the recovery gate exclusively, with the
  /// source rewound and inside a BeginReplay/EndReplay bracket.
  void Replay();

  /// True once the element cap was exceeded: the retained suffix is
  /// incomplete and must not be replayed.
  bool truncated() const;

  size_t depth() const;
  size_t peak_depth() const;
  int64_t replayed_elements() const;

 private:
  Source* const source_;
  const size_t max_elements_;

  struct Entry {
    Tuple tuple;
    uint64_t epoch;
  };

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  bool closed_ = false;
  AppTime close_timestamp_ = 0;
  bool truncated_ = false;
  size_t peak_depth_ = 0;
  int64_t replayed_elements_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_REPLAY_BUFFER_H_

// Per-source bounded replay buffer.
//
// Records everything a checkpoint-armed source pushes (tagged with the
// epoch it belongs to) so that after a failure the engine can rewind to
// the last committed epoch and re-push exactly the uncommitted suffix.
// Entries up to and including epoch E are dropped when E commits — steady
// state memory is bounded by the input between two commits. The buffer
// also has a hard element cap: overflowing it marks the buffer truncated,
// which disqualifies recovery (the recovery manager falls back to the
// abort path) rather than silently replaying an incomplete stream.
//
// Thread-safety: OnPush/OnClose run in the source's driving thread,
// TrimThrough in whichever thread commits an epoch, Replay in the
// recovery thread — all serialized on one mutex.

#ifndef FLEXSTREAM_RECOVERY_REPLAY_BUFFER_H_
#define FLEXSTREAM_RECOVERY_REPLAY_BUFFER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>

#include "operators/source.h"
#include "tuple/tuple.h"
#include "util/status.h"

namespace flexstream {

class ReplayBuffer : public Source::PushObserver {
 public:
  ReplayBuffer(Source* source, size_t max_elements);

  // Source::PushObserver (driving thread):
  void OnPush(const Tuple& tuple, uint64_t epoch) override;
  void OnClose(AppTime timestamp) override;

  /// Drops every entry belonging to epoch <= `epoch` (epoch commit).
  void TrimThrough(uint64_t epoch);

  /// Re-pushes every retained entry (and the recorded Close, if any) into
  /// the source. Caller must hold the recovery gate exclusively, with the
  /// source rewound and inside a BeginReplay/EndReplay bracket.
  void Replay();

  /// True once the element cap was exceeded: the retained suffix is
  /// incomplete and must not be replayed.
  bool truncated() const;

  /// Ok while the buffer is intact; after an overflow, FailedPrecondition
  /// naming the source and the first epoch whose elements were dropped —
  /// the diagnosis the engine logs when it abandons live recovery.
  Status truncation_status() const;

  /// Number of data elements the source recorded through epoch `epoch`
  /// (i.e. before emitting that epoch's barrier) — the durable replay
  /// cursor persisted per committed epoch. Counts every recorded push,
  /// including elements later trimmed or dropped by truncation, so it
  /// stays exact for the lifetime of the run. Call with the epoch just
  /// committed, before or after that epoch's TrimThrough.
  uint64_t RecordedThrough(uint64_t epoch) const;

  /// True if the source's Close was recorded; fills `*timestamp` with the
  /// recorded close timestamp.
  bool recorded_close(AppTime* timestamp) const;

  /// Seeds the recorded-element count with the committed stream prefix the
  /// rebuilt source swallows via resume-skip after a cold restart. Skipped
  /// pushes never reach OnPush, so without this base RecordedThrough would
  /// count from the restore point and cursors persisted by the new
  /// incarnation would no longer be stream-absolute — a *second* cold
  /// restart would then under-skip and duplicate input. Call once, before
  /// the source is re-driven.
  void SetRecordedBase(uint64_t elements);

  Source* source() const { return source_; }

  size_t depth() const;
  size_t peak_depth() const;
  int64_t replayed_elements() const;

 private:
  Source* const source_;
  const size_t max_elements_;

  struct Entry {
    Tuple tuple;
    uint64_t epoch;
  };

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  bool closed_ = false;
  AppTime close_timestamp_ = 0;
  bool truncated_ = false;
  uint64_t first_unreplayable_epoch_ = 0;
  uint64_t total_recorded_ = 0;
  // Elements dropped after truncation, per epoch (empty while intact) —
  // keeps RecordedThrough exact after an overflow.
  std::map<uint64_t, uint64_t> dropped_per_epoch_;
  size_t peak_depth_ = 0;
  int64_t replayed_elements_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_REPLAY_BUFFER_H_

#include "recovery/recovery_manager.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "graph/node.h"
#include "graph/query_graph.h"
#include "operators/operator.h"
#include "operators/source.h"
#include "util/logging.h"

namespace flexstream {

RecoveryManager::RecoveryManager(Options options)
    : options_(std::move(options)) {
  CHECK(options_.epoch_interval > 0)
      << "RecoveryManager requires a checkpoint epoch interval";
}

RecoveryManager::~RecoveryManager() { Disarm(); }

Status RecoveryManager::Arm(QueryGraph* graph) {
  CHECK(graph != nullptr);
  CHECK(graph_ == nullptr) << "RecoveryManager already armed";
  const bool durable = !options_.durable_dir.empty();
  if (durable) {
    // Validate before touching the graph: durable checkpointing needs
    // every stateful operator encodable and every record/cursor name
    // unique (restore matches by name).
    std::set<std::string> names;
    for (Node* node : graph->nodes()) {
      if (node->is_queue()) continue;
      if (node->inputs().empty() && node->outputs().empty() &&
          !node->is_source()) {
        continue;
      }
      auto* op = dynamic_cast<Operator*>(node);
      if (op == nullptr) continue;
      auto* stateful = dynamic_cast<StatefulOperator*>(op);
      if (stateful != nullptr && !stateful->SupportsDurableState()) {
        return Status::FailedPrecondition(
            "durable checkpoints: stateful operator '" + op->name() +
            "' does not implement EncodeState/DecodeState");
      }
      if ((stateful != nullptr || node->is_source()) &&
          !names.insert(op->name()).second) {
        return Status::FailedPrecondition(
            "durable checkpoints: duplicate operator name '" + op->name() +
            "' (records are matched by name on restore)");
      }
    }
    auto store = std::make_unique<SnapshotStore>(SnapshotStore::Options{
        options_.durable_dir, options_.storage_env,
        std::max(1, options_.durable_retain_epochs)});
    Status opened = store->Open();
    if (!opened.ok()) return opened;
    store_ = std::move(store);
  }
  graph_ = graph;
  coordinator_.SetCommitListener([this](uint64_t epoch) {
    if (store_ != nullptr) PersistEpoch(epoch);
    for (auto& buffer : buffers_) buffer->TrimThrough(epoch);
  });
  for (Node* node : graph->nodes()) {
    if (node->is_source()) {
      auto* source = dynamic_cast<Source*>(node);
      CHECK(source != nullptr);
      sources_.push_back(source);
      buffers_.push_back(std::make_unique<ReplayBuffer>(
          source, options_.replay_buffer_max_elements));
      source->ArmEpochs(options_.epoch_interval, buffers_.back().get(),
                        &gate_);
      continue;
    }
    if (node->is_queue()) continue;  // queues forward barriers, never align
    // A fully detached node (the prototype ShardOperator leaves behind)
    // never sees a barrier; registering it would block every commit.
    if (node->inputs().empty() && node->outputs().empty()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    CHECK(op != nullptr);
    op->SetEpochCallback(
        [this, op](uint64_t epoch) { coordinator_.OnAligned(op, epoch); });
    coordinator_.Register(op, dynamic_cast<StatefulOperator*>(op),
                          node->is_sink());
  }
  return Status::Ok();
}

void RecoveryManager::PersistEpoch(uint64_t epoch) {
  // Deep-copy the committed state atomically; the graph keeps committing
  // newer epochs while we serialize. A copy whose epoch moved past ours
  // means a newer commit superseded this one — its own listener call
  // persists it, so this one is simply skipped.
  CheckpointCoordinator::CommittedState state = coordinator_.CommittedCopy();
  if (state.epoch != epoch) return;
  EpochSnapshot snapshot;
  snapshot.epoch = epoch;
  snapshot.operators.reserve(state.snapshots.size());
  for (const auto& [op, op_snapshot] : state.snapshots) {
    auto* stateful = dynamic_cast<StatefulOperator*>(op);
    DCHECK(stateful != nullptr);
    DurableRecord record;
    record.name = op->name();
    Status encoded = stateful->EncodeState(op_snapshot, &record.payload);
    if (!encoded.ok()) {
      LOG(WARNING) << "durable checkpoint: encoding state of '" << op->name()
                   << "' for epoch " << epoch
                   << " failed: " << encoded.ToString();
      persist_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    snapshot.operators.push_back(std::move(record));
  }
  std::sort(snapshot.operators.begin(), snapshot.operators.end(),
            [](const DurableRecord& a, const DurableRecord& b) {
              return a.name < b.name;
            });
  for (size_t i = 0; i < sources_.size(); ++i) {
    DurableCursor cursor;
    cursor.name = sources_[i]->name();
    cursor.elements = buffers_[i]->RecordedThrough(epoch);
    cursor.closed = buffers_[i]->recorded_close(&cursor.close_timestamp);
    snapshot.cursors.push_back(std::move(cursor));
  }
  Status written = store_->WriteEpoch(snapshot);
  if (!written.ok() && written.code() != StatusCode::kAlreadyExists) {
    // AlreadyExists = a concurrently committed newer epoch won the write
    // race; anything else is a real persist failure. Either way the run
    // continues — cold restart falls back to the last persisted epoch.
    LOG(WARNING) << "durable checkpoint: writing epoch " << epoch
                 << " failed: " << written.ToString();
    persist_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<uint64_t> RecoveryManager::RestoreFromDisk() {
  CHECK(graph_ != nullptr) << "RestoreFromDisk requires an armed graph";
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "durable checkpoints not configured (no durable_dir)");
  }
  Result<EpochSnapshot> loaded = store_->LoadNewestIntact();
  if (!loaded.ok()) {
    if (loaded.status().code() == StatusCode::kNotFound) {
      return uint64_t{0};  // empty store: fresh start
    }
    return std::move(loaded).status();
  }
  const uint64_t epoch = loaded->epoch;
  // Match durable records and cursors against the armed graph by name.
  std::unordered_map<std::string, std::pair<Operator*, StatefulOperator*>>
      stateful_by_name;
  for (Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    if (op == nullptr) continue;
    auto* stateful = dynamic_cast<StatefulOperator*>(op);
    if (stateful != nullptr) stateful_by_name[op->name()] = {op, stateful};
  }
  std::unordered_map<Operator*, OperatorSnapshot> snapshots;
  for (const DurableRecord& record : loaded->operators) {
    auto it = stateful_by_name.find(record.name);
    if (it == stateful_by_name.end()) {
      return Status::FailedPrecondition(
          "durable epoch " + std::to_string(epoch) +
          " holds a record for unknown operator '" + record.name +
          "' — the rebuilt graph does not match the checkpointed one");
    }
    Result<OperatorSnapshot> decoded =
        it->second.second->DecodeState(record.payload);
    if (!decoded.ok()) {
      return Status::Internal(
          "durable epoch " + std::to_string(epoch) + " record '" +
          record.name + "' failed to decode: " +
          std::move(decoded).status().ToString());
    }
    decoded->epoch = epoch;
    snapshots[it->second.first] = std::move(decoded).value();
  }
  std::unordered_map<std::string, const DurableCursor*> cursors_by_name;
  for (const DurableCursor& cursor : loaded->cursors) {
    cursors_by_name[cursor.name] = &cursor;
  }
  for (Source* source : sources_) {
    if (cursors_by_name.find(source->name()) == cursors_by_name.end()) {
      return Status::FailedPrecondition(
          "durable epoch " + std::to_string(epoch) +
          " holds no replay cursor for source '" + source->name() + "'");
    }
  }
  // All records validated — now mutate the graph: wipe, rewind, install.
  for (Node* node : graph_->nodes()) {
    node->Reset();
    if (node->is_source()) {
      auto* source = dynamic_cast<Source*>(node);
      if (source != nullptr) {
        source->RewindTo(epoch);
        source->SetResumeSkip(cursors_by_name[source->name()]->elements);
      }
    }
  }
  // The replay buffers never see the resume-skipped prefix, so seed their
  // recorded counts with the restored cursors — cursors persisted by this
  // incarnation stay stream-absolute and a later cold restart skips the
  // right amount.
  for (size_t i = 0; i < sources_.size(); ++i) {
    buffers_[i]->SetRecordedBase(
        cursors_by_name[sources_[i]->name()]->elements);
  }
  for (const auto& [op, snapshot] : snapshots) {
    auto* stateful = dynamic_cast<StatefulOperator*>(op);
    stateful->RestoreState(snapshot);
  }
  coordinator_.SetRestoredState(epoch, std::move(snapshots));
  for (Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    if (op != nullptr) op->SetRecoveredEpoch(epoch);
  }
  // If we fell back past a corrupt newer epoch, drop it from the store so
  // the resumed run can re-commit (and re-persist) those epochs.
  Status truncated = store_->TruncateAfter(epoch);
  if (!truncated.ok()) {
    LOG(WARNING) << "durable checkpoint: truncating store after epoch "
                 << epoch << " failed: " << truncated.ToString();
  }
  return epoch;
}

Status RecoveryManager::replay_truncation_status() const {
  for (const auto& buffer : buffers_) {
    Status status = buffer->truncation_status();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void RecoveryManager::Disarm() {
  if (graph_ == nullptr) return;
  for (Source* source : sources_) source->DisarmEpochs();
  for (Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    if (op != nullptr) op->SetEpochCallback(nullptr);
  }
  sources_.clear();
  buffers_.clear();
  store_.reset();
  graph_ = nullptr;
}

bool RecoveryManager::CanAttempt() const {
  return attempts_.load(std::memory_order_relaxed) < options_.max_attempts &&
         !any_buffer_truncated();
}

bool RecoveryManager::BeginAttempt() {
  if (!CanAttempt()) return false;
  attempts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RecoveryManager::FinishAttempt(int64_t latency_micros) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  last_latency_micros_.store(latency_micros, std::memory_order_relaxed);
}

void RecoveryManager::PauseSources() {
  CHECK(pause_lock_ == nullptr) << "sources already paused";
  // Blocks until every in-flight (shared-locked) Push/Close drains.
  pause_lock_ = std::make_unique<std::unique_lock<std::shared_mutex>>(gate_);
}

void RecoveryManager::ResumeSources() {
  CHECK(pause_lock_ != nullptr) << "sources not paused";
  pause_lock_.reset();
}

void RecoveryManager::RestoreCommittedState() {
  CHECK(graph_ != nullptr);
  CHECK(pause_lock_ != nullptr) << "restore requires quiesced sources";
  const uint64_t epoch = coordinator_.committed_epoch();
  // 1. Wipe every node back to pristine (windows, hash tables, EOS
  //    counters, queue contents, alignment state). Sources rewind their
  //    epoch counters to the committed boundary, reopening if the driver's
  //    Close is part of the replayed suffix.
  for (Node* node : graph_->nodes()) {
    node->Reset();
    if (node->is_source()) {
      auto* source = dynamic_cast<Source*>(node);
      if (source != nullptr) source->RewindTo(epoch);
    }
  }
  coordinator_.OnRestore();
  // 2. Re-install the committed snapshots; everything stateful without a
  //    committed entry (closed before the epoch, or registered later)
  //    stays empty.
  for (const auto& [op, snapshot] : coordinator_.committed()) {
    auto* stateful = dynamic_cast<StatefulOperator*>(op);
    CHECK(stateful != nullptr);
    stateful->RestoreState(snapshot);
  }
  // 3. Fast-forward the alignment baselines so the next barrier each
  //    operator sees (epoch+1, regenerated during replay) chains onto the
  //    restored epoch.
  for (Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    if (op != nullptr) op->SetRecoveredEpoch(epoch);
  }
}

void RecoveryManager::ReplaySources() {
  CHECK(pause_lock_ != nullptr) << "replay requires the gate held";
  for (size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->BeginReplay();
    buffers_[i]->Replay();
    sources_[i]->EndReplay();
  }
}

int64_t RecoveryManager::replayed_elements() const {
  int64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->replayed_elements();
  return total;
}

size_t RecoveryManager::replay_depth() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->depth();
  return total;
}

size_t RecoveryManager::replay_peak_depth() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->peak_depth();
  return total;
}

bool RecoveryManager::any_buffer_truncated() const {
  for (const auto& buffer : buffers_) {
    if (buffer->truncated()) return true;
  }
  return false;
}

}  // namespace flexstream

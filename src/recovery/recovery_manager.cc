#include "recovery/recovery_manager.h"

#include <mutex>
#include <utility>

#include "graph/node.h"
#include "graph/query_graph.h"
#include "operators/operator.h"
#include "operators/source.h"
#include "util/logging.h"

namespace flexstream {

RecoveryManager::RecoveryManager(Options options)
    : options_(std::move(options)) {
  CHECK(options_.epoch_interval > 0)
      << "RecoveryManager requires a checkpoint epoch interval";
}

RecoveryManager::~RecoveryManager() { Disarm(); }

void RecoveryManager::Arm(QueryGraph* graph) {
  CHECK(graph != nullptr);
  CHECK(graph_ == nullptr) << "RecoveryManager already armed";
  graph_ = graph;
  coordinator_.SetCommitListener([this](uint64_t epoch) {
    for (auto& buffer : buffers_) buffer->TrimThrough(epoch);
  });
  for (Node* node : graph->nodes()) {
    if (node->is_source()) {
      auto* source = dynamic_cast<Source*>(node);
      CHECK(source != nullptr);
      sources_.push_back(source);
      buffers_.push_back(std::make_unique<ReplayBuffer>(
          source, options_.replay_buffer_max_elements));
      source->ArmEpochs(options_.epoch_interval, buffers_.back().get(),
                        &gate_);
      continue;
    }
    if (node->is_queue()) continue;  // queues forward barriers, never align
    // A fully detached node (the prototype ShardOperator leaves behind)
    // never sees a barrier; registering it would block every commit.
    if (node->inputs().empty() && node->outputs().empty()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    CHECK(op != nullptr);
    op->SetEpochCallback(
        [this, op](uint64_t epoch) { coordinator_.OnAligned(op, epoch); });
    coordinator_.Register(op, dynamic_cast<StatefulOperator*>(op),
                          node->is_sink());
  }
}

void RecoveryManager::Disarm() {
  if (graph_ == nullptr) return;
  for (Source* source : sources_) source->DisarmEpochs();
  for (Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    if (op != nullptr) op->SetEpochCallback(nullptr);
  }
  sources_.clear();
  buffers_.clear();
  graph_ = nullptr;
}

bool RecoveryManager::CanAttempt() const {
  return attempts_.load(std::memory_order_relaxed) < options_.max_attempts &&
         !any_buffer_truncated();
}

bool RecoveryManager::BeginAttempt() {
  if (!CanAttempt()) return false;
  attempts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RecoveryManager::FinishAttempt(int64_t latency_micros) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  last_latency_micros_.store(latency_micros, std::memory_order_relaxed);
}

void RecoveryManager::PauseSources() {
  CHECK(pause_lock_ == nullptr) << "sources already paused";
  // Blocks until every in-flight (shared-locked) Push/Close drains.
  pause_lock_ = std::make_unique<std::unique_lock<std::shared_mutex>>(gate_);
}

void RecoveryManager::ResumeSources() {
  CHECK(pause_lock_ != nullptr) << "sources not paused";
  pause_lock_.reset();
}

void RecoveryManager::RestoreCommittedState() {
  CHECK(graph_ != nullptr);
  CHECK(pause_lock_ != nullptr) << "restore requires quiesced sources";
  const uint64_t epoch = coordinator_.committed_epoch();
  // 1. Wipe every node back to pristine (windows, hash tables, EOS
  //    counters, queue contents, alignment state). Sources rewind their
  //    epoch counters to the committed boundary, reopening if the driver's
  //    Close is part of the replayed suffix.
  for (Node* node : graph_->nodes()) {
    node->Reset();
    if (node->is_source()) {
      auto* source = dynamic_cast<Source*>(node);
      if (source != nullptr) source->RewindTo(epoch);
    }
  }
  coordinator_.OnRestore();
  // 2. Re-install the committed snapshots; everything stateful without a
  //    committed entry (closed before the epoch, or registered later)
  //    stays empty.
  for (const auto& [op, snapshot] : coordinator_.committed()) {
    auto* stateful = dynamic_cast<StatefulOperator*>(op);
    CHECK(stateful != nullptr);
    stateful->RestoreState(snapshot);
  }
  // 3. Fast-forward the alignment baselines so the next barrier each
  //    operator sees (epoch+1, regenerated during replay) chains onto the
  //    restored epoch.
  for (Node* node : graph_->nodes()) {
    if (node->is_source() || node->is_queue()) continue;
    auto* op = dynamic_cast<Operator*>(node);
    if (op != nullptr) op->SetRecoveredEpoch(epoch);
  }
}

void RecoveryManager::ReplaySources() {
  CHECK(pause_lock_ != nullptr) << "replay requires the gate held";
  for (size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->BeginReplay();
    buffers_[i]->Replay();
    sources_[i]->EndReplay();
  }
}

int64_t RecoveryManager::replayed_elements() const {
  int64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->replayed_elements();
  return total;
}

size_t RecoveryManager::replay_depth() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->depth();
  return total;
}

size_t RecoveryManager::replay_peak_depth() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->peak_depth();
  return total;
}

bool RecoveryManager::any_buffer_truncated() const {
  for (const auto& buffer : buffers_) {
    if (buffer->truncated()) return true;
  }
  return false;
}

}  // namespace flexstream

#include "recovery/checkpoint_coordinator.h"

#include <utility>

#include "operators/operator.h"
#include "util/logging.h"

namespace flexstream {

void CheckpointCoordinator::Register(Operator* op, StatefulOperator* stateful,
                                     bool is_sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stateful != nullptr) stateful_[op] = stateful;
  if (is_sink) sinks_.insert(op);
}

void CheckpointCoordinator::SetCommitListener(
    std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  commit_listener_ = std::move(listener);
}

void CheckpointCoordinator::OnAligned(Operator* op, uint64_t epoch) {
  std::vector<uint64_t> committed;
  std::function<void(uint64_t)> listener;
  if (epoch == Operator::kEpochClosed) {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_.insert(op);
    committed = CommitCompleteLocked();
    listener = commit_listener_;
  } else {
    // Capture the snapshot outside the coordinator lock: SnapshotState
    // only reads the aligning operator's own state (we are its executing
    // thread), and concurrent alignments of other operators must not
    // serialize on each other's state copies.
    OperatorSnapshot snapshot;
    bool have_snapshot = false;
    const auto stateful_it = stateful_.find(op);  // written only quiescent
    // A poisoned operator's state diverged when it started dropping data:
    // refuse its snapshot so this epoch can never commit.
    if (stateful_it != stateful_.end() && !op->failed()) {
      snapshot = stateful_it->second->SnapshotState();
      snapshot.epoch = epoch;
      have_snapshot = true;
      snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch <= committed_epoch_.load(std::memory_order_relaxed)) {
      return;  // stale alignment from before a restore
    }
    Pending& pending = pending_[epoch];
    if (have_snapshot) {
      pending.snapshots[op] = std::move(snapshot);
      pending.stateful_done.insert(op);
    }
    if (sinks_.count(op) != 0) pending.sinks_aligned.insert(op);
    committed = CommitCompleteLocked();
    listener = commit_listener_;
  }
  if (listener != nullptr) {
    for (uint64_t e : committed) listener(e);
  }
}

bool CheckpointCoordinator::CompleteLocked(const Pending& pending) const {
  for (Operator* sink : sinks_) {
    if (pending.sinks_aligned.count(sink) == 0 && closed_.count(sink) == 0) {
      return false;
    }
  }
  for (const auto& [op, stateful] : stateful_) {
    (void)stateful;
    if (pending.stateful_done.count(op) == 0 && closed_.count(op) == 0) {
      return false;
    }
  }
  return true;
}

std::vector<uint64_t> CheckpointCoordinator::CommitCompleteLocked() {
  std::vector<uint64_t> committed;
  while (!pending_.empty()) {
    auto it = pending_.begin();
    // Sinks align epochs in order, so the lowest pending epoch is always
    // the next commit candidate.
    if (it->first != committed_epoch_.load(std::memory_order_relaxed) + 1 ||
        !CompleteLocked(it->second)) {
      break;
    }
    // The committed set is replaced wholesale: an operator without an
    // epoch-E snapshot (it closed earlier) must restore *empty* — its
    // final effects already live in downstream snapshots.
    committed_snapshots_ = std::move(it->second.snapshots);
    committed_epoch_.store(it->first, std::memory_order_release);
    epochs_committed_.fetch_add(1, std::memory_order_relaxed);
    committed.push_back(it->first);
    pending_.erase(it);
  }
  return committed;
}

CheckpointCoordinator::CommittedState CheckpointCoordinator::CommittedCopy()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  CommittedState state;
  state.epoch = committed_epoch_.load(std::memory_order_relaxed);
  state.snapshots = committed_snapshots_;
  return state;
}

void CheckpointCoordinator::SetRestoredState(
    uint64_t epoch,
    std::unordered_map<Operator*, OperatorSnapshot> snapshots) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  closed_.clear();
  committed_snapshots_ = std::move(snapshots);
  committed_epoch_.store(epoch, std::memory_order_release);
}

void CheckpointCoordinator::OnRestore() {
  std::lock_guard<std::mutex> lock(mutex_);
  // The rewound run re-aligns and re-closes everything past the committed
  // epoch; pre-restore pending state is stale.
  pending_.clear();
  closed_.clear();
}

int64_t CheckpointCoordinator::committed_state_elements() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [op, snapshot] : committed_snapshots_) {
    (void)op;
    total += snapshot.element_count;
  }
  return total;
}

}  // namespace flexstream

// Durable, crash-consistent checkpoint storage (DESIGN.md §16).
//
// The store persists each committed epoch's serialized operator snapshots
// and source replay cursors as one epoch file, then records the epoch in a
// manifest. The write protocol makes every step atomic or detectable:
//
//   serialize -> CRC32C per record + whole-file CRC -> write epoch_N.ckpt.tmp
//   -> fsync -> atomic rename to epoch_N.ckpt -> fsync(dir)
//   -> manifest update (same tmp/fsync/rename dance) last.
//
// A crash at any point leaves either (a) a *.tmp the store ignores, (b) a
// complete epoch file not yet in the manifest (the directory-scan fallback
// finds it), or (c) a fully recorded epoch. A torn or bit-flipped file
// fails CRC/magic validation on load and recovery falls back to the
// previous intact epoch — never to an abort. Retention keeps the newest
// `retain_epochs` epochs; superseded files are garbage-collected after the
// manifest stops referencing them.
//
// All I/O goes through a StorageEnv so the chaos tier can inject disk
// faults (src/testing/chaos.h FaultyStorageEnv). Thread-safe; writes are
// serialized internally.

#ifndef FLEXSTREAM_RECOVERY_SNAPSHOT_STORE_H_
#define FLEXSTREAM_RECOVERY_SNAPSHOT_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "recovery/storage_env.h"
#include "util/clock.h"
#include "util/status.h"

namespace flexstream {

/// One serialized stateful-operator snapshot, keyed by operator name (the
/// stable identity across a process restart — pointers are not).
struct DurableRecord {
  std::string name;
  std::string payload;  // StatefulOperator::EncodeState bytes
};

/// Where a source's committed prefix ends: the number of data elements the
/// driver had pushed through the end of the epoch. ColdRestart arms the
/// rebuilt source to swallow exactly this many re-driven elements.
struct DurableCursor {
  std::string name;
  uint64_t elements = 0;
  bool closed = false;  // driver Close fell inside the committed prefix
  AppTime close_timestamp = 0;
};

struct EpochSnapshot {
  uint64_t epoch = 0;
  std::vector<DurableRecord> operators;
  std::vector<DurableCursor> cursors;
};

struct SnapshotStoreStats {
  int64_t epochs_written = 0;
  int64_t write_failures = 0;
  int64_t bytes_written = 0;
  int64_t last_epoch_bytes = 0;
  int64_t last_write_micros = 0;
  int64_t gc_removed_files = 0;
  int64_t corrupt_epochs_skipped = 0;
};

class SnapshotStore {
 public:
  struct Options {
    std::string dir;
    /// nullptr = the real filesystem (LocalStorageEnv).
    StorageEnv* env = nullptr;
    /// Newest epochs kept on disk; older files are GCed once superseded.
    /// Must be >= 2 so a torn newest epoch always has a fallback.
    int retain_epochs = 2;
  };

  explicit SnapshotStore(Options options);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Creates the directory and loads the manifest (scanning for stray
  /// epoch files a crash may have left out of it).
  Status Open();

  /// Runs the full write protocol for one committed epoch. Epochs at or
  /// below the newest recorded one are refused (AlreadyExists). On any
  /// I/O failure the epoch is abandoned (counted in write_failures) and
  /// previously recorded epochs remain intact.
  Status WriteEpoch(const EpochSnapshot& snapshot);

  /// Parses the newest epoch that validates end-to-end (magic, version,
  /// per-record CRCs, file CRC), skipping — and counting — corrupt or torn
  /// ones. NotFound when no intact epoch exists.
  Result<EpochSnapshot> LoadNewestIntact();

  /// Drops every recorded epoch above `epoch` (manifest rewrite + GC).
  /// Cold restart calls this after falling back past a corrupt newest
  /// epoch: the resumed run re-commits those epochs and must be able to
  /// re-write them (WriteEpoch refuses non-monotone epochs otherwise).
  Status TruncateAfter(uint64_t epoch);

  std::vector<uint64_t> manifest_epochs() const;
  SnapshotStoreStats stats() const;
  const std::string& dir() const { return options_.dir; }

  static std::string EpochFileName(uint64_t epoch);

 private:
  static std::string EncodeEpochFile(const EpochSnapshot& snapshot);
  static Status DecodeEpochFile(const std::string& bytes, uint64_t expected,
                                EpochSnapshot* out);
  Status WriteFileDurably(const std::string& name, const std::string& bytes);
  Status WriteManifestLocked();
  void GarbageCollectLocked();
  std::vector<uint64_t> ScanEpochFilesLocked();
  std::string PathTo(const std::string& name) const;

  const Options options_;
  StorageEnv* const env_;

  mutable std::mutex mutex_;
  std::vector<uint64_t> manifest_;  // ascending
  SnapshotStoreStats stats_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_SNAPSHOT_STORE_H_

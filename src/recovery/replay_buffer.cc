#include "recovery/replay_buffer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace flexstream {

ReplayBuffer::ReplayBuffer(Source* source, size_t max_elements)
    : source_(source), max_elements_(max_elements) {
  CHECK(source_ != nullptr);
}

void ReplayBuffer::OnPush(const Tuple& tuple, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The recorded-element count keeps advancing after truncation: durable
  // replay cursors (RecordedThrough) must stay exact even when the live
  // replay suffix is disqualified.
  ++total_recorded_;
  if (truncated_) {  // already disqualified — stop buffering
    ++dropped_per_epoch_[epoch];
    return;
  }
  if (max_elements_ != 0 && entries_.size() >= max_elements_) {
    truncated_ = true;
    first_unreplayable_epoch_ = epoch;
    ++dropped_per_epoch_[epoch];
    LOG(WARNING) << "replay buffer for source '" << source_->name()
                 << "' overflowed at " << entries_.size()
                 << " elements; recovery disabled for this run";
    return;
  }
  entries_.push_back({tuple, epoch});
  peak_depth_ = std::max(peak_depth_, entries_.size());
}

void ReplayBuffer::OnClose(AppTime timestamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  close_timestamp_ = timestamp;
}

void ReplayBuffer::TrimThrough(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!entries_.empty() && entries_.front().epoch <= epoch) {
    entries_.pop_front();
  }
}

void ReplayBuffer::Replay() {
  // Copy under the lock, push outside it: an epoch committed by the
  // in-flight replay itself may trim the buffer concurrently.
  std::vector<Tuple> to_replay;
  bool replay_close = false;
  AppTime close_ts = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DCHECK(!truncated_);
    to_replay.reserve(entries_.size());
    for (const Entry& e : entries_) to_replay.push_back(e.tuple);
    replay_close = closed_;
    close_ts = close_timestamp_;
    replayed_elements_ += static_cast<int64_t>(to_replay.size());
  }
  for (const Tuple& t : to_replay) source_->Push(t);
  if (replay_close) source_->Close(close_ts);
}

bool ReplayBuffer::truncated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return truncated_;
}

Status ReplayBuffer::truncation_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!truncated_) return Status::Ok();
  return Status::FailedPrecondition(
      "replay buffer for source '" + source_->name() +
      "' truncated: epoch " + std::to_string(first_unreplayable_epoch_) +
      " is the first epoch with dropped elements (cap " +
      std::to_string(max_elements_) + ")");
}

uint64_t ReplayBuffer::RecordedThrough(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t later = 0;
  for (auto it = entries_.rbegin();
       it != entries_.rend() && it->epoch > epoch; ++it) {
    ++later;
  }
  // Elements dropped by truncation are in total_recorded_ but not in
  // entries_; subtract the ones belonging to later epochs.
  for (auto it = dropped_per_epoch_.upper_bound(epoch);
       it != dropped_per_epoch_.end(); ++it) {
    later += it->second;
  }
  return total_recorded_ - later;
}

void ReplayBuffer::SetRecordedBase(uint64_t elements) {
  std::lock_guard<std::mutex> lock(mutex_);
  DCHECK(entries_.empty());
  total_recorded_ = elements;
}

bool ReplayBuffer::recorded_close(AppTime* timestamp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) *timestamp = close_timestamp_;
  return closed_;
}

size_t ReplayBuffer::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t ReplayBuffer::peak_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_depth_;
}

int64_t ReplayBuffer::replayed_elements() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replayed_elements_;
}

}  // namespace flexstream

// Orchestrates checkpointing and failure recovery for one engine run.
//
// Arm() wires a configured query graph for checkpointing: every source is
// armed to inject epoch barriers and record its input into a replay
// buffer; every non-queue operator reports alignments/closes to the
// checkpoint coordinator. On a permanent failure the StreamEngine drives
// the recovery sequence (see StreamEngine::AttemptRecovery): pause
// sources -> stop executors -> RestoreCommittedState -> rebuild/start
// executors -> ReplaySources -> resume. Attempts are bounded; a truncated
// replay buffer or an exhausted budget falls back to the abort path.

#ifndef FLEXSTREAM_RECOVERY_RECOVERY_MANAGER_H_
#define FLEXSTREAM_RECOVERY_RECOVERY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "recovery/checkpoint_coordinator.h"
#include "recovery/replay_buffer.h"
#include "recovery/snapshot_store.h"
#include "util/status.h"

namespace flexstream {

class QueryGraph;
class Source;
class StorageEnv;

class RecoveryManager {
 public:
  struct Options {
    /// Elements per source between epoch barriers (>0; the engine only
    /// constructs a manager when checkpointing is enabled).
    uint64_t epoch_interval = 0;
    /// Recovery attempts before falling back to abort.
    int max_attempts = 3;
    /// Replay-buffer element cap per source (0 = unbounded).
    size_t replay_buffer_max_elements = 1 << 20;
    /// Durable checkpoints (DESIGN.md §16): non-empty = persist every
    /// committed epoch's snapshots + replay cursors to this directory via
    /// a SnapshotStore, enabling RestoreFromDisk after a process death.
    std::string durable_dir;
    /// Storage backend for the durable store (nullptr = local POSIX env;
    /// tests inject a chaos FaultyStorageEnv).
    StorageEnv* storage_env = nullptr;
    /// Committed epochs retained on disk (>=1); older ones are GC'd.
    int durable_retain_epochs = 2;
  };

  explicit RecoveryManager(Options options);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Installs epoch injection, replay buffers, and alignment callbacks on
  /// `graph` (must already contain its placed queues). Call while
  /// quiescent (engine Configure). With a durable_dir configured, also
  /// opens the snapshot store and validates that every stateful operator
  /// supports durable state and that operator/source names are unique
  /// (records are matched by name on restore) — failing with a Status
  /// naming the offender rather than arming a partially-persistable graph.
  Status Arm(QueryGraph* graph);

  /// Removes everything Arm installed (engine Deconfigure).
  void Disarm();

  CheckpointCoordinator& coordinator() { return coordinator_; }
  const CheckpointCoordinator& coordinator() const { return coordinator_; }

  /// True when another recovery attempt is allowed: budget left and no
  /// replay buffer overflowed.
  bool CanAttempt() const;

  /// Counts an attempt against the budget. Returns false when none left.
  bool BeginAttempt();
  /// Records a completed (resumed) recovery and its wall time.
  void FinishAttempt(int64_t latency_micros);

  /// Quiesces the sources: takes the gate exclusively, waiting out every
  /// in-flight Push/Close. Balanced by ResumeSources.
  void PauseSources();
  void ResumeSources();

  /// Restores the last committed epoch into the quiesced graph: resets
  /// every node, re-installs committed snapshots, rewinds sources and
  /// epoch counters. Call between PauseSources and ResumeSources, with
  /// executors stopped.
  void RestoreCommittedState();

  /// Re-pushes the retained post-epoch input of every source. Executors
  /// must be running again; the gate must still be held (replay bypasses
  /// it via the sources' replay bracket).
  void ReplaySources();

  /// Cold restart (DESIGN.md §16): loads the newest intact epoch from the
  /// durable store into the quiesced, freshly armed graph — decodes every
  /// operator record (matched by name), seeds the coordinator's committed
  /// state, rewinds each source to the epoch boundary and installs its
  /// resume-skip cursor. Returns the restored epoch; 0 when the store is
  /// empty (fresh start); an error when the store holds no intact epoch or
  /// a record doesn't match the graph. Call before Start, with executors
  /// not yet running.
  Result<uint64_t> RestoreFromDisk();

  /// The durable snapshot store (nullptr when not configured).
  SnapshotStore* snapshot_store() { return store_.get(); }
  const SnapshotStore* snapshot_store() const { return store_.get(); }

  /// First failing replay-buffer truncation status (Ok when all intact) —
  /// names the source and first unreplayable epoch.
  Status replay_truncation_status() const;

  /// Durable persist failures (encode or store write) — the run continues,
  /// cold restart just falls back to the last epoch that did persist.
  int64_t persist_failures() const {
    return persist_failures_.load(std::memory_order_relaxed);
  }

  // Stats.
  int attempts() const { return attempts_.load(std::memory_order_relaxed); }
  int completed_recoveries() const {
    return completed_.load(std::memory_order_relaxed);
  }
  int64_t last_recovery_latency_micros() const {
    return last_latency_micros_.load(std::memory_order_relaxed);
  }
  int64_t replayed_elements() const;
  size_t replay_depth() const;
  size_t replay_peak_depth() const;
  bool any_buffer_truncated() const;
  const Options& options() const { return options_; }

 private:
  /// Encodes + writes committed epoch `epoch` to the durable store.
  /// Failures are logged and counted, never fatal to the run.
  void PersistEpoch(uint64_t epoch);

  const Options options_;
  QueryGraph* graph_ = nullptr;
  std::vector<Source*> sources_;
  std::vector<std::unique_ptr<ReplayBuffer>> buffers_;
  CheckpointCoordinator coordinator_;
  std::unique_ptr<SnapshotStore> store_;
  std::atomic<int64_t> persist_failures_{0};

  // Source pause gate: sources take it shared per Push/Close, recovery
  // exclusively. unique_lock stored so Pause/Resume can span calls.
  std::shared_mutex gate_;
  std::unique_ptr<std::unique_lock<std::shared_mutex>> pause_lock_;

  std::atomic<int> attempts_{0};
  std::atomic<int> completed_{0};
  std::atomic<int64_t> last_latency_micros_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_RECOVERY_MANAGER_H_

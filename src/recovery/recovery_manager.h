// Orchestrates checkpointing and failure recovery for one engine run.
//
// Arm() wires a configured query graph for checkpointing: every source is
// armed to inject epoch barriers and record its input into a replay
// buffer; every non-queue operator reports alignments/closes to the
// checkpoint coordinator. On a permanent failure the StreamEngine drives
// the recovery sequence (see StreamEngine::AttemptRecovery): pause
// sources -> stop executors -> RestoreCommittedState -> rebuild/start
// executors -> ReplaySources -> resume. Attempts are bounded; a truncated
// replay buffer or an exhausted budget falls back to the abort path.

#ifndef FLEXSTREAM_RECOVERY_RECOVERY_MANAGER_H_
#define FLEXSTREAM_RECOVERY_RECOVERY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "recovery/checkpoint_coordinator.h"
#include "recovery/replay_buffer.h"

namespace flexstream {

class QueryGraph;
class Source;

class RecoveryManager {
 public:
  struct Options {
    /// Elements per source between epoch barriers (>0; the engine only
    /// constructs a manager when checkpointing is enabled).
    uint64_t epoch_interval = 0;
    /// Recovery attempts before falling back to abort.
    int max_attempts = 3;
    /// Replay-buffer element cap per source (0 = unbounded).
    size_t replay_buffer_max_elements = 1 << 20;
  };

  explicit RecoveryManager(Options options);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Installs epoch injection, replay buffers, and alignment callbacks on
  /// `graph` (must already contain its placed queues). Call while
  /// quiescent (engine Configure).
  void Arm(QueryGraph* graph);

  /// Removes everything Arm installed (engine Deconfigure).
  void Disarm();

  CheckpointCoordinator& coordinator() { return coordinator_; }
  const CheckpointCoordinator& coordinator() const { return coordinator_; }

  /// True when another recovery attempt is allowed: budget left and no
  /// replay buffer overflowed.
  bool CanAttempt() const;

  /// Counts an attempt against the budget. Returns false when none left.
  bool BeginAttempt();
  /// Records a completed (resumed) recovery and its wall time.
  void FinishAttempt(int64_t latency_micros);

  /// Quiesces the sources: takes the gate exclusively, waiting out every
  /// in-flight Push/Close. Balanced by ResumeSources.
  void PauseSources();
  void ResumeSources();

  /// Restores the last committed epoch into the quiesced graph: resets
  /// every node, re-installs committed snapshots, rewinds sources and
  /// epoch counters. Call between PauseSources and ResumeSources, with
  /// executors stopped.
  void RestoreCommittedState();

  /// Re-pushes the retained post-epoch input of every source. Executors
  /// must be running again; the gate must still be held (replay bypasses
  /// it via the sources' replay bracket).
  void ReplaySources();

  // Stats.
  int attempts() const { return attempts_.load(std::memory_order_relaxed); }
  int completed_recoveries() const {
    return completed_.load(std::memory_order_relaxed);
  }
  int64_t last_recovery_latency_micros() const {
    return last_latency_micros_.load(std::memory_order_relaxed);
  }
  int64_t replayed_elements() const;
  size_t replay_depth() const;
  size_t replay_peak_depth() const;
  bool any_buffer_truncated() const;
  const Options& options() const { return options_; }

 private:
  const Options options_;
  QueryGraph* graph_ = nullptr;
  std::vector<Source*> sources_;
  std::vector<std::unique_ptr<ReplayBuffer>> buffers_;
  CheckpointCoordinator coordinator_;

  // Source pause gate: sources take it shared per Push/Close, recovery
  // exclusively. unique_lock stored so Pause/Resume can span calls.
  std::shared_mutex gate_;
  std::unique_ptr<std::unique_lock<std::shared_mutex>> pause_lock_;

  std::atomic<int> attempts_{0};
  std::atomic<int> completed_{0};
  std::atomic<int64_t> last_latency_micros_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_RECOVERY_MANAGER_H_

// The operator state Snapshot/Restore API of the checkpoint subsystem.
//
// When an operator has seen the epoch-k barrier on all of its open input
// channels (operators/operator.h barrier alignment), its state reflects
// exactly the elements of epochs 1..k — nothing more, nothing less. At
// that instant the checkpoint coordinator captures the state of every
// operator implementing StatefulOperator. If the run later fails, the
// recovery manager resets the graph, re-installs the snapshots of the last
// *committed* epoch and replays the retained post-epoch input, giving
// exactly-once results at the sinks (DESIGN.md §10).
//
// Snapshots are in-memory and type-erased on the hot path: the payload is
// a std::any holding whatever value type the operator chooses (typically a
// copy of its internal tables). For *durable* checkpoints (DESIGN.md §16)
// operators additionally implement EncodeState/DecodeState, a canonical
// byte encoding of the same payload: the snapshot store persists the bytes
// per committed epoch and ColdRestart decodes them into a freshly built
// graph after a process death. The encoding must be deterministic —
// encode(decode(bytes)) == bytes — so hash-map contents are emitted in
// sorted key order (tests/state_serde_test.cc pins this byte-exactly).

#ifndef FLEXSTREAM_RECOVERY_STATE_SNAPSHOT_H_
#define FLEXSTREAM_RECOVERY_STATE_SNAPSHOT_H_

#include <any>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace flexstream {

/// One operator's state at an epoch boundary.
struct OperatorSnapshot {
  /// The epoch whose barrier alignment produced this snapshot.
  uint64_t epoch = 0;
  /// Type-erased state payload. Empty for operators that are registered as
  /// stateful but happen to hold no state at the boundary.
  std::any state;
  /// Number of buffered elements/groups the snapshot holds — feeds the
  /// recovery stats table (BuildRecoveryTable), not restore logic.
  int64_t element_count = 0;
};

/// Implemented by operators whose state must survive recovery: join
/// tables, window buffers, aggregation groups, and the result buffers of
/// exactly-once sinks.
///
/// Both methods run in the operator's own executing thread (Snapshot
/// during barrier alignment, Restore while the engine is quiesced), so
/// implementations need no locking beyond what the operator already has.
class StatefulOperator {
 public:
  virtual ~StatefulOperator() = default;

  /// Captures a self-contained copy of the operator's mutable state.
  /// `epoch` is filled in by the caller.
  virtual OperatorSnapshot SnapshotState() const = 0;

  /// Replaces the operator's state with `snapshot`'s payload. Called after
  /// Node::Reset(), i.e. on a fresh operator. Must accept any value
  /// previously produced by SnapshotState() of the same operator type.
  virtual void RestoreState(const OperatorSnapshot& snapshot) = 0;

  /// True when the operator implements the durable encode/decode pair
  /// below. Durable checkpointing refuses to arm a graph containing a
  /// stateful operator that does not (the Status names it) rather than
  /// silently persisting an incomplete epoch.
  virtual bool SupportsDurableState() const { return false; }

  /// Serializes `snapshot`'s payload (a value this operator's
  /// SnapshotState produced) into the canonical byte encoding, appending
  /// to `*out`. Deterministic: the same payload always yields the same
  /// bytes. Thread-safe — reads only the snapshot and construction-time
  /// configuration.
  virtual Status EncodeState(const OperatorSnapshot& snapshot,
                             std::string* out) const {
    (void)snapshot;
    (void)out;
    return Status::Unimplemented("operator does not support durable state");
  }

  /// Inverse of EncodeState: rebuilds a snapshot payload this operator's
  /// RestoreState accepts. The caller fills in `epoch`. Fails cleanly
  /// (never UB) on torn or corrupted bytes.
  virtual Result<OperatorSnapshot> DecodeState(std::string_view bytes) const {
    (void)bytes;
    return Status::Unimplemented("operator does not support durable state");
  }
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_STATE_SNAPSHOT_H_

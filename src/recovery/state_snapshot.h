// The operator state Snapshot/Restore API of the checkpoint subsystem.
//
// When an operator has seen the epoch-k barrier on all of its open input
// channels (operators/operator.h barrier alignment), its state reflects
// exactly the elements of epochs 1..k — nothing more, nothing less. At
// that instant the checkpoint coordinator captures the state of every
// operator implementing StatefulOperator. If the run later fails, the
// recovery manager resets the graph, re-installs the snapshots of the last
// *committed* epoch and replays the retained post-epoch input, giving
// exactly-once results at the sinks (DESIGN.md §10).
//
// Snapshots are deliberately in-memory and type-erased: the payload is a
// std::any holding whatever value type the operator chooses (typically a
// copy of its internal tables). Persistence/serialization is out of scope
// — the failure model here is operator-level faults, not process death.

#ifndef FLEXSTREAM_RECOVERY_STATE_SNAPSHOT_H_
#define FLEXSTREAM_RECOVERY_STATE_SNAPSHOT_H_

#include <any>
#include <cstdint>

namespace flexstream {

/// One operator's state at an epoch boundary.
struct OperatorSnapshot {
  /// The epoch whose barrier alignment produced this snapshot.
  uint64_t epoch = 0;
  /// Type-erased state payload. Empty for operators that are registered as
  /// stateful but happen to hold no state at the boundary.
  std::any state;
  /// Number of buffered elements/groups the snapshot holds — feeds the
  /// recovery stats table (BuildRecoveryTable), not restore logic.
  int64_t element_count = 0;
};

/// Implemented by operators whose state must survive recovery: join
/// tables, window buffers, aggregation groups, and the result buffers of
/// exactly-once sinks.
///
/// Both methods run in the operator's own executing thread (Snapshot
/// during barrier alignment, Restore while the engine is quiesced), so
/// implementations need no locking beyond what the operator already has.
class StatefulOperator {
 public:
  virtual ~StatefulOperator() = default;

  /// Captures a self-contained copy of the operator's mutable state.
  /// `epoch` is filled in by the caller.
  virtual OperatorSnapshot SnapshotState() const = 0;

  /// Replaces the operator's state with `snapshot`'s payload. Called after
  /// Node::Reset(), i.e. on a fresh operator. Must accept any value
  /// previously produced by SnapshotState() of the same operator type.
  virtual void RestoreState(const OperatorSnapshot& snapshot) = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_STATE_SNAPSHOT_H_

#include "recovery/snapshot_store.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace flexstream {
namespace {

constexpr char kEpochMagic[] = "FLXCKPT1";    // 8 bytes
constexpr char kEpochEndMagic[] = "FLXCKEND";  // 8 bytes
constexpr char kManifestMagic[] = "FLXMAN01";  // 8 bytes
constexpr uint32_t kFormatVersion = 1;
constexpr char kManifestName[] = "MANIFEST";
constexpr size_t kMagicLen = 8;

/// Canonical bytes a record's CRC covers (name + payload, length-prefixed).
uint32_t RecordCrc(const DurableRecord& record) {
  std::string bytes;
  BinaryWriter w(&bytes);
  w.Str(record.name);
  w.Str(record.payload);
  return Crc32c(bytes);
}

uint32_t CursorCrc(const DurableCursor& cursor) {
  std::string bytes;
  BinaryWriter w(&bytes);
  w.Str(cursor.name);
  w.U64(cursor.elements);
  w.U8(cursor.closed ? 1 : 0);
  w.I64(cursor.close_timestamp);
  return Crc32c(bytes);
}

/// Parses "epoch_<digits>.ckpt"; false for anything else (tmp files,
/// the manifest, foreign files).
bool ParseEpochFileName(const std::string& name, uint64_t* epoch) {
  constexpr char kPrefix[] = "epoch_";
  constexpr char kSuffix[] = ".ckpt";
  if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) return false;
  if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  if (name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = sizeof(kPrefix) - 1; i < name.size() - (sizeof(kSuffix) - 1);
       ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

SnapshotStore::SnapshotStore(Options options)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : LocalStorageEnv()) {
  CHECK(!options_.dir.empty()) << "SnapshotStore requires a directory";
  CHECK(options_.retain_epochs >= 1);
}

std::string SnapshotStore::EpochFileName(uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  // Zero-pad so lexicographic file order equals epoch order.
  return "epoch_" + std::string(20 - std::min<size_t>(20, digits.size()), '0') +
         digits + ".ckpt";
}

std::string SnapshotStore::PathTo(const std::string& name) const {
  return options_.dir + "/" + name;
}

Status SnapshotStore::Open() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status s = env_->CreateDirs(options_.dir);
  if (!s.ok()) return s;
  // The manifest is authoritative when readable; a crash between the epoch
  // rename and the manifest update leaves a valid epoch file the manifest
  // does not know about yet, so fold the directory scan in.
  manifest_.clear();
  auto bytes = env_->ReadFileToString(PathTo(kManifestName));
  if (bytes.ok()) {
    bool valid = bytes->size() > kMagicLen + 4 &&
                 bytes->compare(0, kMagicLen, kManifestMagic) == 0;
    if (valid) {
      BinaryReader tail(std::string_view(bytes->data() + bytes->size() - 4, 4));
      uint32_t stored_crc = 0;
      valid = tail.U32(&stored_crc).ok() &&
              stored_crc ==
                  Crc32c(std::string_view(bytes->data(), bytes->size() - 4));
    }
    if (valid) {
      BinaryReader body(std::string_view(bytes->data() + kMagicLen,
                                         bytes->size() - kMagicLen - 4));
      uint32_t version = 0, count = 0;
      valid = body.U32(&version).ok() && version == kFormatVersion &&
              body.U32(&count).ok();
      for (uint32_t i = 0; valid && i < count; ++i) {
        uint64_t epoch = 0;
        valid = body.U64(&epoch).ok();
        if (valid) manifest_.push_back(epoch);
      }
      valid = valid && body.done();
    }
    if (!valid) {
      LOG(WARNING) << "snapshot store manifest in '" << options_.dir
                   << "' is corrupt; falling back to directory scan";
      manifest_.clear();
    }
  }
  for (uint64_t epoch : ScanEpochFilesLocked()) {
    if (std::find(manifest_.begin(), manifest_.end(), epoch) ==
        manifest_.end()) {
      manifest_.push_back(epoch);
    }
  }
  std::sort(manifest_.begin(), manifest_.end());
  return Status::Ok();
}

std::string SnapshotStore::EncodeEpochFile(const EpochSnapshot& snapshot) {
  std::string bytes;
  BinaryWriter w(&bytes);
  bytes.append(kEpochMagic, kMagicLen);
  w.U32(kFormatVersion);
  w.U64(snapshot.epoch);
  w.U32(static_cast<uint32_t>(snapshot.operators.size()));
  for (const DurableRecord& record : snapshot.operators) {
    w.Str(record.name);
    w.Str(record.payload);
    w.U32(RecordCrc(record));
  }
  w.U32(static_cast<uint32_t>(snapshot.cursors.size()));
  for (const DurableCursor& cursor : snapshot.cursors) {
    w.Str(cursor.name);
    w.U64(cursor.elements);
    w.U8(cursor.closed ? 1 : 0);
    w.I64(cursor.close_timestamp);
    w.U32(CursorCrc(cursor));
  }
  bytes.append(kEpochEndMagic, kMagicLen);
  w.U32(Crc32c(bytes));
  return bytes;
}

Status SnapshotStore::DecodeEpochFile(const std::string& bytes,
                                      uint64_t expected, EpochSnapshot* out) {
  // Whole-file CRC first: a single check that catches truncation and bit
  // flips anywhere before we interpret any field.
  if (bytes.size() < kMagicLen * 2 + 4) {
    return Status::InvalidArgument("epoch file truncated");
  }
  {
    BinaryReader tail(std::string_view(bytes.data() + bytes.size() - 4, 4));
    uint32_t stored_crc = 0;
    Status s = tail.U32(&stored_crc);
    if (!s.ok()) return s;
    const uint32_t actual =
        Crc32c(std::string_view(bytes.data(), bytes.size() - 4));
    if (stored_crc != actual) {
      return Status::InvalidArgument("epoch file CRC mismatch");
    }
  }
  if (bytes.compare(0, kMagicLen, kEpochMagic) != 0) {
    return Status::InvalidArgument("bad epoch file magic");
  }
  if (bytes.compare(bytes.size() - 4 - kMagicLen, kMagicLen, kEpochEndMagic) !=
      0) {
    return Status::InvalidArgument("missing epoch end magic");
  }
  BinaryReader r(std::string_view(bytes.data() + kMagicLen,
                                  bytes.size() - 2 * kMagicLen - 4));
  uint32_t version = 0;
  Status s = r.U32(&version);
  if (!s.ok()) return s;
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported epoch file version " +
                                   std::to_string(version));
  }
  EpochSnapshot parsed;
  s = r.U64(&parsed.epoch);
  if (!s.ok()) return s;
  if (expected != 0 && parsed.epoch != expected) {
    return Status::InvalidArgument("epoch file claims epoch " +
                                   std::to_string(parsed.epoch) +
                                   ", expected " + std::to_string(expected));
  }
  uint32_t op_count = 0;
  s = r.U32(&op_count);
  if (!s.ok()) return s;
  for (uint32_t i = 0; i < op_count; ++i) {
    DurableRecord record;
    uint32_t crc = 0;
    s = r.Str(&record.name);
    if (s.ok()) s = r.Str(&record.payload);
    if (s.ok()) s = r.U32(&crc);
    if (!s.ok()) return s;
    if (crc != RecordCrc(record)) {
      return Status::InvalidArgument("record CRC mismatch for operator '" +
                                     record.name + "'");
    }
    parsed.operators.push_back(std::move(record));
  }
  uint32_t cursor_count = 0;
  s = r.U32(&cursor_count);
  if (!s.ok()) return s;
  for (uint32_t i = 0; i < cursor_count; ++i) {
    DurableCursor cursor;
    uint8_t closed = 0;
    uint32_t crc = 0;
    s = r.Str(&cursor.name);
    if (s.ok()) s = r.U64(&cursor.elements);
    if (s.ok()) s = r.U8(&closed);
    if (s.ok()) s = r.I64(&cursor.close_timestamp);
    if (s.ok()) s = r.U32(&crc);
    if (!s.ok()) return s;
    cursor.closed = closed != 0;
    if (crc != CursorCrc(cursor)) {
      return Status::InvalidArgument("cursor CRC mismatch for source '" +
                                     cursor.name + "'");
    }
    parsed.cursors.push_back(std::move(cursor));
  }
  if (!r.done()) {
    return Status::InvalidArgument("trailing bytes in epoch file body");
  }
  *out = std::move(parsed);
  return Status::Ok();
}

Status SnapshotStore::WriteFileDurably(const std::string& name,
                                       const std::string& bytes) {
  const std::string tmp = PathTo(name + ".tmp");
  auto file = env_->NewWritableFile(tmp);
  if (!file.ok()) return std::move(file).status();
  Status s = (*file)->Append(bytes);
  if (s.ok()) s = (*file)->Sync();
  if (s.ok()) s = (*file)->Close();
  if (!s.ok()) {
    (void)env_->RemoveFile(tmp);
    return s;
  }
  s = env_->Rename(tmp, PathTo(name));
  if (!s.ok()) {
    (void)env_->RemoveFile(tmp);
    return s;
  }
  return env_->SyncDir(options_.dir);
}

Status SnapshotStore::WriteManifestLocked() {
  std::string bytes;
  BinaryWriter w(&bytes);
  bytes.append(kManifestMagic, kMagicLen);
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(manifest_.size()));
  for (uint64_t epoch : manifest_) w.U64(epoch);
  w.U32(Crc32c(bytes));
  return WriteFileDurably(kManifestName, bytes);
}

void SnapshotStore::GarbageCollectLocked() {
  auto entries = env_->ListDir(options_.dir);
  if (!entries.ok()) return;
  for (const std::string& name : *entries) {
    uint64_t epoch = 0;
    if (!ParseEpochFileName(name, &epoch)) continue;
    if (std::find(manifest_.begin(), manifest_.end(), epoch) !=
        manifest_.end()) {
      continue;
    }
    if (env_->RemoveFile(PathTo(name)).ok()) ++stats_.gc_removed_files;
  }
}

std::vector<uint64_t> SnapshotStore::ScanEpochFilesLocked() {
  std::vector<uint64_t> epochs;
  auto entries = env_->ListDir(options_.dir);
  if (!entries.ok()) return epochs;
  for (const std::string& name : *entries) {
    uint64_t epoch = 0;
    if (ParseEpochFileName(name, &epoch)) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status SnapshotStore::WriteEpoch(const EpochSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!manifest_.empty() && snapshot.epoch <= manifest_.back()) {
    return Status::AlreadyExists("epoch " + std::to_string(snapshot.epoch) +
                                 " at or below newest recorded epoch " +
                                 std::to_string(manifest_.back()));
  }
  const std::string bytes = EncodeEpochFile(snapshot);
  const TimePoint start = Now();
  Status s = WriteFileDurably(EpochFileName(snapshot.epoch), bytes);
  if (!s.ok()) {
    ++stats_.write_failures;
    LOG(WARNING) << "durable checkpoint write failed for epoch "
                 << snapshot.epoch << ": " << s.message();
    return s;
  }
  // The epoch file is durable; only now may the manifest point at it.
  manifest_.push_back(snapshot.epoch);
  while (manifest_.size() > static_cast<size_t>(options_.retain_epochs)) {
    manifest_.erase(manifest_.begin());
  }
  s = WriteManifestLocked();
  if (!s.ok()) {
    ++stats_.write_failures;
    // The epoch file itself is intact; the next Open's directory scan will
    // still find it, so don't roll anything back.
    LOG(WARNING) << "manifest update failed after epoch " << snapshot.epoch
                 << ": " << s.message();
    return s;
  }
  ++stats_.epochs_written;
  stats_.bytes_written += static_cast<int64_t>(bytes.size());
  stats_.last_epoch_bytes = static_cast<int64_t>(bytes.size());
  stats_.last_write_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(Now() - start)
          .count();
  GarbageCollectLocked();
  return Status::Ok();
}

Result<EpochSnapshot> SnapshotStore::LoadNewestIntact() {
  std::lock_guard<std::mutex> lock(mutex_);
  // The manifest (refreshed by Open) already folds in scanned strays.
  std::vector<uint64_t> candidates = manifest_;
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const uint64_t epoch = *it;
    auto bytes = env_->ReadFileToString(PathTo(EpochFileName(epoch)));
    if (!bytes.ok()) {
      ++stats_.corrupt_epochs_skipped;
      LOG(WARNING) << "checkpoint epoch " << epoch
                   << " unreadable: " << bytes.status().message()
                   << "; falling back to previous epoch";
      continue;
    }
    EpochSnapshot snapshot;
    Status s = DecodeEpochFile(*bytes, epoch, &snapshot);
    if (!s.ok()) {
      ++stats_.corrupt_epochs_skipped;
      LOG(WARNING) << "checkpoint epoch " << epoch
                   << " failed validation: " << s.message()
                   << "; falling back to previous epoch";
      continue;
    }
    return snapshot;
  }
  return Status::NotFound("no intact checkpoint epoch in '" + options_.dir +
                          "'");
}

Status SnapshotStore::TruncateAfter(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t before = manifest_.size();
  while (!manifest_.empty() && manifest_.back() > epoch) {
    manifest_.pop_back();
  }
  if (manifest_.size() == before) return Status::Ok();
  Status s = WriteManifestLocked();
  if (!s.ok()) {
    ++stats_.write_failures;
    return s;
  }
  GarbageCollectLocked();
  return Status::Ok();
}

std::vector<uint64_t> SnapshotStore::manifest_epochs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifest_;
}

SnapshotStoreStats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace flexstream

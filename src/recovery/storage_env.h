// Filesystem abstraction for the durable checkpoint store.
//
// Every byte the SnapshotStore reads or writes goes through a StorageEnv,
// so the chaos tier (src/testing/chaos.h FaultyStorageEnv) can wrap the
// real filesystem and deterministically inject torn writes, short writes,
// ENOSPC, fsync failures, and bit-flip corruption — the faults the
// crash-consistent write protocol must survive.
//
// The interface is the minimal POSIX subset the protocol needs: buffered
// append + fsync on a writable file, whole-file reads, atomic rename,
// directory fsync (so a rename itself is durable), listing, and removal.

#ifndef FLEXSTREAM_RECOVERY_STORAGE_ENV_H_
#define FLEXSTREAM_RECOVERY_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace flexstream {

/// A file open for appending. Append buffers in the OS; Sync makes the
/// bytes durable; Close releases the descriptor (without syncing).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// Creates (truncating) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  /// Reads the whole file. NotFound when it does not exist.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  /// Atomic within a filesystem (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Fsyncs the directory so completed renames survive power loss.
  virtual Status SyncDir(const std::string& dir) = 0;
  /// Basenames of the directory's entries (no "."/"..").
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;
  virtual bool FileExists(const std::string& path) = 0;
};

/// The process-wide POSIX environment.
StorageEnv* LocalStorageEnv();

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_STORAGE_ENV_H_

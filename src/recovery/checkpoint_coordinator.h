// Epoch commit protocol.
//
// Every operator reports its barrier alignments (and its close) here via
// the Operator epoch callback. Epoch E *commits* when
//   * every registered sink has aligned E (or closed earlier), and
//   * every registered stateful operator has delivered its epoch-E
//     snapshot (or closed earlier — a closed operator's final effects are
//     fully reflected in downstream snapshots, so it restores empty and
//     merely re-closes on replay).
// Commits are monotone; committing E discards all pending state for
// epochs <= E and fires the commit listener (outside the lock — it trims
// replay buffers, which take their own locks).
//
// Snapshots from a failed() operator are refused, so an epoch whose data
// was partially dropped by a poisoned operator can never commit — the
// recovery rewind target always predates the first drop.

#ifndef FLEXSTREAM_RECOVERY_CHECKPOINT_COORDINATOR_H_
#define FLEXSTREAM_RECOVERY_CHECKPOINT_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "recovery/state_snapshot.h"

namespace flexstream {

class Operator;

class CheckpointCoordinator {
 public:
  /// Registers one graph operator. `stateful` is the operator's
  /// StatefulOperator facet (nullptr for stateless ones); `is_sink` marks
  /// the operators whose alignment gates the commit.
  void Register(Operator* op, StatefulOperator* stateful, bool is_sink);

  /// Invoked (outside the lock) with the epoch just committed.
  void SetCommitListener(std::function<void(uint64_t)> listener);

  /// Operator epoch callback target. `epoch` is the aligned epoch, or
  /// Operator::kEpochClosed when the operator closed.
  void OnAligned(Operator* op, uint64_t epoch);

  /// Last committed epoch (0 = none yet; recovery then means a full
  /// restart with replay from the beginning).
  uint64_t committed_epoch() const {
    return committed_epoch_.load(std::memory_order_acquire);
  }

  /// The committed snapshots, keyed by operator. Read while quiescent.
  const std::unordered_map<Operator*, OperatorSnapshot>& committed() const {
    return committed_snapshots_;
  }

  /// Epoch + deep copy of the committed snapshots, captured atomically
  /// under the lock. The durable persister runs on a commit listener while
  /// the graph keeps committing newer epochs, so it must not read
  /// committed() (the map is replaced wholesale on every commit).
  struct CommittedState {
    uint64_t epoch = 0;
    std::unordered_map<Operator*, OperatorSnapshot> snapshots;
  };
  CommittedState CommittedCopy() const;

  /// Cold-restart seeding: installs epoch + snapshots loaded from disk as
  /// the committed state, so the subsequent in-memory commit chain (epoch
  /// E+1, E+2, ...) and any later live recovery build on the restored
  /// baseline. Call while quiescent, before sources start.
  void SetRestoredState(uint64_t epoch,
                        std::unordered_map<Operator*, OperatorSnapshot>
                            snapshots);

  /// Recovery restore: discards pending (uncommitted) epoch state and the
  /// closed-operator set — the rewound run re-reports everything.
  void OnRestore();

  // Stats (recovery stats table).
  int64_t snapshots_taken() const {
    return snapshots_taken_.load(std::memory_order_relaxed);
  }
  int64_t epochs_committed() const {
    return epochs_committed_.load(std::memory_order_relaxed);
  }
  /// Total buffered elements across the committed snapshots.
  int64_t committed_state_elements() const;

 private:
  struct Pending {
    std::unordered_map<Operator*, OperatorSnapshot> snapshots;
    std::set<Operator*> sinks_aligned;
    std::set<Operator*> stateful_done;
  };

  /// Commits every complete pending epoch in order; returns the epochs
  /// committed so the caller can fire the listener outside the lock.
  std::vector<uint64_t> CommitCompleteLocked();
  bool CompleteLocked(const Pending& pending) const;

  mutable std::mutex mutex_;
  std::unordered_map<Operator*, StatefulOperator*> stateful_;
  std::set<Operator*> sinks_;
  std::set<Operator*> closed_;  // operators that delivered kEpochClosed
  std::map<uint64_t, Pending> pending_;
  std::unordered_map<Operator*, OperatorSnapshot> committed_snapshots_;
  std::function<void(uint64_t)> commit_listener_;
  std::atomic<uint64_t> committed_epoch_{0};
  std::atomic<int64_t> snapshots_taken_{0};
  std::atomic<int64_t> epochs_committed_{0};
};

}  // namespace flexstream

#endif  // FLEXSTREAM_RECOVERY_CHECKPOINT_COORDINATOR_H_

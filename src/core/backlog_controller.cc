#include "core/backlog_controller.h"

#include <cmath>

#include "util/logging.h"

namespace flexstream {

BacklogController::BacklogController(HmtsExecutor* executor, Options options)
    : executor_(executor), options_(options) {
  CHECK(executor != nullptr);
  CHECK_GT(ToSeconds(options.interval), 0.0);
}

BacklogController::~BacklogController() { Stop(); }

void BacklogController::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK(!started_) << "BacklogController already started";
  started_ = true;
  stop_ = false;
  monitor_ = std::thread([this] { RunLoop(); });
}

void BacklogController::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

void BacklogController::RunLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, options_.interval, [&] { return stop_; })) {
        return;
      }
    }
    for (size_t i = 0; i < executor_->partition_count(); ++i) {
      const double backlog =
          static_cast<double>(executor_->partition(i).QueuedElements());
      executor_->SetPriority(
          i, options_.base_priority +
                 options_.gain * std::log2(1.0 + backlog));
    }
    rounds_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace flexstream

#include "core/thread_scheduler.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "sched/partition.h"
#include "util/logging.h"

namespace flexstream {

ThreadScheduler::ThreadScheduler(Options options) : options_(options) {
  max_running_ = options_.max_running > 0
                     ? options_.max_running
                     : static_cast<int>(
                           std::max(1u, std::thread::hardware_concurrency()));
  max_running_mirror_.store(max_running_, std::memory_order_relaxed);
}

void ThreadScheduler::SetMaxRunning(int max_running) {
  CHECK_GE(max_running, 1);
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_running == max_running_) return;
  max_running_ = max_running;
  max_running_mirror_.store(max_running, std::memory_order_relaxed);
  // Growing: hand the new slots to queued waiters right away. Shrinking:
  // nothing to do here — running partitions finish their quanta and the
  // smaller budget throttles re-acquisition (Rebalance grants nothing
  // while running_count_ >= max_running_).
  Rebalance(Now());
}

ThreadScheduler::~ThreadScheduler() { StopWatchdog(); }

void ThreadScheduler::StartWatchdog(std::vector<Partition*> partitions) {
  CHECK(options_.watchdog_interval > Duration::zero())
      << "StartWatchdog requires a nonzero watchdog_interval";
  CHECK(!watchdog_thread_.joinable()) << "watchdog already running";
  watched_ = std::move(partitions);
  watchdog_stop_.store(false, std::memory_order_release);
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
}

void ThreadScheduler::StopWatchdog() {
  if (!watchdog_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_.store(true, std::memory_order_release);
  }
  watchdog_cv_.notify_all();
  watchdog_thread_.join();
}

std::string ThreadScheduler::LastStallReport() const {
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  return last_stall_report_;
}

void ThreadScheduler::SetStallAnnotator(
    std::function<std::string()> annotator) {
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  stall_annotator_ =
      annotator == nullptr
          ? nullptr
          : std::make_shared<const std::function<std::string()>>(
                std::move(annotator));
}

void ThreadScheduler::WatchdogLoop() {
  std::vector<int64_t> last_drained(watched_.size(), -1);
  std::vector<int> stalled_for(watched_.size(), 0);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mutex_);
      watchdog_cv_.wait_for(lock, options_.watchdog_interval, [&] {
        return watchdog_stop_.load(std::memory_order_acquire);
      });
    }
    if (watchdog_stop_.load(std::memory_order_acquire)) return;
    bool any_stalled = false;
    for (size_t i = 0; i < watched_.size(); ++i) {
      Partition* p = watched_[i];
      const int64_t drained = p->drained();
      const bool progressed = drained != last_drained[i];
      last_drained[i] = drained;
      // A stall is "has work, made none of it disappear": partitions that
      // are done, or empty-and-waiting on open inputs, are merely idle.
      if (progressed || p->Done() || p->QueuedElements() == 0) {
        stalled_for[i] = 0;
        continue;
      }
      if (++stalled_for[i] >= options_.watchdog_stall_intervals) {
        any_stalled = true;
      }
    }
    if (any_stalled) {
      std::string report = DescribePartitions(watched_);
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(watchdog_mutex_);
        // Append the controller annotation (current ladder rung, last
        // action) so a stuck run shows what the controller last did.
        if (stall_annotator_ != nullptr) {
          const std::string note = (*stall_annotator_)();
          if (!note.empty()) report += "  " + note + "\n";
        }
        last_stall_report_ = report;
      }
      LOG(WARNING) << "watchdog: partition(s) with queued work made no "
                      "drain progress for "
                   << options_.watchdog_stall_intervals
                   << " interval(s):\n"
                   << report;
    }
  }
}

void ThreadScheduler::Register(Partition* partition, double priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  Info& info = infos_[partition];
  info.priority = priority;
}

void ThreadScheduler::Unregister(Partition* partition) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = infos_.find(partition);
  if (it == infos_.end()) return;
  CHECK(!it->second.running) << "unregistering a running partition";
  CHECK(!it->second.waiting) << "unregistering a waiting partition";
  infos_.erase(it);
}

void ThreadScheduler::SetPriority(Partition* partition, double priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  infos_[partition].priority = priority;
  Rebalance(Now());
}

double ThreadScheduler::PriorityOf(const Partition* partition) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = infos_.find(partition);
  return it == infos_.end() ? 0.0 : it->second.priority;
}

double ThreadScheduler::EffectivePriority(const Info& info,
                                          TimePoint now) const {
  double p = info.priority;
  if (info.waiting && options_.aging_per_second > 0.0) {
    p += options_.aging_per_second * ToSeconds(now - info.wait_start);
  }
  return p;
}

void ThreadScheduler::Rebalance(TimePoint now) {
  // Grant free slots to the best waiters.
  while (running_count_ < max_running_ && waiting_count_ > 0) {
    Info* best = nullptr;
    double best_priority = -std::numeric_limits<double>::infinity();
    for (auto& [partition, info] : infos_) {
      (void)partition;
      if (!info.waiting) continue;
      const double p = EffectivePriority(info, now);
      if (p > best_priority) {
        best_priority = p;
        best = &info;
      }
    }
    if (best == nullptr) break;
    best->waiting = false;
    best->running = true;
    if (best->preempt) preempt_pending_.fetch_sub(1, std::memory_order_relaxed);
    best->preempt = false;
    best->grant_time = now;
    --waiting_count_;
    waiting_count_fast_.store(waiting_count_, std::memory_order_relaxed);
    ++running_count_;
  }
  // No free slot left: preempt the weakest runner if a waiter outranks it.
  if (waiting_count_ > 0 && running_count_ >= max_running_) {
    double best_wait = -std::numeric_limits<double>::infinity();
    for (const auto& [partition, info] : infos_) {
      (void)partition;
      if (info.waiting) {
        best_wait = std::max(best_wait, EffectivePriority(info, now));
      }
    }
    Info* weakest = nullptr;
    double weakest_priority = std::numeric_limits<double>::infinity();
    for (auto& [partition, info] : infos_) {
      (void)partition;
      if (info.running && info.priority < weakest_priority) {
        weakest_priority = info.priority;
        weakest = &info;
      }
    }
    if (weakest != nullptr && best_wait > weakest_priority &&
        !weakest->preempt) {
      weakest->preempt = true;
      preempt_pending_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Wake any waiter whose grant just came through. Called with mutex_
  // held; the woken threads re-check their predicate under the lock.
  cv_.notify_all();
}

void ThreadScheduler::Acquire(Partition* partition) {
  std::unique_lock<std::mutex> lock(mutex_);
  Info& info = infos_[partition];
  CHECK(!info.running && !info.waiting)
      << partition->name() << " double-acquire";
  info.waiting = true;
  info.wait_start = Now();
  ++waiting_count_;
  waiting_count_fast_.store(waiting_count_, std::memory_order_relaxed);
  Rebalance(Now());
  cv_.wait(lock, [&] { return info.running; });
}

void ThreadScheduler::Release(Partition* partition) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = infos_.find(partition);
  CHECK(it != infos_.end() && it->second.running)
      << partition->name() << " release without acquire";
  it->second.running = false;
  if (it->second.preempt) {
    preempt_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.preempt = false;
  --running_count_;
  Rebalance(Now());
}

bool ThreadScheduler::ShouldYield(const Partition* partition) const {
  // Fast path: with no waiter and no raised preempt flag nothing can
  // demand a yield, so skip the mutex entirely. This is the steady state
  // whenever partitions <= execution slots, and it is polled once per
  // drain batch by every running partition.
  if (waiting_count_fast_.load(std::memory_order_relaxed) == 0 &&
      preempt_pending_.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = infos_.find(partition);
  if (it == infos_.end() || !it->second.running) return false;
  if (it->second.preempt) return true;
  if (waiting_count_ == 0) return false;
  return Now() >= it->second.grant_time + options_.quantum;
}

int ThreadScheduler::running_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_count_;
}

int ThreadScheduler::waiting_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_count_;
}

}  // namespace flexstream

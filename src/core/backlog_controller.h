// Runtime priority adaptation for the level-3 thread scheduler.
//
// Section 4.2.2: "The distribution of the available CPU resources relies
// on priorities that can be adapted during runtime." This controller is
// one concrete adaptation policy: a monitor thread periodically samples
// every partition's queued backlog and sets its priority to
//
//   priority = base + gain * log2(1 + queued_elements)
//
// so partitions that fall behind receive more CPU, while the log keeps a
// single flooded partition from starving everyone else (the TS's aging
// adds starvation protection on top). The controller is optional and can
// be attached to any running HmtsExecutor.

#ifndef FLEXSTREAM_CORE_BACKLOG_CONTROLLER_H_
#define FLEXSTREAM_CORE_BACKLOG_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/hmts.h"
#include "util/clock.h"

namespace flexstream {

class BacklogController {
 public:
  struct Options {
    Duration interval = std::chrono::milliseconds(20);
    double base_priority = 0.0;
    double gain = 1.0;
  };

  /// The executor must outlive the controller. Call Start() after (or
  /// before) the executor starts; Stop() before destroying the executor.
  BacklogController(HmtsExecutor* executor, Options options);
  ~BacklogController();

  BacklogController(const BacklogController&) = delete;
  BacklogController& operator=(const BacklogController&) = delete;

  void Start();
  void Stop();

  /// Number of adaptation rounds performed so far.
  int64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }

 private:
  void RunLoop();

  HmtsExecutor* executor_;
  Options options_;
  std::thread monitor_;
  std::atomic<int64_t> rounds_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_CORE_BACKLOG_CONTROLLER_H_

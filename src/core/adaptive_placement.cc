#include "core/adaptive_placement.h"

#include <cmath>

#include "graph/query_graph.h"
#include "operators/operator.h"
#include "stats/capacity.h"
#include "util/logging.h"

namespace flexstream {

void SnapshotMeasuredStats(QueryGraph* graph, int64_t min_samples) {
  for (Node* node : graph->nodes()) {
    if (node->is_queue()) continue;
    const OpStats& stats = node->stats();
    if (stats.processed() < min_samples) continue;
    node->SetCostMicros(stats.CostMicros());
    node->SetSelectivity(stats.Selectivity());
    const double d = stats.InterarrivalMicros();
    if (std::isfinite(d)) node->SetInterarrivalMicros(d);
  }
}

std::vector<size_t> StallingPartitions(const StreamEngine& engine) {
  std::vector<size_t> stalling;
  const Partitioning* partitioning = engine.partitioning();
  if (partitioning == nullptr) return stalling;
  for (size_t id = 0; id < partitioning->group_count(); ++id) {
    const double cap = partitioning->CapacityOf(id);
    if (std::isfinite(cap) && cap < 0.0) stalling.push_back(id);
  }
  return stalling;
}

Status ReplaceFromMeasuredStats(StreamEngine* engine) {
  CHECK(engine != nullptr);
  if (!engine->configured()) {
    return Status::FailedPrecondition("engine not configured");
  }
  if (engine->options().mode != ExecutionMode::kHmts) {
    return Status::FailedPrecondition(
        "runtime re-placement requires HMTS mode");
  }
  SnapshotMeasuredStats(
      // Queues are engine-owned; the graph pointer is reachable through
      // any queue's graph() — but the engine already knows it. Use the
      // partitioning's graph.
      const_cast<QueryGraph*>(engine->partitioning()->graph()));
  // SwitchTo with the same options re-runs the placement algorithm on the
  // freshly snapshotted metadata (a structural switch: drain, splice,
  // re-place).
  return engine->SwitchTo(engine->options());
}

}  // namespace flexstream

// The level-3 thread scheduler (TS) of the HMTS architecture.
//
// Section 4.2.2: "Concurrency is managed by a specific high-priority
// thread termed thread scheduler (TS). ... Our default TS accomplishes a
// preemptive priority-based scheduling strategy. It determines the next
// thread to be executed so that starvation is prevented. The distribution
// of the available CPU resources relies on priorities that can be adapted
// during runtime."
//
// Implementation: the TS grants up to `max_running` execution slots to
// partition worker threads. Workers call Acquire() before running a
// quantum and Release() after it; between batches they poll ShouldYield().
// Grants go to the waiter with the highest *effective* priority —
// base priority plus an aging bonus proportional to waiting time, which
// guarantees starvation freedom. Preemption is cooperative-with-flags:
// when a waiter outranks a running partition, the TS raises that
// partition's preempt flag so its very next ShouldYield() returns true
// (quantum expiry also forces a yield whenever anyone is waiting).
// Priorities can be changed at any time via SetPriority.

#ifndef FLEXSTREAM_CORE_THREAD_SCHEDULER_H_
#define FLEXSTREAM_CORE_THREAD_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/clock.h"

namespace flexstream {

class Partition;

class ThreadScheduler {
 public:
  struct Options {
    /// Max partitions running concurrently; 0 = hardware concurrency.
    int max_running = 0;
    /// Max continuous run of one partition while others wait.
    Duration quantum = std::chrono::milliseconds(2);
    /// Effective-priority boost per second of waiting (starvation
    /// prevention). 0 disables aging.
    double aging_per_second = 1.0;
    /// Watchdog sampling period; zero (the default) disables the watchdog.
    /// Must comfortably exceed the partitions' idle_poll so a lost wakeup
    /// recovered by the poll failsafe is not misreported as a stall.
    Duration watchdog_interval{};
    /// Consecutive no-progress samples before a partition with queued work
    /// is declared stalled.
    int watchdog_stall_intervals = 2;
  };

  explicit ThreadScheduler(Options options);
  ThreadScheduler() : ThreadScheduler(Options()) {}

  /// Stops the watchdog thread, if running.
  ~ThreadScheduler();

  ThreadScheduler(const ThreadScheduler&) = delete;
  ThreadScheduler& operator=(const ThreadScheduler&) = delete;

  /// Registers a partition with a base priority (higher = preferred).
  /// Partitions may also Acquire without prior registration (priority 0).
  void Register(Partition* partition, double priority);

  /// Removes a partition's bookkeeping. Must not be running or waiting.
  void Unregister(Partition* partition);

  /// Adjusts a partition's base priority at runtime. Takes effect at the
  /// next grant decision; may raise a preempt flag immediately.
  void SetPriority(Partition* partition, double priority);

  double PriorityOf(const Partition* partition) const;

  /// Blocks until an execution slot is granted to `partition`.
  void Acquire(Partition* partition);

  /// Returns the slot. Wakes the best waiter, if any.
  void Release(Partition* partition);

  /// True when `partition` should end its quantum now: it was preempted by
  /// a higher-priority waiter, or its quantum expired while others wait.
  /// Partitions poll this between drain batches, so the common case —
  /// nobody waiting, no preempt pending — answers from two relaxed atomic
  /// loads without touching the scheduler mutex.
  bool ShouldYield(const Partition* partition) const;

  int running_count() const;
  int waiting_count() const;
  int max_running() const {
    return max_running_mirror_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  /// Runtime slot-pool resize (the SLO controller's rung-1 actuation).
  /// Growing takes effect immediately (queued waiters are granted the new
  /// slots); shrinking is cooperative — no partition is stopped, but as
  /// running partitions yield, re-acquisition is throttled to the new
  /// budget. `max_running` must be >= 1.
  void SetMaxRunning(int max_running);

  /// Starts the no-progress watchdog over `partitions` (requires a nonzero
  /// Options::watchdog_interval). Every interval it samples each
  /// partition's drained() counter; a partition that still has queued work,
  /// is not Done(), and shows no drain progress for
  /// `watchdog_stall_intervals` consecutive samples is reported as stalled:
  /// a warning with the full DescribePartitions() snapshot (per-queue
  /// depths + last-scheduled queue) is logged and stall_events()
  /// increments. Partitions idling at open inputs or done at EOS are never
  /// reported — no work is not no progress.
  void StartWatchdog(std::vector<Partition*> partitions);

  /// Stops and joins the watchdog thread. Idempotent.
  void StopWatchdog();

  /// Stall events reported since StartWatchdog.
  int64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }

  /// The most recent stall report ("" when none) — partition snapshot text
  /// as logged. For tests and engine diagnostics.
  std::string LastStallReport() const;

  /// Installs a callback whose text is appended to every watchdog stall
  /// report (and to LastStallReport). The SLO controller registers one so
  /// a stuck run's snapshot shows the current ladder rung and the last
  /// control action. Thread-safe; nullptr detaches.
  void SetStallAnnotator(std::function<std::string()> annotator);

 private:
  struct Info {
    double priority = 0.0;
    bool running = false;
    bool waiting = false;
    bool preempt = false;
    TimePoint wait_start{};
    TimePoint grant_time{};
  };

  double EffectivePriority(const Info& info, TimePoint now) const;
  /// Grants free slots to the best waiters and raises preempt flags;
  /// caller holds mutex_.
  void Rebalance(TimePoint now);
  void WatchdogLoop();

  Options options_;
  int max_running_;  // written under mutex_ (SetMaxRunning), read under it
  // Lock-free mirror of max_running_ for the introspection getter.
  std::atomic<int> max_running_mirror_{1};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<const Partition*, Info> infos_;
  int running_count_ = 0;
  int waiting_count_ = 0;

  // Lock-free mirrors maintained under mutex_, read by the ShouldYield
  // fast path: the number of waiting partitions and the number of raised
  // preempt flags.
  std::atomic<int> waiting_count_fast_{0};
  std::atomic<int> preempt_pending_{0};

  // --- watchdog ----------------------------------------------------------
  std::thread watchdog_thread_;
  std::vector<Partition*> watched_;
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<int64_t> stall_events_{0};
  mutable std::mutex watchdog_mutex_;  // guards the stop cv + last report
  std::condition_variable watchdog_cv_;
  std::string last_stall_report_;
  std::shared_ptr<const std::function<std::string()>> stall_annotator_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_CORE_THREAD_SCHEDULER_H_

// The hybrid multi-threaded scheduling executor — the paper's primary
// contribution (Section 4.2).
//
// HMTS "offers to dynamically adapt the number of threads and to assign
// them flexibly to partitions of the query graph", scheduling "each
// partition with respect to a separate strategy" under a level-3
// ThreadScheduler. The executor owns one level-2 Partition per partition
// spec, registers each with the TS at its configured priority, and
// supports runtime adjustments: priorities can be changed while running,
// and the whole executor can be stopped and rebuilt with a different
// partitioning ("we can seamlessly switch between these approaches during
// runtime", Section 4.2.2) — api/stream_engine.h drives that switching.

#ifndef FLEXSTREAM_CORE_HMTS_H_
#define FLEXSTREAM_CORE_HMTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/thread_scheduler.h"
#include "sched/partition.h"

namespace flexstream {

class HmtsExecutor {
 public:
  struct PartitionSpec {
    std::string name;
    std::vector<QueueOp*> queues;
    StrategyKind strategy = StrategyKind::kFifo;
    double priority = 0.0;
  };

  HmtsExecutor(std::vector<PartitionSpec> specs,
               ThreadScheduler::Options ts_options = {},
               Partition::Options partition_options = {});
  ~HmtsExecutor();

  /// Starts all partition workers; when the ThreadScheduler options carry
  /// a nonzero watchdog_interval, also starts the no-progress watchdog
  /// over the partitions.
  void Start();
  void RequestStop();
  void Join();
  bool Done() const;

  size_t partition_count() const { return partitions_.size(); }
  Partition& partition(size_t i) { return *partitions_[i]; }
  ThreadScheduler& thread_scheduler() { return ts_; }

  /// Attaches the run's failure collector to every partition (each run
  /// loop then exits early once any operator fails). Call before Start.
  void SetRunStatus(RunStatus* run_status);

  /// Raw partition pointers, for diagnostics (DescribePartitions).
  std::vector<Partition*> Partitions();

  /// Runtime priority adjustment (Section 4.2.2: priorities "can be
  /// adapted during runtime").
  void SetPriority(size_t i, double priority);

 private:
  ThreadScheduler ts_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<double> priorities_;
  bool started_ = false;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_CORE_HMTS_H_

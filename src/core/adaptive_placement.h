// Runtime queue re-placement from measured statistics.
//
// The paper leaves this open: "an efficient algorithm for placing queues
// during runtime remains to be addressed in future work" (Section 5.1.3),
// while describing the mechanism — interrupt processing briefly, insert
// or remove queues, resume. This module provides that mechanism on top of
// StreamEngine:
//
//   1. SnapshotMeasuredStats copies every operator's *measured* cost,
//      selectivity and inter-arrival statistics into its metadata
//      overrides (the inputs of the placement algorithms).
//   2. StallingPartitions reports which current partitions have negative
//      capacity under those fresh measurements.
//   3. ReplaceFromMeasuredStats re-runs the engine's configured placement
//      algorithm on the measured metadata and re-places the queues (the
//      engine drains and splices queues internally). The caller must
//      observe the structural-switch contract: sources paused while the
//      call runs.

#ifndef FLEXSTREAM_CORE_ADAPTIVE_PLACEMENT_H_
#define FLEXSTREAM_CORE_ADAPTIVE_PLACEMENT_H_

#include <vector>

#include "api/stream_engine.h"

namespace flexstream {

/// Copies measured statistics into metadata overrides for every non-queue
/// node that has processed at least `min_samples` elements. Nodes below
/// the threshold keep their existing metadata (measured values would be
/// noise).
void SnapshotMeasuredStats(QueryGraph* graph, int64_t min_samples = 16);

/// Ids of the engine's current partitions whose capacity — evaluated on
/// the nodes' *current* metadata — is negative, i.e. partitions that
/// stall their inputs. Empty when the engine is not in HMTS mode.
std::vector<size_t> StallingPartitions(const StreamEngine& engine);

/// Snapshot + re-place: re-runs the engine's placement with measured
/// statistics. Requires a configured HMTS engine and paused sources.
/// Returns the engine's SwitchTo status.
Status ReplaceFromMeasuredStats(StreamEngine* engine);

}  // namespace flexstream

#endif  // FLEXSTREAM_CORE_ADAPTIVE_PLACEMENT_H_

#include "core/hmts.h"

#include "util/logging.h"

namespace flexstream {

HmtsExecutor::HmtsExecutor(std::vector<PartitionSpec> specs,
                           ThreadScheduler::Options ts_options,
                           Partition::Options partition_options)
    : ts_(ts_options) {
  partitions_.reserve(specs.size());
  for (PartitionSpec& spec : specs) {
    auto partition = std::make_unique<Partition>(
        spec.name, std::move(spec.queues), MakeStrategy(spec.strategy),
        partition_options);
    partition->set_thread_scheduler(&ts_);
    ts_.Register(partition.get(), spec.priority);
    priorities_.push_back(spec.priority);
    partitions_.push_back(std::move(partition));
  }
}

HmtsExecutor::~HmtsExecutor() {
  RequestStop();
  Join();
  // Member destruction order (partitions_ before ts_, reverse of
  // declaration) keeps ts_ alive until every worker has exited.
}

void HmtsExecutor::Start() {
  CHECK(!started_) << "HmtsExecutor already started";
  started_ = true;
  for (auto& p : partitions_) p->Start();
  if (ts_.options().watchdog_interval > Duration::zero()) {
    ts_.StartWatchdog(Partitions());
  }
}

void HmtsExecutor::RequestStop() {
  ts_.StopWatchdog();
  for (auto& p : partitions_) p->RequestStop();
}

void HmtsExecutor::Join() {
  for (auto& p : partitions_) p->Join();
}

void HmtsExecutor::SetRunStatus(RunStatus* run_status) {
  for (auto& p : partitions_) p->SetRunStatus(run_status);
}

std::vector<Partition*> HmtsExecutor::Partitions() {
  std::vector<Partition*> out;
  out.reserve(partitions_.size());
  for (auto& p : partitions_) out.push_back(p.get());
  return out;
}

bool HmtsExecutor::Done() const {
  for (const auto& p : partitions_) {
    if (!p->Done()) return false;
  }
  return true;
}

void HmtsExecutor::SetPriority(size_t i, double priority) {
  CHECK_LT(i, partitions_.size());
  priorities_[i] = priority;
  ts_.SetPriority(partitions_[i].get(), priority);
}

}  // namespace flexstream

// Round-robin scheduling: cycles through the partition's queues, skipping
// empty ones. The simplest starvation-free strategy; useful as a baseline
// and as the default for single-queue partitions (where every strategy is
// equivalent).

#ifndef FLEXSTREAM_SCHED_ROUND_ROBIN_STRATEGY_H_
#define FLEXSTREAM_SCHED_ROUND_ROBIN_STRATEGY_H_

#include "sched/strategy.h"

namespace flexstream {

class RoundRobinStrategy : public SchedulingStrategy {
 public:
  const char* name() const override { return "round-robin"; }
  QueueOp* Next(const std::vector<QueueOp*>& queues) override;

 private:
  size_t cursor_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_ROUND_ROBIN_STRATEGY_H_

// Additional level-2 strategies beyond the paper's evaluation set.
//
// HMTS's level 2 deliberately accepts "arbitrary strategies ... provided
// that they comply with the first level" (Section 4.2.2). These two are
// useful in practice and in tests:
//
//   * PriorityStrategy — static, user-assigned per-queue priorities
//     (FIFO tie-break). The manual counterpart of Chain's computed
//     priorities; lets an operator express QoS preferences directly.
//   * RandomStrategy — uniformly random choice among non-empty queues
//     (seeded, deterministic). A chaos baseline: any semantics test that
//     passes under FIFO must also pass under random order.

#ifndef FLEXSTREAM_SCHED_EXTRA_STRATEGIES_H_
#define FLEXSTREAM_SCHED_EXTRA_STRATEGIES_H_

#include <unordered_map>

#include "sched/strategy.h"
#include "util/random.h"

namespace flexstream {

class PriorityStrategy : public SchedulingStrategy {
 public:
  PriorityStrategy() = default;

  /// Sets a queue's priority (default 0; higher runs first).
  void SetPriority(const QueueOp* queue, double priority);
  double PriorityOf(const QueueOp* queue) const;

  const char* name() const override { return "priority"; }
  QueueOp* Next(const std::vector<QueueOp*>& queues) override;

 private:
  std::unordered_map<const QueueOp*, double> priority_;
};

class RandomStrategy : public SchedulingStrategy {
 public:
  explicit RandomStrategy(uint64_t seed = 42) : rng_(seed) {}

  const char* name() const override { return "random"; }
  QueueOp* Next(const std::vector<QueueOp*>& queues) override;

 private:
  Rng rng_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_EXTRA_STRATEGIES_H_

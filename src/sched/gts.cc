#include "sched/gts.h"

namespace flexstream {

GtsExecutor::GtsExecutor(std::vector<QueueOp*> queues, StrategyKind strategy,
                         Partition::Options options)
    : partition_(std::make_unique<Partition>(
          "gts", std::move(queues), MakeStrategy(strategy), options)) {}

}  // namespace flexstream

#include "sched/strategy.h"

#include "sched/chain_strategy.h"
#include "sched/fifo_strategy.h"
#include "sched/round_robin_strategy.h"
#include "sched/segment_strategy.h"
#include "util/logging.h"

namespace flexstream {

SchedulingStrategy::~SchedulingStrategy() = default;

void SchedulingStrategy::Initialize(const std::vector<QueueOp*>& queues) {
  (void)queues;
}

const char* StrategyKindToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFifo:
      return "fifo";
    case StrategyKind::kRoundRobin:
      return "round-robin";
    case StrategyKind::kChain:
      return "chain";
    case StrategyKind::kSegment:
      return "segment";
  }
  return "unknown";
}

bool StrategyKindFromString(const std::string& name, StrategyKind* kind) {
  for (StrategyKind k : {StrategyKind::kFifo, StrategyKind::kRoundRobin,
                         StrategyKind::kChain, StrategyKind::kSegment}) {
    if (name == StrategyKindToString(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

std::unique_ptr<SchedulingStrategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFifo:
      return std::make_unique<FifoStrategy>();
    case StrategyKind::kRoundRobin:
      return std::make_unique<RoundRobinStrategy>();
    case StrategyKind::kChain:
      return std::make_unique<ChainStrategy>();
    case StrategyKind::kSegment:
      return std::make_unique<SegmentStrategy>();
  }
  LOG(FATAL) << "unknown strategy kind";
  return nullptr;
}

}  // namespace flexstream

// FIFO scheduling: always drain the queue holding the globally oldest
// element. Queues stamp every enqueued item with a global arrival sequence
// number, so "oldest head wins" totally orders elements across queues —
// the FIFO baseline of Sections 6.4 and 6.6.

#ifndef FLEXSTREAM_SCHED_FIFO_STRATEGY_H_
#define FLEXSTREAM_SCHED_FIFO_STRATEGY_H_

#include "sched/strategy.h"

namespace flexstream {

class FifoStrategy : public SchedulingStrategy {
 public:
  const char* name() const override { return "fifo"; }
  QueueOp* Next(const std::vector<QueueOp*>& queues) override;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_FIFO_STRATEGY_H_

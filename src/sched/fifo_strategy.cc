#include "sched/fifo_strategy.h"

namespace flexstream {

QueueOp* FifoStrategy::Next(const std::vector<QueueOp*>& queues) {
  QueueOp* best = nullptr;
  uint64_t best_seq = QueueOp::kNoSeq;
  for (QueueOp* q : queues) {
    const uint64_t seq = q->HeadSeq();
    if (seq < best_seq) {
      best_seq = seq;
      best = q;
    }
  }
  return best;
}

}  // namespace flexstream

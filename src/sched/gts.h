// Graph-threaded scheduling (GTS): one thread executes the complete query
// graph (Section 4.1.1). In the HMTS architecture GTS is the degenerate
// configuration with a single level-2 partition holding every queue and
// no level-3 scheduler (Section 4.2.2, "OTS and GTS are special cases of
// our architecture").

#ifndef FLEXSTREAM_SCHED_GTS_H_
#define FLEXSTREAM_SCHED_GTS_H_

#include <memory>
#include <vector>

#include "sched/partition.h"

namespace flexstream {

class GtsExecutor {
 public:
  GtsExecutor(std::vector<QueueOp*> queues, StrategyKind strategy,
              Partition::Options options = {});

  void Start() { partition_->Start(); }
  void RequestStop() { partition_->RequestStop(); }
  void Join() { partition_->Join(); }
  bool Done() const { return partition_->Done(); }

  Partition& partition() { return *partition_; }

  void SetRunStatus(RunStatus* run_status) {
    partition_->SetRunStatus(run_status);
  }
  std::vector<Partition*> Partitions() { return {partition_.get()}; }

 private:
  std::unique_ptr<Partition> partition_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_GTS_H_

#include "sched/partition.h"

#include "core/thread_scheduler.h"
#include "util/logging.h"

namespace flexstream {

Partition::Partition(std::string name, std::vector<QueueOp*> queues,
                     std::unique_ptr<SchedulingStrategy> strategy,
                     Options options)
    : name_(std::move(name)),
      queues_(std::move(queues)),
      strategy_(std::move(strategy)),
      options_(options) {
  CHECK(strategy_ != nullptr);
  for (QueueOp* q : queues_) {
    q->SetEnqueueListener([this] { NotifyWork(); });
  }
}

Partition::~Partition() {
  RequestStop();
  Join();
  // Detach listeners: the queues may outlive this partition (e.g. when the
  // engine re-partitions the same graph).
  for (QueueOp* q : queues_) q->SetEnqueueListener(nullptr);
}

void Partition::Start() {
  CHECK(!running()) << name_ << " already running";
  stop_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { RunLoop(); });
}

void Partition::Run() {
  CHECK(!running()) << name_ << " already running";
  stop_.store(false, std::memory_order_release);
  RunLoop();
}

void Partition::RequestStop() {
  stop_.store(true, std::memory_order_release);
  NotifyWork();
}

void Partition::Join() {
  if (worker_.joinable()) worker_.join();
}

bool Partition::Done() const {
  for (const QueueOp* q : queues_) {
    if (!q->Exhausted()) return false;
  }
  return true;
}

size_t Partition::QueuedElements() const {
  size_t total = 0;
  for (const QueueOp* q : queues_) total += q->Size();
  return total;
}

void Partition::NotifyWork() {
  // Called from queue enqueue listeners, which fire only on a queue's
  // empty -> non-empty transition (and on EOS) — so this condvar ping costs
  // O(drain batches) rather than O(tuples). See queue/queue_op.h.
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    work_available_ = true;
  }
  cv_.notify_one();
}

bool Partition::HasPendingWork() const {
  for (const QueueOp* q : queues_) {
    if (q->HeadSeq() != QueueOp::kNoSeq) return true;
  }
  return false;
}

void Partition::RunLoop() {
  running_.store(true, std::memory_order_release);
  strategy_->Initialize(queues_);
  while (!stop_.load(std::memory_order_acquire)) {
    if (Done()) break;
    if (!HasPendingWork()) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, options_.idle_poll, [&] {
        return work_available_ || stop_.load(std::memory_order_acquire);
      });
      work_available_ = false;
      continue;
    }
    // Work is available: run a quantum (under the level-3 scheduler's
    // control when attached).
    if (ts_ != nullptr) ts_->Acquire(this);
    const TimePoint quantum_end = Now() + options_.quantum;
    while (!stop_.load(std::memory_order_acquire)) {
      QueueOp* next = strategy_->Next(queues_);
      if (next == nullptr) break;
      drained_.fetch_add(
          static_cast<int64_t>(next->DrainBatch(options_.batch_size)),
          std::memory_order_relaxed);
      if (Now() >= quantum_end) break;
      if (ts_ != nullptr && ts_->ShouldYield(this)) break;
    }
    if (ts_ != nullptr) ts_->Release(this);
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace flexstream

#include "sched/partition.h"

#include "core/thread_scheduler.h"
#include "operators/latency_sink.h"
#include "util/logging.h"

namespace flexstream {

Partition::Partition(std::string name, std::vector<QueueOp*> queues,
                     std::unique_ptr<SchedulingStrategy> strategy,
                     Options options)
    : name_(std::move(name)),
      queues_(std::move(queues)),
      strategy_(std::move(strategy)),
      options_(options) {
  CHECK(strategy_ != nullptr);
  for (QueueOp* q : queues_) {
    q->SetEnqueueListener([this] { NotifyWork(); });
    // The owner token lets a kBlock producer running *inside* this
    // partition's drain (e.g. GTS: one context drains every queue) skip
    // waiting on a queue only it can empty.
    q->SetOwnerToken(this);
  }
}

Partition::~Partition() {
  RequestStop();
  Join();
  // Detach listeners: the queues may outlive this partition (e.g. when the
  // engine re-partitions the same graph).
  for (QueueOp* q : queues_) {
    q->SetEnqueueListener(nullptr);
    q->SetOwnerToken(nullptr);
  }
}

void Partition::Start() {
  CHECK(!running()) << name_ << " already running";
  stop_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { RunLoop(); });
}

void Partition::Run() {
  CHECK(!running()) << name_ << " already running";
  stop_.store(false, std::memory_order_release);
  RunLoop();
}

void Partition::RequestStop() {
  stop_.store(true, std::memory_order_release);
  NotifyWork();
}

void Partition::Join() {
  if (worker_.joinable()) worker_.join();
}

bool Partition::Done() const {
  for (const QueueOp* q : queues_) {
    if (!q->Exhausted()) return false;
  }
  return true;
}

size_t Partition::QueuedElements() const {
  size_t total = 0;
  for (const QueueOp* q : queues_) total += q->Size();
  return total;
}

bool Partition::IdleAtOpenInputs() const {
  bool any_open = false;
  for (const QueueOp* q : queues_) {
    if (q->Size() != 0) return false;  // has work — not idle
    if (!q->InputClosed()) any_open = true;
  }
  return any_open;
}

std::string DescribePartitions(const std::vector<Partition*>& partitions) {
  std::string out;
  for (const Partition* p : partitions) {
    out += "  partition '" + p->name() + "': drained=" +
           std::to_string(p->drained());
    if (const QueueOp* last = p->last_scheduled()) {
      out += " last_scheduled='" + last->name() + "'";
    }
    if (p->Done()) {
      out += " [done]";
    } else if (p->IdleAtOpenInputs()) {
      out += " [idle, inputs open]";
    } else if (!p->running()) {
      out += " [not running]";
    }
    out += " queues:";
    for (const QueueOp* q : p->queues()) {
      out += " " + q->name() + "=" + std::to_string(q->Size());
      if (q->dropped() > 0) {
        out += "(dropped " + std::to_string(q->dropped()) + ")";
      }
      if (q->block_waits() > 0) {
        out += "(waits " + std::to_string(q->block_waits());
        if (q->block_timeouts() > 0) {
          out += ", timeouts " + std::to_string(q->block_timeouts());
        }
        out += ")";
      }
      // The consumer's transient-failure retries: a stall paired with a
      // climbing retry count points at a flapping operator, not a
      // scheduling bug.
      if (q->fan_out() == 1) {
        const Operator* consumer = q->outputs()[0].target;
        if (consumer->fault_retries() > 0) {
          out += "(retries " + std::to_string(consumer->fault_retries()) + ")";
        }
        // End-to-end tail latency observed by a latency sink fed from this
        // queue: a no-progress partition with a climbing p999 is drowning,
        // one with a flat histogram is starved. Under GTS/OTS sinks are
        // DI-coupled to the operator that produces their input (no queue in
        // between), so when the consumer itself is not a latency sink, look
        // one DI edge further.
        const auto* lat = dynamic_cast<const LatencySink*>(consumer);
        if (lat == nullptr) {
          for (const auto& out_edge : consumer->outputs()) {
            lat = dynamic_cast<const LatencySink*>(out_edge.target);
            if (lat != nullptr) break;
          }
        }
        if (lat != nullptr) {
          const Histogram h = lat->SnapshotHistogram();
          if (h.count() > 0) out += "(lat " + h.PercentilesSummary() + ")";
        }
      }
      if (q->last_barrier_epoch() > 0) {
        out += "(epoch " + std::to_string(q->last_barrier_epoch()) + ")";
      }
      if (q->Exhausted()) out += "(eos)";
    }
    out += "\n";
  }
  return out;
}

void Partition::NotifyWork() {
  // Called from queue enqueue listeners, which fire only on a queue's
  // empty -> non-empty transition (and on EOS) — so this condvar ping costs
  // O(drain batches) rather than O(tuples). See queue/queue_op.h.
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    work_available_ = true;
  }
  cv_.notify_one();
}

bool Partition::HasPendingWork() const {
  for (const QueueOp* q : queues_) {
    if (q->HeadSeq() != QueueOp::kNoSeq) return true;
  }
  return false;
}

void Partition::ReleaseSlot() {
  if (ts_ != nullptr) ts_->Release(this);
}

void Partition::ReacquireSlot() {
  if (ts_ != nullptr) ts_->Acquire(this);
}

void Partition::RunLoop() {
  running_.store(true, std::memory_order_release);
  // Declare this thread as our draining context for the duration of the
  // loop: elements we push into our *own* queues (DI cycles, GTS) must not
  // kBlock-wait on them.
  QueueOp::SetCurrentDrainContext(this);
  if (ts_ != nullptr) QueueOp::SetCurrentSlotYielder(this);
  strategy_->Initialize(queues_);
  while (!stop_.load(std::memory_order_acquire)) {
    if (Done()) break;
    if (run_status_ != nullptr && run_status_->failed()) break;
    if (!HasPendingWork()) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, options_.idle_poll, [&] {
        return work_available_ || stop_.load(std::memory_order_acquire);
      });
      work_available_ = false;
      continue;
    }
    // Work is available: run a quantum (under the level-3 scheduler's
    // control when attached).
    if (ts_ != nullptr) ts_->Acquire(this);
    const TimePoint quantum_end = Now() + options_.quantum;
    while (!stop_.load(std::memory_order_acquire)) {
      QueueOp* next = strategy_->Next(queues_);
      if (next == nullptr) break;
      last_scheduled_.store(next, std::memory_order_relaxed);
      drained_.fetch_add(
          static_cast<int64_t>(next->DrainBatch(options_.batch_size)),
          std::memory_order_relaxed);
      if (run_status_ != nullptr && run_status_->failed()) break;
      if (Now() >= quantum_end) break;
      if (ts_ != nullptr && ts_->ShouldYield(this)) break;
    }
    if (ts_ != nullptr) ts_->Release(this);
  }
  QueueOp::SetCurrentSlotYielder(nullptr);
  QueueOp::SetCurrentDrainContext(nullptr);
  running_.store(false, std::memory_order_release);
}

}  // namespace flexstream

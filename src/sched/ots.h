// Operator-threaded scheduling (OTS): each operator (i.e. each decoupling
// queue and the operators it feeds) runs in its own thread (Section
// 4.1.2). In HMTS terms: one single-queue level-2 partition per queue,
// scheduled by the operating system — "OTS does not necessarily require a
// TS as threads are scheduled by the operating system and every thread
// has only one operator to execute" (Section 4.2.2).

#ifndef FLEXSTREAM_SCHED_OTS_H_
#define FLEXSTREAM_SCHED_OTS_H_

#include <memory>
#include <vector>

#include "sched/partition.h"

namespace flexstream {

class OtsExecutor {
 public:
  explicit OtsExecutor(const std::vector<QueueOp*>& queues,
                       Partition::Options options = {});

  void Start();
  void RequestStop();
  void Join();
  bool Done() const;

  const std::vector<std::unique_ptr<Partition>>& partitions() const {
    return partitions_;
  }

  void SetRunStatus(RunStatus* run_status) {
    for (auto& p : partitions_) p->SetRunStatus(run_status);
  }
  std::vector<Partition*> Partitions() {
    std::vector<Partition*> out;
    out.reserve(partitions_.size());
    for (auto& p : partitions_) out.push_back(p.get());
    return out;
  }

 private:
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_OTS_H_

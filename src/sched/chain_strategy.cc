#include "sched/chain_strategy.h"

#include <algorithm>
#include <cmath>

#include "operators/operator.h"
#include "util/logging.h"

namespace flexstream {
namespace {

// Costs of 0 (unprofiled operators) would make progress-chart abscissas
// coincide; clamp to a small positive epsilon.
constexpr double kMinCostMicros = 1e-3;

}  // namespace

std::vector<EnvelopeSegment> ComputeLowerEnvelope(
    const std::vector<double>& costs, const std::vector<double>& sels) {
  CHECK_EQ(costs.size(), sels.size());
  const size_t k = costs.size();
  std::vector<double> t(k + 1, 0.0);
  std::vector<double> q(k + 1, 1.0);
  for (size_t i = 1; i <= k; ++i) {
    t[i] = t[i - 1] + std::max(costs[i - 1], kMinCostMicros);
    q[i] = q[i - 1] * std::max(sels[i - 1], 0.0);
  }
  std::vector<EnvelopeSegment> segments;
  size_t cur = 0;
  while (cur < k) {
    size_t best_j = cur + 1;
    double best_slope = (q[cur] - q[cur + 1]) / (t[cur + 1] - t[cur]);
    for (size_t j = cur + 2; j <= k; ++j) {
      const double slope = (q[cur] - q[j]) / (t[j] - t[cur]);
      // Ties favor the longer segment, matching the Chain paper's
      // definition of the lower envelope.
      if (slope >= best_slope) {
        best_slope = slope;
        best_j = j;
      }
    }
    segments.push_back({cur, best_j, best_slope});
    cur = best_j;
  }
  return segments;
}

std::vector<Node*> DownstreamChain(Node* start) {
  std::vector<Node*> chain;
  Node* cur = start;
  while (true) {
    chain.push_back(cur);
    if (cur->fan_out() != 1) break;
    Node* next = static_cast<Node*>(cur->outputs()[0].target);
    // Queues are transparent for progress charts: the Chain strategy's
    // envelope spans the whole operator path even when every operator is
    // decoupled (which is exactly the GTS configuration it was designed
    // for). Skip through linear queues.
    while (next != nullptr && next->is_queue() && next->fan_in() == 1 &&
           next->fan_out() == 1) {
      next = static_cast<Node*>(next->outputs()[0].target);
    }
    if (next == nullptr || next->kind() != Node::Kind::kOperator) break;
    if (next->fan_in() != 1) break;
    cur = next;
  }
  return chain;
}

ChainStrategy::ChainStrategy(int reprofile_interval)
    : reprofile_interval_(reprofile_interval) {
  CHECK_GT(reprofile_interval, 0);
}

void ChainStrategy::Initialize(const std::vector<QueueOp*>& queues) {
  Reprofile(queues);
  calls_until_reprofile_ = reprofile_interval_;
}

void ChainStrategy::Reprofile(const std::vector<QueueOp*>& queues) {
  priority_.clear();
  for (QueueOp* queue : queues) {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& edge : queue->outputs()) {
      Node* consumer = static_cast<Node*>(edge.target);
      if (consumer->kind() != Node::Kind::kOperator) {
        // Queue feeding a sink or another queue directly: treat as a
        // free segment (slope 0 with negligible cost => very steep).
        best = std::max(best, std::numeric_limits<double>::max());
        continue;
      }
      const std::vector<Node*> chain = DownstreamChain(consumer);
      std::vector<double> costs;
      std::vector<double> sels;
      costs.reserve(chain.size());
      sels.reserve(chain.size());
      for (const Node* n : chain) {
        costs.push_back(n->CostMicros());
        sels.push_back(n->Selectivity());
      }
      const auto segments = ComputeLowerEnvelope(costs, sels);
      if (!segments.empty()) best = std::max(best, segments[0].slope);
    }
    priority_[queue] = best;
  }
}

QueueOp* ChainStrategy::Next(const std::vector<QueueOp*>& queues) {
  if (--calls_until_reprofile_ <= 0) {
    Reprofile(queues);
    calls_until_reprofile_ = reprofile_interval_;
  }
  QueueOp* best = nullptr;
  double best_priority = -std::numeric_limits<double>::infinity();
  uint64_t best_seq = QueueOp::kNoSeq;
  for (QueueOp* q : queues) {
    const uint64_t seq = q->HeadSeq();
    if (seq == QueueOp::kNoSeq) continue;
    const auto it = priority_.find(q);
    const double priority =
        it == priority_.end() ? 0.0 : it->second;
    if (best == nullptr || priority > best_priority ||
        (priority == best_priority && seq < best_seq)) {
      best = q;
      best_priority = priority;
      best_seq = seq;
    }
  }
  return best;
}

double ChainStrategy::PriorityOf(const QueueOp* queue) const {
  const auto it = priority_.find(queue);
  return it == priority_.end() ? 0.0 : it->second;
}

}  // namespace flexstream

#include "sched/extra_strategies.h"

#include <limits>

namespace flexstream {

void PriorityStrategy::SetPriority(const QueueOp* queue, double priority) {
  priority_[queue] = priority;
}

double PriorityStrategy::PriorityOf(const QueueOp* queue) const {
  const auto it = priority_.find(queue);
  return it == priority_.end() ? 0.0 : it->second;
}

QueueOp* PriorityStrategy::Next(const std::vector<QueueOp*>& queues) {
  QueueOp* best = nullptr;
  double best_priority = -std::numeric_limits<double>::infinity();
  uint64_t best_seq = QueueOp::kNoSeq;
  for (QueueOp* q : queues) {
    const uint64_t seq = q->HeadSeq();
    if (seq == QueueOp::kNoSeq) continue;
    const double priority = PriorityOf(q);
    if (best == nullptr || priority > best_priority ||
        (priority == best_priority && seq < best_seq)) {
      best = q;
      best_priority = priority;
      best_seq = seq;
    }
  }
  return best;
}

QueueOp* RandomStrategy::Next(const std::vector<QueueOp*>& queues) {
  // Reservoir-sample one non-empty queue.
  QueueOp* chosen = nullptr;
  uint64_t seen = 0;
  for (QueueOp* q : queues) {
    if (q->HeadSeq() == QueueOp::kNoSeq) continue;
    ++seen;
    if (rng_.NextU64(seen) == 0) chosen = q;
  }
  return chosen;
}

}  // namespace flexstream

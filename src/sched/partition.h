// The level-2 scheduling unit of the HMTS architecture (Section 4.2.2).
//
// A Partition owns a set of decoupling queues — the entry points of one
// connected subgraph of the query graph — and executes that subgraph
// "like a graph-threaded scheduler": one thread repeatedly asks the
// partition's strategy for the next queue and drains a batch from it;
// every drained element then flows through the partition's operators with
// direct interoperability until it reaches a sink or another partition's
// queue.
//
// GTS is the degenerate Partition holding *all* queues of the graph; OTS
// is one Partition per queue. HMTS runs several partitions concurrently
// under a level-3 ThreadScheduler (core/thread_scheduler.h), which the
// partition cooperates with at batch boundaries (Acquire / ShouldYield /
// Release).

#ifndef FLEXSTREAM_SCHED_PARTITION_H_
#define FLEXSTREAM_SCHED_PARTITION_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "queue/queue_op.h"
#include "sched/strategy.h"
#include "util/clock.h"

namespace flexstream {

class ThreadScheduler;

class Partition : private QueueOp::SlotYielder {
 public:
  struct Options {
    /// Max elements drained per strategy decision. This is the
    /// *scheduling* granularity (how often the level-2 strategy re-picks a
    /// queue), orthogonal to the *delivery* granularity of
    /// EngineOptions::emit_batch_size: with batch delivery enabled, one
    /// drain of `batch_size` elements leaves the queue as
    /// ceil(batch_size / emit_batch_size)-ish downstream ReceiveBatch
    /// calls (runs are capped by what is actually queued). Keeping
    /// batch_size >= emit_batch_size preserves full delivery batches; see
    /// bench/ablation_batch_quantum.cc for the interplay.
    size_t batch_size = 64;
    /// Max continuous run before offering to yield to the level-3
    /// scheduler (and re-checking stop/done).
    Duration quantum = std::chrono::milliseconds(1);
    /// Failsafe re-check period while waiting for work. Wakeups normally
    /// come from the queues' enqueue listeners, so this can be long; a
    /// short period makes large OTS configurations (hundreds of idle
    /// partition threads) burn the CPU in poll wakeups.
    Duration idle_poll = std::chrono::milliseconds(100);
  };

  Partition(std::string name, std::vector<QueueOp*> queues,
            std::unique_ptr<SchedulingStrategy> strategy, Options options);
  Partition(std::string name, std::vector<QueueOp*> queues,
            std::unique_ptr<SchedulingStrategy> strategy)
      : Partition(std::move(name), std::move(queues), std::move(strategy),
                  Options()) {}

  /// Stops and joins the worker if still running.
  ~Partition();

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<QueueOp*>& queues() const { return queues_; }
  SchedulingStrategy* strategy() { return strategy_.get(); }

  /// Attaches the level-3 scheduler. Must be called before Start/Run.
  void set_thread_scheduler(ThreadScheduler* ts) { ts_ = ts; }

  /// Attaches the run's first-failure collector. The run loop polls it at
  /// batch boundaries and exits early once any operator has failed, so a
  /// poisoned graph winds down instead of spinning on doomed work. Set
  /// while quiescent (before Start/Run).
  void SetRunStatus(RunStatus* run_status) { run_status_ = run_status; }

  /// Spawns the worker thread executing the run loop.
  void Start();

  /// Executes the run loop in the calling thread (blocks until the
  /// partition is done or stopped). Used by tests and by GTS drivers that
  /// dedicate their own thread.
  void Run();

  /// Requests the run loop to exit at the next batch boundary.
  void RequestStop();

  /// Joins the worker thread (no-op if Run was used or already joined).
  void Join();

  /// True when every queue of the partition has forwarded EOS and is
  /// empty — the partition will never have work again.
  bool Done() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Total data elements drained so far.
  int64_t drained() const { return drained_.load(std::memory_order_relaxed); }

  /// Worker wakeups requested so far (queue listeners + stop requests).
  /// With coalesced enqueue notifications this grows O(drain batches), not
  /// O(tuples) — see queue/queue_op.h.
  int64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

  /// Sum of current queue sizes (the partition's queued memory).
  size_t QueuedElements() const;

  /// The queue the strategy scheduled most recently (nullptr before the
  /// first pick). Watchdog diagnostics only — the pointer is stable (queues
  /// outlive the run) but the *value* is racy by nature.
  QueueOp* last_scheduled() const {
    return last_scheduled_.load(std::memory_order_relaxed);
  }

  /// True when the partition has no work *now* and its inputs are still
  /// open — i.e. it is idling at a live stream, not stalled. The watchdog
  /// uses this to separate "no progress because blocked" from "no progress
  /// because nothing arrived".
  bool IdleAtOpenInputs() const;

 private:
  void NotifyWork();
  bool HasPendingWork() const;
  void RunLoop();

  // QueueOp::SlotYielder: a kBlock park inside our drain hands the level-3
  // execution slot to other partitions — on a machine with few slots the
  // consumer that frees the space may be waiting for exactly ours.
  void ReleaseSlot() override;
  void ReacquireSlot() override;

  const std::string name_;
  std::vector<QueueOp*> queues_;
  std::unique_ptr<SchedulingStrategy> strategy_;
  Options options_;
  ThreadScheduler* ts_ = nullptr;

  RunStatus* run_status_ = nullptr;

  std::thread worker_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> drained_{0};
  std::atomic<int64_t> wakeups_{0};
  std::atomic<QueueOp*> last_scheduled_{nullptr};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool work_available_ = false;
};

/// One line per partition: name, per-queue depths, drained count, the
/// last-scheduled queue, and whether the partition is done / idle / live.
/// Shared by the ThreadScheduler watchdog and the engine's wait-timeout
/// diagnostics.
std::string DescribePartitions(const std::vector<Partition*>& partitions);

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_PARTITION_H_

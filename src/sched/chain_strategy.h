// The Chain scheduling strategy of Babcock et al. (SIGMOD 2003), used by
// the paper as the strongest GTS baseline (Sections 4.2.2, 6.4, 6.6) and,
// in its VO-construction form, as a Figure 11 competitor.
//
// Chain assigns each operator the slope of its segment on the *lower
// envelope* of the operator chain's progress chart. The progress chart of
// a chain o_1..o_k plots cumulative processing time against the expected
// fraction of tuples remaining: point_i = (sum_{j<=i} c_j, prod_{j<=i} s_j).
// The lower envelope greedily groups operators into segments of steepest
// average descent; at runtime the scheduler drains the non-empty queue
// whose consuming operator has the steepest segment slope (FIFO
// tie-break).
//
// Because c(v) and selectivity are runtime statistics, priorities are
// recomputed periodically — reproducing the "initial delay for profiling
// and computing the lower envelope" the paper observes in Section 6.6.

#ifndef FLEXSTREAM_SCHED_CHAIN_STRATEGY_H_
#define FLEXSTREAM_SCHED_CHAIN_STRATEGY_H_

#include <unordered_map>
#include <vector>

#include "graph/node.h"
#include "sched/strategy.h"

namespace flexstream {

/// One lower-envelope segment covering chain operators [begin, end).
/// `slope` is the segment's average descent rate: (q_begin - q_end) /
/// (t_end - t_begin); larger = steeper = higher priority.
struct EnvelopeSegment {
  size_t begin;
  size_t end;
  double slope;
};

/// Computes the lower envelope of a progress chart given per-operator
/// costs (microseconds, > 0) and selectivities (>= 0). Returns segments in
/// chain order; their slopes are non-increasing (a property of lower
/// envelopes that tests verify).
std::vector<EnvelopeSegment> ComputeLowerEnvelope(
    const std::vector<double>& costs, const std::vector<double>& sels);

/// The maximal DI chain downstream of `start`: follows single-fan-out /
/// single-fan-in operator edges starting at `start` (inclusive) and stops
/// at queues, sinks, branches, or merges. Used to build progress charts
/// for a queue's consuming operators.
std::vector<Node*> DownstreamChain(Node* start);

class ChainStrategy : public SchedulingStrategy {
 public:
  /// Recomputes priorities every `reprofile_interval` Next() calls.
  explicit ChainStrategy(int reprofile_interval = 512);

  const char* name() const override { return "chain"; }
  void Initialize(const std::vector<QueueOp*>& queues) override;
  QueueOp* Next(const std::vector<QueueOp*>& queues) override;

  /// Current priority of a queue (for tests/inspection); 0 if unknown.
  double PriorityOf(const QueueOp* queue) const;

 private:
  void Reprofile(const std::vector<QueueOp*>& queues);

  int reprofile_interval_;
  int calls_until_reprofile_ = 0;
  std::unordered_map<const QueueOp*, double> priority_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_CHAIN_STRATEGY_H_

// Scheduling strategies for level-2 partitions.
//
// A partition executes "like a graph-threaded scheduler" (Section 4.2.2):
// its thread repeatedly asks the strategy which of the partition's queues
// to drain next. "It is possible to choose arbitrary strategies on the
// second level provided that they comply with the first level" — the
// strategy only orders queue invocations; it never changes semantics.

#ifndef FLEXSTREAM_SCHED_STRATEGY_H_
#define FLEXSTREAM_SCHED_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "queue/queue_op.h"

namespace flexstream {

class SchedulingStrategy {
 public:
  virtual ~SchedulingStrategy();

  virtual const char* name() const = 0;

  /// Called once when the owning partition is configured. Strategies that
  /// precompute per-queue priorities (Chain, Segment) analyze the graph
  /// downstream of each queue here.
  virtual void Initialize(const std::vector<QueueOp*>& queues);

  /// Returns the next queue to drain — one with pending items — or nullptr
  /// when no queue in the partition has work.
  virtual QueueOp* Next(const std::vector<QueueOp*>& queues) = 0;
};

/// Strategy factory selector used by the engine options.
enum class StrategyKind { kFifo, kRoundRobin, kChain, kSegment };

const char* StrategyKindToString(StrategyKind kind);

/// Inverse of StrategyKindToString; returns false on an unknown name.
/// Used by replay files of the differential harness.
bool StrategyKindFromString(const std::string& name, StrategyKind* kind);

std::unique_ptr<SchedulingStrategy> MakeStrategy(StrategyKind kind);

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_STRATEGY_H_

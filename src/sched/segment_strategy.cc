#include "sched/segment_strategy.h"

#include <algorithm>
#include <limits>

#include "operators/operator.h"
#include "util/logging.h"

namespace flexstream {

SegmentStrategy::SegmentStrategy(int reprofile_interval)
    : reprofile_interval_(reprofile_interval) {
  CHECK_GT(reprofile_interval, 0);
}

void SegmentStrategy::Initialize(const std::vector<QueueOp*>& queues) {
  Reprofile(queues);
  calls_until_reprofile_ = reprofile_interval_;
}

void SegmentStrategy::Reprofile(const std::vector<QueueOp*>& queues) {
  priority_.clear();
  for (QueueOp* queue : queues) {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& edge : queue->outputs()) {
      const Node* consumer = static_cast<const Node*>(edge.target);
      if (consumer->kind() != Node::Kind::kOperator) {
        best = std::max(best, std::numeric_limits<double>::max());
        continue;
      }
      const double cost = std::max(consumer->CostMicros(), 1e-3);
      const double release = 1.0 - consumer->Selectivity();
      best = std::max(best, release / cost);
    }
    priority_[queue] = best;
  }
}

QueueOp* SegmentStrategy::Next(const std::vector<QueueOp*>& queues) {
  if (--calls_until_reprofile_ <= 0) {
    Reprofile(queues);
    calls_until_reprofile_ = reprofile_interval_;
  }
  QueueOp* best = nullptr;
  double best_priority = -std::numeric_limits<double>::infinity();
  uint64_t best_seq = QueueOp::kNoSeq;
  for (QueueOp* q : queues) {
    const uint64_t seq = q->HeadSeq();
    if (seq == QueueOp::kNoSeq) continue;
    const auto it = priority_.find(q);
    const double priority = it == priority_.end() ? 0.0 : it->second;
    if (best == nullptr || priority > best_priority ||
        (priority == best_priority && seq < best_seq)) {
      best = q;
      best_priority = priority;
      best_seq = seq;
    }
  }
  return best;
}

}  // namespace flexstream

// The simplified Segment scheduling strategy of Jiang & Chakravarthy
// (BNCOD 2004), the paper's third strategy reference ([10]).
//
// The simplified segment strategy prioritizes operator segments by their
// *memory release capacity*: (1 - selectivity) / cost — how many queued
// bytes a unit of CPU invested in this operator frees. Unlike Chain it
// scores each operator (segment head) locally instead of over the lower
// envelope, which is exactly the weakness the paper's Figure 11
// comparison exposes for VO construction.

#ifndef FLEXSTREAM_SCHED_SEGMENT_STRATEGY_H_
#define FLEXSTREAM_SCHED_SEGMENT_STRATEGY_H_

#include <unordered_map>

#include "sched/strategy.h"

namespace flexstream {

class SegmentStrategy : public SchedulingStrategy {
 public:
  explicit SegmentStrategy(int reprofile_interval = 512);

  const char* name() const override { return "segment"; }
  void Initialize(const std::vector<QueueOp*>& queues) override;
  QueueOp* Next(const std::vector<QueueOp*>& queues) override;

 private:
  void Reprofile(const std::vector<QueueOp*>& queues);

  int reprofile_interval_;
  int calls_until_reprofile_ = 0;
  std::unordered_map<const QueueOp*, double> priority_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_SCHED_SEGMENT_STRATEGY_H_

#include "sched/round_robin_strategy.h"

namespace flexstream {

QueueOp* RoundRobinStrategy::Next(const std::vector<QueueOp*>& queues) {
  if (queues.empty()) return nullptr;
  const size_t n = queues.size();
  for (size_t i = 0; i < n; ++i) {
    QueueOp* q = queues[(cursor_ + i) % n];
    if (q->HeadSeq() != QueueOp::kNoSeq) {
      cursor_ = (cursor_ + i + 1) % n;
      return q;
    }
  }
  return nullptr;
}

}  // namespace flexstream

#include "sched/ots.h"

#include <map>

#include "graph/node.h"
#include "sched/fifo_strategy.h"
#include "util/logging.h"

namespace flexstream {

OtsExecutor::OtsExecutor(const std::vector<QueueOp*>& queues,
                         Partition::Options options) {
  // One thread per *operator*: "an operator thread obtains elements from
  // its input queues" (Section 4.1.2) — a multi-input operator's queues
  // share its thread, which also keeps every operator single-threaded.
  std::map<Node::Id, std::vector<QueueOp*>> by_consumer;
  std::map<Node::Id, std::string> names;
  for (QueueOp* queue : queues) {
    CHECK(queue->fan_out() >= 1) << "dangling queue " << queue->DebugString();
    const Node* consumer = static_cast<const Node*>(queue->outputs()[0].target);
    by_consumer[consumer->id()].push_back(queue);
    names[consumer->id()] = consumer->name();
  }
  partitions_.reserve(by_consumer.size());
  for (auto& [id, consumer_queues] : by_consumer) {
    partitions_.push_back(std::make_unique<Partition>(
        "ots:" + names[id], std::move(consumer_queues),
        std::make_unique<FifoStrategy>(), options));
  }
}

void OtsExecutor::Start() {
  for (auto& p : partitions_) p->Start();
}

void OtsExecutor::RequestStop() {
  for (auto& p : partitions_) p->RequestStop();
}

void OtsExecutor::Join() {
  for (auto& p : partitions_) p->Join();
}

bool OtsExecutor::Done() const {
  for (const auto& p : partitions_) {
    if (!p->Done()) return false;
  }
  return true;
}

}  // namespace flexstream

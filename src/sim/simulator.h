// A deterministic virtual-time simulator of the scheduling architectures.
//
// The real executors (sched/, core/) run wall-clock threads, so on this
// repository's single-vCPU reference host they cannot exhibit the paper's
// dual-core effects, and their timings carry OS noise. The simulator
// complements them: it replays a query graph's *cost model* — per-element
// costs c(v), selectivities, arrival schedules — under a scheduling
// configuration (partitions, strategy, number of CPUs) in discrete
// virtual time. Everything is deterministic and instantaneous, so the
// paper's experiments run at full scale (2-second operators, 260-second
// horizons, two CPUs) in milliseconds of real time.
//
// Model:
//  * Elements are indistinguishable units; selectivities are applied as
//    deterministic fractional credits (an operator with selectivity s
//    forwards floor(accumulated s * inputs) elements).
//  * A partition executes like a level-2 partition: its strategy picks an
//    entry queue, one element is dequeued and traverses the partition's
//    operators depth-first (DI); the partition stays busy for the sum of
//    the traversed operators' costs. Elements crossing into another
//    partition are appended to that partition's entry queue at the
//    current virtual time.
//  * At most `cpus` partitions run concurrently; when a slot frees, the
//    waiting runnable partition that has waited longest is granted (the
//    aging-based grant of the real ThreadScheduler with equal base
//    priorities).
//
// The simulator is a planning/evaluation tool: it predicts memory
// profiles, completion times and result timelines; it does not process
// data.

#ifndef FLEXSTREAM_SIM_SIMULATOR_H_
#define FLEXSTREAM_SIM_SIMULATOR_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/query_graph.h"
#include "sched/strategy.h"
#include "util/status.h"

namespace flexstream {

/// One leg of a source's arrival schedule (virtual seconds).
struct SimPhase {
  int64_t count = 0;
  /// Elements per virtual second; <= 0 means "all at one instant".
  double rate_per_sec = 0.0;
};

struct SimOptions {
  /// Virtual CPUs (the paper's host had 2).
  int cpus = 1;
  /// Queue-selection policy inside each partition.
  StrategyKind strategy = StrategyKind::kFifo;
  /// Sampling period for the memory/result time series (virtual seconds).
  double sample_interval = 1.0;
  /// A granted thread runs until it has consumed this much virtual time
  /// (or runs out of work) before the next grant decision — the level-3
  /// quantum. A single element may exceed it (elements are not
  /// preemptible, Section 4.1.1).
  double quantum = 0.002;
  /// Overhead model (defaults 0 = pure cost model). `dequeue_overhead_us`
  /// is charged once per element drained from a queue (the enqueue +
  /// dequeue + strategy bookkeeping a real queue hop pays — ~0.07 us
  /// measured by bench/micro_benchmarks); `grant_overhead_us` once per
  /// grant (thread wake-up / context switch). With these set, the
  /// simulator predicts the *overhead*-dominated experiments (Figures
  /// 7/8) as well as the cost-dominated ones.
  double dequeue_overhead_us = 0.0;
  double grant_overhead_us = 0.0;
};

struct SimSample {
  double time = 0.0;
  int64_t queued = 0;
  int64_t results = 0;
};

struct SimResult {
  double completion_time = 0.0;
  int64_t results = 0;
  int64_t max_queued = 0;
  std::vector<SimSample> samples;
  /// Virtual busy time per partition, in partition order.
  std::vector<double> partition_busy;
};

/// A virtual operator: a queue-free connected group of operators executed
/// with DI. Queues sit on every edge crossing VO boundaries.
using SimVo = std::vector<const Node*>;

/// A thread (level-2 partition): the VOs whose entry queues it drains.
using SimThread = std::vector<SimVo>;

/// Simulates `graph` (queue-free; costs/selectivities from node metadata,
/// costs in *microseconds* as everywhere else) under an explicit two-level
/// configuration that mirrors the HMTS architecture: `threads` lists the
/// level-2 threads, each holding one or more VOs (level-1 units). Sources
/// are excluded — they are arrival schedules, not scheduled work; every
/// other connected node must appear in exactly one VO. `schedules` maps
/// each source to its arrival phases.
///
/// The classic architectures are configurations:
///   GTS  = one thread, one single-operator VO per operator;
///   DI   = one thread, one VO holding everything;
///   OTS  = one thread per operator;
///   HMTS = one thread per placement partition (VO = partition).
Result<SimResult> Simulate(
    const QueryGraph& graph,
    const std::unordered_map<const Node*, std::vector<SimPhase>>& schedules,
    const std::vector<SimThread>& threads, const SimOptions& options);

/// Configuration helpers over the non-source connected nodes of `graph`.
SimThread MakeVoPerOperator(const QueryGraph& graph);
std::vector<SimThread> MakeGtsConfig(const QueryGraph& graph);
std::vector<SimThread> MakeOtsConfig(const QueryGraph& graph);
std::vector<SimThread> MakeDirectConfig(const QueryGraph& graph);

}  // namespace flexstream

#endif  // FLEXSTREAM_SIM_SIMULATOR_H_

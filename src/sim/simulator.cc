#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "operators/operator.h"
#include "sched/chain_strategy.h"
#include "util/logging.h"

namespace flexstream {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct SimQueue {
  const Node* consumer = nullptr;
  int vo = -1;
  int thread = -1;
  double priority = 0.0;  // strategy-dependent, static
  std::deque<double> arrivals;
};

struct SimThreadState {
  std::vector<int> queue_ids;
  bool running = false;
  double busy_until = 0.0;
  double runnable_since = kInfinity;
  double busy_total = 0.0;
  size_t rr_cursor = 0;
};

struct SourceStream {
  const Node* source = nullptr;
  std::vector<double> arrival_times;  // sorted
  size_t next = 0;
};

class Simulation {
 public:
  Simulation(const QueryGraph& graph, const SimOptions& options)
      : graph_(graph), options_(options) {}

  Status Build(
      const std::unordered_map<const Node*, std::vector<SimPhase>>&
          schedules,
      const std::vector<SimThread>& threads);
  SimResult Run();

 private:
  int VoOf(const Node* node) const {
    const auto it = vo_of_.find(node);
    return it == vo_of_.end() ? -1 : it->second;
  }

  /// Static strategy priority for a queue entering `consumer`.
  double QueuePriority(const Node* consumer) const;

  /// Picks the next queue of `thread` per the configured strategy;
  /// -1 when all its queues are empty.
  int NextQueue(SimThreadState* thread);

  /// Deterministic fractional-selectivity emission.
  int64_t CreditEmit(const Node* node, double amount);

  /// Runs `thread` for up to one quantum of virtual work (at least one
  /// element; elements are not preemptible). Returns the busy time
  /// consumed; emissions are pushed in flight stamped with each element's
  /// finish time.
  double ProcessQuantum(SimThreadState* thread);
  void Traverse(const Node* node, int64_t count, int home_vo, double* busy);

  void EnqueueAt(int queue_id, double time, int64_t count);
  void MarkRunnable(int thread, double now);
  void RecordSamplesUpTo(double time);

  const QueryGraph& graph_;
  SimOptions options_;

  std::unordered_map<const Node*, int> vo_of_;
  std::vector<int> vo_thread_;
  std::vector<SimThreadState> threads_;
  std::vector<SimQueue> queues_;
  // (producer, consumer) -> queue id.
  std::unordered_map<const Node*, std::unordered_map<const Node*, int>>
      queue_of_edge_;
  std::vector<SourceStream> sources_;
  std::unordered_map<const Node*, double> credit_;

  // Cross-VO emissions of the element currently being traversed:
  // (queue id, count); stamped with the element's finish time.
  std::vector<std::pair<int, int64_t>> pending_emissions_;

  // Emissions in flight: produced but not yet delivered (an element's
  // outputs become visible when the element finishes processing).
  struct Delivery {
    double time;
    int64_t seq;
    int queue_id;
    int64_t count;
    bool operator>(const Delivery& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>>
      in_flight_;
  int64_t delivery_seq_ = 0;

  // Run state.
  double now_ = 0.0;
  int64_t total_queued_ = 0;
  int64_t max_queued_ = 0;
  double results_ = 0.0;
  double next_sample_ = 0.0;
  std::vector<SimSample> samples_;
};

Status Simulation::Build(
    const std::unordered_map<const Node*, std::vector<SimPhase>>& schedules,
    const std::vector<SimThread>& threads) {
  if (options_.cpus < 1) {
    return Status::InvalidArgument("need at least one CPU");
  }
  threads_.resize(threads.size());
  for (size_t t = 0; t < threads.size(); ++t) {
    for (const SimVo& vo : threads[t]) {
      const int vo_id = static_cast<int>(vo_thread_.size());
      vo_thread_.push_back(static_cast<int>(t));
      for (const Node* node : vo) {
        if (node->is_source()) {
          return Status::InvalidArgument(
              "sources are schedules, not VO members: " +
              node->DebugString());
        }
        if (node->is_queue()) {
          return Status::InvalidArgument(
              "the simulator models queues implicitly: " +
              node->DebugString());
        }
        if (!vo_of_.emplace(node, vo_id).second) {
          return Status::InvalidArgument("node in two VOs: " +
                                         node->DebugString());
        }
      }
    }
  }
  for (const Node* node : graph_.nodes()) {
    if (node->is_source()) continue;
    if (node->fan_in() == 0 && node->fan_out() == 0) continue;
    if (VoOf(node) < 0) {
      return Status::InvalidArgument("node not in any VO: " +
                                     node->DebugString());
    }
  }
  // Queues: one per VO-crossing edge (source edges always cross).
  for (const Node* node : graph_.nodes()) {
    const int from_vo = node->is_source() ? -1 : VoOf(node);
    for (const auto& edge : node->outputs()) {
      const Node* consumer = static_cast<const Node*>(edge.target);
      const int to_vo = VoOf(consumer);
      if (!node->is_source() && from_vo == to_vo) continue;
      SimQueue queue;
      queue.consumer = consumer;
      queue.vo = to_vo;
      queue.thread = vo_thread_[static_cast<size_t>(to_vo)];
      queue.priority = QueuePriority(consumer);
      const int id = static_cast<int>(queues_.size());
      queue_of_edge_[node][consumer] = id;
      threads_[static_cast<size_t>(queue.thread)].queue_ids.push_back(id);
      queues_.push_back(std::move(queue));
    }
  }
  // Arrival schedules.
  for (const auto& [source, phases] : schedules) {
    if (!source->is_source()) {
      return Status::InvalidArgument("schedule on non-source: " +
                                     source->DebugString());
    }
    SourceStream stream;
    stream.source = source;
    double t = 0.0;
    for (const SimPhase& phase : phases) {
      for (int64_t i = 0; i < phase.count; ++i) {
        if (phase.rate_per_sec > 0.0) t += 1.0 / phase.rate_per_sec;
        stream.arrival_times.push_back(t);
      }
    }
    sources_.push_back(std::move(stream));
  }
  std::sort(sources_.begin(), sources_.end(),
            [](const SourceStream& a, const SourceStream& b) {
              return a.source->id() < b.source->id();
            });
  return Status::Ok();
}

double Simulation::QueuePriority(const Node* consumer) const {
  switch (options_.strategy) {
    case StrategyKind::kFifo:
    case StrategyKind::kRoundRobin:
      return 0.0;
    case StrategyKind::kSegment: {
      const double cost = std::max(consumer->CostMicros(), 1e-3);
      return (1.0 - consumer->Selectivity()) / cost;
    }
    case StrategyKind::kChain: {
      // Progress chart over the consumer's downstream operator chain
      // (queues are transparent; stops at branches/merges/sinks, as in
      // the runtime Chain strategy).
      std::vector<double> costs;
      std::vector<double> sels;
      const Node* cur = consumer;
      while (true) {
        costs.push_back(cur->CostMicros());
        sels.push_back(cur->Selectivity());
        if (cur->fan_out() != 1) break;
        const Node* next =
            static_cast<const Node*>(cur->outputs()[0].target);
        if (next->fan_in() != 1 || next->is_sink()) break;
        cur = next;
      }
      const auto segments = ComputeLowerEnvelope(costs, sels);
      return segments.empty() ? 0.0 : segments[0].slope;
    }
  }
  return 0.0;
}

int Simulation::NextQueue(SimThreadState* thread) {
  if (options_.strategy == StrategyKind::kRoundRobin) {
    const size_t n = thread->queue_ids.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = (thread->rr_cursor + i) % n;
      const int id = thread->queue_ids[idx];
      if (!queues_[static_cast<size_t>(id)].arrivals.empty()) {
        thread->rr_cursor = (idx + 1) % n;
        return id;
      }
    }
    return -1;
  }
  int best = -1;
  double best_priority = -kInfinity;
  double best_head = kInfinity;
  for (int id : thread->queue_ids) {
    const SimQueue& queue = queues_[static_cast<size_t>(id)];
    if (queue.arrivals.empty()) continue;
    const double head = queue.arrivals.front();
    if (best < 0 || queue.priority > best_priority ||
        (queue.priority == best_priority && head < best_head)) {
      best = id;
      best_priority = queue.priority;
      best_head = head;
    }
  }
  return best;
}

int64_t Simulation::CreditEmit(const Node* node, double amount) {
  double& credit = credit_[node];
  credit += amount;
  const double out = std::floor(credit + 1e-9);
  credit -= out;
  return static_cast<int64_t>(out);
}

void Simulation::Traverse(const Node* node, int64_t count, int home_vo,
                          double* busy) {
  if (count <= 0) return;
  *busy += node->CostMicros() * 1e-6 * static_cast<double>(count);
  if (node->is_sink()) {
    results_ += static_cast<double>(count);
    return;
  }
  const int64_t out =
      CreditEmit(node, node->Selectivity() * static_cast<double>(count));
  if (out <= 0) return;
  for (const auto& edge : node->outputs()) {
    const Node* next = static_cast<const Node*>(edge.target);
    if (VoOf(next) == home_vo) {
      Traverse(next, out, home_vo, busy);
    } else {
      pending_emissions_.emplace_back(queue_of_edge_.at(node).at(next),
                                      out);
    }
  }
}

double Simulation::ProcessQuantum(SimThreadState* thread) {
  double busy = options_.grant_overhead_us * 1e-6;
  bool processed_any = false;
  while (busy < options_.quantum || !processed_any) {
    const int queue_id = NextQueue(thread);
    if (queue_id < 0) break;
    SimQueue& queue = queues_[static_cast<size_t>(queue_id)];
    DCHECK(!queue.arrivals.empty());
    queue.arrivals.pop_front();
    --total_queued_;
    double element_busy = options_.dequeue_overhead_us * 1e-6;
    pending_emissions_.clear();
    Traverse(queue.consumer, 1, queue.vo, &element_busy);
    busy += element_busy;
    processed_any = true;
    // The element's cross-VO outputs arrive when the element finishes.
    for (const auto& [qid, count] : pending_emissions_) {
      in_flight_.push({now_ + busy, delivery_seq_++, qid, count});
    }
    pending_emissions_.clear();
  }
  return busy;
}

void Simulation::EnqueueAt(int queue_id, double time, int64_t count) {
  SimQueue& queue = queues_[static_cast<size_t>(queue_id)];
  for (int64_t i = 0; i < count; ++i) queue.arrivals.push_back(time);
  total_queued_ += count;
  max_queued_ = std::max(max_queued_, total_queued_);
}

void Simulation::MarkRunnable(int thread, double now) {
  SimThreadState& t = threads_[static_cast<size_t>(thread)];
  if (t.running || std::isfinite(t.runnable_since)) return;
  for (int id : t.queue_ids) {
    if (!queues_[static_cast<size_t>(id)].arrivals.empty()) {
      t.runnable_since = now;
      return;
    }
  }
}

void Simulation::RecordSamplesUpTo(double time) {
  while (next_sample_ <= time + 1e-12) {
    samples_.push_back({next_sample_, total_queued_,
                        static_cast<int64_t>(std::llround(results_))});
    next_sample_ += options_.sample_interval;
  }
}

SimResult Simulation::Run() {
  int free_cpus = options_.cpus;
  while (true) {
    // Grant free CPUs to runnable threads, longest-waiting first (the
    // aging-based grant of the real ThreadScheduler at equal priorities).
    while (free_cpus > 0) {
      int chosen = -1;
      double earliest = kInfinity;
      for (size_t t = 0; t < threads_.size(); ++t) {
        const SimThreadState& thread = threads_[t];
        if (thread.running || !std::isfinite(thread.runnable_since)) {
          continue;
        }
        if (thread.runnable_since < earliest) {
          earliest = thread.runnable_since;
          chosen = static_cast<int>(t);
        }
      }
      if (chosen < 0) break;
      SimThreadState& thread = threads_[static_cast<size_t>(chosen)];
      bool has_work = false;
      for (int id : thread.queue_ids) {
        if (!queues_[static_cast<size_t>(id)].arrivals.empty()) {
          has_work = true;
          break;
        }
      }
      if (!has_work) {
        thread.runnable_since = kInfinity;  // spurious
        continue;
      }
      const double busy = ProcessQuantum(&thread);
      thread.running = true;
      thread.runnable_since = kInfinity;
      thread.busy_until = now_ + busy;
      thread.busy_total += busy;
      --free_cpus;
    }
    // Next event: earliest completion, arrival or delivery.
    double next_event = kInfinity;
    for (const SimThreadState& thread : threads_) {
      if (thread.running) {
        next_event = std::min(next_event, thread.busy_until);
      }
    }
    for (const SourceStream& stream : sources_) {
      if (stream.next < stream.arrival_times.size()) {
        next_event =
            std::min(next_event, stream.arrival_times[stream.next]);
      }
    }
    if (!in_flight_.empty()) {
      next_event = std::min(next_event, in_flight_.top().time);
    }
    if (!std::isfinite(next_event)) break;  // drained and idle: done
    RecordSamplesUpTo(next_event);
    now_ = std::max(now_, next_event);
    // Completions first (deterministic thread order).
    for (size_t t = 0; t < threads_.size(); ++t) {
      SimThreadState& thread = threads_[t];
      if (thread.running && thread.busy_until <= now_ + 1e-12) {
        thread.running = false;
        ++free_cpus;
        MarkRunnable(static_cast<int>(t), now_);
      }
    }
    // Source arrivals due now (source id order; broadcast to subscribers).
    for (SourceStream& stream : sources_) {
      while (stream.next < stream.arrival_times.size() &&
             stream.arrival_times[stream.next] <= now_ + 1e-12) {
        for (const auto& edge : stream.source->outputs()) {
          const Node* consumer = static_cast<const Node*>(edge.target);
          const int qid = queue_of_edge_.at(stream.source).at(consumer);
          EnqueueAt(qid, now_, 1);
          MarkRunnable(queues_[static_cast<size_t>(qid)].thread, now_);
        }
        ++stream.next;
      }
    }
    // Deliver in-flight cross-VO emissions that are due.
    while (!in_flight_.empty() && in_flight_.top().time <= now_ + 1e-12) {
      const Delivery delivery = in_flight_.top();
      in_flight_.pop();
      EnqueueAt(delivery.queue_id, delivery.time, delivery.count);
      MarkRunnable(
          queues_[static_cast<size_t>(delivery.queue_id)].thread, now_);
    }
  }
  RecordSamplesUpTo(now_);
  SimResult result;
  result.completion_time = now_;
  result.results = static_cast<int64_t>(std::llround(results_));
  result.max_queued = max_queued_;
  result.samples = std::move(samples_);
  for (const SimThreadState& thread : threads_) {
    result.partition_busy.push_back(thread.busy_total);
  }
  return result;
}

std::vector<const Node*> ConnectedNonSourceNodes(const QueryGraph& graph) {
  std::vector<const Node*> nodes;
  for (const Node* node : graph.nodes()) {
    if (node->is_source()) continue;
    if (node->fan_in() == 0 && node->fan_out() == 0) continue;
    nodes.push_back(node);
  }
  return nodes;
}

}  // namespace

Result<SimResult> Simulate(
    const QueryGraph& graph,
    const std::unordered_map<const Node*, std::vector<SimPhase>>& schedules,
    const std::vector<SimThread>& threads, const SimOptions& options) {
  Simulation simulation(graph, options);
  Status s = simulation.Build(schedules, threads);
  if (!s.ok()) return s;
  return simulation.Run();
}

SimThread MakeVoPerOperator(const QueryGraph& graph) {
  SimThread thread;
  for (const Node* node : ConnectedNonSourceNodes(graph)) {
    thread.push_back(SimVo{node});
  }
  return thread;
}

std::vector<SimThread> MakeGtsConfig(const QueryGraph& graph) {
  return {MakeVoPerOperator(graph)};
}

std::vector<SimThread> MakeOtsConfig(const QueryGraph& graph) {
  std::vector<SimThread> threads;
  for (const Node* node : ConnectedNonSourceNodes(graph)) {
    threads.push_back(SimThread{SimVo{node}});
  }
  return threads;
}

std::vector<SimThread> MakeDirectConfig(const QueryGraph& graph) {
  SimVo vo = ConnectedNonSourceNodes(graph);
  return {SimThread{std::move(vo)}};
}

}  // namespace flexstream

// StreamEngine: end-to-end execution of a query graph under any of the
// paper's scheduling architectures.
//
// The engine takes a *logical* (queue-free) query graph, inserts
// decoupling queues according to the chosen execution mode, builds the
// level-2/level-3 scheduling machinery, and runs the graph to completion:
//
//   kSourceDriven  no queues at all; the sources' threads execute the
//                  whole graph with DI (the Section 6.3 configuration).
//   kDirect        one queue after each source; a single thread executes
//                  all operators as one VO (the "DI" configuration of
//                  Sections 6.4/6.5).
//   kGts           a queue before every operator; one thread schedules
//                  them with a pluggable strategy (Section 4.1.1).
//   kOts           a queue before every operator; one thread per queue
//                  (Section 4.1.2).
//   kHmts          queues placed by a placement algorithm (Algorithm 1 by
//                  default); one thread per graph partition under the
//                  level-3 ThreadScheduler (Section 4.2).
//
// Runtime flexibility (Section 4.2.2): SwitchTo() rebuilds the scheduling
// configuration on the fly. Switches that keep the queue structure
// (kGts <-> kOts <-> same-placement kHmts) are safe while sources keep
// pushing; structural switches (different queue positions) briefly drain
// the affected queues and require the sources to be paused, exactly the
// "interrupting the processing of the graph shortly" of Section 5.1.3.

#ifndef FLEXSTREAM_API_STREAM_ENGINE_H_
#define FLEXSTREAM_API_STREAM_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/hmts.h"
#include "graph/query_graph.h"
#include "operators/sink.h"
#include "placement/partitioning.h"
#include "queue/queue_op.h"
#include "recovery/recovery_manager.h"
#include "sched/gts.h"
#include "sched/ots.h"
#include "util/run_status.h"
#include "util/status.h"

namespace flexstream {

enum class ExecutionMode { kSourceDriven, kDirect, kGts, kOts, kHmts };
enum class PlacementKind { kStallAvoiding, kChain, kSegment };

/// Cross-thread enqueue path selection for the queues the engine places.
///  kAuto      placement annotates single-producer queues, which then use
///             the lock-free SPSC ring (the production default).
///  kForceMpsc every queue keeps the mutex-protected MPSC deque even when
///             the SPSC annotation would apply. Used by the differential
///             harness to run the same graph down both queue code paths.
enum class QueuePathMode { kAuto, kForceMpsc };

const char* ExecutionModeToString(ExecutionMode mode);
const char* PlacementKindToString(PlacementKind kind);
const char* QueuePathModeToString(QueuePathMode mode);

/// Inverses of the *ToString functions; return false on unknown names.
/// Used by the differential harness's replay files.
bool ExecutionModeFromString(const std::string& name, ExecutionMode* mode);
bool PlacementKindFromString(const std::string& name, PlacementKind* kind);
bool QueuePathModeFromString(const std::string& name, QueuePathMode* mode);

struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kHmts;
  /// Level-2 strategy for GTS and for every HMTS partition.
  StrategyKind strategy = StrategyKind::kFifo;
  /// Queue-placement algorithm (kHmts only).
  PlacementKind placement = PlacementKind::kStallAvoiding;
  /// Enqueue-path selection for the placed queues.
  QueuePathMode queue_path = QueuePathMode::kAuto;
  /// Ring slots per SPSC queue. Small values (e.g. 2) force the ring-full
  /// spillover + seq-merge drain path on every few elements — the
  /// differential harness and spill regression tests rely on that.
  size_t queue_ring_capacity = QueueOp::kDefaultRingCapacity;
  /// Hard element budget applied to every placed queue; 0 (the default)
  /// keeps queues unbounded. See QueueOp::SetBound.
  size_t queue_max_elements = 0;
  /// What producers do when a bounded queue is full.
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  /// Per-wait cap for kBlock producers; on expiry the element overruns the
  /// bound instead of risking a cross-partition deadlock.
  Duration block_wait_timeout = std::chrono::seconds(2);
  Partition::Options partition;
  ThreadScheduler::Options ts;
  /// Checkpointing: elements per source between epoch barriers. 0 (the
  /// default) disables checkpointing entirely — no barriers, no replay
  /// buffers, zero overhead on the data path.
  uint64_t checkpoint_epoch_interval = 0;
  /// Recovery attempts per run before falling back to the abort path.
  int max_recovery_attempts = 3;
  /// Per-source replay-buffer element cap (0 = unbounded). Overflowing it
  /// disqualifies recovery for the run rather than replaying a truncated
  /// stream.
  size_t replay_buffer_max_elements = 1 << 20;
  /// Durable checkpoints (DESIGN.md §16): non-empty (with checkpointing
  /// enabled) persists every committed epoch's operator snapshots and
  /// source replay cursors to this directory, enabling ColdRestart after a
  /// process death. Requires every stateful operator in the graph to
  /// support durable state — Configure fails otherwise.
  std::string durable_checkpoint_dir;
  /// Storage backend for the durable store (nullptr = the real
  /// filesystem; the chaos tier injects a FaultyStorageEnv).
  StorageEnv* storage_env = nullptr;
  /// Committed epochs retained on disk (>= 1; clamped). Keep >= 2 so a
  /// torn newest epoch always has an intact fallback.
  int durable_retain_epochs = 2;
  /// Transient-failure retry backoff applied to every operator
  /// (capped exponential with seeded jitter; see RetryBackoffOptions).
  RetryBackoffOptions retry_backoff;
  /// Batch execution path (DESIGN.md §11): elements a source accumulates
  /// into one TupleBatch before emitting it downstream; sizes > 1 also
  /// make every placed queue deliver each drained run as a single
  /// ReceiveBatch call. 1 (the default) keeps the per-tuple path
  /// everywhere. Batches always split at punctuations (EOS, epoch
  /// barriers) and dissolve at fault-hooked or alignment-armed operators,
  /// so overload accounting and checkpoint semantics are unchanged.
  size_t emit_batch_size = 1;
  /// Columnar batch layer (DESIGN.md §17): with emit_batch_size > 1,
  /// sources scatter accumulated elements into typed ColumnarBatches
  /// (contiguous column vectors + per-batch string arena) and unbounded
  /// batch-delivery queues transport each batch as one boxed item.
  /// Columnar-native operators (typed Selection/Map, Projection, tumbling
  /// aggregates, counting sinks, unions) process the typed columns
  /// directly; everything else — and any operator with a fault hook,
  /// armed barrier alignment, or seq stamping — transparently
  /// materializes back to rows, so results are byte-for-byte identical to
  /// the row-wise path. Configure also propagates declared source schemas
  /// through schema-preserving operators (SetStaticOutputSchema).
  bool columnar = false;
};

class StreamEngine {
 public:
  /// The graph must stay alive for the engine's lifetime and must be
  /// queue-free when first configured.
  explicit StreamEngine(QueryGraph* graph);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Inserts queues and builds (but does not start) the executors.
  Status Configure(const EngineOptions& options);

  /// Starts all partition workers. Sources are driven by the caller
  /// (e.g. workload::RateSource) and may start before or after this.
  Status Start();

  /// Cold restart (DESIGN.md §16): restores the newest intact epoch from
  /// the configured durable checkpoint directory into the freshly
  /// configured, not-yet-started graph. Sources are rewound to the epoch
  /// boundary and armed to swallow the already-committed input prefix, so
  /// re-driving the full deterministic input resumes with exact result
  /// identity. Returns the restored epoch (0 = empty store, fresh start).
  /// Call after Configure and before Start.
  Result<uint64_t> ColdRestart();

  /// Blocks until every sink has seen EOS and every partition has fully
  /// drained, then stops the workers. If any operator fails mid-run the
  /// wait ends early: the engine cancels blocked producers, stops the
  /// workers, and returns — the error is surfaced via RunResult().
  void WaitUntilFinished();

  /// Bounded variant; returns false on timeout (workers keep running; a
  /// partition/queue-depth snapshot is logged for diagnosis). Returns true
  /// when the run ended — normally or by operator failure (check
  /// RunResult()).
  bool WaitUntilFinishedFor(Duration timeout);

  /// Stops partition workers without requiring completion.
  void Stop();

  /// Runtime re-configuration; see the class comment for the safety
  /// contract of structural switches. Refusals return a structured Status
  /// naming the blocking condition (not configured / checkpointing armed /
  /// recovery in flight) — the SLO controller drives this path
  /// programmatically and logs the message verbatim.
  Status SwitchTo(const EngineOptions& options);

  // -- Runtime actuation hooks (src/control/ SLO controller) ---------------

  /// Resizes the level-3 slot pool at runtime (kHmts only; rung 1 of the
  /// degradation ladder). Safe while running and while recovery is armed.
  /// Persists into options() so recovery rebuilds keep the new size.
  Status SetMaxRunningThreads(int max_running);

  /// Changes the emit batch size live (rung 2): sources apply the new size
  /// at their next Push (via Source::RequestEmitBatchSize) and every
  /// placed queue's downstream delivery granularity follows. Safe while
  /// running; per-tuple and batch delivery are result-identical.
  Status SetEmitBatchSizeLive(size_t batch_size);

  /// Flips the overload policy of every bounded placed queue live
  /// (rung 4; kBlock <-> kShedNewest only). Fails — naming the queue —
  /// if any queue refuses (unbounded, or a kShedOldest configuration).
  Status SetOverloadPolicyLive(OverloadPolicy policy);

  /// True while AttemptRecovery is rebuilding the run (pause, restore,
  /// restart, replay). The controller suspends actuation during this
  /// window and resumes after the restore.
  bool recovering() const {
    return recovering_.load(std::memory_order_acquire);
  }

  /// Installs a callback whose text is appended to DiagnosticSnapshot()
  /// and to watchdog stall reports (via the level-3 scheduler's stall
  /// annotator, re-applied across executor rebuilds). The controller
  /// registers its rung/state line here. nullptr detaches.
  void SetDiagnosticAnnotator(std::function<std::string()> annotator);

  /// Removes every queue from the graph (queues must be drained),
  /// restoring the logical queue-free topology. Called automatically by
  /// structural SwitchTo.
  Status Deconfigure();

  /// Deconfigures and resets all node state so the same logical graph can
  /// be re-run from scratch (used when comparing modes on one graph).
  Status ResetForRerun();

  // -- Introspection ------------------------------------------------------

  const EngineOptions& options() const { return options_; }
  bool configured() const { return configured_; }
  bool started() const { return started_; }

  /// The run's outcome so far: Ok while healthy; otherwise the *first*
  /// operator failure, prefixed with the failing operator's name. Never
  /// aborts the process — robustness runs inspect this after the wait.
  Status RunResult() const { return run_status_.first(); }
  RunStatus* run_status() { return &run_status_; }

  /// Per-partition snapshot (queue depths, drained counts, last-scheduled
  /// queue) of the current configuration. Logged on wait timeouts; exposed
  /// for tests and external diagnostics.
  std::string DiagnosticSnapshot();

  /// Total elements shed across all bounded queues (both policies).
  int64_t DroppedElements() const;

  const std::vector<QueueOp*>& queues() const { return queues_; }

  /// Total elements currently buffered in queues ("memory usage" in the
  /// paper's Figures 9).
  size_t QueuedElements() const;

  /// Number of worker threads the current configuration uses.
  size_t WorkerThreadCount() const;

  /// Present only in kHmts mode.
  HmtsExecutor* hmts() { return hmts_.get(); }
  /// Present in kGts / kDirect modes.
  GtsExecutor* gts() { return gts_.get(); }
  /// Present in kOts mode.
  OtsExecutor* ots() { return ots_.get(); }

  /// The partitioning used by the last kHmts configuration.
  const Partitioning* partitioning() const { return partitioning_.get(); }

  /// Present only when checkpoint_epoch_interval > 0.
  RecoveryManager* recovery() { return recovery_.get(); }
  const RecoveryManager* recovery() const { return recovery_.get(); }

 private:
  /// (from, to) edges that must receive a queue for `options`.
  Status ComputeQueueEdges(const EngineOptions& options,
                           std::vector<std::pair<Node*, Operator*>>* edges);
  Status BuildExecutors(const EngineOptions& options);
  bool AllPartitionsDone() const;
  void CollectSinks();
  /// Failure teardown: unblocks kBlock producers (so no feeding thread
  /// stays wedged behind a partition that will never drain) and stops the
  /// workers.
  void AbortOnFailure();

  /// One sink+partition wait pass (nullptr deadline = unbounded).
  enum class WaitOutcome { kFinished, kFailed, kTimedOut };
  WaitOutcome WaitOnce(const TimePoint* deadline);
  /// Rewind-and-replay after a permanent operator failure: quiesce
  /// sources, stop workers, restore the last committed epoch, rebuild and
  /// restart the executors, replay the retained source suffix, resume.
  /// Returns false when recovery is unavailable (not armed, attempt
  /// budget exhausted, or a replay buffer overflowed) — the caller then
  /// takes the abort path.
  bool AttemptRecovery();

  QueryGraph* graph_;
  RunStatus run_status_;
  EngineOptions options_;
  bool configured_ = false;
  bool started_ = false;
  std::atomic<bool> recovering_{false};
  /// Serializes the live actuation hooks against AttemptRecovery's flag
  /// raise, so an in-flight actuation always completes before the
  /// executor teardown starts (and later ones refuse cleanly).
  std::mutex actuation_mutex_;
  std::function<std::string()> diagnostic_annotator_;

  std::vector<QueueOp*> queues_;
  std::vector<Sink*> sinks_;
  std::unique_ptr<Partitioning> partitioning_;
  std::unique_ptr<RecoveryManager> recovery_;

  std::unique_ptr<GtsExecutor> gts_;
  std::unique_ptr<OtsExecutor> ots_;
  std::unique_ptr<HmtsExecutor> hmts_;
  int next_queue_id_ = 0;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_API_STREAM_ENGINE_H_

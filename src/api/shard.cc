#include "api/shard.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "operators/aggregate.h"
#include "operators/symmetric_hash_join.h"
#include "util/logging.h"

namespace flexstream {

Result<ShardHandle> ShardOperator(QueryGraph* graph, Operator* op,
                                  const ShardOptions& options) {
  if (graph == nullptr || op == nullptr) {
    return Status::InvalidArgument("ShardOperator requires a graph and an op");
  }
  if (options.shards == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  Node* node = op;
  if (node->is_source() || node->is_sink() || node->is_queue()) {
    return Status::InvalidArgument("can only shard plain operators: " +
                                   node->DebugString());
  }
  // Copies: the rewiring below mutates the live edge lists.
  const std::vector<Node::InEdge> in_edges = node->inputs();
  const std::vector<Node::OutEdge> out_edges = node->outputs();
  if (in_edges.empty()) {
    return Status::FailedPrecondition("operator has no producers: " +
                                      node->DebugString());
  }
  if (node->input_arity() == Node::kVariadicArity && in_edges.size() > 1) {
    return Status::InvalidArgument(
        "cannot shard a variadic operator with multiple producers: " +
        node->DebugString());
  }
  if (options.ordered && in_edges.size() > 1) {
    // A replica drains its input ports in scheduler-dependent order, so
    // its emitted stamps are not monotone per lane and the ordered release
    // rule would deadlock/misorder. Joins shard with ordered = false.
    return Status::InvalidArgument(
        "ordered sharding requires a single-input operator: " +
        node->DebugString());
  }
  if (options.key_attrs.size() != 1 &&
      options.key_attrs.size() != in_edges.size()) {
    return Status::InvalidArgument(
        "key_attrs must list one attribute, or one per input port");
  }

  // Clone all replicas before touching topology, so an unsupported
  // operator (CloneFresh -> nullptr) leaves the graph unchanged.
  // Generation tag: graph nodes are never destroyed, so a resized cell's
  // previous generation stays (detached) in the graph; tagged names keep
  // every generation's nodes distinguishable.
  const std::string gen_prefix =
      options.generation > 0
          ? op->name() + ".g" + std::to_string(options.generation)
          : op->name();
  std::vector<std::unique_ptr<Operator>> clones;
  clones.reserve(options.shards);
  for (size_t i = 0; i < options.shards; ++i) {
    std::unique_ptr<Operator> clone =
        op->CloneFresh(gen_prefix + ".shard" + std::to_string(i));
    if (clone == nullptr) {
      return Status::Unimplemented("operator does not support CloneFresh: " +
                                   node->DebugString());
    }
    clone->SetSimulatedCostMicros(op->simulated_cost_micros());
    clone->SetSimulatedBlockingMicros(op->simulated_blocking_micros());
    clone->SetStampEmitSeq(options.ordered);
    clone->SetPlacementSolo(true);
    clone->SetShardInfo(op->name(), static_cast<int>(i));
    // Carry the prototype's statistics overrides so cost-model-driven
    // placement/scheduling sees the replicas like it saw the original.
    if (node->has_cost_override()) clone->SetCostMicros(node->CostMicros());
    if (node->has_interarrival_override()) {
      clone->SetInterarrivalMicros(node->InterarrivalMicros());
    }
    if (node->has_selectivity_override()) {
      clone->SetSelectivity(node->Selectivity());
    }
    clones.push_back(std::move(clone));
  }

  ShardHandle handle;
  handle.original = op;
  for (size_t p = 0; p < in_edges.size(); ++p) {
    const size_t key_attr = options.key_attrs.size() == 1
                                ? options.key_attrs[0]
                                : options.key_attrs[p];
    std::string split_name =
        gen_prefix +
        (in_edges.size() == 1 ? ".split" : ".split" + std::to_string(p));
    Router* split =
        graph->Add<Router>(std::move(split_name), Router::HashAttr(key_attr));
    split->SetSequencing(options.ordered);
    handle.splits.push_back(split);
  }
  handle.replicas.reserve(clones.size());
  for (std::unique_ptr<Operator>& clone : clones) {
    handle.replicas.push_back(graph->Adopt(std::move(clone)));
  }
  handle.merge = graph->Add<MergeOperator>(
      gen_prefix + ".merge", options.ordered ? MergeOperator::Order::kSequence
                                             : MergeOperator::Order::kArrival);
  handle.options = options;

  // Rewire. Individual steps can only fail on an inconsistent input graph,
  // hence CHECK rather than unwinding half a rewrite.
  for (size_t p = 0; p < in_edges.size(); ++p) {
    CHECK_OK(graph->Disconnect(in_edges[p].source, op, in_edges[p].port));
    CHECK_OK(graph->Connect(in_edges[p].source, handle.splits[p], 0));
    // Router output index i == replica i (connection order).
    for (Operator* replica : handle.replicas) {
      CHECK_OK(graph->Connect(handle.splits[p], replica, in_edges[p].port));
    }
  }
  for (Operator* replica : handle.replicas) {
    CHECK_OK(graph->Connect(replica, handle.merge, 0));
  }
  for (const Node::OutEdge& out : out_edges) {
    CHECK_OK(graph->Disconnect(op, out.target, out.port));
    CHECK_OK(graph->Connect(handle.merge, out.target, out.port));
  }
  // `op` is now fully detached: the prototype stays graph-owned (state
  // repartitioning dispatches on it) but never executes. The recovery
  // manager skips detached nodes when arming checkpoints.
  return handle;
}

Result<ShardHandle> ResizeShard(QueryGraph* graph, const ShardHandle& handle,
                                size_t new_shards) {
  if (graph == nullptr || handle.original == nullptr ||
      handle.merge == nullptr || handle.replicas.empty() ||
      handle.splits.empty()) {
    return Status::InvalidArgument(
        "ResizeShard refused: handle does not describe a sharded cell "
        "(build one with ShardOperator first)");
  }
  if (new_shards == 0) {
    return Status::InvalidArgument(
        "ResizeShard refused: shard count must be >= 1");
  }
  if (!graph->Queues().empty()) {
    return Status::FailedPrecondition(
        "ResizeShard refused for group '" + handle.original->name() +
        "': the graph still contains " +
        std::to_string(graph->Queues().size()) +
        " decoupling queue(s), so the engine is configured and elements "
        "may be in flight; call StreamEngine::Deconfigure first");
  }
  if (new_shards == handle.replicas.size()) return handle;

  // Snapshot + repartition *before* touching topology, so an operator type
  // without repartition logic refuses cleanly instead of losing state.
  std::vector<OperatorSnapshot> carried;
  bool stateful = dynamic_cast<StatefulOperator*>(handle.replicas[0]) != nullptr;
  if (stateful) {
    std::vector<OperatorSnapshot> snaps;
    snaps.reserve(handle.replicas.size());
    for (Operator* replica : handle.replicas) {
      auto* so = dynamic_cast<StatefulOperator*>(replica);
      if (so == nullptr) {
        return Status::Internal(
            "ResizeShard: replica set mixes stateful and stateless "
            "operators: " + replica->DebugString());
      }
      snaps.push_back(so->SnapshotState());
    }
    Result<std::vector<OperatorSnapshot>> repartitioned =
        RepartitionShardSnapshots(*handle.original, snaps, new_shards);
    if (!repartitioned.ok()) {
      return Status::FailedPrecondition(
          "ResizeShard refused for group '" + handle.original->name() +
          "': state cannot be repartitioned (" +
          repartitioned.status().message() + ")");
    }
    carried = std::move(*repartitioned);
  }

  // At quiescence every produced element has reached the merge; release
  // anything its ordered lanes still gate, in exact sequence order, before
  // the cell is torn down.
  handle.merge->FlushPendingQuiesced();

  // Reverse the rewrite: reconnect upstream -> original -> downstream.
  // Each split's one input edge is the upstream producer; the port the
  // original consumed on is the port the split fed the replicas on.
  Operator* op = handle.original;
  for (Router* split : handle.splits) {
    CHECK(split->fan_in() == 1) << split->DebugString();
    const Node::InEdge up = split->inputs()[0];
    CHECK(!split->outputs().empty()) << split->DebugString();
    const int original_port = split->outputs()[0].port;
    CHECK_OK(graph->Disconnect(up.source, split, up.port));
    for (const Node::OutEdge& out : std::vector<Node::OutEdge>(
             split->outputs().begin(), split->outputs().end())) {
      CHECK_OK(graph->Disconnect(split, out.target, out.port));
    }
    CHECK_OK(graph->Connect(up.source, op, original_port));
  }
  for (Operator* replica : handle.replicas) {
    CHECK_OK(graph->Disconnect(replica, handle.merge, 0));
    // Detached for good: clear the shard tags so stats tables and chaos
    // targeting never mistake a retired generation for a live one.
    replica->SetShardInfo("", -1);
    replica->SetPlacementSolo(false);
    replica->SetStampEmitSeq(false);
  }
  for (const Node::OutEdge& out : std::vector<Node::OutEdge>(
           handle.merge->outputs().begin(), handle.merge->outputs().end())) {
    CHECK_OK(graph->Disconnect(handle.merge, out.target, out.port));
    CHECK_OK(graph->Connect(op, out.target, out.port));
  }

  ShardOptions new_options = handle.options;
  new_options.shards = new_shards;
  new_options.generation = handle.options.generation + 1;
  Result<ShardHandle> rebuilt = ShardOperator(graph, op, new_options);
  if (!rebuilt.ok()) return rebuilt.status();

  if (stateful) {
    CHECK_EQ(carried.size(), new_shards);
    for (size_t i = 0; i < new_shards; ++i) {
      auto* so = dynamic_cast<StatefulOperator*>(rebuilt->replicas[i]);
      CHECK(so != nullptr) << rebuilt->replicas[i]->DebugString();
      so->RestoreState(carried[i]);
    }
  }
  return rebuilt;
}

Result<std::vector<OperatorSnapshot>> RepartitionShardSnapshots(
    const Operator& prototype, const std::vector<OperatorSnapshot>& snapshots,
    size_t new_n) {
  if (const auto* join = dynamic_cast<const SymmetricHashJoin*>(&prototype)) {
    return join->RepartitionSnapshots(snapshots, new_n);
  }
  if (const auto* agg = dynamic_cast<const WindowedAggregate*>(&prototype)) {
    return agg->RepartitionSnapshots(snapshots, new_n);
  }
  return Status::Unimplemented("no shard-state repartitioning for " +
                               prototype.DebugString());
}

}  // namespace flexstream

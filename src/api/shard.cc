#include "api/shard.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "operators/aggregate.h"
#include "operators/symmetric_hash_join.h"
#include "util/logging.h"

namespace flexstream {

Result<ShardHandle> ShardOperator(QueryGraph* graph, Operator* op,
                                  const ShardOptions& options) {
  if (graph == nullptr || op == nullptr) {
    return Status::InvalidArgument("ShardOperator requires a graph and an op");
  }
  if (options.shards == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  Node* node = op;
  if (node->is_source() || node->is_sink() || node->is_queue()) {
    return Status::InvalidArgument("can only shard plain operators: " +
                                   node->DebugString());
  }
  // Copies: the rewiring below mutates the live edge lists.
  const std::vector<Node::InEdge> in_edges = node->inputs();
  const std::vector<Node::OutEdge> out_edges = node->outputs();
  if (in_edges.empty()) {
    return Status::FailedPrecondition("operator has no producers: " +
                                      node->DebugString());
  }
  if (node->input_arity() == Node::kVariadicArity && in_edges.size() > 1) {
    return Status::InvalidArgument(
        "cannot shard a variadic operator with multiple producers: " +
        node->DebugString());
  }
  if (options.ordered && in_edges.size() > 1) {
    // A replica drains its input ports in scheduler-dependent order, so
    // its emitted stamps are not monotone per lane and the ordered release
    // rule would deadlock/misorder. Joins shard with ordered = false.
    return Status::InvalidArgument(
        "ordered sharding requires a single-input operator: " +
        node->DebugString());
  }
  if (options.key_attrs.size() != 1 &&
      options.key_attrs.size() != in_edges.size()) {
    return Status::InvalidArgument(
        "key_attrs must list one attribute, or one per input port");
  }

  // Clone all replicas before touching topology, so an unsupported
  // operator (CloneFresh -> nullptr) leaves the graph unchanged.
  std::vector<std::unique_ptr<Operator>> clones;
  clones.reserve(options.shards);
  for (size_t i = 0; i < options.shards; ++i) {
    std::unique_ptr<Operator> clone =
        op->CloneFresh(op->name() + ".shard" + std::to_string(i));
    if (clone == nullptr) {
      return Status::Unimplemented("operator does not support CloneFresh: " +
                                   node->DebugString());
    }
    clone->SetSimulatedCostMicros(op->simulated_cost_micros());
    clone->SetSimulatedBlockingMicros(op->simulated_blocking_micros());
    clone->SetStampEmitSeq(options.ordered);
    clone->SetPlacementSolo(true);
    clone->SetShardInfo(op->name(), static_cast<int>(i));
    // Carry the prototype's statistics overrides so cost-model-driven
    // placement/scheduling sees the replicas like it saw the original.
    if (node->has_cost_override()) clone->SetCostMicros(node->CostMicros());
    if (node->has_interarrival_override()) {
      clone->SetInterarrivalMicros(node->InterarrivalMicros());
    }
    if (node->has_selectivity_override()) {
      clone->SetSelectivity(node->Selectivity());
    }
    clones.push_back(std::move(clone));
  }

  ShardHandle handle;
  handle.original = op;
  for (size_t p = 0; p < in_edges.size(); ++p) {
    const size_t key_attr = options.key_attrs.size() == 1
                                ? options.key_attrs[0]
                                : options.key_attrs[p];
    std::string split_name =
        op->name() +
        (in_edges.size() == 1 ? ".split" : ".split" + std::to_string(p));
    Router* split =
        graph->Add<Router>(std::move(split_name), Router::HashAttr(key_attr));
    split->SetSequencing(options.ordered);
    handle.splits.push_back(split);
  }
  handle.replicas.reserve(clones.size());
  for (std::unique_ptr<Operator>& clone : clones) {
    handle.replicas.push_back(graph->Adopt(std::move(clone)));
  }
  handle.merge = graph->Add<MergeOperator>(
      op->name() + ".merge", options.ordered ? MergeOperator::Order::kSequence
                                             : MergeOperator::Order::kArrival);

  // Rewire. Individual steps can only fail on an inconsistent input graph,
  // hence CHECK rather than unwinding half a rewrite.
  for (size_t p = 0; p < in_edges.size(); ++p) {
    CHECK_OK(graph->Disconnect(in_edges[p].source, op, in_edges[p].port));
    CHECK_OK(graph->Connect(in_edges[p].source, handle.splits[p], 0));
    // Router output index i == replica i (connection order).
    for (Operator* replica : handle.replicas) {
      CHECK_OK(graph->Connect(handle.splits[p], replica, in_edges[p].port));
    }
  }
  for (Operator* replica : handle.replicas) {
    CHECK_OK(graph->Connect(replica, handle.merge, 0));
  }
  for (const Node::OutEdge& out : out_edges) {
    CHECK_OK(graph->Disconnect(op, out.target, out.port));
    CHECK_OK(graph->Connect(handle.merge, out.target, out.port));
  }
  // `op` is now fully detached: the prototype stays graph-owned (state
  // repartitioning dispatches on it) but never executes. The recovery
  // manager skips detached nodes when arming checkpoints.
  return handle;
}

Result<std::vector<OperatorSnapshot>> RepartitionShardSnapshots(
    const Operator& prototype, const std::vector<OperatorSnapshot>& snapshots,
    size_t new_n) {
  if (const auto* join = dynamic_cast<const SymmetricHashJoin*>(&prototype)) {
    return join->RepartitionSnapshots(snapshots, new_n);
  }
  if (const auto* agg = dynamic_cast<const WindowedAggregate*>(&prototype)) {
    return agg->RepartitionSnapshots(snapshots, new_n);
  }
  return Status::Unimplemented("no shard-state repartitioning for " +
                               prototype.DebugString());
}

}  // namespace flexstream

// Fluent construction of query graphs.
//
// QueryBuilder wraps a QueryGraph with typed add-and-connect helpers so
// examples and tests read like the queries they build:
//
//   QueryGraph graph;
//   QueryBuilder qb(&graph);
//   Source* src = qb.AddSource("sensor");
//   Node* sel = qb.Select(src, "hot", Selection::IntAttrLessThan(100));
//   CountingSink* out = qb.CountSink(sel, "out");
//
// Topology errors (bad ports, cycles) are programming errors here and
// crash via CHECK; use QueryGraph::Connect directly for recoverable
// Status handling.

#ifndef FLEXSTREAM_API_QUERY_BUILDER_H_
#define FLEXSTREAM_API_QUERY_BUILDER_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/count_window_aggregate.h"
#include "operators/distinct.h"
#include "operators/latency_sink.h"
#include "operators/map_op.h"
#include "operators/multiway_join.h"
#include "operators/projection.h"
#include "operators/router.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "operators/symmetric_nl_join.h"
#include "operators/tumbling_aggregate.h"
#include "operators/union_op.h"

namespace flexstream {

class QueryBuilder {
 public:
  explicit QueryBuilder(QueryGraph* graph);

  QueryGraph* graph() { return graph_; }

  Source* AddSource(std::string name);

  Selection* Select(Node* input, std::string name,
                    Selection::Predicate predicate,
                    double simulated_cost_micros = 0.0);

  /// Typed-column form (columnar-native; DESIGN.md §17).
  Selection* Select(Node* input, std::string name, Int64ColumnPredicate pred,
                    double simulated_cost_micros = 0.0);

  Projection* Project(Node* input, std::string name,
                      std::vector<size_t> attrs,
                      double simulated_cost_micros = 0.0);

  MapOp* Map(Node* input, std::string name, MapOp::MapFn fn,
             double simulated_cost_micros = 0.0);

  /// Typed-column form (columnar-native; DESIGN.md §17).
  MapOp* Map(Node* input, std::string name, Int64ColumnMap map,
             double simulated_cost_micros = 0.0);

  UnionOp* Union(std::vector<Node*> inputs, std::string name);

  WindowedAggregate* Aggregate(Node* input, std::string name,
                               WindowedAggregate::Options options);

  SymmetricHashJoin* HashJoin(Node* left, Node* right, std::string name,
                              AppTime window_micros, size_t left_key_attr = 0,
                              size_t right_key_attr = 0);

  SymmetricNlJoin* NlJoin(Node* left, Node* right, std::string name,
                          AppTime window_micros,
                          SymmetricNlJoin::Predicate predicate);

  MultiwayJoin* MJoin(std::vector<Node*> inputs, std::string name,
                      AppTime window_micros, std::vector<size_t> key_attrs);

  TumblingAggregate* Tumbling(Node* input, std::string name,
                              TumblingAggregate::Options options);

  CountWindowAggregate* CountWindow(Node* input, std::string name,
                                    CountWindowAggregate::Options options);

  Distinct* Dedup(Node* input, std::string name, AppTime window_micros,
                  std::vector<size_t> key_attrs = {});

  /// Router with its destinations; destination order defines the route
  /// index space.
  Router* Route(Node* input, std::string name, Router::RouteFn route,
                std::vector<Operator*> destinations);

  CountingSink* CountSink(Node* input, std::string name);
  CollectingSink* CollectSink(Node* input, std::string name);
  CallbackSink* Callback(Node* input, std::string name,
                         std::function<void(const Tuple&, int)> fn);
  LatencySink* Latency(Node* input, std::string name, size_t offset_attr,
                       TimePoint epoch,
                       std::optional<size_t> phase_attr = std::nullopt);

 private:
  void MustConnect(Node* from, Operator* to, int port);

  QueryGraph* graph_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_API_QUERY_BUILDER_H_
